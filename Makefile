GO ?= go

.PHONY: build test lint race debugtest check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sketchlint ./...
	$(GO) run ./cmd/perfcheck -require-file perfpins.txt

race:
	$(GO) test -race ./...

debugtest:
	$(GO) test -tags dcsdebug ./internal/dcs ./internal/tdcs

# Full pre-merge gate: build, tests, vet, sketchlint, -race, dcsdebug
# assertions, and a fuzz smoke pass. Mirrors ./ci.sh check.
check:
	./ci.sh check

# Perf gate: run the gated benchmarks, record medians to BENCH_2.json, and
# fail on >10% ns/op regression or any allocs/op growth against
# BENCH_baseline.json.
bench:
	./ci.sh bench
