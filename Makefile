GO ?= go

.PHONY: build test lint race debugtest check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/sketchlint ./...
	$(GO) run ./cmd/escapecheck \
		-require 'dcsketch/internal/dcs:(*Sketch).updateKernel' \
		-require 'dcsketch/internal/dcs:(*Sketch).applySig' \
		-require 'dcsketch/internal/dcs:(*Sketch).UpdateLocated' \
		-require 'dcsketch/internal/vec:BuildMaskedAddends' \
		-require 'dcsketch/internal/vec:AddInt64Lanes' \
		-require 'dcsketch/internal/dcs:(*Sketch).UpdateBatch' \
		-require 'dcsketch/internal/tdcs:(*Sketch).update1' \
		-require 'dcsketch/internal/tdcs:(*Sketch).UpdateBatch' \
		-require 'dcsketch/internal/iheap:(*Heap).Adjust' \
		-require 'dcsketch/internal/telemetry:(*Counter).Inc' \
		-require 'dcsketch/internal/telemetry:(*Counter).Add' \
		-require 'dcsketch/internal/telemetry:(*Gauge).Set' \
		-require 'dcsketch/internal/telemetry:(*Gauge).Add' \
		-require 'dcsketch/internal/telemetry:(*Histogram).Observe'

race:
	$(GO) test -race ./...

debugtest:
	$(GO) test -tags dcsdebug ./internal/dcs ./internal/tdcs

# Full pre-merge gate: build, tests, vet, sketchlint, -race, dcsdebug
# assertions, and a fuzz smoke pass. Mirrors ./ci.sh check.
check:
	./ci.sh check

# Perf gate: run the gated benchmarks, record medians to BENCH_2.json, and
# fail on >10% ns/op regression or any allocs/op growth against
# BENCH_baseline.json.
bench:
	./ci.sh bench
