package dcsketch

import (
	"testing"
)

func TestSketchBasicUsage(t *testing.T) {
	sk, err := NewSketch(WithSeed(1), WithBuckets(256))
	if err != nil {
		t.Fatal(err)
	}
	for src := uint32(1); src <= 10; src++ {
		sk.Insert(src, 443)
	}
	for src := uint32(1); src <= 3; src++ {
		sk.Insert(src, 80)
	}
	top := sk.TopK(2)
	if len(top) != 2 || top[0].Dest != 443 || top[0].Count != 10 ||
		top[1].Dest != 80 || top[1].Count != 3 {
		t.Fatalf("TopK = %+v", top)
	}
	if sk.Updates() != 13 {
		t.Fatalf("Updates = %d, want 13", sk.Updates())
	}
	if sk.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestTrackerDeleteSemantics(t *testing.T) {
	tr, err := NewTracker(WithSeed(2), WithBuckets(256))
	if err != nil {
		t.Fatal(err)
	}
	for src := uint32(1); src <= 20; src++ {
		tr.Insert(src, 443)
	}
	for src := uint32(1); src <= 20; src++ {
		tr.Delete(src, 443)
	}
	for src := uint32(1); src <= 5; src++ {
		tr.Insert(src, 80)
	}
	top := tr.TopK(1)
	if len(top) != 1 || top[0].Dest != 80 || top[0].Count != 5 {
		t.Fatalf("TopK after deletes = %+v, want [{80 5}]", top)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewSketch(WithBuckets(1)); err == nil {
		t.Fatal("invalid buckets accepted")
	}
	if _, err := NewTracker(WithLevels(99)); err == nil {
		t.Fatal("invalid levels accepted")
	}
	if _, err := NewSuperspreader(WithEpsilon(7)); err == nil {
		t.Fatal("invalid epsilon accepted")
	}
}

func TestSketchMergeAcrossOptions(t *testing.T) {
	a, err := NewSketch(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSketch(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	a.Insert(1, 10)
	b.Insert(2, 10)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if top := a.TopK(1); len(top) != 1 || top[0].Count != 2 {
		t.Fatalf("merged TopK = %+v", top)
	}
	c, err := NewSketch(WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Fatal("incompatible merge accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestSketchSerializationRoundTrip(t *testing.T) {
	sk, err := NewSketch(WithSeed(4), WithBuckets(64))
	if err != nil {
		t.Fatal(err)
	}
	for src := uint32(1); src <= 30; src++ {
		sk.Insert(src, 7)
	}
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if top := got.TopK(1); len(top) != 1 || top[0].Count != 30 {
		t.Fatalf("decoded TopK = %+v", top)
	}
	// The same bytes decode as a Tracker.
	tr, err := UnmarshalTracker(data)
	if err != nil {
		t.Fatal(err)
	}
	if top := tr.TopK(1); len(top) != 1 || top[0].Count != 30 {
		t.Fatalf("tracker-decoded TopK = %+v", top)
	}
	if _, err := UnmarshalSketch([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := UnmarshalTracker(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestTrackerReset(t *testing.T) {
	tr, err := NewTracker(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	tr.Insert(1, 2)
	tr.Reset()
	if tr.Updates() != 0 || len(tr.TopK(1)) != 0 {
		t.Fatal("Reset must clear the tracker")
	}
}

func TestMonitorEndToEndPackets(t *testing.T) {
	var alerts []Alert
	m, err := NewMonitor(MonitorConfig{
		SketchOptions: []Option{WithSeed(6), WithBuckets(256)},
		CheckInterval: 200,
		MinFrequency:  100,
		OnAlert:       func(a Alert) { alerts = append(alerts, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	victim, webServer := mustIP(t, "203.0.113.7"), mustIP(t, "198.51.100.1")

	// Legitimate clients complete their handshakes with the web server.
	for i := uint32(0); i < 300; i++ {
		client := 0x0a000000 + i
		m.ProcessPacket(Packet{Time: uint64(i) * 10, Src: client, Dst: webServer, SrcPort: 10000, DstPort: 80, SYN: true})
		m.ProcessPacket(Packet{Time: uint64(i)*10 + 1, Src: webServer, Dst: client, SrcPort: 80, DstPort: 10000, SYN: true, ACK: true})
		m.ProcessPacket(Packet{Time: uint64(i)*10 + 2, Src: client, Dst: webServer, SrcPort: 10000, DstPort: 80, ACK: true})
	}
	// Spoofed flood: SYNs that are never acknowledged.
	for i := uint32(0); i < 600; i++ {
		m.ProcessPacket(Packet{Time: 4000 + uint64(i), Src: 0xc0000000 + i, Dst: victim, SrcPort: 4444, DstPort: 443, SYN: true})
	}

	if len(alerts) == 0 {
		t.Fatal("flood raised no alert")
	}
	if alerts[0].Dest != victim {
		t.Fatalf("alert names %s, want %s", FormatIPv4(alerts[0].Dest), FormatIPv4(victim))
	}
	if m.Alerting(webServer) {
		t.Fatal("completing web traffic must not alert")
	}
	top := m.TopK(1)
	if len(top) != 1 || top[0].Dest != victim {
		t.Fatalf("TopK = %+v, want the victim", top)
	}
	if m.Updates() == 0 || m.HalfOpenStates() == 0 {
		t.Fatalf("bookkeeping: updates=%d halfopen=%d", m.Updates(), m.HalfOpenStates())
	}
}

func TestCollectorAcrossMonitors(t *testing.T) {
	opts := []Option{WithSeed(7), WithBuckets(256)}
	m1, err := NewMonitor(MonitorConfig{SketchOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMonitor(MonitorConfig{SketchOptions: opts})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		m1.Update(1000+i, 9, 1)
		m2.Update(5000+i, 9, 1)
	}
	col, err := NewCollector(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Gather(m1, m2); err != nil {
		t.Fatal(err)
	}
	top := col.TopK(1)
	if len(top) != 1 || top[0].Dest != 9 {
		t.Fatalf("collector TopK = %+v, want dest 9", top)
	}
	// A handful of pairs may collide in all r tables; the estimate is
	// approximate but must be close to the full 200, not either half.
	if top[0].Count < 180 || top[0].Count > 220 {
		t.Fatalf("collector estimate %d, want ~200", top[0].Count)
	}
}

func TestSuperspreaderPublicAPI(t *testing.T) {
	ss, err := NewSuperspreader(WithSeed(8), WithBuckets(256))
	if err != nil {
		t.Fatal(err)
	}
	for d := uint32(0); d < 100; d++ {
		ss.Insert(42, d)
	}
	ss.Insert(7, 1)
	top := ss.TopK(1)
	if len(top) != 1 || top[0].Src != 42 {
		t.Fatalf("TopK = %+v, want scanner 42", top)
	}
	if got := ss.Threshold(50); len(got) != 1 || got[0].Src != 42 {
		t.Fatalf("Threshold(50) = %+v", got)
	}
	for d := uint32(0); d < 100; d++ {
		ss.Delete(42, d)
	}
	if got := ss.Threshold(50); len(got) != 0 {
		t.Fatalf("after deletes Threshold = %+v", got)
	}
}

func TestIPv4Helpers(t *testing.T) {
	ip := mustIP(t, "10.1.2.3")
	if got := FormatIPv4(ip); got != "10.1.2.3" {
		t.Fatalf("FormatIPv4 = %q", got)
	}
	if _, err := ParseIPv4("not an ip"); err == nil {
		t.Fatal("bad IP accepted")
	}
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	ip, err := ParseIPv4(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}
