package dcsketch_test

import (
	"fmt"

	"dcsketch"
)

// The tracking sketch follows distinct half-open sources per destination
// with insert/delete semantics.
func ExampleNewTracker() {
	sk, err := dcsketch.NewTracker(dcsketch.WithSeed(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	// Three clients connect to 10.0.0.1; two complete their handshakes.
	for src := uint32(1); src <= 3; src++ {
		sk.Insert(src, 0x0a000001)
	}
	sk.Delete(1, 0x0a000001)
	sk.Delete(2, 0x0a000001)

	for _, e := range sk.TopK(1) {
		fmt.Printf("%s has %d half-open source(s)\n", dcsketch.FormatIPv4(e.Dest), e.Count)
	}
	// Output: 10.0.0.1 has 1 half-open source(s)
}

// Sketches built with the same options merge exactly, enabling per-edge
// aggregation.
func ExampleTracker_Merge() {
	edge1, _ := dcsketch.NewTracker(dcsketch.WithSeed(9))
	edge2, _ := dcsketch.NewTracker(dcsketch.WithSeed(9))
	edge1.Insert(1, 7)
	edge2.Insert(2, 7)
	if err := edge1.Merge(edge2); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(edge1.TopK(1)[0].Count)
	// Output: 2
}

// The monitor consumes raw packets: SYNs open half-open state, the
// completing ACK removes it.
func ExampleMonitor_ProcessPacket() {
	mon, err := dcsketch.NewMonitor(dcsketch.MonitorConfig{
		SketchOptions: []dcsketch.Option{dcsketch.WithSeed(3)},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	server := uint32(0x0a000001)
	// One completed handshake, one spoofed SYN.
	mon.ProcessPacket(dcsketch.Packet{Time: 1, Src: 100, Dst: server, SrcPort: 5000, DstPort: 80, SYN: true})
	mon.ProcessPacket(dcsketch.Packet{Time: 2, Src: 100, Dst: server, SrcPort: 5000, DstPort: 80, ACK: true})
	mon.ProcessPacket(dcsketch.Packet{Time: 3, Src: 200, Dst: server, SrcPort: 6000, DstPort: 80, SYN: true})

	fmt.Println(mon.TopK(1)[0].Count)
	// Output: 1
}

// A windowed tracker ranks by recent epochs only; rotating retires the
// oldest epoch.
func ExampleNewWindowedTracker() {
	w, _ := dcsketch.NewWindowedTracker(2, dcsketch.WithSeed(4))
	w.Insert(1, 7) // epoch 1
	_ = w.Rotate()
	_ = w.Rotate() // epoch 1 leaves the 2-epoch window
	w.Insert(2, 9) // current epoch
	for _, e := range w.TopK(5) {
		fmt.Println(e.Dest)
	}
	// Output: 9
}

// Superspreader mode finds sources fanning out to many destinations.
func ExampleNewSuperspreader() {
	ss, _ := dcsketch.NewSuperspreader(dcsketch.WithSeed(5), dcsketch.WithBuckets(256))
	for d := uint32(0); d < 30; d++ {
		ss.Insert(42, d) // scanner
	}
	ss.Insert(7, 1) // normal host
	top := ss.TopK(1)
	fmt.Println(top[0].Src == 42, top[0].Count)
	// Output: true 30
}
