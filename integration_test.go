package dcsketch_test

// End-to-end integration tests spanning the whole pipeline: synthetic pcap
// capture -> TCP state machine -> monitor/alerts -> wire protocol ->
// collector merging. These are the "does the system actually catch the
// attack" tests, complementing the per-package unit suites.

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"dcsketch"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/trace"
	"dcsketch/internal/wire"
)

// buildPcapCapture synthesizes a pcap capture containing legitimate
// handshakes to goodServer and a spoofed flood against victim.
func buildPcapCapture(t *testing.T, goodServer, victim uint32, legit, zombies int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewPcapWriter(&buf)
	now := uint64(0)
	for i := 0; i < legit || i < zombies; i++ {
		now += 50
		if i < legit {
			client := uint32(0x0a000000 + i)
			sport := uint16(10000 + i)
			for _, r := range []trace.Record{
				{Time: now, Src: client, Dst: goodServer, SrcPort: sport, DstPort: 443, Flags: trace.FlagSYN},
				{Time: now + 1, Src: goodServer, Dst: client, SrcPort: 443, DstPort: sport, Flags: trace.FlagSYN | trace.FlagACK},
				{Time: now + 2, Src: client, Dst: goodServer, SrcPort: sport, DstPort: 443, Flags: trace.FlagACK},
			} {
				if err := w.Write(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i < zombies {
			if err := w.Write(trace.Record{
				Time: now + 3, Src: uint32(0xc6000000 + i), Dst: victim,
				SrcPort: 4444, DstPort: 80, Flags: trace.FlagSYN,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPcapToMonitorEndToEnd(t *testing.T) {
	goodServer := uint32(0xc6336401)
	victim := uint32(0xcb007107)
	capture := buildPcapCapture(t, goodServer, victim, 600, 900)

	var alerts []dcsketch.Alert
	mon, err := dcsketch.NewMonitor(dcsketch.MonitorConfig{
		SketchOptions: []dcsketch.Option{dcsketch.WithSeed(11), dcsketch.WithBuckets(256)},
		CheckInterval: 500,
		MinFrequency:  300,
		OnAlert:       func(a dcsketch.Alert) { alerts = append(alerts, a) },
		CUSUM:         &dcsketch.CUSUMConfig{IntervalPackets: 500},
	})
	if err != nil {
		t.Fatal(err)
	}

	r := trace.NewPcapReader(bytes.NewReader(capture))
	packets := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		mon.ProcessPacket(dcsketch.Packet{
			Time: rec.Time, Src: rec.Src, Dst: rec.Dst,
			SrcPort: rec.SrcPort, DstPort: rec.DstPort,
			SYN: rec.Flags&trace.FlagSYN != 0,
			ACK: rec.Flags&trace.FlagACK != 0,
			RST: rec.Flags&trace.FlagRST != 0,
			FIN: rec.Flags&trace.FlagFIN != 0,
		})
		packets++
	}
	if packets != 600*3+900 {
		t.Fatalf("replayed %d packets", packets)
	}
	if len(alerts) == 0 || alerts[0].Dest != victim {
		t.Fatalf("alerts = %+v, want the victim flagged", alerts)
	}
	if mon.Alerting(goodServer) {
		t.Fatal("legitimate server alerting")
	}
	if !mon.CUSUMAlarm() {
		t.Fatal("aggregate SYN/FIN tripwire did not fire during the flood")
	}
	top := mon.TopK(1)
	if len(top) != 1 || top[0].Dest != victim {
		t.Fatalf("TopK = %+v", top)
	}
	if top[0].Count < 700 || top[0].Count > 1100 {
		t.Fatalf("victim estimate %d, want ~900", top[0].Count)
	}
}

func TestEdgeToCollectorOverWire(t *testing.T) {
	// Two edges observe halves of an attack and ship their sketches over
	// the wire protocol to a central daemon, whose merged view holds the
	// full count. The daemon and edge 2's tracker both use the default
	// sketch options, so they are mergeable.
	srv, err := server.New(server.Config{
		Monitor: monitor.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	victim := uint32(0xcb007107)
	c, err := server.Dial(addr.String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Edge 1 streams raw updates; edge 2 pre-aggregates into a tracker
	// and ships the encoded sketch.
	batch := make([]wire.Update, 0, 400)
	for i := uint32(0); i < 400; i++ {
		batch = append(batch, wire.Update{Src: 0xc0000000 + i, Dst: victim, Delta: 1})
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatal(err)
	}

	edge2, err := dcsketch.NewTracker() // defaults match the server's default monitor config
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 400; i++ {
		edge2.Insert(0xd0000000+i, victim)
	}
	encoded, err := edge2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSketch(encoded); err != nil {
		t.Fatal(err)
	}

	top, err := c.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Dest != victim {
		t.Fatalf("daemon TopK = %+v", top)
	}
	if top[0].F < 640 || top[0].F > 960 {
		t.Fatalf("daemon estimate %d, want ~800 (both edges)", top[0].F)
	}
}
