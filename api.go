// Package dcsketch is a streaming library for robust, real-time detection of
// DDoS activity in large ISP networks, reproducing Ganguly, Garofalakis,
// Rastogi and Sabnani, "Streaming Algorithms for Robust, Real-Time Detection
// of DDoS Attacks" (ICDCS 2007).
//
// The core data structure is the Distinct-Count Sketch: a hash-based stream
// synopsis that tracks, in guaranteed small space and logarithmic time per
// update, the top-k destination IP addresses by *distinct-source frequency*
// — the number of distinct sources holding potentially-malicious (e.g.
// half-open TCP) connections to them. Unlike volume-based heavy-hitter
// detectors, the sketch handles deletions: when a connection is legitimized
// (the client completes the TCP handshake) it is removed from the synopsis,
// which is what lets a monitor distinguish a SYN-flood attack from a flash
// crowd of legitimate users.
//
// Two variants are provided. Sketch is the basic synopsis (§3-§4 of the
// paper): cheapest per update, with top-k queries that rescan the synopsis.
// Tracker is the tracking synopsis (§5): it additionally maintains the
// distinct sample incrementally so top-k queries cost O(k log k), making
// per-packet-rate continuous tracking practical.
//
// A minimal use:
//
//	sk, err := dcsketch.NewTracker(dcsketch.WithSeed(42))
//	if err != nil { ... }
//	sk.Insert(src, dst)  // SYN observed: half-open connection created
//	sk.Delete(src, dst)  // ACK observed: connection legitimized
//	for _, e := range sk.TopK(10) {
//		fmt.Printf("%s is half-open-contacted by ~%d distinct sources\n",
//			dcsketch.FormatIPv4(e.Dest), e.Count)
//	}
package dcsketch

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/trace"
)

// Estimate is one entry of a top-k answer: a destination IPv4 address (host
// byte order) and its estimated distinct-source frequency.
type Estimate struct {
	Dest  uint32
	Count int64
}

// FlowUpdate is one record of a batched submission: a signed net frequency
// change for the (Src, Dst) pair. Delta +1 records a potentially-malicious
// connection (Insert); -1 removes one (Delete).
type FlowUpdate struct {
	Src, Dst uint32
	Delta    int64
}

// appendKeyDeltas re-keys a public batch into the internal packed form.
func appendKeyDeltas(dst []dcs.KeyDelta, batch []FlowUpdate) []dcs.KeyDelta {
	for _, u := range batch {
		dst = append(dst, dcs.KeyDelta{Key: hashing.PairKey(u.Src, u.Dst), Delta: u.Delta})
	}
	return dst
}

// Option configures a sketch.
type Option func(*dcs.Config)

// WithTables sets r, the number of independent second-level hash tables per
// first-level bucket (default 3, the paper's setting). Larger r improves the
// probability that every sampled pair is recovered, at linear update cost.
func WithTables(r int) Option { return func(c *dcs.Config) { c.Tables = r } }

// WithBuckets sets s, the number of buckets per second-level hash table
// (default 128, the paper's setting). Larger s grows both the space and the
// distinct-sample size, tightening the frequency estimates.
func WithBuckets(s int) Option { return func(c *dcs.Config) { c.Buckets = s } }

// WithLevels sets the number of first-level hash buckets (default 64,
// covering the full 64-bit pair domain).
func WithLevels(l int) Option { return func(c *dcs.Config) { c.Levels = l } }

// WithSeed seeds every hash function in the sketch. Sketches must share a
// seed to be mergeable.
func WithSeed(seed uint64) Option { return func(c *dcs.Config) { c.Seed = seed } }

// WithEpsilon sets the accuracy parameter ε of the TRACKAPPROXTOPK
// guarantee (default 1/3).
func WithEpsilon(eps float64) Option { return func(c *dcs.Config) { c.Epsilon = eps } }

// WithSampleTarget overrides the estimator's stopping threshold (default s;
// the paper's pseudocode constant is available as (1+ε)·s/16 — see DESIGN.md
// for why the default is larger).
func WithSampleTarget(n int) Option { return func(c *dcs.Config) { c.SampleTarget = n } }

// WithoutFingerprint drops the checksum counter from the count signatures,
// reproducing the paper's structure byte-for-byte at a small risk of
// delete-induced false singletons.
func WithoutFingerprint() Option { return func(c *dcs.Config) { c.DisableFingerprint = true } }

func buildConfig(opts []Option) dcs.Config {
	var cfg dcs.Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Sketch is the basic Distinct-Count Sketch (paper §3-§4).
type Sketch struct {
	inner *dcs.Sketch
	// scratch is the re-keying buffer of UpdateBatch, reused across calls
	// under the sketch's single-goroutine contract.
	scratch []dcs.KeyDelta
}

// NewSketch builds an empty basic sketch.
func NewSketch(opts ...Option) (*Sketch, error) {
	inner, err := dcs.New(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Sketch{inner: inner}, nil
}

// Insert records a potentially-malicious connection from src to dst (e.g. an
// observed TCP SYN).
func (s *Sketch) Insert(src, dst uint32) { s.inner.Update(src, dst, 1) }

// Delete removes a previously recorded connection (e.g. the handshake
// completed, legitimizing it).
func (s *Sketch) Delete(src, dst uint32) { s.inner.Update(src, dst, -1) }

// Update applies a signed net frequency change for the (src, dst) pair.
func (s *Sketch) Update(src, dst uint32, delta int64) { s.inner.Update(src, dst, delta) }

// UpdateBatch applies a batch of flow updates through the sketch's batched
// kernel — the fast path when updates arrive in groups (decoded packet
// bursts, replayed traces): the per-call overhead is paid once per batch
// rather than once per record. Equivalent to calling Update for each record
// in order.
func (s *Sketch) UpdateBatch(batch []FlowUpdate) {
	if len(batch) == 0 {
		return
	}
	s.scratch = appendKeyDeltas(s.scratch[:0], batch)
	s.inner.UpdateBatch(s.scratch)
}

// TopK returns the approximate k destinations with the largest
// distinct-source frequencies, in descending order.
func (s *Sketch) TopK(k int) []Estimate { return convertEstimates(s.inner.TopK(k)) }

// Threshold returns every destination whose estimated frequency is at least
// tau.
func (s *Sketch) Threshold(tau int64) []Estimate { return convertEstimates(s.inner.Threshold(tau)) }

// DistinctPairs estimates the number of distinct (src, dst) pairs with
// positive net frequency in the stream.
func (s *Sketch) DistinctPairs() int64 { return s.inner.EstimateDistinctPairs() }

// Updates returns the number of stream updates processed.
func (s *Sketch) Updates() uint64 { return s.inner.Updates() }

// SizeBytes returns the synopsis memory footprint.
func (s *Sketch) SizeBytes() int { return s.inner.SizeBytes() }

// Merge folds other into s. Both sketches must have been built with
// identical options, including the seed; afterwards s summarizes the
// concatenation of both streams exactly.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("dcsketch: cannot merge nil sketch")
	}
	return s.inner.Merge(other.inner)
}

// Reset clears the sketch without reallocating.
func (s *Sketch) Reset() { s.inner.Reset() }

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) { return s.inner.MarshalBinary() }

// UnmarshalSketch decodes a basic sketch produced by MarshalBinary.
func UnmarshalSketch(data []byte) (*Sketch, error) {
	inner, err := dcs.UnmarshalBinary(data)
	if err != nil {
		return nil, err
	}
	return &Sketch{inner: inner}, nil
}

// Tracker is the Tracking Distinct-Count Sketch (paper §5): same stream
// semantics as Sketch, with O(k log k) continuous top-k queries.
type Tracker struct {
	inner *tdcs.Sketch
	// scratch is the re-keying buffer of UpdateBatch, reused across calls
	// under the sketch's single-goroutine contract.
	scratch []dcs.KeyDelta
}

// NewTracker builds an empty tracking sketch.
func NewTracker(opts ...Option) (*Tracker, error) {
	inner, err := tdcs.New(buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return &Tracker{inner: inner}, nil
}

// Insert records a potentially-malicious connection from src to dst.
func (t *Tracker) Insert(src, dst uint32) { t.inner.Update(src, dst, 1) }

// Delete removes a previously recorded connection.
func (t *Tracker) Delete(src, dst uint32) { t.inner.Update(src, dst, -1) }

// Update applies a signed net frequency change for the (src, dst) pair.
func (t *Tracker) Update(src, dst uint32, delta int64) { t.inner.Update(src, dst, delta) }

// UpdateBatch applies a batch of flow updates through the tracker's batched
// kernel, maintaining the incremental tracking state for every record.
// Equivalent to calling Update for each record in order.
func (t *Tracker) UpdateBatch(batch []FlowUpdate) {
	if len(batch) == 0 {
		return
	}
	t.scratch = appendKeyDeltas(t.scratch[:0], batch)
	t.inner.UpdateBatch(t.scratch)
}

// TopK returns the approximate top-k destinations in O(k log k).
func (t *Tracker) TopK(k int) []Estimate { return convertEstimates(t.inner.TopK(k)) }

// Threshold returns every destination whose estimated frequency is at least
// tau.
func (t *Tracker) Threshold(tau int64) []Estimate { return convertEstimates(t.inner.Threshold(tau)) }

// DistinctPairs estimates the number of distinct live pairs in the stream.
func (t *Tracker) DistinctPairs() int64 { return t.inner.EstimateDistinctPairs() }

// Updates returns the number of stream updates processed.
func (t *Tracker) Updates() uint64 { return t.inner.Updates() }

// SizeBytes returns the synopsis memory footprint including tracking state.
func (t *Tracker) SizeBytes() int { return t.inner.SizeBytes() }

// Merge folds other into t; both trackers must share identical options.
func (t *Tracker) Merge(other *Tracker) error {
	if other == nil {
		return fmt.Errorf("dcsketch: cannot merge nil tracker")
	}
	return t.inner.Merge(other.inner)
}

// Reset clears the tracker without reallocating the counter array.
func (t *Tracker) Reset() { t.inner.Reset() }

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Tracker) MarshalBinary() ([]byte, error) { return t.inner.MarshalBinary() }

// UnmarshalTracker decodes a tracker from a sketch encoding (basic and
// tracking sketches share the wire format; tracking state is rebuilt).
func UnmarshalTracker(data []byte) (*Tracker, error) {
	inner, err := tdcs.UnmarshalBinary(data)
	if err != nil {
		return nil, err
	}
	return &Tracker{inner: inner}, nil
}

func convertEstimates(in []dcs.Estimate) []Estimate {
	out := make([]Estimate, len(in))
	for i, e := range in {
		out[i] = Estimate{Dest: e.Dest, Count: e.F}
	}
	return out
}

// FormatIPv4 renders a host-byte-order IPv4 address in dotted-quad form.
func FormatIPv4(ip uint32) string { return trace.FormatIPv4(ip) }

// ParseIPv4 parses a dotted-quad IPv4 address into host byte order.
func ParseIPv4(s string) (uint32, error) { return trace.ParseIPv4(s) }
