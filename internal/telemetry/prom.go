package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family, then
// the family's series. Histograms expand into cumulative _bucket series with
// power-of-two "le" bounds plus _sum and _count. Scrape-time probes are
// invoked here, so this is the one place export cost is paid.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.snapshotEntries() {
		if e.family != lastFamily {
			lastFamily = e.family
			fmt.Fprintf(bw, "# HELP %s %s\n", e.family, escapeHelp(e.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.family, e.kind)
		}
		if e.kind == KindHistogram {
			writeHistogram(bw, e)
			continue
		}
		fmt.Fprintf(bw, "%s %s\n", e.name, formatValue(e.value()))
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets up to the
// highest occupied power-of-two bound, the mandatory +Inf bucket, _sum and
// _count.
func writeHistogram(w io.Writer, e *entry) {
	hs := e.hist.Snapshot()
	top := 0
	for i, n := range hs.Buckets {
		if n > 0 {
			top = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= top; i++ {
		cum += hs.Buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.family, labelBlock(e.labels, `le="`+strconv.FormatUint(BucketUpperBound(i), 10)+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", e.family, labelBlock(e.labels, `le="+Inf"`), hs.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", e.family, labelBlock(e.labels, ""), hs.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", e.family, labelBlock(e.labels, ""), hs.Count)
}

// labelBlock joins an entry's own labels with an extra pair into one
// rendered {…} block ("" when both are empty).
func labelBlock(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	}
	return "{" + labels + "," + extra + "}"
}

// formatValue renders a sample value. Integral values (the common case —
// every instrument is integer-backed) print without an exponent so the
// output stays greppable.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving WritePrometheus, for mounting at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ValidatePrometheusText parses a text-format exposition and returns the
// first structural violation: malformed comment lines, samples with invalid
// names or label blocks, unparseable values, samples of undeclared families,
// duplicate TYPE declarations, or histogram families whose samples are not
// _bucket/_sum/_count. It is the checker behind the CI telemetry smoke and
// the fuzz target for the encoder; it accepts any valid exposition, not just
// this package's output.
func ValidatePrometheusText(data []byte) error {
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := validateComment(text, types); err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			continue
		}
		if err := validateSample(text, types); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

// validateComment checks a # line: HELP/TYPE records are validated and TYPE
// declarations recorded; other comments pass through.
func validateComment(text string, types map[string]string) error {
	fields := strings.SplitN(text, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", text)
		}
	case "TYPE":
		if len(fields) < 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", text)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", fields[3], fields[2])
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		types[fields[2]] = fields[3]
	}
	return nil
}

// validateSample checks one sample line against the declared types.
func validateSample(text string, types map[string]string) error {
	// Split off the value (and optional timestamp) after the series. The
	// series may carry a label block whose quoted values legally contain
	// spaces and braces, so the end of the series is found with a quote-
	// aware scan, not the first space.
	end := seriesEnd(text)
	if end < 0 || end >= len(text) || text[end] != ' ' {
		return fmt.Errorf("missing value in %q", text)
	}
	series, rest := text[:end], strings.TrimSpace(text[end+1:])
	family, _, err := splitSeries(series)
	if err != nil {
		return err
	}
	valueField := strings.SplitN(rest, " ", 2)[0]
	if _, err := strconv.ParseFloat(valueField, 64); err != nil {
		return fmt.Errorf("bad value %q for %s", valueField, series)
	}
	// A sample may belong to its own family or, for histograms/summaries,
	// to a declared parent family via the _bucket/_sum/_count suffixes.
	if _, ok := types[family]; ok {
		if types[family] == "histogram" {
			return fmt.Errorf("histogram family %s has a direct sample", family)
		}
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		parent := strings.TrimSuffix(family, suffix)
		if parent == family {
			continue
		}
		if t, ok := types[parent]; ok && (t == "histogram" || t == "summary") {
			return nil
		}
	}
	return fmt.Errorf("sample %s has no declared family", series)
}

// seriesEnd returns the index just past a sample line's series part (metric
// name plus optional label block), or -1 when a label block never closes.
// Inside quoted label values, braces and spaces do not terminate the block
// and backslash escapes are honored.
func seriesEnd(text string) int {
	brace := -1
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case ' ':
			return i
		case '{':
			brace = i
		}
		if brace >= 0 {
			break
		}
	}
	if brace < 0 {
		return len(text)
	}
	inQuote := false
	for i := brace + 1; i < len(text); i++ {
		switch text[i] {
		case '"':
			inQuote = !inQuote
		case '\\':
			if inQuote {
				i++
			}
		case '}':
			if !inQuote {
				return i + 1
			}
		}
	}
	return -1
}
