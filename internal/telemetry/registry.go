package telemetry

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a registered series.
type Kind int

// Series kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered series: a live instrument or a scrape-time probe.
type entry struct {
	name   string // full series name, including an optional {label="v"} block
	family string // name up to the label block
	labels string // label block content without braces ("" when unlabeled)
	help   string
	kind   Kind

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() int64
}

// Registry holds a set of named series and renders them as Prometheus text,
// expvar, or a structured snapshot. Registration normally happens once at
// wiring time; instruments themselves are recorded into without touching the
// registry (or its lock) at all.
type Registry struct {
	// mu guards the registration state below. The record path never takes
	// it; only registration and export do.
	mu sync.Mutex
	// entries holds registrations in order. guarded by mu
	entries []*entry
	// byName indexes entries for duplicate detection. guarded by mu
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// CheckSeriesName validates a series name: a Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*) followed by an optional {label="value",...}
// block with valid label names and no unescaped '"', '\' or '\n' in values.
func CheckSeriesName(name string) error {
	_, _, err := splitSeries(name)
	return err
}

// splitSeries splits a series name into its family and label-block content.
func splitSeries(name string) (family, labels string, err error) {
	brace := strings.IndexByte(name, '{')
	family = name
	if brace >= 0 {
		family = name[:brace]
		rest := name[brace:]
		if !strings.HasSuffix(rest, "}") {
			return "", "", fmt.Errorf("telemetry: series %q: unterminated label block", name)
		}
		labels = rest[1 : len(rest)-1]
		if err := checkLabels(labels); err != nil {
			return "", "", fmt.Errorf("telemetry: series %q: %w", name, err)
		}
	}
	if !validMetricName(family) {
		return "", "", fmt.Errorf("telemetry: series %q: invalid metric name %q", name, family)
	}
	return family, labels, nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// checkLabels validates the content of a {…} block: comma-separated
// name="value" pairs. Values are quoted strings in which '"', '\' and
// newlines must be escaped (\", \\, \n); commas and braces inside quotes are
// legal. A trailing comma after the last pair is accepted, as in the
// exposition format. The parse is quote-aware, not a naive comma split.
func checkLabels(labels string) error {
	if labels == "" {
		return fmt.Errorf("empty label block")
	}
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", labels[i:])
		}
		name := labels[i : i+eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		n, err := scanQuoted(labels[i:])
		if err != nil {
			return fmt.Errorf("label %s: %w", name, err)
		}
		i += n
		if i == len(labels) {
			return nil
		}
		if labels[i] != ',' {
			return fmt.Errorf("expected ',' after label %s", name)
		}
		i++ // a trailing comma terminates the block legally
	}
	return nil
}

// scanQuoted parses one quoted label value at the start of s and returns its
// length in bytes, including both quotes.
func scanQuoted(s string) (int, error) {
	if len(s) == 0 || s[0] != '"' {
		return 0, fmt.Errorf("value not quoted")
	}
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return i + 1, nil
		case '\n':
			return 0, fmt.Errorf("raw newline in value")
		case '\\':
			if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != '"' && s[i+1] != 'n') {
				return 0, fmt.Errorf("bad escape in value")
			}
			i++
		}
		i++
	}
	return 0, fmt.Errorf("unterminated value")
}

// register validates and stores one entry, panicking on misuse (duplicate
// or malformed names, or a kind/help conflict within a family): registration
// is wiring-time code, and a bad series name is a programming error on the
// same footing as a bad expvar.Publish.
func (r *Registry) register(e *entry) {
	family, labels, err := splitSeries(e.name)
	if err != nil {
		panic(err.Error())
	}
	e.family, e.labels = family, labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[e.name]; dup {
		panic("telemetry: duplicate series " + e.name)
	}
	for _, prev := range r.entries {
		if prev.family == e.family && (prev.kind != e.kind || prev.help != e.help) {
			panic("telemetry: family " + e.family + " re-registered with a different kind or help")
		}
	}
	r.byName[e.name] = e
	r.entries = append(r.entries, e)
}

// Counter registers and returns a live counter series.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{name: name, help: help, kind: KindCounter, counter: c})
	return c
}

// Gauge registers and returns a live gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{name: name, help: help, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers and returns a live histogram series.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&entry{name: name, help: help, kind: KindHistogram, hist: h})
	return h
}

// CounterFunc registers a scrape-time counter probe: fn is called on every
// export and must be safe to call from any goroutine (it typically takes the
// owning layer's lock to read single-writer counters, e.g. dcs.QueryStats).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&entry{name: name, help: help, kind: KindCounter, counterFn: fn})
}

// GaugeFunc registers a scrape-time gauge probe; the same contract as
// CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&entry{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// Sample is one series in a Snapshot.
type Sample struct {
	// Name is the full series name, labels included.
	Name string
	// Kind is the series kind.
	Kind Kind
	// Value is the current value for counters and gauges (unused for
	// histograms).
	Value float64
	// Hist is the histogram state, non-nil only for histograms.
	Hist *HistogramSnapshot
}

// snapshotEntries returns the entries sorted for export: by family (so
// labeled series of one family are contiguous for the text format), then by
// registration order within the family.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	order := make(map[*entry]int, len(r.entries))
	for i, e := range r.entries {
		order[e] = i
	}
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return order[out[i]] < order[out[j]]
	})
	return out
}

// value reads an entry's current scalar value, invoking probes.
func (e *entry) value() float64 {
	switch {
	case e.counter != nil:
		return float64(e.counter.Load())
	case e.counterFn != nil:
		return float64(e.counterFn())
	case e.gauge != nil:
		return float64(e.gauge.Load())
	case e.gaugeFn != nil:
		return float64(e.gaugeFn())
	}
	return 0
}

// Snapshot reads every registered series, invoking scrape-time probes. This
// is the embedder API: everything the Prometheus endpoint exports, as data.
func (r *Registry) Snapshot() []Sample {
	entries := r.snapshotEntries()
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind}
		if e.kind == KindHistogram {
			hs := e.hist.Snapshot()
			s.Hist = &hs
		} else {
			s.Value = e.value()
		}
		out = append(out, s)
	}
	return out
}

// expvarValue renders the registry as a map for expvar.
func (r *Registry) expvarValue() any {
	out := make(map[string]any)
	for _, s := range r.Snapshot() {
		if s.Hist != nil {
			out[s.Name] = map[string]any{
				"count": s.Hist.Count,
				"sum":   s.Hist.Sum,
			}
			continue
		}
		out[s.Name] = s.Value
	}
	return out
}

// PublishExpvar publishes the registry's snapshot under the given expvar
// name (alongside the standard memstats/cmdline vars on /debug/vars). The
// expvar namespace is process-global and append-only, so a name that is
// already published — e.g. a daemon restarted in-process by a test — is
// left pointing at its first registry rather than panicking.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarValue() }))
}
