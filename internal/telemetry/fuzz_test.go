package telemetry

import (
	"strings"
	"testing"
)

// FuzzWritePrometheus drives the text encoder with arbitrary series names,
// help strings, and values. Any name CheckSeriesName accepts must render
// into an exposition that ValidatePrometheusText accepts — the encoder and
// the validator are fuzzed against each other.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("a_total", "help", uint64(1), int64(-2), uint64(3))
	f.Add(`fam{k="v"}`, "multi\nline \\ help", uint64(0), int64(0), ^uint64(0))
	f.Add(`fam{k="sp ace,}{"}`, "", uint64(9), int64(7), uint64(1024))
	f.Add("x:y_total", "h", uint64(1<<40), int64(-1<<40), uint64(1<<63))
	f.Fuzz(func(t *testing.T, name, help string, cv uint64, gv int64, hv uint64) {
		if err := CheckSeriesName(name); err != nil {
			return
		}
		family, _, _ := splitSeries(name)
		reg := NewRegistry()
		reg.Counter(name, help).Add(cv)
		// Distinct families for the other kinds; skip when the fuzzer's
		// family collides with a suffixed variant.
		gname, hname := family+"_g", family+"_h"
		reg.Gauge(gname, help).Set(gv)
		reg.Histogram(hname, help).Observe(hv)

		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := ValidatePrometheusText([]byte(sb.String())); err != nil {
			t.Fatalf("encoder output rejected by validator: %v\nname=%q help=%q\n%s", err, name, help, sb.String())
		}
	})
}

// FuzzValidatePrometheusText asserts the validator never panics on
// arbitrary input; it is fed raw scrapes in the CI smoke step.
func FuzzValidatePrometheusText(f *testing.F) {
	f.Add([]byte("# TYPE x counter\nx 1\n"))
	f.Add([]byte("# TYPE x histogram\nx_bucket{le=\"+Inf\"} 1\nx_sum 3\nx_count 1\n"))
	f.Add([]byte(`x{a="unterminated`))
	f.Add([]byte("#"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ValidatePrometheusText(data)
	})
}
