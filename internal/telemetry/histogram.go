package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistogramBuckets is the number of histogram buckets: one per power of two
// over the uint64 range. Bucket i counts observations v with bits.Len64(v)
// == i, i.e. bucket 0 holds v = 0 and bucket i (i >= 1) holds
// v ∈ [2^(i-1), 2^i). The inclusive upper bound of bucket i is therefore
// 2^i - 1, which is what the Prometheus exporter emits as "le".
const HistogramBuckets = 65

// Histogram is a lock-free power-of-two-bucket histogram for latency (or
// size) observations. The record path is one atomic add into a bucket plus
// one into the running sum — no locks, no allocation, no floating point.
// Readers reconstruct the count by summing the buckets, so the exported
// cumulative series is always internally consistent (monotone in le) even
// while recorders race with the scrape.
//
// The zero value is ready to use; histograms are normally obtained from
// Registry.Histogram so they are exported.
type Histogram struct {
	sum     atomic.Uint64
	_       [cacheLine - 8]byte
	buckets [HistogramBuckets]atomic.Uint64
}

// Observe records one observation.
//
//lint:allocfree
//lint:inline
func (h *Histogram) Observe(v uint64) {
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// HistogramSnapshot is a point-in-time read of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations (the sum of Buckets).
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
	// Buckets[i] is the (non-cumulative) count of observations in power-
	// of-two bucket i; see HistogramBuckets for the bucket boundaries.
	Buckets [HistogramBuckets]uint64
}

// BucketUpperBound returns the inclusive upper bound of bucket i, i.e.
// 2^i - 1 (bucket 0 holds only zero). The last bucket's bound is the full
// uint64 range.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Snapshot reads the histogram. Concurrent Observes may land between bucket
// reads; each bucket read is individually atomic and the snapshot's Count is
// derived from the buckets, which is the consistency monitoring needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}
