package telemetry

// This file defines the per-layer instrument bundles and their canonical
// series names, so the whole metric namespace is declared in one place.
//
// Naming convention (documented in DESIGN.md §10):
//
//	dcsketch_<layer>_<metric>[_<unit>][{label="v"}]
//
// Counters end in _total; durations are histograms in nanoseconds with an
// _ns suffix; sizes are histograms with no unit suffix. Layers register
// additional scrape-time probes (CounterFunc/GaugeFunc) for single-writer
// state read under their own locks — those names follow the same convention
// and are listed in the DESIGN.md inventory.

// MonitorMetrics is the live-instrument bundle for internal/monitor: the
// check counter and the check/query latency histograms. The alert lifecycle
// counters stay single-writer inside the monitor (under its mutex, beside
// the ring they describe) and are exported as scrape-time probes by the
// monitor's RegisterTelemetry, together with the sketch-health series.
type MonitorMetrics struct {
	// ChecksTotal counts calls to the periodic anomaly check.
	ChecksTotal *Counter
	// CheckLatency observes the wall time of one full check (query +
	// baseline update + alerting), in nanoseconds.
	CheckLatency *Histogram
	// QueryLatency observes the wall time of the top-k sketch query alone,
	// in nanoseconds.
	QueryLatency *Histogram
}

// NewMonitorMetrics registers the monitor bundle on reg.
func NewMonitorMetrics(reg *Registry) *MonitorMetrics {
	return &MonitorMetrics{
		ChecksTotal:  reg.Counter("dcsketch_monitor_checks_total", "Periodic anomaly checks run."),
		CheckLatency: reg.Histogram("dcsketch_monitor_check_latency_ns", "Wall time of one anomaly check in nanoseconds."),
		QueryLatency: reg.Histogram("dcsketch_monitor_query_latency_ns", "Wall time of the top-k sketch query in nanoseconds."),
	}
}

// PipelineMetrics is the live-instrument bundle for internal/pipeline:
// batch shape, fold cost, and the applied/served totals. Per-shard queue
// depth is registered separately as labeled GaugeFunc probes because the
// shard count is a runtime parameter.
type PipelineMetrics struct {
	// AppliedTotal counts updates applied into per-shard sketches.
	AppliedTotal *Counter
	// ServedTotal counts queries served from folded snapshots.
	ServedTotal *Counter
	// BatchSize observes the number of updates in each applied batch.
	BatchSize *Histogram
	// FoldsTotal counts cross-shard folds.
	FoldsTotal *Counter
	// FoldLatency observes the wall time of one cross-shard fold in
	// nanoseconds.
	FoldLatency *Histogram
}

// NewPipelineMetrics registers the pipeline bundle on reg.
func NewPipelineMetrics(reg *Registry) *PipelineMetrics {
	return &PipelineMetrics{
		AppliedTotal: reg.Counter("dcsketch_pipeline_applied_total", "Updates applied into per-shard sketches."),
		ServedTotal:  reg.Counter("dcsketch_pipeline_served_total", "Queries served from folded snapshots."),
		BatchSize:    reg.Histogram("dcsketch_pipeline_batch_size", "Updates per applied batch."),
		FoldsTotal:   reg.Counter("dcsketch_pipeline_folds_total", "Cross-shard folds performed."),
		FoldLatency:  reg.Histogram("dcsketch_pipeline_fold_latency_ns", "Wall time of one cross-shard fold in nanoseconds."),
	}
}

// ServerMetrics is the live-instrument bundle for internal/server. Frame and
// protocol-error counters stay single-writer inside the server (per message
// type, under its stats lock) and are exported as labeled CounterFunc probes
// by RegisterTelemetry; only the genuinely concurrent instruments live here.
type ServerMetrics struct {
	// QueryLatency observes the wall time of serving one top-k query frame
	// (decode + query + reply encode), in nanoseconds.
	QueryLatency *Histogram
}

// NewServerMetrics registers the server bundle on reg.
func NewServerMetrics(reg *Registry) *ServerMetrics {
	return &ServerMetrics{
		QueryLatency: reg.Histogram("dcsketch_server_query_latency_ns", "Wall time of serving one top-k query frame in nanoseconds."),
	}
}

// DetectorMetrics is the live-instrument bundle for the packet-path
// detector: per-packet and alarm counters recorded from the ingest path.
type DetectorMetrics struct {
	// PacketsTotal counts packets observed by the detector.
	PacketsTotal *Counter
	// CusumAlarmsTotal counts CUSUM threshold crossings (entering the
	// alarm state).
	CusumAlarmsTotal *Counter
}

// NewDetectorMetrics registers the detector bundle on reg.
func NewDetectorMetrics(reg *Registry) *DetectorMetrics {
	return &DetectorMetrics{
		PacketsTotal:     reg.Counter("dcsketch_detector_packets_total", "Packets observed by the detector."),
		CusumAlarmsTotal: reg.Counter("dcsketch_detector_cusum_alarms_total", "CUSUM threshold crossings."),
	}
}
