package telemetry

import (
	"runtime"
	"strings"
	"testing"
)

// TestRuntimeMetricsExport registers the self-profiling gauges and checks
// they render into the Prometheus text with plausible values.
func TestRuntimeMetricsExport(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // force at least one cycle so the GC series are non-trivial

	var found = map[string]bool{}
	for _, s := range reg.Snapshot() {
		found[s.Name] = true
		switch s.Name {
		case "dcsketch_runtime_heap_live_bytes":
			if s.Value <= 0 {
				t.Errorf("heap_live_bytes = %v, want > 0", s.Value)
			}
		case "dcsketch_runtime_goroutines":
			if s.Value < 1 {
				t.Errorf("goroutines = %v, want >= 1", s.Value)
			}
		case "dcsketch_runtime_gc_cycles_total":
			if s.Value < 1 {
				t.Errorf("gc_cycles_total = %v, want >= 1 after runtime.GC", s.Value)
			}
		case "dcsketch_runtime_gc_pause_max_ns", "dcsketch_runtime_sched_latency_max_ns":
			if s.Value < 0 {
				t.Errorf("%s = %v, want >= 0", s.Name, s.Value)
			}
		}
	}
	for _, name := range []string{
		"dcsketch_runtime_heap_live_bytes",
		"dcsketch_runtime_gc_cycles_total",
		"dcsketch_runtime_goroutines",
		"dcsketch_runtime_gc_pause_max_ns",
		"dcsketch_runtime_sched_latency_max_ns",
	} {
		if !found[name] {
			t.Errorf("series %s not registered", name)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dcsketch_runtime_heap_live_bytes") {
		t.Fatal("runtime series missing from Prometheus text")
	}
}
