package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("p_c_total", "a counter").Add(7)
	reg.Counter(`p_c_total{shard="1"}`, "a counter").Add(2)
	reg.Gauge("p_g", "a gauge").Set(-5)
	h := reg.Histogram("p_h_ns", "a histogram")
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(900)

	out := string(mustRender(t, reg))
	for _, want := range []string{
		"# HELP p_c_total a counter\n",
		"# TYPE p_c_total counter\n",
		"p_c_total 7\n",
		"p_c_total{shard=\"1\"} 2\n",
		"# TYPE p_g gauge\n",
		"p_g -5\n",
		"# TYPE p_h_ns histogram\n",
		"p_h_ns_bucket{le=\"0\"} 1\n",    // the zero observation
		"p_h_ns_bucket{le=\"3\"} 3\n",    // cumulative: 0,3,3
		"p_h_ns_bucket{le=\"1023\"} 4\n", // 900 lands in bucket 10
		"p_h_ns_bucket{le=\"+Inf\"} 4\n",
		"p_h_ns_sum 906\n",
		"p_h_ns_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with multiple series.
	if n := strings.Count(out, "# TYPE p_c_total "); n != 1 {
		t.Errorf("TYPE p_c_total appears %d times", n)
	}
	if err := ValidatePrometheusText([]byte(out)); err != nil {
		t.Fatalf("own output does not validate: %v\n%s", err, out)
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "line1\nline2 \\ tail")
	out := string(mustRender(t, reg))
	if !strings.Contains(out, `# HELP esc_total line1\nline2 \\ tail`+"\n") {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if err := ValidatePrometheusText([]byte(out)); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestHistogramCumulativeMonotone(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("mono_ns", "h")
	for v := uint64(1); v < 1<<20; v *= 3 {
		h.Observe(v)
	}
	out := string(mustRender(t, reg))
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "mono_ns_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("cumulative bucket decreased: %q after %d", line, last)
		}
		last = n
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hh_total", "h").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if err := ValidatePrometheusText(rec.Body.Bytes()); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(rec.Body.String(), "hh_total 1\n") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

func TestValidatePrometheusTextRejects(t *testing.T) {
	bad := []string{
		"no_type_declared 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx\n",
		"# TYPE x wat\n",
		"# HELP 9bad help\n",
		"# TYPE x counter\n# TYPE x counter\nx 1\n",
		"# TYPE x histogram\nx 1\n",                      // direct sample of a histogram family
		"# TYPE x counter\nx{a=\"unterminated} 1\n",      // label block never closes
		"# TYPE x counter\ny_bucket{le=\"+Inf\"} 1\n",    // _bucket of a non-histogram parent
		"# TYPE x histogram\nx_bucket{le=\"1\"} bogus\n", // bad value on a bucket line
	}
	for _, in := range bad {
		if err := ValidatePrometheusText([]byte(in)); err == nil {
			t.Errorf("ValidatePrometheusText(%q) = nil, want error", in)
		}
	}
	good := []string{
		"",
		"# just a comment\n",
		"#\n",
		"# TYPE x counter\n# HELP x h\nx 1\nx{a=\"v w,{}\"} 2e9\n",
		"# TYPE x histogram\nx_bucket{le=\"+Inf\"} 1\nx_sum 3\nx_count 1\n",
		"# TYPE x summary\nx_sum 3\nx_count 1\n",
		"# TYPE x gauge\nx 1 1700000000000\n", // optional timestamp
	}
	for _, in := range good {
		if err := ValidatePrometheusText([]byte(in)); err != nil {
			t.Errorf("ValidatePrometheusText(%q) = %v, want nil", in, err)
		}
	}
}

// TestHandlerContentTypeExact pins the exact exposition-format content type:
// Prometheus scrapers key the text-parser version off this header, so the
// charset parameter is part of the contract, not decoration.
func TestHandlerContentTypeExact(t *testing.T) {
	reg := NewRegistry()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if ct := rec.Header().Get("Content-Type"); ct != want {
		t.Fatalf("Content-Type = %q, want %q", ct, want)
	}
}
