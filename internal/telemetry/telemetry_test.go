package telemetry

import (
	"expvar"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {^uint64(0), 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	want := make(map[int]uint64)
	var sum uint64
	for _, c := range cases {
		want[c.bucket]++
		sum += c.v
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if h.Count() != s.Count {
		t.Fatalf("Count() = %d, want %d", h.Count(), s.Count)
	}
}

func TestBucketUpperBound(t *testing.T) {
	if BucketUpperBound(0) != 0 {
		t.Fatalf("bound(0) = %d", BucketUpperBound(0))
	}
	if BucketUpperBound(1) != 1 {
		t.Fatalf("bound(1) = %d", BucketUpperBound(1))
	}
	if BucketUpperBound(11) != 2047 {
		t.Fatalf("bound(11) = %d", BucketUpperBound(11))
	}
	if BucketUpperBound(64) != ^uint64(0) {
		t.Fatalf("bound(64) = %d", BucketUpperBound(64))
	}
	// Every observation must land in the bucket whose bound covers it.
	for i := 1; i < HistogramBuckets; i++ {
		lo, hi := BucketUpperBound(i-1)+1, BucketUpperBound(i)
		var h Histogram
		h.Observe(lo)
		h.Observe(hi)
		if h.Snapshot().Buckets[i] != 2 {
			t.Fatalf("bucket %d: bounds [%d,%d] not covered", i, lo, hi)
		}
	}
}

func TestCheckSeriesName(t *testing.T) {
	valid := []string{
		"a", "dcsketch_x_total", "x:y", `f{a="b"}`, `f{a="b",c="d"}`,
		`f{a="b",}`, `f{a="x,y"}`, `f{a="x}y"}`, `f{a="sp ace"}`, `f{a="q\"q"}`,
		`f{a="b\\c"}`, `f{a="n\nn"}`,
	}
	for _, name := range valid {
		if err := CheckSeriesName(name); err != nil {
			t.Errorf("CheckSeriesName(%q) = %v, want nil", name, err)
		}
	}
	invalid := []string{
		"", "9x", "a-b", "f{}", "f{a}", `f{a=b}`, `f{a="b"`, `f{1a="b"}`,
		`f{a="b"x="y"}`, `f{a="b`, `f{a="b\q"}`, "f{a=\"b\nc\"}", `{a="b"}`,
	}
	for _, name := range invalid {
		if err := CheckSeriesName(name); err == nil {
			t.Errorf("CheckSeriesName(%q) = nil, want error", name)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup_total", "h")
	mustPanic("duplicate", func() { reg.Counter("dup_total", "h") })
	mustPanic("bad name", func() { reg.Counter("9bad", "h") })
	mustPanic("family kind conflict", func() { reg.Gauge(`dup_total{a="b"}`, "h") })
	mustPanic("family help conflict", func() { reg.Counter(`dup_total{a="b"}`, "other help") })
	// Same family, same kind and help, different labels is the supported
	// multi-series shape.
	reg.Counter(`dup_total{a="b"}`, "h")
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "counter")
	g := reg.Gauge("g", "gauge")
	h := reg.Histogram("h_ns", "hist")
	reg.CounterFunc("cf_total", "probe", func() uint64 { return 11 })
	reg.GaugeFunc("gf", "probe", func() int64 { return -4 })
	c.Add(3)
	g.Set(9)
	h.Observe(100)
	h.Observe(200)

	got := map[string]Sample{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s
	}
	if len(got) != 5 {
		t.Fatalf("snapshot has %d series, want 5", len(got))
	}
	if got["c_total"].Value != 3 || got["c_total"].Kind != KindCounter {
		t.Errorf("c_total = %+v", got["c_total"])
	}
	if got["g"].Value != 9 {
		t.Errorf("g = %+v", got["g"])
	}
	if got["cf_total"].Value != 11 {
		t.Errorf("cf_total = %+v", got["cf_total"])
	}
	if got["gf"].Value != -4 {
		t.Errorf("gf = %+v", got["gf"])
	}
	hs := got["h_ns"].Hist
	if hs == nil || hs.Count != 2 || hs.Sum != 300 {
		t.Errorf("h_ns hist = %+v", hs)
	}
}

func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ev_c_total", "h").Add(5)
	reg.Histogram("ev_h_ns", "h").Observe(10)
	reg.PublishExpvar("telemetry_test")
	// Re-publishing (same or another registry) must not panic.
	reg.PublishExpvar("telemetry_test")
	NewRegistry().PublishExpvar("telemetry_test")

	v := expvar.Get("telemetry_test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	s := v.String()
	for _, want := range []string{`"ev_c_total":5`, `"ev_h_ns"`, `"count":1`, `"sum":10`} {
		if !strings.Contains(s, want) {
			t.Errorf("expvar output %q missing %q", s, want)
		}
	}
}

func TestMetricSets(t *testing.T) {
	// All four bundles must register on one registry without name
	// collisions, and every instrument must be non-nil.
	reg := NewRegistry()
	m := NewMonitorMetrics(reg)
	p := NewPipelineMetrics(reg)
	s := NewServerMetrics(reg)
	d := NewDetectorMetrics(reg)
	for name, ptr := range map[string]any{
		"monitor.ChecksTotal":   m.ChecksTotal,
		"monitor.CheckLatency":  m.CheckLatency,
		"monitor.QueryLatency":  m.QueryLatency,
		"pipeline.AppliedTotal": p.AppliedTotal,
		"pipeline.ServedTotal":  p.ServedTotal,
		"pipeline.BatchSize":    p.BatchSize,
		"pipeline.FoldsTotal":   p.FoldsTotal,
		"pipeline.FoldLatency":  p.FoldLatency,
		"server.QueryLatency":   s.QueryLatency,
		"detector.PacketsTotal": d.PacketsTotal,
		"detector.CusumAlarms":  d.CusumAlarmsTotal,
	} {
		switch v := ptr.(type) {
		case *Counter:
			if v == nil {
				t.Errorf("%s is nil", name)
			}
		case *Histogram:
			if v == nil {
				t.Errorf("%s is nil", name)
			}
		}
	}
	if err := ValidatePrometheusText(mustRender(t, reg)); err != nil {
		t.Fatalf("bundle exposition invalid: %v", err)
	}
}

func mustRender(t *testing.T, reg *Registry) []byte {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return []byte(sb.String())
}
