package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentRecordAndScrape hammers every instrument kind from many
// goroutines while other goroutines scrape, snapshot, and register — the
// contract is that recording never blocks on or races with export. Run
// under -race in CI.
func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("race_c_total", "h")
	g := reg.Gauge("race_g", "h")
	h := reg.Histogram("race_h_ns", "h")
	reg.CounterFunc("race_cf_total", "h", func() uint64 { return c.Load() })

	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				if err := ValidatePrometheusText([]byte(sb.String())); err != nil {
					t.Errorf("mid-load scrape invalid: %v", err)
					return
				}
				_ = reg.Snapshot()
			}
		}(r)
	}
	wg.Wait()

	if got := c.Load(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := h.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	if got := g.Load(); got != writers*iters {
		t.Fatalf("gauge = %d, want %d", got, writers*iters)
	}
}
