// Package telemetry is the repository's allocation-free instrumentation
// substrate: atomic counters, gauges, and power-of-two-bucket latency
// histograms that hot paths can record into without locks and without
// touching the allocator, plus a Registry that exports every registered
// instrument as Prometheus text (WritePrometheus), expvar (PublishExpvar),
// and a structured Snapshot for embedders.
//
// The monitor of the paper runs *inside* the network path (§2's distributed
// monitoring architecture): an operator needs to see sketch health — level
// occupancy, singleton decode failures, fold latency — live, not just the
// top-k answer. That observability must not cost the Table-2 constants the
// repository reproduces, so the substrate splits the world in two:
//
//   - The record path (Counter.Inc/Add, Gauge.Set/Add, Histogram.Observe)
//     is lock-free and allocation-free, proven by the //lint:allocfree
//     call-graph analyzer and ground-truthed by cmd/escapecheck against the
//     compiler's escape analysis. Instruments are cache-line padded so two
//     hot counters never false-share.
//
//   - The export path (WritePrometheus, Snapshot, scrape-time probe
//     functions registered with CounterFunc/GaugeFunc) may lock and
//     allocate freely; it runs at scrape cadence, not line rate.
//
// Single-writer structures (the dcs/tdcs sketches) do not pay even an
// uncontended atomic on their kernels: they keep plain counters owned by
// their single writer (dcs.QueryStats) and surface them through scrape-time
// probes taken under the owning layer's lock. The substrate's atomics are
// for genuinely concurrent recorders: pipeline workers, server connection
// handlers, the packet-path detector.
package telemetry

import "sync/atomic"

// cacheLine is the assumed cache-line size. Instruments pad their hot word
// out to this boundary so adjacent instruments in a metrics struct do not
// false-share under concurrent recording.
const cacheLine = 64

// Counter is a monotonically increasing cache-line-padded atomic counter.
// The zero value is ready to use, but counters are normally obtained from
// Registry.Counter so they are exported.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds 1.
//
//lint:allocfree
//lint:inline
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//lint:allocfree
//lint:inline
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
//
//lint:allocfree
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a cache-line-padded atomic gauge: a value that can go up and
// down (queue depths, live connections, last-observed levels).
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
//
//lint:allocfree
//lint:inline
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
//
//lint:allocfree
//lint:inline
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
//
//lint:allocfree
func (g *Gauge) Load() int64 { return g.v.Load() }
