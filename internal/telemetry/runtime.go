package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime self-profiling metric names. Everything the flight recorder and
// the benchmarks promise about latency is conditional on the Go runtime
// behaving — a GC pause or a scheduling stall shows up in batch timelines as
// unexplained gaps, so the daemon exports the runtime's own view of those
// hazards next to the application series.
const (
	runtimeHeapLive     = "/memory/classes/heap/objects:bytes"
	runtimeGCCycles     = "/gc/cycles/total:gc-cycles"
	runtimeGoroutines   = "/sched/goroutines:goroutines"
	runtimeGCPauses     = "/gc/pauses:seconds"
	runtimeSchedLatency = "/sched/latencies:seconds"
)

// runtimeSampler reads the runtime/metrics samples the registry probes need,
// coalescing all probe calls of one scrape into a single metrics.Read: the
// registry invokes each probe separately, but one Read covers them all and
// stays valid for the refresh window.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	index   map[string]int
	last    time.Time
	maxAge  time.Duration
}

func newRuntimeSampler(names []string, maxAge time.Duration) *runtimeSampler {
	s := &runtimeSampler{
		samples: make([]metrics.Sample, len(names)),
		index:   make(map[string]int, len(names)),
		maxAge:  maxAge,
	}
	for i, n := range names {
		s.samples[i].Name = n
		s.index[n] = i
	}
	metrics.Read(s.samples)
	s.last = time.Now()
	return s
}

// refreshLocked re-reads the samples when the cached view is stale.
func (s *runtimeSampler) refreshLocked() {
	if time.Since(s.last) > s.maxAge {
		metrics.Read(s.samples)
		s.last = time.Now()
	}
}

// uint64Value returns a scalar sample (0 if the runtime does not support it).
func (s *runtimeSampler) uint64Value(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	if v := s.samples[s.index[name]].Value; v.Kind() == metrics.KindUint64 {
		return v.Uint64()
	}
	return 0
}

// histMaxNS returns the upper edge, in nanoseconds, of the highest non-empty
// bucket of a duration histogram sample — a cheap "worst observed" summary
// that needs no histogram-shape agreement between runtime and registry. The
// +Inf upper edge of the last bucket falls back to its finite lower edge.
func (s *runtimeSampler) histMaxNS(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshLocked()
	v := s.samples[s.index[name]].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := v.Float64Histogram()
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = h.Buckets[i]
		}
		return int64(hi * 1e9)
	}
	return 0
}

// RegisterRuntimeMetrics registers the daemon's runtime self-profiling
// series on reg: live heap bytes, completed GC cycles, goroutine count, and
// worst-observed GC pause and goroutine scheduling latency. Probes sample
// runtime/metrics at scrape cadence through a shared cached reader, so a
// scrape costs one metrics.Read regardless of how many series it exports.
// Call at most once per registry.
func RegisterRuntimeMetrics(reg *Registry) {
	s := newRuntimeSampler([]string{
		runtimeHeapLive, runtimeGCCycles, runtimeGoroutines,
		runtimeGCPauses, runtimeSchedLatency,
	}, 250*time.Millisecond)

	reg.GaugeFunc("dcsketch_runtime_heap_live_bytes",
		"Bytes of live heap objects (runtime/metrics heap/objects).",
		func() int64 { return int64(s.uint64Value(runtimeHeapLive)) })
	reg.CounterFunc("dcsketch_runtime_gc_cycles_total",
		"Completed GC cycles.",
		func() uint64 { return s.uint64Value(runtimeGCCycles) })
	reg.GaugeFunc("dcsketch_runtime_goroutines",
		"Live goroutines.",
		func() int64 { return int64(s.uint64Value(runtimeGoroutines)) })
	reg.GaugeFunc("dcsketch_runtime_gc_pause_max_ns",
		"Upper edge of the highest observed stop-the-world GC pause bucket.",
		func() int64 { return s.histMaxNS(runtimeGCPauses) })
	reg.GaugeFunc("dcsketch_runtime_sched_latency_max_ns",
		"Upper edge of the highest observed goroutine scheduling latency bucket.",
		func() int64 { return s.histMaxNS(runtimeSchedLatency) })
}
