package experiment

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", 3)
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# demo", "a", "bb", "xyz", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "a,bb\n1,2.5\n") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestFig8SmallRun(t *testing.T) {
	points, err := Fig8(Fig8Params{
		Scale: 0.005,
		Skews: []float64{1.5, 2.5},
		Ks:    []int{1, 5, 10},
		Seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	byKey := make(map[[2]float64]Fig8Point)
	for _, p := range points {
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("recall out of range: %+v", p)
		}
		if p.RelErr < 0 {
			t.Fatalf("negative error: %+v", p)
		}
		byKey[[2]float64{p.Z, float64(p.K)}] = p
	}
	// Paper shape: top-1 recall is essentially perfect at high skew.
	if p := byKey[[2]float64{2.5, 1}]; p.Recall < 0.99 {
		t.Fatalf("z=2.5 k=1 recall = %v, want ~1", p.Recall)
	}
	// Paper shape: recall degrades with k much faster at extreme skew.
	if byKey[[2]float64{2.5, 10}].Recall > byKey[[2]float64{2.5, 1}].Recall {
		t.Fatal("recall must not improve with k at extreme skew")
	}
	ra, rb := Fig8Tables(points)
	if len(ra.Rows) != 6 || len(rb.Rows) != 6 {
		t.Fatal("figure tables incomplete")
	}
}

func TestFig9SmallRun(t *testing.T) {
	// 1 query per 50 updates: since the batched-kernel rework made the
	// basic rescan query ~9x cheaper, the seed's 1-per-400 frequency no
	// longer doubles the per-update cost; the paper's Fig 9 shape (basic
	// inflates with query frequency, tracking stays flat) is unchanged.
	points, err := Fig9(Fig9Params{
		Updates:    30_000,
		QueryFreqs: []float64{0, 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.BasicMicros <= 0 || p.TrackingMicros <= 0 {
			t.Fatalf("non-positive timing: %+v", p)
		}
	}
	// Paper shape (Fig 9): with frequent queries the Basic sketch's
	// per-update cost inflates sharply while Tracking stays roughly flat.
	quiet, busy := points[0], points[1]
	if busy.BasicMicros < 2*quiet.BasicMicros {
		t.Fatalf("basic sketch not slowed by queries: %v -> %v µs", quiet.BasicMicros, busy.BasicMicros)
	}
	if busy.TrackingMicros > 3*quiet.TrackingMicros+1 {
		t.Fatalf("tracking sketch degraded by queries: %v -> %v µs", quiet.TrackingMicros, busy.TrackingMicros)
	}
	if len(Fig9Table(points).Rows) != 2 {
		t.Fatal("fig9 table incomplete")
	}
}

func TestSpaceRun(t *testing.T) {
	rows, err := Space(SpaceParams{MeasuredU: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Paper numbers: at U=8e6 the model gives ~2.3 MB basic / 4.6 MB
	// tracking vs 96 MB brute force.
	r0 := rows[0]
	if r0.U != 8_000_000 || !r0.Analytic {
		t.Fatalf("row 0 = %+v", r0)
	}
	if r0.BasicBytes < 2_000_000 || r0.BasicBytes > 2_600_000 {
		t.Fatalf("paper-model basic bytes = %d, want ~2.3MB", r0.BasicBytes)
	}
	if r0.BruteForceBytes != 96_000_000 {
		t.Fatalf("brute force bytes = %d, want 96MB", r0.BruteForceBytes)
	}
	// At U=1e9 the gain is >= 3 orders of magnitude.
	r1 := rows[1]
	if gain := float64(r1.BruteForceBytes) / float64(r1.TrackingBytes); gain < 1000 {
		t.Fatalf("U=1e9 space gain = %v, want >= 1000x", gain)
	}
	// Measured row: the serialized sketch beats brute force already at
	// the measured U.
	r2 := rows[2]
	if r2.Analytic {
		t.Fatal("last row must be measured")
	}
	if r2.BasicBytes >= r2.BruteForceBytes {
		t.Fatalf("measured sketch %d B not smaller than brute force %d B", r2.BasicBytes, r2.BruteForceBytes)
	}
	if len(SpaceTable(rows).Rows) != 3 {
		t.Fatal("space table incomplete")
	}
}

func TestTable2SmallRun(t *testing.T) {
	rows, err := Table2(Table2Params{
		Updates: 20_000,
		Rs:      []int{1, 3},
		Ss:      []int{64, 512},
		Queries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 r-sweep + 2 s-sweep)", len(rows))
	}
	byRS := make(map[[2]int]Table2Row)
	for _, r := range rows {
		byRS[[2]int{r.R, r.S}] = r
	}
	// Shape: Basic query time grows with s; Tracking query stays cheap.
	bigS := byRS[[2]int{3, 512}]
	if bigS.BasicQueryUs < bigS.TrackingQueryUs {
		t.Fatalf("at s=512 basic query (%v µs) should dwarf tracking (%v µs)",
			bigS.BasicQueryUs, bigS.TrackingQueryUs)
	}
	if len(Table2Table(rows).Rows) != 4 {
		t.Fatal("table2 render incomplete")
	}
}

func TestThresholdRun(t *testing.T) {
	points, err := Threshold(ThresholdParams{Scale: 0.005, Seeds: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Precision < 0 || p.Precision > 1 || p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
	}
	// High thresholds isolate the unambiguous heavy hitters: near-perfect.
	if points[0].Precision < 0.9 || points[0].Recall < 0.9 {
		t.Fatalf("tau=0.5*top1 precision/recall = %v/%v, want ~1", points[0].Precision, points[0].Recall)
	}
	if len(ThresholdTable(points).Rows) != 4 {
		t.Fatal("threshold table incomplete")
	}
}

func TestLatencyRun(t *testing.T) {
	points, err := Latency(LatencyParams{
		ZombieCounts:          []int{400, 1600},
		BackgroundConnections: 4000,
		Seed:                  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if !p.Detected {
			t.Fatalf("attack of %d zombies undetected", p.Zombies)
		}
		if p.AttackFractionSeen <= 0 || p.AttackFractionSeen > 1 {
			t.Fatalf("fraction out of range: %+v", p)
		}
	}
	// A bigger attack crosses the alert floor after a smaller fraction of
	// itself has been delivered.
	if points[1].AttackFractionSeen > points[0].AttackFractionSeen {
		t.Fatalf("larger attack detected later: %+v vs %+v", points[1], points[0])
	}
	if len(LatencyTable(points).Rows) != 2 {
		t.Fatal("latency table incomplete")
	}
}

func TestDeploymentRun(t *testing.T) {
	rows, err := Deployment(DeploymentParams{Spokes: 3, Zombies: 600, BackgroundPerSpoke: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 3 spokes + hub + collector
		t.Fatalf("got %d rows", len(rows))
	}
	byWhere := make(map[string]DeploymentRow, len(rows))
	for _, r := range rows {
		byWhere[r.Where] = r
	}
	// Spoke 2 ingests only its round-robin slice (~1/3). Spoke 1 is the
	// victim's egress, so every slice converges there (~1). The hub
	// transits the inter-spoke fraction; the collector recovers the full
	// count without transit double-counting (set semantics).
	if s := byWhere["spoke 2"].Share; s < 0.15 || s > 0.55 {
		t.Fatalf("spoke 2 share = %v, want ~1/3", s)
	}
	if s := byWhere["spoke 1"].Share; s < 0.6 {
		t.Fatalf("victim-egress spoke share = %v, want ~1", s)
	}
	if h := byWhere["hub"].Share; h < 0.35 || h > 1.2 {
		t.Fatalf("hub share = %v, want the inter-spoke fraction", h)
	}
	if c := byWhere["collector"].Share; c < 0.7 || c > 1.2 {
		t.Fatalf("collector share = %v, want ~1 (set semantics, no double count)", c)
	}
	if byWhere["collector"].Share < byWhere["spoke 2"].Share {
		t.Fatal("collector must dominate any single slice view")
	}
	if len(DeploymentTable(rows).Rows) != 5 {
		t.Fatal("deployment table incomplete")
	}
}

func TestScenarioRun(t *testing.T) {
	res, err := Scenario(ScenarioParams{
		Zombies:               800,
		CrowdClients:          1600,
		BackgroundConnections: 4000,
		Seed:                  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctTop1 != ScenarioVictim {
		t.Fatalf("distinct-count top-1 = %x, want the victim", res.DistinctTop1)
	}
	if res.VolumeTop1 != ScenarioCrowd {
		t.Fatalf("volume top-1 = %x, want the crowd server (the baseline's failure mode)", res.VolumeTop1)
	}
	if !res.VictimAlerted {
		t.Fatal("victim never alerted")
	}
	if res.CrowdStillAlerting {
		t.Fatal("crowd still alerting after completion")
	}
	if res.CrowdResidualF > res.DistinctTop1F/4 {
		t.Fatalf("crowd residual %d not far below attack %d", res.CrowdResidualF, res.DistinctTop1F)
	}
	if got := len(ScenarioTable(res).Rows); got != 9 {
		t.Fatalf("scenario table has %d rows", got)
	}
}

func TestAblations(t *testing.T) {
	p := AblationParams{Scale: 0.005, Seed: 2}
	st, err := AblateSampleTarget(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("sample-target ablation rows = %d", len(st))
	}
	// The larger default target must not hurt recall, and generally
	// helps on mid-skew workloads.
	if st[1].Recall < st[0].Recall-0.05 {
		t.Fatalf("default target recall %v worse than paper constant %v", st[1].Recall, st[0].Recall)
	}

	fp, err := AblateFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 2 || !fp[0].Fingerprint || fp[1].Fingerprint {
		t.Fatalf("fingerprint ablation rows = %+v", fp)
	}
	if fp[0].PhantomSamples != 0 {
		t.Fatalf("fingerprint-verified sample contains %d phantoms", fp[0].PhantomSamples)
	}
	if fp[0].SketchBytes <= fp[1].SketchBytes {
		t.Fatal("fingerprint layout must cost extra space")
	}

	rec, err := AblateRecovery(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 10 {
		t.Fatalf("recovery ablation rows = %d", len(rec))
	}
	byKey := make(map[string]RecoveryAblation, len(rec))
	for _, r := range rec {
		byKey[fmt.Sprintf("%s/%d", r.Regime, r.R)] = r
	}
	// Lemma 4.1's shape: in the light regime recovery is near-total at
	// r >= 3 and improves with r; saturation caps it well below 1.
	if got := byKey["light/3"].Rate; got < 0.9 {
		t.Fatalf("light regime r=3 recovery = %v, want > 0.9", got)
	}
	if byKey["light/6"].Rate < byKey["light/1"].Rate {
		t.Fatal("light-regime recovery must improve with r")
	}
	if byKey["saturated/3"].Rate > byKey["light/3"].Rate {
		t.Fatal("saturated regime cannot beat the light regime")
	}

	if got := len(AblationTables(st, fp, rec)); got != 3 {
		t.Fatalf("AblationTables returned %d tables", got)
	}

	est, err := AblateEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 2 {
		t.Fatalf("estimator ablation rows = %d", len(est))
	}
	for _, r := range est {
		if r.Recall < 0 || r.Recall > 1 || r.RelErr < 0 {
			t.Fatalf("estimator ablation out of range: %+v", r)
		}
	}
	// The corrected estimator must stay in the same accuracy class as the
	// baseline (the measured result is a wash; see EXPERIMENTS.md).
	if est[1].RelErr > 2*est[0].RelErr+0.1 {
		t.Fatalf("corrected estimator degraded: %+v vs %+v", est[1], est[0])
	}
	if got := len(EstimatorTable(est).Rows); got != 2 {
		t.Fatalf("estimator table rows = %d", got)
	}
}
