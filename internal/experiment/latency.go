package experiment

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/stream"
)

// LatencyParams configures the detection-latency experiment: how far into a
// developing attack the monitor raises its alert, as the attack size varies
// relative to a fixed background. This quantifies the "real-time" claim —
// the paper's architecture is motivated by reacting *during* the attack, so
// the interesting number is the fraction of the attack already delivered
// when the alert fires.
type LatencyParams struct {
	// ZombieCounts lists attack sizes to sweep.
	ZombieCounts []int
	// BackgroundConnections is the constant legitimate load mixed in.
	BackgroundConnections int
	// CheckInterval is the monitor's tracking-check period in updates.
	CheckInterval int
	// MinFrequency is the alert floor.
	MinFrequency int64
	// Seed decorrelates the run.
	Seed uint64
}

func (p LatencyParams) withDefaults() LatencyParams {
	if len(p.ZombieCounts) == 0 {
		p.ZombieCounts = []int{500, 1000, 2000, 4000}
	}
	if p.BackgroundConnections == 0 {
		p.BackgroundConnections = 20000
	}
	if p.CheckInterval == 0 {
		p.CheckInterval = 1000
	}
	if p.MinFrequency == 0 {
		p.MinFrequency = 100
	}
	return p
}

// LatencyPoint is one attack-size sample.
type LatencyPoint struct {
	Zombies int
	// Detected reports whether an alert fired at all.
	Detected bool
	// AlertAtUpdate is the stream position of the first victim alert.
	AlertAtUpdate uint64
	// AttackFractionSeen is the share of attack updates already
	// delivered when the alert fired (lower = earlier detection).
	AttackFractionSeen float64
	// EstimateAtAlert is the estimated frequency reported by the alert.
	EstimateAtAlert int64
}

// Latency runs the sweep.
func Latency(p LatencyParams) ([]LatencyPoint, error) {
	p = p.withDefaults()
	out := make([]LatencyPoint, 0, len(p.ZombieCounts))
	for _, zombies := range p.ZombieCounts {
		attack, err := (stream.SYNFlood{Victim: ScenarioVictim, Zombies: zombies, Seed: p.Seed + 61}).Updates()
		if err != nil {
			return nil, fmt.Errorf("experiment: latency attack: %w", err)
		}
		background, err := (stream.Background{
			Connections:  p.BackgroundConnections,
			Sources:      p.BackgroundConnections / 4,
			Destinations: 200,
			Seed:         p.Seed + 62,
		}).Updates()
		if err != nil {
			return nil, fmt.Errorf("experiment: latency background: %w", err)
		}
		mixed := stream.Interleave(p.Seed+63, attack, background)

		var firstAlert *monitor.Alert
		mon, err := monitor.New(monitor.Config{
			Sketch:        dcs.Config{Buckets: 256, Seed: p.Seed + 64},
			CheckInterval: p.CheckInterval,
			MinFrequency:  p.MinFrequency,
		}, func(a monitor.Alert) {
			if firstAlert == nil && a.Dest == ScenarioVictim {
				alert := a
				firstAlert = &alert
			}
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: latency monitor: %w", err)
		}

		attackSeen, attackSeenAtAlert := 0, 0
		for _, u := range mixed {
			if u.Dst == ScenarioVictim {
				attackSeen++
			}
			mon.Update(u.Src, u.Dst, int64(u.Delta))
			if firstAlert != nil && attackSeenAtAlert == 0 {
				attackSeenAtAlert = attackSeen
			}
		}

		pt := LatencyPoint{Zombies: zombies}
		if firstAlert != nil {
			pt.Detected = true
			pt.AlertAtUpdate = firstAlert.AtUpdate
			pt.AttackFractionSeen = float64(attackSeenAtAlert) / float64(len(attack))
			pt.EstimateAtAlert = firstAlert.Estimated
		}
		out = append(out, pt)
	}
	return out, nil
}

// LatencyTable renders the sweep.
func LatencyTable(points []LatencyPoint) *Table {
	t := &Table{
		Title: "Detection latency: first victim alert vs attack size",
		Headers: []string{
			"zombies", "detected", "alert_at_update", "attack_fraction_seen", "estimate_at_alert",
		},
	}
	for _, p := range points {
		t.AddRow(p.Zombies, p.Detected, p.AlertAtUpdate, p.AttackFractionSeen, p.EstimateAtAlert)
	}
	return t
}
