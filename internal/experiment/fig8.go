package experiment

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/metrics"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// Fig8Params configures the top-k accuracy experiment behind Figures 8(a)
// and 8(b): recall and average relative error vs k for several Zipf skews.
// The paper's setting is U = 8·10^6, d = 5·10^4, r = 3, s = 128, skews
// {1.0, 1.5, 2.0, 2.5}, k up to 15, averaged over 5 random seeds.
type Fig8Params struct {
	// Scale shrinks the paper's U and d proportionally (1.0 = paper
	// scale; the default 0.02 runs in seconds on a laptop while keeping
	// U/d, and therefore the estimation regime, unchanged).
	Scale float64
	// Skews lists the Zipf z values to sweep.
	Skews []float64
	// Ks lists the top-k sizes to evaluate.
	Ks []int
	// Seeds is the number of independent runs averaged per point.
	Seeds int
	// Tables and Buckets are the sketch's r and s.
	Tables, Buckets int
	// BaseSeed decorrelates the whole experiment.
	BaseSeed uint64
}

func (p Fig8Params) withDefaults() Fig8Params {
	if p.Scale == 0 {
		p.Scale = 0.02
	}
	if len(p.Skews) == 0 {
		p.Skews = []float64{1.0, 1.5, 2.0, 2.5}
	}
	if len(p.Ks) == 0 {
		p.Ks = []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15}
	}
	if p.Seeds == 0 {
		p.Seeds = 5
	}
	if p.Tables == 0 {
		p.Tables = dcs.DefaultTables
	}
	if p.Buckets == 0 {
		p.Buckets = dcs.DefaultBuckets
	}
	return p
}

// Fig8Point is one (z, k) cell of the accuracy figures.
type Fig8Point struct {
	Z      float64
	K      int
	Recall float64 // Fig 8(a)
	RelErr float64 // Fig 8(b)
}

// Fig8 runs the accuracy sweep and returns one point per (skew, k),
// averaged over seeds.
func Fig8(p Fig8Params) ([]Fig8Point, error) {
	p = p.withDefaults()
	var out []Fig8Point
	for _, z := range p.Skews {
		recalls := make(map[int][]float64, len(p.Ks))
		errs := make(map[int][]float64, len(p.Ks))
		for seed := 0; seed < p.Seeds; seed++ {
			w, err := workload.Generate(workload.PaperDefaults(p.Scale, z, p.BaseSeed+uint64(seed)*7919))
			if err != nil {
				return nil, fmt.Errorf("experiment: fig8 workload z=%v: %w", z, err)
			}
			sk, err := tdcs.New(dcs.Config{
				Tables:  p.Tables,
				Buckets: p.Buckets,
				Seed:    p.BaseSeed + uint64(seed)*104729 + 13,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: fig8 sketch: %w", err)
			}
			for _, u := range w.Updates() {
				sk.Update(u.Src, u.Dst, int64(u.Delta))
			}
			maxK := 0
			for _, k := range p.Ks {
				if k > maxK {
					maxK = k
				}
			}
			approxAll := sk.TopK(maxK)
			for _, k := range p.Ks {
				approx := approxAll
				if k < len(approx) {
					approx = approx[:k]
				}
				truth := truthEstimates(w.TrueTopK(k))
				apx := make([]metrics.Estimate, len(approx))
				for i, e := range approx {
					apx[i] = metrics.Estimate{Dest: e.Dest, F: e.F}
				}
				recalls[k] = append(recalls[k], metrics.Recall(apx, truth))
				errs[k] = append(errs[k], metrics.AvgRelativeError(apx, truth))
			}
		}
		for _, k := range p.Ks {
			out = append(out, Fig8Point{
				Z:      z,
				K:      k,
				Recall: metrics.Mean(recalls[k]),
				RelErr: metrics.Mean(errs[k]),
			})
		}
	}
	return out, nil
}

func truthEstimates(in []workload.TruthEntry) []metrics.Estimate {
	out := make([]metrics.Estimate, len(in))
	for i, e := range in {
		out[i] = metrics.Estimate{Dest: e.Dest, F: e.F}
	}
	return out
}

// Fig8Tables renders the points as the two figures' data tables.
func Fig8Tables(points []Fig8Point) (recall, relErr *Table) {
	recall = &Table{
		Title:   "Fig 8(a): top-k recall vs k",
		Headers: []string{"z", "k", "recall"},
	}
	relErr = &Table{
		Title:   "Fig 8(b): average relative error in top-k frequencies vs k",
		Headers: []string{"z", "k", "avg_rel_error"},
	}
	for _, pt := range points {
		recall.AddRow(pt.Z, pt.K, pt.Recall)
		relErr.AddRow(pt.Z, pt.K, pt.RelErr)
	}
	return recall, relErr
}
