package experiment

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/dsample"
	"dcsketch/internal/monitor"
	"dcsketch/internal/stream"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/volume"
)

// ScenarioParams configures the robustness demonstration behind the paper's
// §1 argument: a spoofed SYN flood and a completing flash crowd run through
// (a) the distinct-count tracking sketch and (b) volume-based heavy hitters,
// showing that only the former separates attack from crowd.
type ScenarioParams struct {
	// Zombies is the number of distinct spoofed attack sources.
	Zombies int
	// CrowdClients is the number of legitimate flash-crowd clients.
	CrowdClients int
	// BackgroundConnections is the amount of ordinary traffic mixed in.
	BackgroundConnections int
	// Seed decorrelates the run.
	Seed uint64
}

func (p ScenarioParams) withDefaults() ScenarioParams {
	if p.Zombies == 0 {
		p.Zombies = 2000
	}
	if p.CrowdClients == 0 {
		p.CrowdClients = 4000
	}
	if p.BackgroundConnections == 0 {
		p.BackgroundConnections = 20000
	}
	return p
}

// Scenario addresses used in the result tables.
const (
	ScenarioVictim = 0xCB007107 // 203.0.113.7 — the SYN-flood victim
	ScenarioCrowd  = 0xC6336401 // 198.51.100.1 — the flash-crowd server
)

// ScenarioResult summarizes the discrimination outcome.
type ScenarioResult struct {
	// DistinctTop1 is the top destination by distinct-source frequency
	// after the full stream (attack + crowd + background, crowd
	// completed): the paper predicts the victim.
	DistinctTop1 uint32
	// DistinctTop1F is its estimated frequency.
	DistinctTop1F int64
	// VolumeTop1 is the top destination by packet volume: the crowd
	// (2 packets per client) outweighs the flood.
	VolumeTop1 uint32
	// VolumeTop1Packets is its estimated volume.
	VolumeTop1Packets int64
	// VictimAlerted reports whether the monitor flagged the victim.
	VictimAlerted bool
	// CrowdStillAlerting reports whether the monitor still flags the
	// crowd server at stream end (it must not).
	CrowdStillAlerting bool
	// CrowdResidualF is the crowd server's frequency estimate at end.
	CrowdResidualF int64
	// GibbonsVictimF is the victim estimate from a Gibbons distinct
	// sampler given the same space budget: the crowd's threshold raises
	// starve its post-crowd sample (package dsample), typically
	// inflating its error relative to the sketch.
	GibbonsVictimF int64
	// GibbonsKept and GibbonsLevel expose the sampler's end state.
	GibbonsKept, GibbonsLevel int
}

// Scenario runs the discrimination experiment.
func Scenario(p ScenarioParams) (*ScenarioResult, error) {
	p = p.withDefaults()
	attack, err := (stream.SYNFlood{Victim: ScenarioVictim, Zombies: p.Zombies, Seed: p.Seed + 1}).Updates()
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario attack: %w", err)
	}
	crowd, err := (stream.FlashCrowd{
		Dest: ScenarioCrowd, Clients: p.CrowdClients,
		CompletionRate: 1.0, CompletionLag: 16, Seed: p.Seed + 2,
	}).Updates()
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario crowd: %w", err)
	}
	background, err := (stream.Background{
		Connections:  p.BackgroundConnections,
		Sources:      p.BackgroundConnections / 4,
		Destinations: 200,
		Seed:         p.Seed + 3,
	}).Updates()
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario background: %w", err)
	}
	mixed := stream.Interleave(p.Seed+4, attack, crowd, background)

	sketchCfg := dcs.Config{Buckets: 256, Seed: p.Seed + 5}
	mon, err := monitor.New(monitor.Config{
		Sketch:        sketchCfg,
		CheckInterval: 2000,
		MinFrequency:  int64(p.Zombies) / 4,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario monitor: %w", err)
	}
	sk, err := tdcs.New(sketchCfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario sketch: %w", err)
	}
	vol := volume.NewHeavyHitters(4, 1024, 256, p.Seed+6)
	// The Gibbons sampler gets a pair budget comparable to the sketch's
	// distinct-sample capacity (r*s second-level buckets at one level).
	gib, err := dsample.New(3*256, p.Seed+7)
	if err != nil {
		return nil, fmt.Errorf("experiment: scenario sampler: %w", err)
	}
	for _, u := range mixed {
		mon.Update(u.Src, u.Dst, int64(u.Delta))
		sk.Update(u.Src, u.Dst, int64(u.Delta))
		vol.Update(u.Src, u.Dst, int64(u.Delta))
		gib.Update(u.Src, u.Dst, int64(u.Delta))
	}

	res := &ScenarioResult{}
	if top := sk.TopK(1); len(top) > 0 {
		res.DistinctTop1 = top[0].Dest
		res.DistinctTop1F = top[0].F
	}
	if top := vol.TopK(1); len(top) > 0 {
		res.VolumeTop1 = top[0].Dest
		res.VolumeTop1Packets = top[0].Volume
	}
	for _, a := range mon.Alerts() {
		if a.Dest == ScenarioVictim {
			res.VictimAlerted = true
		}
	}
	res.CrowdStillAlerting = mon.Alerting(ScenarioCrowd)
	for _, e := range sk.Threshold(1) {
		if e.Dest == ScenarioCrowd {
			res.CrowdResidualF = e.F
		}
	}
	for _, e := range gib.TopK(8) {
		if e.Dest == ScenarioVictim {
			res.GibbonsVictimF = e.F
		}
	}
	res.GibbonsKept = gib.Kept()
	res.GibbonsLevel = gib.Level()
	return res, nil
}

// ScenarioTable renders the result.
func ScenarioTable(r *ScenarioResult) *Table {
	t := &Table{
		Title:   "Robustness: SYN flood vs flash crowd (paper §1)",
		Headers: []string{"metric", "value"},
	}
	name := func(ip uint32) string {
		switch ip {
		case ScenarioVictim:
			return "victim"
		case ScenarioCrowd:
			return "crowd-server"
		default:
			return fmt.Sprintf("other(0x%08x)", ip)
		}
	}
	t.AddRow("distinct-count top-1", name(r.DistinctTop1))
	t.AddRow("distinct-count top-1 frequency", r.DistinctTop1F)
	t.AddRow("volume top-1", name(r.VolumeTop1))
	t.AddRow("volume top-1 packets", r.VolumeTop1Packets)
	t.AddRow("victim alerted", r.VictimAlerted)
	t.AddRow("crowd still alerting at end", r.CrowdStillAlerting)
	t.AddRow("crowd residual frequency", r.CrowdResidualF)
	t.AddRow("gibbons-sampler victim estimate", r.GibbonsVictimF)
	t.AddRow("gibbons-sampler kept/level", fmt.Sprintf("%d @ level %d", r.GibbonsKept, r.GibbonsLevel))
	return t
}
