package experiment

import (
	"fmt"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// Table2Params configures the empirical check of the paper's Table 2
// asymptotics: Basic vs Tracking update and query costs as r, s and k vary.
// The predicted shapes are
//
//	update:  Basic O(r·log m)        Tracking O(r·log² m)
//	query:   Basic O(r·s·log² m)     Tracking O(k·log m)
//
// i.e. Basic queries grow linearly in s while Tracking queries do not, and
// both updates grow linearly in r.
type Table2Params struct {
	// Updates is the stream length driven per configuration.
	Updates int
	// Rs and Ss list the r and s values swept (r swept at default s, s
	// swept at default r).
	Rs, Ss []int
	// K is the top-k size used for query timing.
	K int
	// Queries is how many timed queries are averaged per configuration.
	Queries int
	// Seed decorrelates the run.
	Seed uint64
}

func (p Table2Params) withDefaults() Table2Params {
	if p.Updates == 0 {
		p.Updates = 100_000
	}
	if len(p.Rs) == 0 {
		p.Rs = []int{1, 2, 3, 4, 6}
	}
	if len(p.Ss) == 0 {
		p.Ss = []int{64, 128, 256, 512}
	}
	if p.K == 0 {
		p.K = 10
	}
	if p.Queries == 0 {
		p.Queries = 50
	}
	return p
}

// Table2Row is one swept configuration with measured costs.
type Table2Row struct {
	R, S             int
	BasicUpdateNs    float64
	TrackingUpdateNs float64
	BasicQueryUs     float64
	TrackingQueryUs  float64
}

// Table2 sweeps r (at the default s) and s (at the default r) and measures
// per-update and per-query times for both sketch variants.
func Table2(p Table2Params) ([]Table2Row, error) {
	p = p.withDefaults()
	w, err := workload.Generate(workload.Config{
		DistinctPairs: int64(p.Updates),
		Destinations:  maxInt(p.Updates/160, 1),
		Skew:          1.0,
		Seed:          p.Seed + 5,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: table2 workload: %w", err)
	}
	ups := w.Updates()

	var rows []Table2Row
	seen := make(map[[2]int]bool)
	measure := func(r, s int) error {
		if seen[[2]int{r, s}] {
			return nil
		}
		seen[[2]int{r, s}] = true
		cfg := dcs.Config{Tables: r, Buckets: s, Seed: p.Seed + 6}

		basic, err := dcs.New(cfg)
		if err != nil {
			return fmt.Errorf("experiment: table2 basic r=%d s=%d: %w", r, s, err)
		}
		start := time.Now()
		for _, u := range ups {
			basic.Update(u.Src, u.Dst, int64(u.Delta))
		}
		basicUpdate := float64(time.Since(start).Nanoseconds()) / float64(len(ups))

		tracking, err := tdcs.New(cfg)
		if err != nil {
			return fmt.Errorf("experiment: table2 tracking r=%d s=%d: %w", r, s, err)
		}
		start = time.Now()
		for _, u := range ups {
			tracking.Update(u.Src, u.Dst, int64(u.Delta))
		}
		trackingUpdate := float64(time.Since(start).Nanoseconds()) / float64(len(ups))

		start = time.Now()
		for q := 0; q < p.Queries; q++ {
			basic.TopK(p.K)
		}
		basicQuery := float64(time.Since(start).Microseconds()) / float64(p.Queries)

		start = time.Now()
		for q := 0; q < p.Queries; q++ {
			tracking.TopK(p.K)
		}
		trackingQuery := float64(time.Since(start).Microseconds()) / float64(p.Queries)

		rows = append(rows, Table2Row{
			R: r, S: s,
			BasicUpdateNs:    basicUpdate,
			TrackingUpdateNs: trackingUpdate,
			BasicQueryUs:     basicQuery,
			TrackingQueryUs:  trackingQuery,
		})
		return nil
	}

	for _, r := range p.Rs {
		if err := measure(r, dcs.DefaultBuckets); err != nil {
			return nil, err
		}
	}
	for _, s := range p.Ss {
		if err := measure(dcs.DefaultTables, s); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Table2Table renders the sweep.
func Table2Table(rows []Table2Row) *Table {
	t := &Table{
		Title: "Table 2 (empirical): Basic vs Tracking update/query costs",
		Headers: []string{
			"r", "s", "basic_update_ns", "tracking_update_ns",
			"basic_query_us", "tracking_query_us",
		},
	}
	for _, r := range rows {
		t.AddRow(r.R, r.S, r.BasicUpdateNs, r.TrackingUpdateNs, r.BasicQueryUs, r.TrackingQueryUs)
	}
	return t
}
