package experiment

import (
	"fmt"
	"math"

	"dcsketch/internal/dcs"
	"dcsketch/internal/exact"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// SpaceParams configures the §6.1 storage comparison: Distinct-Count Sketch
// synopses vs the naive per-pair scheme, at several U.
type SpaceParams struct {
	// AnalyticUs lists the pair counts for which the paper-model sizes
	// are computed (paper: 8·10^6 and 10^9).
	AnalyticUs []int64
	// MeasuredU is a laptop-scale U for which the actual Go footprints
	// are measured by generating a stream (default 200_000).
	MeasuredU int64
	// Tables and Buckets are the sketch's r and s.
	Tables, Buckets int
	// Seed decorrelates the measured run.
	Seed uint64
}

func (p SpaceParams) withDefaults() SpaceParams {
	if len(p.AnalyticUs) == 0 {
		p.AnalyticUs = []int64{8_000_000, 1_000_000_000}
	}
	if p.MeasuredU == 0 {
		p.MeasuredU = 200_000
	}
	if p.Tables == 0 {
		p.Tables = dcs.DefaultTables
	}
	if p.Buckets == 0 {
		p.Buckets = dcs.DefaultBuckets
	}
	return p
}

// SpaceRow is one line of the storage comparison.
type SpaceRow struct {
	// U is the distinct pair count.
	U int64
	// Analytic reports whether the row is the paper's closed-form model
	// (true) or a measurement of this implementation (false).
	Analytic bool
	// BasicBytes and TrackingBytes are the synopsis sizes; for measured
	// rows BasicBytes is the serialized (occupancy-reflecting) size and
	// RawBytes the in-memory counter array.
	BasicBytes, TrackingBytes int64
	// RawBytes is the preallocated in-memory counter array (measured
	// rows only; the implementation allocates all 64 levels up front).
	RawBytes int64
	// BruteForceBytes is the naive per-pair scheme (12 bytes per pair,
	// the paper's accounting).
	BruteForceBytes int64
}

// paperModelBytes is §6.1's arithmetic: non-empty levels ≈ log2(U), each
// holding r tables of s buckets of (2·log m + 1) = 65 4-byte counters.
func paperModelBytes(u int64, r, s int) int64 {
	levels := int64(math.Ceil(math.Log2(float64(u))))
	if levels < 1 {
		levels = 1
	}
	return levels * int64(r) * int64(s) * 65 * 4
}

// Space runs the storage comparison.
func Space(p SpaceParams) ([]SpaceRow, error) {
	p = p.withDefaults()
	out := make([]SpaceRow, 0, len(p.AnalyticUs)+1)
	for _, u := range p.AnalyticUs {
		basic := paperModelBytes(u, p.Tables, p.Buckets)
		out = append(out, SpaceRow{
			U:               u,
			Analytic:        true,
			BasicBytes:      basic,
			TrackingBytes:   2 * basic, // §6.1: "a factor of about two"
			BruteForceBytes: u * 12,
		})
	}

	// Measured row: drive a real stream and weigh the structures.
	w, err := workload.Generate(workload.Config{
		DistinctPairs: p.MeasuredU,
		Destinations:  maxInt(int(p.MeasuredU/160), 1),
		Skew:          1.0,
		Seed:          p.Seed + 3,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: space workload: %w", err)
	}
	tracking, err := tdcs.New(dcs.Config{Tables: p.Tables, Buckets: p.Buckets, Seed: p.Seed + 4})
	if err != nil {
		return nil, fmt.Errorf("experiment: space sketch: %w", err)
	}
	naive := exact.New()
	for _, u := range w.Updates() {
		tracking.Update(u.Src, u.Dst, int64(u.Delta))
		naive.Update(u.Src, u.Dst, int64(u.Delta))
	}
	encoded, err := tracking.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("experiment: space encode: %w", err)
	}
	out = append(out, SpaceRow{
		U:               p.MeasuredU,
		Analytic:        false,
		BasicBytes:      int64(len(encoded)),
		TrackingBytes:   int64(tracking.SizeBytes()),
		RawBytes:        int64(tracking.Base().SizeBytes()),
		BruteForceBytes: int64(naive.PaperSizeBytes()),
	})
	return out, nil
}

// SpaceTable renders the comparison.
func SpaceTable(rows []SpaceRow) *Table {
	t := &Table{
		Title: "Space: Distinct-Count Sketch vs brute force (paper §6.1)",
		Headers: []string{
			"U", "kind", "basic_bytes", "tracking_bytes", "raw_bytes", "brute_force_bytes", "gain",
		},
	}
	for _, r := range rows {
		kind := "measured"
		if r.Analytic {
			kind = "paper-model"
		}
		gain := float64(r.BruteForceBytes) / float64(r.TrackingBytes)
		t.AddRow(r.U, kind, r.BasicBytes, r.TrackingBytes, r.RawBytes, r.BruteForceBytes, gain)
	}
	return t
}
