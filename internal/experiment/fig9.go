package experiment

import (
	"fmt"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// Fig9Params configures the per-update processing-time experiment of
// Figure 9: a stream of flow updates with top-1 (max) queries mixed in at a
// varying frequency, comparing the Basic sketch (whose every query rescans
// the synopsis via BaseTopk) against the Tracking sketch (whose queries read
// the maintained heaps). The paper streams 4·10^6 updates and sweeps query
// frequency from 0 to 0.0025 (one query per 400 updates).
type Fig9Params struct {
	// Updates is the stream length (paper: 4·10^6; default 200_000).
	Updates int
	// QueryFreqs lists the query-per-update frequencies to sweep.
	QueryFreqs []float64
	// Tables and Buckets are the sketch's r and s.
	Tables, Buckets int
	// Seed decorrelates the run.
	Seed uint64
}

func (p Fig9Params) withDefaults() Fig9Params {
	if p.Updates == 0 {
		p.Updates = 200_000
	}
	if len(p.QueryFreqs) == 0 {
		p.QueryFreqs = []float64{0, 0.0003125, 0.000625, 0.00125, 0.0025}
	}
	if p.Tables == 0 {
		p.Tables = dcs.DefaultTables
	}
	if p.Buckets == 0 {
		p.Buckets = dcs.DefaultBuckets
	}
	return p
}

// Fig9Point is one query-frequency sample: average per-update processing
// time (update work plus amortized query work) for each sketch variant.
type Fig9Point struct {
	QueryFreq      float64
	BasicMicros    float64
	TrackingMicros float64
}

// Fig9 runs the processing-time sweep.
func Fig9(p Fig9Params) ([]Fig9Point, error) {
	p = p.withDefaults()
	// One workload reused across all frequencies so the comparison only
	// varies the query mix. d is scaled to keep the paper's U/d ratio.
	w, err := workload.Generate(workload.Config{
		DistinctPairs: int64(p.Updates),
		Destinations:  maxInt(p.Updates/160, 1),
		Skew:          1.0,
		Seed:          p.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: fig9 workload: %w", err)
	}
	ups := w.Updates()

	out := make([]Fig9Point, 0, len(p.QueryFreqs))
	for _, qf := range p.QueryFreqs {
		interval := 0
		if qf > 0 {
			interval = int(1 / qf)
		}

		basic, err := dcs.New(dcs.Config{Tables: p.Tables, Buckets: p.Buckets, Seed: p.Seed + 2})
		if err != nil {
			return nil, fmt.Errorf("experiment: fig9 basic sketch: %w", err)
		}
		start := time.Now()
		for i, u := range ups {
			basic.Update(u.Src, u.Dst, int64(u.Delta))
			if interval > 0 && (i+1)%interval == 0 {
				basic.TopK(1)
			}
		}
		basicMicros := float64(time.Since(start).Microseconds()) / float64(len(ups))

		tracking, err := tdcs.New(dcs.Config{Tables: p.Tables, Buckets: p.Buckets, Seed: p.Seed + 2})
		if err != nil {
			return nil, fmt.Errorf("experiment: fig9 tracking sketch: %w", err)
		}
		start = time.Now()
		for i, u := range ups {
			tracking.Update(u.Src, u.Dst, int64(u.Delta))
			if interval > 0 && (i+1)%interval == 0 {
				tracking.TopK(1)
			}
		}
		trackingMicros := float64(time.Since(start).Microseconds()) / float64(len(ups))

		out = append(out, Fig9Point{
			QueryFreq:      qf,
			BasicMicros:    basicMicros,
			TrackingMicros: trackingMicros,
		})
	}
	return out, nil
}

// Fig9Table renders the sweep.
func Fig9Table(points []Fig9Point) *Table {
	t := &Table{
		Title:   "Fig 9: per-update processing time (µs) vs top-1 query frequency",
		Headers: []string{"query_freq", "basic_us_per_update", "tracking_us_per_update"},
	}
	for _, pt := range points {
		t.AddRow(pt.QueryFreq, pt.BasicMicros, pt.TrackingMicros)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
