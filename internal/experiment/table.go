// Package experiment implements the harness that regenerates every table and
// figure of the paper's experimental study (§6), plus the ablations called
// out in DESIGN.md. Each experiment is a pure function from parameters to a
// result table, so the same code backs the cmd/experiments CLI and the
// repository's benchmark suite.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, column headers, and rows
// of pre-formatted cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("# ")
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (simple cells: no quoting needed for the
// numeric/identifier content these tables carry).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
