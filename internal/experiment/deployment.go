package experiment

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/netsim"
	"dcsketch/internal/stream"
)

// DeploymentParams configures the Fig. 1 deployment experiment: a
// star-topology ISP whose spokes each ingest a slice of a distributed
// attack, comparing what individual routers see against the collector's
// merged view — including the transit-duplication property (a flow observed
// by several on-path monitors still counts once, because the metric has set
// semantics).
type DeploymentParams struct {
	// Spokes is the number of edge routers around the hub.
	Spokes int
	// Zombies is the total distributed attack size.
	Zombies int
	// BackgroundPerSpoke is the legitimate (completing) load per edge.
	BackgroundPerSpoke int
	// Seed decorrelates the run.
	Seed uint64
}

func (p DeploymentParams) withDefaults() DeploymentParams {
	if p.Spokes == 0 {
		p.Spokes = 4
	}
	if p.Zombies == 0 {
		p.Zombies = 2000
	}
	if p.BackgroundPerSpoke == 0 {
		p.BackgroundPerSpoke = 4000
	}
	return p
}

// DeploymentRow is one observation point of the deployment experiment.
type DeploymentRow struct {
	// Where names the observation point ("spoke 2", "hub", "collector").
	Where string
	// VictimEstimate is that point's estimated distinct-source frequency
	// for the victim (0 if the victim is not in its top-1).
	VictimEstimate int64
	// Share is VictimEstimate over the true total attack size.
	Share float64
}

// Deployment runs the experiment. The victim's prefix is attached behind
// spoke 1, so every spoke's slice transits the hub.
func Deployment(p DeploymentParams) ([]DeploymentRow, error) {
	p = p.withDefaults()
	net, err := netsim.New(netsim.Star(p.Spokes), dcs.Config{Buckets: 256, Seed: p.Seed + 71})
	if err != nil {
		return nil, fmt.Errorf("experiment: deployment network: %w", err)
	}
	if err := net.AttachPrefix(ScenarioVictim, 1); err != nil {
		return nil, fmt.Errorf("experiment: deployment attach: %w", err)
	}

	// Distributed attack round-robined across spokes.
	for i := 0; i < p.Zombies; i++ {
		spoke := netsim.RouterID(i%p.Spokes + 1)
		u := stream.Update{Src: 0xc0000000 + uint32(i), Dst: ScenarioVictim, Delta: 1}
		if err := net.Inject(spoke, u); err != nil {
			return nil, fmt.Errorf("experiment: deployment inject: %w", err)
		}
	}
	// Per-spoke completing background (stays local to each spoke's own
	// prefix, which is unattached and therefore egresses at the hub side;
	// content is irrelevant — it exercises the monitors with noise).
	for s := 1; s <= p.Spokes; s++ {
		bg, err := (stream.Background{
			Connections:  p.BackgroundPerSpoke,
			Sources:      p.BackgroundPerSpoke / 4,
			Destinations: 50,
			Seed:         p.Seed + 72 + uint64(s),
		}).Updates()
		if err != nil {
			return nil, fmt.Errorf("experiment: deployment background: %w", err)
		}
		if err := net.InjectStream(netsim.RouterID(s), bg); err != nil {
			return nil, fmt.Errorf("experiment: deployment inject bg: %w", err)
		}
	}

	victimF := func(ests []dcs.Estimate) int64 {
		for _, e := range ests {
			if e.Dest == ScenarioVictim {
				return e.F
			}
		}
		return 0
	}
	total := float64(p.Zombies)
	rows := make([]DeploymentRow, 0, p.Spokes+2)
	for s := 1; s <= p.Spokes; s++ {
		f := victimF(net.Monitor(netsim.RouterID(s)).TopK(3))
		rows = append(rows, DeploymentRow{
			Where:          fmt.Sprintf("spoke %d", s),
			VictimEstimate: f,
			Share:          float64(f) / total,
		})
	}
	hubF := victimF(net.Monitor(0).TopK(3))
	rows = append(rows, DeploymentRow{Where: "hub", VictimEstimate: hubF, Share: float64(hubF) / total})
	colTop, err := net.CollectorTopK(3)
	if err != nil {
		return nil, fmt.Errorf("experiment: deployment collector: %w", err)
	}
	colF := victimF(colTop)
	rows = append(rows, DeploymentRow{Where: "collector", VictimEstimate: colF, Share: float64(colF) / total})
	return rows, nil
}

// DeploymentTable renders the experiment.
func DeploymentTable(rows []DeploymentRow) *Table {
	t := &Table{
		Title:   "Deployment (Fig. 1): per-router vs collector attack visibility",
		Headers: []string{"observation_point", "victim_estimate", "share_of_attack"},
	}
	for _, r := range rows {
		t.AddRow(r.Where, r.VictimEstimate, r.Share)
	}
	return t
}
