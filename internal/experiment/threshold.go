package experiment

import (
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/exact"
	"dcsketch/internal/metrics"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// ThresholdParams configures the footnote-3 experiment: the paper notes its
// techniques "easily extend to the problem of tracking all destinations v
// with f_v >= τ". This experiment sweeps τ and measures the precision and
// recall of the sketch's threshold query against exact ground truth, plus
// the frequency error over the reported set.
type ThresholdParams struct {
	// Scale shrinks the workload as in Fig8Params.
	Scale float64
	// Skew is the workload's Zipf parameter.
	Skew float64
	// TauFractions lists thresholds as fractions of the top-1 frequency.
	TauFractions []float64
	// Seeds is the number of runs averaged.
	Seeds int
	// Seed decorrelates the experiment.
	Seed uint64
}

func (p ThresholdParams) withDefaults() ThresholdParams {
	if p.Scale == 0 {
		p.Scale = 0.02
	}
	if p.Skew == 0 {
		p.Skew = 1.5
	}
	if len(p.TauFractions) == 0 {
		p.TauFractions = []float64{0.5, 0.25, 0.1, 0.05}
	}
	if p.Seeds == 0 {
		p.Seeds = 3
	}
	return p
}

// ThresholdPoint is one τ sample.
type ThresholdPoint struct {
	TauFraction float64
	Tau         int64
	// TrueCount is the number of destinations truly at or above τ.
	TrueCount float64
	// Precision is |reported ∩ true| / |reported|.
	Precision float64
	// Recall is |reported ∩ true| / |true|.
	Recall float64
	// RelErr is the mean relative frequency error over reported true
	// positives.
	RelErr float64
}

// Threshold runs the sweep.
func Threshold(p ThresholdParams) ([]ThresholdPoint, error) {
	p = p.withDefaults()
	acc := make([]ThresholdPoint, len(p.TauFractions))
	for i, f := range p.TauFractions {
		acc[i].TauFraction = f
	}

	for seed := uint64(0); seed < uint64(p.Seeds); seed++ {
		w, err := workload.Generate(workload.PaperDefaults(p.Scale, p.Skew, p.Seed+51+seed))
		if err != nil {
			return nil, fmt.Errorf("experiment: threshold workload: %w", err)
		}
		sk, err := tdcs.New(dcs.Config{Seed: p.Seed + 52 + seed})
		if err != nil {
			return nil, fmt.Errorf("experiment: threshold sketch: %w", err)
		}
		ex := exact.New()
		for _, u := range w.Updates() {
			sk.Update(u.Src, u.Dst, int64(u.Delta))
			ex.Update(u.Src, u.Dst, int64(u.Delta))
		}
		top1 := w.TrueTopK(1)[0].F

		for i, frac := range p.TauFractions {
			tau := int64(frac * float64(top1))
			if tau < 1 {
				tau = 1
			}
			truth := ex.Threshold(tau)
			trueSet := make(map[uint32]int64, len(truth))
			for _, e := range truth {
				trueSet[e.Key] = e.Priority
			}
			reported := sk.Threshold(tau)

			hits := 0
			var relErrs []float64
			for _, e := range reported {
				if f, ok := trueSet[e.Dest]; ok {
					hits++
					relErrs = append(relErrs, absFloat(float64(e.F-f))/float64(f))
				}
			}
			pt := &acc[i]
			pt.Tau += tau / int64(p.Seeds)
			pt.TrueCount += float64(len(truth)) / float64(p.Seeds)
			if len(reported) > 0 {
				pt.Precision += float64(hits) / float64(len(reported)) / float64(p.Seeds)
			} else if len(truth) == 0 {
				pt.Precision += 1.0 / float64(p.Seeds)
			}
			if len(truth) > 0 {
				pt.Recall += float64(hits) / float64(len(truth)) / float64(p.Seeds)
			} else {
				pt.Recall += 1.0 / float64(p.Seeds)
			}
			pt.RelErr += metrics.Mean(relErrs) / float64(p.Seeds)
		}
	}
	return acc, nil
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ThresholdTable renders the sweep.
func ThresholdTable(points []ThresholdPoint) *Table {
	t := &Table{
		Title:   "Threshold tracking (paper §2 fn. 3): all destinations with f_v >= τ",
		Headers: []string{"tau_fraction_of_top1", "tau", "true_count", "precision", "recall", "avg_rel_error"},
	}
	for _, p := range points {
		t.AddRow(p.TauFraction, p.Tau, p.TrueCount, p.Precision, p.Recall, p.RelErr)
	}
	return t
}
