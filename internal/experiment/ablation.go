package experiment

import (
	"fmt"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/metrics"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/workload"
)

// AblationParams configures the design-choice ablations DESIGN.md calls out:
//
//  1. the estimator's stopping threshold — the paper's pseudocode constant
//     (1+ε)·s/16 vs this implementation's default of s;
//  2. the fingerprint checksum counter — integrity and cost of singleton
//     decoding under delete-heavy churn with and without it;
//  3. the number of second-level tables r — singleton recovery rate at a
//     loaded level (the empirical face of Lemma 4.1).
type AblationParams struct {
	// Scale shrinks the accuracy workloads as in Fig8Params.
	Scale float64
	// Seed decorrelates the runs.
	Seed uint64
}

func (p AblationParams) withDefaults() AblationParams {
	if p.Scale == 0 {
		p.Scale = 0.02
	}
	return p
}

// SampleTargetAblation compares accuracy under the two stopping thresholds.
type SampleTargetAblation struct {
	Target  string
	K       int
	Recall  float64
	RelErr  float64
	QueryUs float64
}

// AblateSampleTarget runs the stopping-threshold comparison at k=10 on a
// z=1.5 workload.
func AblateSampleTarget(p AblationParams) ([]SampleTargetAblation, error) {
	p = p.withDefaults()
	w, err := workload.Generate(workload.PaperDefaults(p.Scale, 1.5, p.Seed+11))
	if err != nil {
		return nil, fmt.Errorf("experiment: sample-target workload: %w", err)
	}
	const k = 10
	truth := truthEstimates(w.TrueTopK(k))

	variants := []struct {
		name   string
		target int
	}{
		{"paper (1+eps)*s/16", dcs.PaperSampleTarget(dcs.DefaultBuckets, dcs.DefaultEpsilon)},
		{"default s", dcs.DefaultBuckets},
	}
	var out []SampleTargetAblation
	for _, v := range variants {
		sk, err := tdcs.New(dcs.Config{Seed: p.Seed + 12, SampleTarget: v.target})
		if err != nil {
			return nil, fmt.Errorf("experiment: sample-target sketch: %w", err)
		}
		for _, u := range w.Updates() {
			sk.Update(u.Src, u.Dst, int64(u.Delta))
		}
		start := time.Now()
		var approx []dcs.Estimate
		const reps = 50
		for i := 0; i < reps; i++ {
			approx = sk.TopK(k)
		}
		queryUs := float64(time.Since(start).Microseconds()) / reps
		apx := make([]metrics.Estimate, len(approx))
		for i, e := range approx {
			apx[i] = metrics.Estimate{Dest: e.Dest, F: e.F}
		}
		out = append(out, SampleTargetAblation{
			Target:  v.name,
			K:       k,
			Recall:  metrics.Recall(apx, truth),
			RelErr:  metrics.AvgRelativeError(apx, truth),
			QueryUs: queryUs,
		})
	}
	return out, nil
}

// FingerprintAblation reports integrity and cost with the checksum counter
// on and off.
type FingerprintAblation struct {
	Fingerprint bool
	// PhantomSamples counts sampled pair keys that were never live in the
	// stream (false singletons that survived verification).
	PhantomSamples int
	// UpdateNs is the measured per-update cost.
	UpdateNs float64
	// SketchBytes is the counter-array footprint.
	SketchBytes int
}

// AblateFingerprint drives a delete-heavy churn workload and audits the
// recovered samples against the true live set.
func AblateFingerprint(p AblationParams) ([]FingerprintAblation, error) {
	p = p.withDefaults()
	// Churn: keys from a small domain are inserted and deleted in waves,
	// maximizing transient mixed-bucket states.
	const (
		steps  = 120_000
		domain = 4000
	)
	var out []FingerprintAblation
	for _, fp := range []bool{true, false} {
		sk, err := tdcs.New(dcs.Config{Seed: p.Seed + 21, DisableFingerprint: !fp})
		if err != nil {
			return nil, fmt.Errorf("experiment: fingerprint sketch: %w", err)
		}
		rng := hashing.NewSplitMix64(p.Seed + 22)
		live := make(map[uint64]int)
		var liveKeys []uint64
		start := time.Now()
		for i := 0; i < steps; i++ {
			if len(liveKeys) > 0 && rng.Next()%5 < 2 {
				idx := int(rng.Next() % uint64(len(liveKeys)))
				key := liveKeys[idx]
				liveKeys[idx] = liveKeys[len(liveKeys)-1]
				liveKeys = liveKeys[:len(liveKeys)-1]
				if live[key]--; live[key] == 0 {
					delete(live, key)
				}
				sk.UpdateKey(key, -1)
			} else {
				key := hashing.Mix64(rng.Next() % domain)
				live[key]++
				liveKeys = append(liveKeys, key)
				sk.UpdateKey(key, 1)
			}
		}
		elapsed := time.Since(start)
		phantoms := 0
		for _, key := range sk.SampleKeys() {
			if live[key] == 0 {
				phantoms++
			}
		}
		out = append(out, FingerprintAblation{
			Fingerprint:    fp,
			PhantomSamples: phantoms,
			UpdateNs:       float64(elapsed.Nanoseconds()) / steps,
			SketchBytes:    sk.Base().SizeBytes(),
		})
	}
	return out, nil
}

// RecoveryAblation reports the singleton recovery rate at a loaded level as
// r varies (Lemma 4.1: with r = Θ(log(n/δ)) tables, all elements of a level
// holding <= s/2 pairs are recovered w.h.p.).
type RecoveryAblation struct {
	R int
	// Regime names the load: "light" keeps every level within the
	// Lemma 4.1 bound (<= s/2 pairs), "saturated" overloads the low
	// levels several-fold.
	Regime string
	// LoadedPairs is the number of distinct pairs driven into the sketch.
	LoadedPairs int
	// Recovered is the total distinct sample recovered across all levels
	// when the target is set to recover everything.
	Recovered int
	// Rate is Recovered / LoadedPairs.
	Rate float64
}

// AblateRecovery sweeps r and measures what fraction of a pair population
// the full level-by-level scan recovers, in both the lemma regime and a
// deliberately saturated one.
func AblateRecovery(p AblationParams) ([]RecoveryAblation, error) {
	p = p.withDefaults()
	regimes := []struct {
		name  string
		pairs int
	}{
		{"light", dcs.DefaultBuckets},         // level 0 holds ~s/2 pairs
		{"saturated", 5 * dcs.DefaultBuckets}, // level 0 holds ~2.5s pairs
	}
	var out []RecoveryAblation
	for _, reg := range regimes {
		for _, r := range []int{1, 2, 3, 4, 6} {
			sk, err := dcs.New(dcs.Config{
				Tables: r,
				Seed:   p.Seed + 31,
				// Force the sampling loop to descend every level.
				SampleTarget: reg.pairs * 10,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: recovery sketch: %w", err)
			}
			rng := hashing.NewSplitMix64(p.Seed + 32)
			for i := 0; i < reg.pairs; i++ {
				sk.UpdateKey(rng.Next(), 1)
			}
			sample, _ := sk.DistinctSample()
			out = append(out, RecoveryAblation{
				R:           r,
				Regime:      reg.name,
				LoadedPairs: reg.pairs,
				Recovered:   len(sample),
				Rate:        float64(len(sample)) / float64(reg.pairs),
			})
		}
	}
	return out, nil
}

// EstimatorAblation compares the baseline truncated estimator (BaseTopk)
// with the Horvitz-Thompson corrected extension (dcs.TopKCorrected).
type EstimatorAblation struct {
	Estimator string
	K         int
	Recall    float64
	RelErr    float64
}

// AblateEstimator runs the estimator comparison at k=10 over several seeds.
func AblateEstimator(p AblationParams) ([]EstimatorAblation, error) {
	p = p.withDefaults()
	const (
		k     = 10
		seeds = 3
	)
	sums := map[string]*EstimatorAblation{
		"baseline (BaseTopk)":        {Estimator: "baseline (BaseTopk)", K: k},
		"horvitz-thompson corrected": {Estimator: "horvitz-thompson corrected", K: k},
	}
	for seed := uint64(0); seed < seeds; seed++ {
		w, err := workload.Generate(workload.PaperDefaults(p.Scale, 1.2, p.Seed+41+seed))
		if err != nil {
			return nil, fmt.Errorf("experiment: estimator workload: %w", err)
		}
		sk, err := dcs.New(dcs.Config{Seed: p.Seed + 42 + seed})
		if err != nil {
			return nil, fmt.Errorf("experiment: estimator sketch: %w", err)
		}
		for _, u := range w.Updates() {
			sk.Update(u.Src, u.Dst, int64(u.Delta))
		}
		truth := truthEstimates(w.TrueTopK(k))
		score := func(name string, ests []dcs.Estimate) {
			apx := make([]metrics.Estimate, len(ests))
			for i, e := range ests {
				apx[i] = metrics.Estimate{Dest: e.Dest, F: e.F}
			}
			sums[name].Recall += metrics.Recall(apx, truth) / seeds
			sums[name].RelErr += metrics.AvgRelativeError(apx, truth) / seeds
		}
		score("baseline (BaseTopk)", sk.TopK(k))
		score("horvitz-thompson corrected", sk.TopKCorrected(k))
	}
	return []EstimatorAblation{*sums["baseline (BaseTopk)"], *sums["horvitz-thompson corrected"]}, nil
}

// EstimatorTable renders the estimator ablation.
func EstimatorTable(rows []EstimatorAblation) *Table {
	t := &Table{
		Title:   "Ablation: baseline vs Horvitz-Thompson corrected estimator",
		Headers: []string{"estimator", "k", "recall", "avg_rel_error"},
	}
	for _, r := range rows {
		t.AddRow(r.Estimator, r.K, r.Recall, r.RelErr)
	}
	return t
}

// AblationTables renders the sample-target, fingerprint and recovery
// ablations.
func AblationTables(st []SampleTargetAblation, fp []FingerprintAblation, rec []RecoveryAblation) []*Table {
	t1 := &Table{
		Title:   "Ablation: estimator stopping threshold",
		Headers: []string{"target", "k", "recall", "avg_rel_error", "query_us"},
	}
	for _, r := range st {
		t1.AddRow(r.Target, r.K, r.Recall, r.RelErr, r.QueryUs)
	}
	t2 := &Table{
		Title:   "Ablation: fingerprint checksum counter",
		Headers: []string{"fingerprint", "phantom_samples", "update_ns", "sketch_bytes"},
	}
	for _, r := range fp {
		t2.AddRow(r.Fingerprint, r.PhantomSamples, r.UpdateNs, r.SketchBytes)
	}
	t3 := &Table{
		Title:   "Ablation: second-level tables r vs singleton recovery (Lemma 4.1)",
		Headers: []string{"r", "regime", "loaded_pairs", "recovered", "rate"},
	}
	for _, r := range rec {
		t3.AddRow(r.R, r.Regime, r.LoadedPairs, r.Recovered, r.Rate)
	}
	return []*Table{t1, t2, t3}
}
