// Package window implements epoch-windowed top-k tracking on top of the
// Distinct-Count Sketch, exploiting the synopsis's linearity: the sketch of
// the last W epochs equals the sum of per-epoch sketches, so retiring the
// oldest epoch is a counter subtraction (dcs.Sketch.Subtract) rather than a
// rescan of history.
//
// Windowing matters operationally: the paper's frequency metric is defined
// over the whole stream, but a monitor that has run for a week should rank
// destinations by *recent* half-open populations, not by long-forgotten
// traffic whose completions were never observed (e.g. flows that started
// before the monitor did, or timed-out state). A tumbling window of W epochs
// bounds that drift to the epoch granularity.
package window

import (
	"fmt"

	"dcsketch/internal/dcs"
)

// Tracker maintains a tumbling window of W epochs over a flow-update stream
// and answers top-k queries over the window.
type Tracker struct {
	cfg    dcs.Config
	epochs int

	// ring holds one sketch per live epoch; head indexes the epoch
	// currently receiving updates.
	ring []*dcs.Sketch
	head int
	// sum is the running sum of all live epoch sketches.
	sum *dcs.Sketch
	// sealed counts completed epoch rotations.
	sealed uint64
}

// New builds a windowed tracker over `epochs` live epochs (>= 1). With
// epochs = 1 the window degenerates to "since the last Rotate".
func New(cfg dcs.Config, epochs int) (*Tracker, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("window: epochs = %d, must be >= 1", epochs)
	}
	sum, err := dcs.New(cfg)
	if err != nil {
		return nil, err
	}
	// Reuse the defaulted config so every epoch sketch is mergeable with
	// the sum.
	cfg = sum.Config()
	t := &Tracker{cfg: cfg, epochs: epochs, ring: make([]*dcs.Sketch, epochs), sum: sum}
	for i := range t.ring {
		sk, err := dcs.New(cfg)
		if err != nil {
			return nil, err
		}
		t.ring[i] = sk
	}
	return t, nil
}

// Update records one flow update in the current epoch.
func (t *Tracker) Update(src, dst uint32, delta int64) {
	t.ring[t.head].Update(src, dst, delta)
	t.sum.Update(src, dst, delta)
}

// UpdateBatch records a batch of pre-keyed flow updates in the current
// epoch through the sketches' batched kernel. The batch lands in both the
// epoch sketch and the running sum atomically with respect to Rotate (the
// tracker is single-goroutine by contract), so window queries never observe
// half a batch.
func (t *Tracker) UpdateBatch(batch []dcs.KeyDelta) {
	t.ring[t.head].UpdateBatch(batch)
	t.sum.UpdateBatch(batch)
}

// Rotate seals the current epoch and retires the oldest one: its counters
// are subtracted from the window sum and its sketch is recycled as the new
// current epoch. Call it on a timer (e.g. every minute) or every N updates.
func (t *Tracker) Rotate() error {
	t.head = (t.head + 1) % t.epochs
	oldest := t.ring[t.head]
	if err := t.sum.Subtract(oldest); err != nil { //lint:seedok New builds sum and every ring epoch from the one cfg argument
		return fmt.Errorf("window: retire epoch: %w", err)
	}
	oldest.Reset()
	t.sealed++
	return nil
}

// TopK returns the approximate top-k destinations over the live window.
func (t *Tracker) TopK(k int) []dcs.Estimate { return t.sum.TopK(k) }

// Threshold returns all destinations over the live window with estimated
// frequency >= tau.
func (t *Tracker) Threshold(tau int64) []dcs.Estimate { return t.sum.Threshold(tau) }

// DistinctPairs estimates the live distinct pairs within the window.
func (t *Tracker) DistinctPairs() int64 { return t.sum.EstimateDistinctPairs() }

// Epochs returns the window width in epochs.
func (t *Tracker) Epochs() int { return t.epochs }

// Rotations returns how many epochs have been sealed so far.
func (t *Tracker) Rotations() uint64 { return t.sealed }

// SizeBytes returns the footprint: W+1 sketches.
func (t *Tracker) SizeBytes() int { return (t.epochs + 1) * t.sum.SizeBytes() }
