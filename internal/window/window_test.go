package window

import (
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
)

func mustNew(t *testing.T, cfg dcs.Config, epochs int) *Tracker {
	t.Helper()
	w, err := New(cfg, epochs)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestValidation(t *testing.T) {
	if _, err := New(dcs.Config{}, 0); err == nil {
		t.Fatal("epochs=0 accepted")
	}
	if _, err := New(dcs.Config{Buckets: 1}, 2); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
}

func TestWindowForgetsOldEpochs(t *testing.T) {
	w := mustNew(t, dcs.Config{Buckets: 256, Seed: 1}, 3)
	// Epoch 0: dest 10 is hot.
	for src := uint32(1); src <= 50; src++ {
		w.Update(src, 10, 1)
	}
	if top := w.TopK(1); len(top) != 1 || top[0].Dest != 10 {
		t.Fatalf("epoch 0 TopK = %+v", top)
	}
	// Three rotations later, dest 10's epoch has left the window.
	for i := 0; i < 3; i++ {
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
		for src := uint32(1); src <= 5; src++ {
			w.Update(src, 20+uint32(i), 1)
		}
	}
	for _, e := range w.TopK(5) {
		if e.Dest == 10 {
			t.Fatalf("dest 10 still in window after expiry: %+v", e)
		}
	}
	if w.Rotations() != 3 {
		t.Fatalf("Rotations = %d, want 3", w.Rotations())
	}
}

func TestWindowKeepsRecentEpochs(t *testing.T) {
	w := mustNew(t, dcs.Config{Buckets: 256, Seed: 2}, 4)
	// Spread an attack across the last three epochs: all must count.
	for epoch := 0; epoch < 3; epoch++ {
		for src := uint32(0); src < 20; src++ {
			w.Update(uint32(epoch)*1000+src, 99, 1)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	top := w.TopK(1)
	if len(top) != 1 || top[0].Dest != 99 || top[0].F != 60 {
		t.Fatalf("TopK = %+v, want [{99 60}]", top)
	}
}

func TestWindowMatchesFreshSketchAfterExpiry(t *testing.T) {
	// After old epochs expire, the window sum must be bit-equivalent to a
	// sketch that only ever saw the live epochs; verify via identical
	// query answers on a shared seed.
	cfg := dcs.Config{Buckets: 128, Seed: 3}
	w := mustNew(t, cfg, 2)
	fresh, err := dcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := hashing.NewSplitMix64(5)
	// Expired epoch: only into the window.
	for i := 0; i < 2000; i++ {
		key := rng.Next()
		w.Update(uint32(key>>32), uint32(key), 1)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil { // expire it fully (2-epoch window)
		t.Fatal(err)
	}
	// Live traffic: into both.
	for i := 0; i < 1000; i++ {
		key := rng.Next()
		w.Update(uint32(key>>32), uint32(key), 1)
		fresh.UpdateKey(key, 1)
	}
	a, b := w.TopK(10), fresh.TopK(10)
	if len(a) != len(b) {
		t.Fatalf("window TopK len %d, fresh %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: window %+v, fresh %+v", i, a[i], b[i])
		}
	}
	if got, want := w.DistinctPairs(), fresh.EstimateDistinctPairs(); got != want {
		t.Fatalf("DistinctPairs = %d, fresh = %d", got, want)
	}
}

func TestWindowWithDeletes(t *testing.T) {
	w := mustNew(t, dcs.Config{Buckets: 256, Seed: 7}, 2)
	for src := uint32(1); src <= 30; src++ {
		w.Update(src, 5, 1)
	}
	for src := uint32(1); src <= 30; src++ {
		w.Update(src, 5, -1)
	}
	for src := uint32(1); src <= 4; src++ {
		w.Update(src, 6, 1)
	}
	top := w.TopK(1)
	if len(top) != 1 || top[0].Dest != 6 {
		t.Fatalf("TopK = %+v, want dest 6", top)
	}
}

func TestSingleEpochWindow(t *testing.T) {
	w := mustNew(t, dcs.Config{Buckets: 128, Seed: 9}, 1)
	w.Update(1, 2, 1)
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := w.TopK(1); len(got) != 0 {
		t.Fatalf("single-epoch window after Rotate = %+v, want empty", got)
	}
	if w.Epochs() != 1 {
		t.Fatalf("Epochs = %d", w.Epochs())
	}
}

func TestThresholdOverWindow(t *testing.T) {
	w := mustNew(t, dcs.Config{Buckets: 256, Seed: 11}, 2)
	for src := uint32(0); src < 40; src++ {
		w.Update(src, 1, 1)
	}
	for src := uint32(0); src < 5; src++ {
		w.Update(src, 2, 1)
	}
	got := w.Threshold(20)
	if len(got) != 1 || got[0].Dest != 1 {
		t.Fatalf("Threshold(20) = %+v", got)
	}
}

func TestSizeBytes(t *testing.T) {
	w := mustNew(t, dcs.Config{Seed: 13}, 3)
	single, err := dcs.New(dcs.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.SizeBytes(), 4*single.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d (W+1 sketches)", got, want)
	}
}
