package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadModule discovers, parses and type-checks every package of the Go module
// rooted at root (the directory holding go.mod), excluding test files and
// testdata trees. Packages are returned in dependency order.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	dirs := map[string]string{} // import path -> dir
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			imp := modPath
			if rel != "." {
				imp = modPath + "/" + filepath.ToSlash(rel)
			}
			dirs[imp] = path
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walk %s: %w", root, err)
	}
	return LoadTree(dirs)
}

// LoadTree parses and type-checks the packages in dirs, a mapping from import
// path to source directory. Imports found in the mapping resolve to the
// freshly checked packages; all other imports resolve from the standard
// library. Packages are returned in dependency order.
func LoadTree(dirs map[string]string) ([]*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{
		fset:   fset,
		dirs:   dirs,
		loaded: map[string]*Package{},
		state:  map[string]int{},
		std:    importer.ForCompiler(fset, "source", nil),
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := ld.load(p); err != nil {
			return nil, err
		}
	}
	return ld.order, nil
}

type loader struct {
	fset   *token.FileSet
	dirs   map[string]string
	loaded map[string]*Package
	state  map[string]int // 0 unvisited, 1 visiting, 2 done
	order  []*Package
	std    types.Importer
}

// Import implements types.Importer: module-internal paths resolve to loaded
// packages, everything else to the standard library.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, ok := ld.dirs[path]; ok {
		if err := ld.load(path); err != nil {
			return nil, err
		}
		return ld.loaded[path].Types, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) error {
	switch ld.state[path] {
	case 2:
		return nil
	case 1:
		return fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.state[path] = 1
	dir := ld.dirs[path]

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			ld.state[path] = 2
			return nil
		}
		return fmt.Errorf("analysis: scan %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	// Load module-internal dependencies first so Import never recurses into
	// a half-checked package.
	for _, imp := range bp.Imports {
		if _, ok := ld.dirs[imp]; ok {
			if err := ld.load(imp); err != nil {
				return err
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: ld,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := cfg.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("analysis: type-check %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return fmt.Errorf("analysis: type-check %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files, Types: tpkg, TypesInfo: info}
	ld.loaded[path] = pkg
	ld.order = append(ld.order, pkg)
	ld.state[path] = 2
	return nil
}

// Run applies one analyzer to one package and returns its diagnostics
// (including suppressed ones, flagged as such). mod may be nil for analyzers
// that do not reason across package boundaries; drivers that run the full
// suite should pass NewModule over the whole load.
func Run(a *Analyzer, pkg *Package, mod *Module) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Module:    mod,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
