package analysis

import (
	"go/ast"
	"strings"
	"testing"
	"unicode"
)

func TestParseDirective(t *testing.T) {
	tests := []struct {
		text string
		ok   bool
		name string
		args []string
	}{
		{"//lint:allocfree", true, "allocfree", nil},
		{"//lint:locked mu", true, "locked", []string{"mu"}},
		{"//lint:seedok same config on both operands", true, "seedok",
			[]string{"same", "config", "on", "both", "operands"}},
		{"//lint:poolown\tstaged buffer handed to b.bufs", true, "poolown",
			[]string{"staged", "buffer", "handed", "to", "b.bufs"}},
		{"//lint: allocfree", false, "", nil}, // empty name
		{"//lint:", false, "", nil},
		{"// lint:allocfree", false, "", nil},
		{"//nolint:allocfree", false, "", nil},
		{"/*lint:allocfree*/", false, "", nil},
		{"// plain comment", false, "", nil},
	}
	for _, tt := range tests {
		d, ok := ParseDirective(tt.text)
		if ok != tt.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != tt.name {
			t.Errorf("ParseDirective(%q).Name = %q, want %q", tt.text, d.Name, tt.name)
		}
		if len(d.Args) != len(tt.args) {
			t.Errorf("ParseDirective(%q).Args = %v, want %v", tt.text, d.Args, tt.args)
			continue
		}
		for i := range d.Args {
			if d.Args[i] != tt.args[i] {
				t.Errorf("ParseDirective(%q).Args = %v, want %v", tt.text, d.Args, tt.args)
				break
			}
		}
	}
}

func TestDocDirective(t *testing.T) {
	doc := &ast.CommentGroup{List: []*ast.Comment{
		{Text: "// updateKernel is the hot path."},
		{Text: "//lint:allocfree"},
		{Text: "//lint:locked mu"},
	}}
	if _, ok := DocDirective(doc, "allocfree"); !ok {
		t.Errorf("DocDirective(allocfree) not found")
	}
	if _, ok := DocDirective(doc, "poolown"); ok {
		t.Errorf("DocDirective(poolown) unexpectedly found")
	}
	if arg, ok := DocDirectiveArg(doc, "locked"); !ok || arg != "mu" {
		t.Errorf("DocDirectiveArg(locked) = %q, %v; want mu, true", arg, ok)
	}
	if _, ok := DocDirective(nil, "allocfree"); ok {
		t.Errorf("DocDirective(nil) unexpectedly found")
	}
}

// FuzzDirectiveParse exercises the directive parser over arbitrary comment
// text: it must never panic, accepted directives must satisfy the grammar's
// invariants, and the canonical re-rendering must parse back to the same
// directive (the round-trip that keeps the three consuming grammars —
// same-line suppression, doc argument, doc marker — in agreement).
func FuzzDirectiveParse(f *testing.F) {
	f.Add("//lint:allocfree")
	f.Add("//lint:locked mu")
	f.Add("//lint:seedok both operands share p.cfg")
	f.Add("//lint:poolown buffer staged in b.bufs until Flush")
	f.Add("//lint:")
	f.Add("//lint: name")
	f.Add("//lint:a\tb  c ")
	f.Add("// want \"regexp\"")
	f.Add("//lint:x\x00y z")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := ParseDirective(text)
		if !ok {
			return
		}
		if d.Name == "" {
			t.Fatalf("ParseDirective(%q): accepted empty name", text)
		}
		if strings.ContainsFunc(d.Name, unicode.IsSpace) {
			t.Fatalf("ParseDirective(%q): name %q contains whitespace", text, d.Name)
		}
		if !strings.HasPrefix(text, "//lint:"+d.Name) {
			t.Fatalf("ParseDirective(%q): name %q is not a prefix of the input", text, d.Name)
		}
		for _, a := range d.Args {
			if a == "" || strings.ContainsFunc(a, unicode.IsSpace) {
				t.Fatalf("ParseDirective(%q): malformed arg %q", text, a)
			}
		}
		// Canonical round-trip: rendering and re-parsing is identity.
		d2, ok2 := ParseDirective(d.String())
		if !ok2 || d2.Name != d.Name || len(d2.Args) != len(d.Args) {
			t.Fatalf("round-trip of %q: got %+v, %v; want %+v", text, d2, ok2, d)
		}
		for i := range d.Args {
			if d2.Args[i] != d.Args[i] {
				t.Fatalf("round-trip of %q: args %v != %v", text, d2.Args, d.Args)
			}
		}
	})
}
