package seedcompat_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/seedcompat"
)

func TestSeedCompat(t *testing.T) {
	analysistest.Run(t, seedcompat.Analyzer, "seedcompat")
}
