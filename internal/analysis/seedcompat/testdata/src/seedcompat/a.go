// Package seedcompat is golden-test input: sketch-shaped types whose
// Merge/Subtract calls exercise every proof rule and failure mode of the
// analyzer.
package seedcompat

// Config stands in for dcs.Config.
type Config struct{ Seed uint64 }

// Sketch stands in for a mergeable sketch.
type Sketch struct{ cfg Config }

// New builds a sketch.
func New(cfg Config) (*Sketch, error) { return &Sketch{cfg: cfg}, nil }

// NewTracker is a second constructor shape.
func NewTracker(cfg Config) (*Sketch, error) { return &Sketch{cfg: cfg}, nil }

// Config returns the sketch config.
func (s *Sketch) Config() Config { return s.cfg }

// Merge combines two sketches; requires equal configs.
func (s *Sketch) Merge(o *Sketch) error { return nil }

// Subtract removes o from s; requires equal configs.
func (s *Sketch) Subtract(o *Sketch) error { return nil }

// Rename has a non-self-typed Merge and must not be checked.
type Rename struct{}

// Merge here takes an unrelated argument type.
func (r *Rename) Merge(s string) error { return nil }

// Holder wraps a sketch, for the homologous-field rule.
type Holder struct{ inner *Sketch }

func sharedConstruction() {
	cfg := Config{Seed: 1}
	a, _ := New(cfg)
	b, _ := New(cfg)
	_ = a.Merge(b) // proven: same constructor fingerprint
}

func mixedConstructors() {
	cfg := Config{Seed: 1}
	a, _ := New(cfg)
	b, _ := NewTracker(cfg)
	_ = a.Subtract(b) // proven: same config expression
}

func differentConfigs() {
	a, _ := New(Config{Seed: 1})
	b, _ := New(Config{Seed: 2})
	_ = a.Merge(b) // want `cannot prove a and b share one sketch Config/seed`
}

func unknownParams(x, y *Sketch) {
	_ = x.Merge(y) // want `cannot prove x and y share one sketch Config/seed`
}

func unknownSubtract(x, y *Sketch) {
	_ = x.Subtract(y) // want `cannot prove x and y share one sketch Config/seed`
}

func annotated(x, y *Sketch) {
	_ = x.Merge(y) //lint:seedok compatibility checked by the caller's protocol
}

func homologous(h1, h2 *Holder) {
	_ = h1.inner.Merge(h2.inner) // proven: same field of one wrapper type
}

func derivedConfig(edge *Sketch) {
	acc, _ := New(edge.Config())
	_ = acc.Merge(edge) // proven: acc built from edge's own config
}

func reassigned(cfg, other Config) {
	a, _ := New(cfg)
	b, _ := New(cfg)
	b, _ = New(other)
	_ = a.Merge(b) // want `cannot prove a and b share one sketch Config/seed`
}

func notASketchMerge(r *Rename) {
	_ = r.Merge("x") // not a self-typed combine method: ignored
}
