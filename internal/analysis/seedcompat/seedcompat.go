// Package seedcompat implements the sketchlint analyzer that enforces the
// merge-compatibility invariant of the Distinct-Count Sketch: Merge, Subtract
// and Fold combine two sketches correctly only when both were built from one
// Config (seed included) — the sketch is a linear transform of the stream
// under a *fixed* family of hash functions, so combining differently-seeded
// counter arrays is numerically meaningless (the implementation degrades this
// to a runtime ErrIncompatible, which seedcompat turns into a lint-time
// report).
//
// A call x.Merge(y) (likewise Subtract/Fold) is accepted when the analyzer
// can prove same-origin locally:
//
//   - homologous fields: x and y are the same struct field of two values of
//     one type (e.g. t.base.Merge(other.base)) — the shared constructor of
//     that type upholds the invariant;
//   - shared construction: both operands were assigned in this function from
//     constructor calls carrying the textually identical configuration
//     argument (e.g. a, _ := dcs.New(cfg); b, _ := dcs.New(cfg));
//   - derived construction: one operand's constructor argument is the other
//     operand's Config() (e.g. acc, _ := dcs.New(edge.Config())).
//
// Anything else — operands arriving as parameters, fields of different
// types, or decoded off the wire — must carry a same-line
// "//lint:seedok <reason>" annotation acknowledging that compatibility is
// established elsewhere (a dynamic check, a documented protocol contract).
package seedcompat

import (
	"go/ast"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the seedcompat analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "seedcompat",
	Doc:       "report sketch Merge/Subtract/Fold calls whose operands are not provably built from one Config/seed",
	Directive: "seedok",
	Run:       run,
}

// combineMethods are the sketch-combining method names covered by the
// invariant.
var combineMethods = map[string]bool{"Merge": true, "Subtract": true, "Fold": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			origins := constructorOrigins(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, origins)
				return true
			})
		}
	}
	return nil
}

// checkCall reports call if it is a sketch-combining method call whose
// operands cannot be proven config-compatible.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, origins map[types.Object]string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 || !combineMethods[sel.Sel.Name] {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	sig, ok := selection.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return
	}
	recvT := pass.TypesInfo.Types[sel.X].Type
	if recvT == nil || !types.Identical(sig.Params().At(0).Type(), recvT) {
		return // not a self-typed combine method (e.g. some unrelated Merge)
	}
	recv, arg := sel.X, call.Args[0]
	if homologousFields(pass, recv, arg) {
		return
	}
	if sameOrigin(pass, recv, arg, origins) {
		return
	}
	pass.Reportf(call.Pos(),
		"cannot prove %s and %s share one sketch Config/seed for %s; build both from one Config or annotate //lint:seedok",
		analysis.ExprString(pass.Fset, recv), analysis.ExprString(pass.Fset, arg), sel.Sel.Name)
}

// homologousFields reports whether recv and arg select the same struct field
// (same types.Object) from bases of identical type — e.g. s.inner and
// other.inner on two *Tracker values, whose shared constructor establishes
// the invariant.
func homologousFields(pass *analysis.Pass, recv, arg ast.Expr) bool {
	rs, ok1 := ast.Unparen(recv).(*ast.SelectorExpr)
	as, ok2 := ast.Unparen(arg).(*ast.SelectorExpr)
	if !ok1 || !ok2 {
		return false
	}
	rObj := pass.TypesInfo.Uses[rs.Sel]
	aObj := pass.TypesInfo.Uses[as.Sel]
	if rObj == nil || rObj != aObj {
		return false
	}
	if _, isField := rObj.(*types.Var); !isField {
		return false
	}
	rBase := pass.TypesInfo.Types[rs.X].Type
	aBase := pass.TypesInfo.Types[as.X].Type
	return rBase != nil && aBase != nil && types.Identical(rBase, aBase)
}

// constructorOrigins scans a function body for assignments of the form
//
//	v, err := pkg.New(cfgExpr)   (or v = ..., single-value forms)
//
// and maps v's object to a fingerprint of the constructor's configuration
// argument (its source text). A variable assigned more than once with
// different fingerprints becomes untrusted.
func constructorOrigins(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]string {
	origins := map[types.Object]string{}
	poisoned := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fp, ok := constructorFingerprint(pass, call)
		if !ok {
			// Reassignment from a non-constructor poisons the variable.
			for _, lhs := range assign.Lhs {
				if obj := lhsObject(pass, lhs); obj != nil {
					poisoned[obj] = true
				}
			}
			return true
		}
		obj := lhsObject(pass, assign.Lhs[0])
		if obj == nil {
			return true
		}
		if prev, dup := origins[obj]; dup && prev != fp {
			poisoned[obj] = true
		}
		origins[obj] = fp
		return true
	})
	for obj := range poisoned {
		delete(origins, obj)
	}
	return origins
}

// constructorFingerprint returns a config fingerprint for a call that looks
// like a sketch constructor: a function named New or New<T> taking at least
// one argument, fingerprinted by its first argument's source text.
func constructorFingerprint(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	if name != "New" && !(len(name) > 3 && name[:3] == "New") {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	return analysis.ExprString(pass.Fset, call.Args[0]), true
}

// lhsObject resolves an assignment target identifier to its object.
func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// sameOrigin reports whether both operands carry equal constructor
// fingerprints, or one operand's fingerprint is the other's Config() call.
func sameOrigin(pass *analysis.Pass, recv, arg ast.Expr, origins map[types.Object]string) bool {
	rfp, rok := operandFingerprint(pass, recv, origins)
	afp, aok := operandFingerprint(pass, arg, origins)
	if rok && aok && rfp == afp {
		return true
	}
	// Derived construction: acc built from other.Config().
	rtxt := analysis.ExprString(pass.Fset, recv)
	atxt := analysis.ExprString(pass.Fset, arg)
	if rok && rfp == atxt+".Config()" {
		return true
	}
	if aok && afp == rtxt+".Config()" {
		return true
	}
	return false
}

// operandFingerprint resolves an operand expression to its constructor
// fingerprint, when the operand is a plain variable assigned in this
// function.
func operandFingerprint(pass *analysis.Pass, e ast.Expr, origins map[types.Object]string) (string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return "", false
	}
	fp, ok := origins[obj]
	return fp, ok
}
