package analysis

import (
	"go/ast"
	"strings"
	"unicode"
)

// Directive is one parsed "//lint:" source annotation. The framework
// recognizes a single surface syntax,
//
//	//lint:<name> [arg ...]
//
// consumed under three grammars that differ in where the comment attaches
// and how the arguments are read:
//
//   - same-line suppression: "//lint:<name> <reason...>" on the line of a
//     reported construct acknowledges the named analyzer's diagnostic; the
//     arguments are free-form prose (LineDirective / Pass.Suppressed).
//   - doc argument directive: "//lint:<name> <arg>" in a declaration's doc
//     comment passes one machine-read argument to an analyzer, e.g. the
//     mutex name in "//lint:locked mu" (DocDirectiveArg).
//   - doc marker: "//lint:<name>" in a declaration's doc comment flags the
//     declaration itself, e.g. "//lint:allocfree" on a hot-path kernel or
//     "//lint:poolown <reason>" on a function that hands a pooled buffer
//     off instead of returning it (DocDirective).
type Directive struct {
	// Name is the directive name, the token between "lint:" and the first
	// whitespace.
	Name string
	// Args are the whitespace-separated tokens after the name. For
	// suppressions they are prose; for argument directives the first entry
	// is the machine-read argument.
	Args []string
}

// ParseDirective parses a raw comment text ("//..." as returned by
// ast.Comment.Text) as a "//lint:" directive. ok is false when the comment
// is not a lint directive or carries an empty name.
func ParseDirective(text string) (d Directive, ok bool) {
	const prefix = "//lint:"
	rest, found := strings.CutPrefix(text, prefix)
	if !found {
		return Directive{}, false
	}
	name := rest
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		rest = ""
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: strings.Fields(rest)}, true
}

// String renders the directive back to its canonical comment form.
func (d Directive) String() string {
	if len(d.Args) == 0 {
		return "//lint:" + d.Name
	}
	return "//lint:" + d.Name + " " + strings.Join(d.Args, " ")
}

// directiveName extracts <name> from a "//lint:<name> ..." comment, or "".
func directiveName(text string) string {
	d, ok := ParseDirective(text)
	if !ok {
		return ""
	}
	return d.Name
}

// DocDirective scans a doc comment for a "//lint:<name>" marker and returns
// its arguments. ok is false when the directive is absent. It is the
// function-annotation grammar: "//lint:allocfree" marks a function whose
// body must be proven allocation-free, "//lint:poolown <reason>" marks a
// function that legitimately retains a pooled buffer past its return.
func DocDirective(doc *ast.CommentGroup, name string) (args []string, ok bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		d, dok := ParseDirective(c.Text)
		if dok && d.Name == name {
			return d.Args, true
		}
	}
	return nil, false
}

// DocDirectiveArg scans a doc comment for "//lint:<name> <arg>" and returns
// the first argument of the first match (e.g. the mutex name in
// "//lint:locked mu"). ok is false when the directive is absent.
func DocDirectiveArg(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	args, ok := DocDirective(doc, name)
	if !ok {
		return "", false
	}
	if len(args) == 0 {
		return "", true
	}
	return args[0], true
}
