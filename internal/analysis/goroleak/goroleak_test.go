package goroleak_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "goroleak")
}
