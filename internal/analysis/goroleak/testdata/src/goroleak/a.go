// Package goroleak is the golden input for the goroleak analyzer: joined,
// shut-down, suppressed, and leaked goroutine spawns.
package goroleak

import (
	"context"
	"sync"
)

// work spins forever with no join.
func work() {
	for {
	}
}

func leak() {
	go work() // want `no statically provable join or shutdown path`
}

// svc joins its loop through the WaitGroup: Add before the spawn, Done in
// the spawned body.
type svc struct {
	wg sync.WaitGroup
}

func (s *svc) start() {
	s.wg.Add(1)
	go s.loop()
}

func (s *svc) loop() {
	defer s.wg.Done()
}

func (s *svc) wait() { s.wg.Wait() }

// nosvc calls Done in the spawned body but never Adds before the spawn —
// Wait would not block, so this is not a join.
type nosvc struct {
	wg sync.WaitGroup
}

func (n *nosvc) start() {
	go n.loop() // want `no statically provable join or shutdown path`
}

func (n *nosvc) loop() {
	defer n.wg.Done()
}

// deepsvc reaches its Done through a helper call, proving the summary
// follows static module calls.
type deepsvc struct {
	wg sync.WaitGroup
}

func (d *deepsvc) start() {
	d.wg.Add(1)
	go d.loop()
}

func (d *deepsvc) loop() {
	d.finish()
}

func (d *deepsvc) finish() {
	d.wg.Done()
}

// joinLocal closes a local channel the spawner receives: the join-channel
// pattern.
func joinLocal() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// pump drains a channel its Close closes: the shutdown-channel pattern.
type pump struct {
	updates chan int
}

func (p *pump) run() {
	go p.drain()
}

func (p *pump) drain() {
	for range p.updates {
	}
}

// Close stops the drain goroutine.
func (p *pump) Close() {
	close(p.updates)
}

// watch selects on the context's done channel.
func watch(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

// launch spawns a function value the analyzer cannot see through.
func launch(fn func()) {
	go fn() // want `cannot statically resolve`
}

// daemonLoop intentionally runs for the whole process lifetime.
func daemonLoop() {
	for {
	}
}

func startDaemon() {
	go daemonLoop() //lint:daemon serves for the whole process lifetime
}

// staleOK carries a suppression on a spawn that is properly joined; the
// analyzer must stay silent rather than misapply it.
func staleOK() {
	done := make(chan struct{})
	go func() { //lint:daemon stale: this spawn is joined below
		defer close(done)
	}()
	<-done
}
