// Package goroleak implements the sketchlint analyzer enforcing goroutine
// lifecycle discipline: every `go` spawn must have a statically provable
// join or shutdown path. The seed's own history (the Listen/Shutdown
// listener races of PR 1) is the motivation — a goroutine nobody joins is
// a shutdown race or a leak waiting for the next refactor.
//
// A spawn is accepted when any of the following holds:
//
//   - WaitGroup join: the enclosing function calls wg.Add(...) before the
//     spawn and the spawned body (transitively through static module
//     calls) calls Done() on the same WaitGroup.
//   - Shutdown channel: the spawned body receives from ctx.Done() or from
//     a channel that some other module code closes or sends to (the
//     done/shutdown-channel pattern).
//   - Join channel: the spawned body closes or sends to a channel that
//     some other module code receives from (the spawner blocks on it).
//   - //lint:daemon <reason> on the spawn line acknowledges an
//     intentionally process-lifetime goroutine; like every suppression it
//     stays in the sketchlint -json inventory.
//
// Spawns whose body cannot be resolved statically (function values,
// interface methods) are reported as such: an unresolvable spawn is
// unauditable, which is its own finding.
//
// The evidence collection is deliberately lenient — a receive anywhere in
// the spawned body counts, nested function literals are included, and the
// channel/WaitGroup match is by declared object, not by alias analysis.
// The analyzer exists to catch goroutines with no lifecycle story at all,
// not to prove liveness.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "every go spawn needs a provable join or shutdown path (WaitGroup, done/ctx channel, or //lint:daemon)",
	Directive: "daemon",
	Run:       run,
}

// summary is the lifecycle-relevant behavior of one function body.
type summary struct {
	dones         map[types.Object]bool // WaitGroups this body calls Done() on
	receives      map[types.Object]bool // channels this body receives from
	closesOrSends map[types.Object]bool // channels this body closes or sends to
	ctxDone       bool                  // receives from a context.Context's Done()
}

func newSummary() *summary {
	return &summary{
		dones:         map[types.Object]bool{},
		receives:      map[types.Object]bool{},
		closesOrSends: map[types.Object]bool{},
	}
}

func (s *summary) merge(o *summary) {
	if o == nil {
		return
	}
	for k := range o.dones {
		s.dones[k] = true
	}
	for k := range o.receives {
		s.receives[k] = true
	}
	for k := range o.closesOrSends {
		s.closesOrSends[k] = true
	}
	s.ctxDone = s.ctxDone || o.ctxDone
}

func run(pass *analysis.Pass) error {
	sc := &scanner{
		pass:  pass,
		memo:  map[types.Object]*summary{},
		state: map[types.Object]int{},
	}
	glob := globalChannelFacts(pass.ModulePackages())
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpawns(pass, sc, glob, fn)
		}
	}
	return nil
}

// globalFacts aggregates channel activity over the whole module, the "some
// other code closes/receives this channel" side of the shutdown and join
// rules.
type globalFacts struct {
	closedOrSent map[types.Object]bool
	received     map[types.Object]bool
}

func globalChannelFacts(pkgs []*analysis.Package) *globalFacts {
	g := &globalFacts{closedOrSent: map[types.Object]bool{}, received: map[types.Object]bool{}}
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isBuiltinClose(info, n) {
						if obj := chanObj(info, n.Args[0]); obj != nil {
							g.closedOrSent[obj] = true
						}
					}
				case *ast.SendStmt:
					if obj := chanObj(info, n.Chan); obj != nil {
						g.closedOrSent[obj] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if obj := chanObj(info, n.X); obj != nil {
							g.received[obj] = true
						}
					}
				case *ast.RangeStmt:
					if isChanType(info.Types[n.X].Type) {
						if obj := chanObj(info, n.X); obj != nil {
							g.received[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return g
}

// checkSpawns finds every go statement under fn (function literals
// included) and verifies each against the lifecycle rules. The Add-before-
// spawn scan is scoped to fn's whole body: an Add in the enclosing
// function counts for a spawn inside one of its literals.
func checkSpawns(pass *analysis.Pass, sc *scanner, glob *globalFacts, fn *ast.FuncDecl) {
	type wgAdd struct {
		obj types.Object
		pos token.Pos
	}
	var adds []wgAdd
	var spawns []*ast.GoStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = append(spawns, n)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && len(n.Args) == 1 {
				if t := pass.TypesInfo.Types[sel.X].Type; t != nil && isWaitGroupType(t) {
					if obj := chanObj(pass.TypesInfo, sel.X); obj != nil {
						adds = append(adds, wgAdd{obj, n.Pos()})
					}
				}
			}
		}
		return true
	})
	for _, g := range spawns {
		sum, resolved := sc.spawnSummary(g)
		if !resolved {
			pass.Reportf(g.Pos(), "cannot statically resolve the spawned goroutine body; spawn a named function or method, or annotate //lint:daemon <reason>")
			continue
		}
		joined := sum.ctxDone
		for _, a := range adds {
			if !joined && a.pos < g.Pos() && sum.dones[a.obj] {
				joined = true
			}
		}
		for ch := range sum.receives {
			if glob.closedOrSent[ch] {
				joined = true
			}
		}
		for ch := range sum.closesOrSends {
			if glob.received[ch] {
				joined = true
			}
		}
		if !joined {
			pass.Reportf(g.Pos(), "goroutine has no statically provable join or shutdown path (want a matched WaitGroup Add/Done, a done/ctx channel, or //lint:daemon <reason>)")
		}
	}
}

// scanner memoizes per-function lifecycle summaries across the module.
type scanner struct {
	pass  *analysis.Pass
	memo  map[types.Object]*summary
	state map[types.Object]int // 0 unvisited, 1 in progress, 2 done
}

// spawnSummary resolves a go statement's body to its summary. resolved is
// false for dynamic spawns (function values, interface methods).
func (sc *scanner) spawnSummary(g *ast.GoStmt) (*summary, bool) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return sc.summarizeBody(sc.pass.TypesInfo, lit.Body), true
	}
	callee := staticCallee(sc.pass.TypesInfo, g.Call)
	if callee == nil {
		return nil, false
	}
	if sc.pass.Module.FuncDecl(callee) == nil {
		// A declared function outside the module (stdlib) has no body to
		// audit; treat it as unresolvable rather than silently joined.
		return nil, false
	}
	return sc.summarizeFunc(callee), true
}

// summarizeFunc is the memoized, recursion-guarded form of summarizeBody
// for declared module functions.
func (sc *scanner) summarizeFunc(fn types.Object) *summary {
	switch sc.state[fn] {
	case 1:
		return nil // call cycle: the initiator completes the summary
	case 2:
		return sc.memo[fn]
	}
	sc.state[fn] = 1
	sum := newSummary()
	if info := sc.pass.Module.FuncDecl(fn); info != nil && info.Decl.Body != nil {
		sum = sc.summarizeBody(info.Pkg.TypesInfo, info.Decl.Body)
	}
	sc.memo[fn] = sum
	sc.state[fn] = 2
	return sum
}

// summarizeBody collects the lifecycle evidence of one body: Done calls,
// channel receives, closes and sends, transitively through static module
// calls. Nested function literals are included (deferred closers count);
// nested go spawns are not — a grandchild's join does not join the child.
func (sc *scanner) summarizeBody(info *types.Info, body *ast.BlockStmt) *summary {
	sum := newSummary()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isBuiltinClose(info, n) {
				if obj := chanObj(info, n.Args[0]); obj != nil {
					sum.closesOrSends[obj] = true
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(n.Args) == 0 {
				if t := info.Types[sel.X].Type; t != nil && isWaitGroupType(t) {
					if obj := chanObj(info, sel.X); obj != nil {
						sum.dones[obj] = true
					}
					return true
				}
			}
			if callee := staticCallee(info, n); callee != nil {
				sum.merge(sc.summarizeFunc(callee))
			}
		case *ast.SendStmt:
			if obj := chanObj(info, n.Chan); obj != nil {
				sum.closesOrSends[obj] = true
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if call, ok := n.X.(*ast.CallExpr); ok && isContextDone(info, call) {
				sum.ctxDone = true
				return true
			}
			if obj := chanObj(info, n.X); obj != nil {
				sum.receives[obj] = true
			}
		case *ast.RangeStmt:
			if isChanType(info.Types[n.X].Type) {
				if obj := chanObj(info, n.X); obj != nil {
					sum.receives[obj] = true
				}
			}
		}
		return true
	})
	return sum
}

// staticCallee resolves a call to the declared function or method it
// statically invokes, or nil for dynamic calls and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	if _, ok := obj.(*types.Func); !ok {
		return nil
	}
	return obj
}

// chanObj resolves a channel or WaitGroup expression to its declared
// variable or field object.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// isBuiltinClose recognizes the builtin close(ch).
func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin
}

// isContextDone recognizes ctx.Done() on a context.Context value.
func isContextDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	t := info.Types[sel.X].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroupType reports whether t is sync.WaitGroup or a pointer to one.
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
