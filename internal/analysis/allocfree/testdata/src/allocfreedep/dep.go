// Package allocfreedep exercises cross-package transitive verification:
// the allocfree analyzer must follow module-internal calls out of the
// annotated package through the Module index.
package allocfreedep

// Clean is allocation-free but not annotated; callers must still pass.
func Clean(x uint64) uint64 {
	return x*2 + 1
}

// Dirty allocates; annotated callers must be reported at their call site.
func Dirty(xs []int) []int {
	return append(xs, 1)
}
