// Package allocfree is the golden package for the allocfree analyzer.
package allocfree

import (
	"math/bits"
	"strconv"

	"allocfreedep"
)

type pair struct {
	a, b uint64
}

type ifc interface {
	M()
}

// --- true positives: every flagged construct inside an annotated body ---

//lint:allocfree
func kernel(xs []uint64, m map[uint64]int, s string) {
	xs = append(xs, 1)  // want `append may grow and allocate`
	_ = make([]int, 4)  // want `make allocates`
	_ = new(int)        // want `new allocates`
	_ = []int{1}        // want `slice literal allocates`
	_ = map[int]int{}   // want `map literal allocates`
	_ = &pair{}         // want `address-of composite literal allocates`
	m[1] = 2            // want `map write may allocate \(bucket growth\)`
	m[2]++              // want `map write may allocate \(bucket growth\)`
	_ = s + "x"         // want `string concatenation allocates`
	s += "y"            // want `string concatenation allocates`
	go spin()           // want `go statement allocates a goroutine`
	f := func() { spin() } // want `closure literal captures its environment and allocates`
	_ = f
	_ = strconv.Itoa(3) // want `call into strconv.Itoa cannot be proven allocation-free \(outside the module and not allowlisted\)`
}

//lint:allocfree
func conversions(bs []byte, s string, x int, px *int) {
	_ = string(bs) // want `string conversion allocates`
	_ = []byte(s)  // want `conversion from string allocates`
	_ = any(x)     // want `conversion to interface type boxes the operand`
	_ = any(px)    // pointers store into the interface word without boxing
	_ = uint64(x)  // numeric conversions are free
}

//lint:allocfree
func indirectCalls(fp func(), e ifc, v any) {
	fp()        // want `dynamic call cannot be proven allocation-free`
	e.M()       // want `interface method call M cannot be proven allocation-free`
	sink(42)    // want `argument boxes a non-pointer value into an interface parameter`
	sink(v)     // interface-to-interface: no boxing
	sink(nil)   // nil stores into the interface word
	_ = varArgs(1, 2)     // want `variadic call allocates its argument slice`
	_ = varArgs(nil...)   // spread call passes the slice through
}

// --- transitive verification through the module call graph ---

//lint:allocfree
func callsDirty(xs []int) {
	dirtyHelper(xs) // want `calls allocfree\.dirtyHelper, which is not allocation-free: append may grow and allocate at .*a\.go.*`
}

//lint:allocfree
func crossPkg(xs []int) {
	_ = allocfreedep.Clean(7)
	_ = allocfreedep.Dirty(xs) // want `calls allocfreedep\.Dirty, which is not allocation-free: append may grow and allocate at .*dep\.go.*`
}

//lint:allocfree
func callsAsm() {
	asmStub() // want `calls allocfree\.asmStub, which is not allocation-free: no Go body to verify`
}

// --- true negatives ---

// cleanKernel mirrors the shape of the real update kernels: indexing,
// arithmetic, field writes, map reads, builtin delete. No diagnostics.
//
//lint:allocfree
func cleanKernel(xs []uint64, m map[uint64]int, p *pair) uint64 {
	var acc uint64
	for i := range xs {
		acc += xs[i] >> 1
	}
	p.a = acc
	xs[0] = acc
	_ = [2]uint64{acc, acc} // arrays live on the stack
	q := pair{a: acc}       // value composite literals live on the stack
	_ = q
	_, ok := m[1]
	if ok {
		delete(m, 1)
	}
	_ = bits.OnesCount64(acc) // math/bits is allowlisted
	return min(acc, 10)
}

// callsClean follows a non-annotated but transitively clean helper chain,
// including a recursion cycle, without diagnostics.
//
//lint:allocfree
func callsClean(x uint64, n int) uint64 {
	if even(n) {
		return cleanHelper(x)
	}
	return addSig(x)
}

// --- suppression ---

// suppressed asserts //lint:allocok removes the diagnostic (no want here).
//
//lint:allocfree
func suppressed(xs []int) []int {
	xs = append(xs, 1) //lint:allocok scratch grows to a high-water mark
	return xs
}

// staleSuppressed carries a suppression on a line where nothing is reported;
// the analyzer must stay silent rather than suppress something else.
//
//lint:allocfree
func staleSuppressed(x int) int {
	x++ //lint:allocok nothing on this line allocates
	return x
}

// callsAmortized follows a helper whose allocation is suppressed in the
// helper's own file: the callee counts as clean.
//
//lint:allocfree
func callsAmortized(xs []int) {
	amortizedHelper(xs)
}

// --- helpers (non-annotated) ---

func spin() {}

func sink(v any) {
	_ = v
}

func varArgs(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

func dirtyHelper(xs []int) []int {
	return append(xs, 1)
}

func amortizedHelper(xs []int) []int {
	return append(xs, 1) //lint:allocok amortized growth toward capacity
}

func cleanHelper(x uint64) uint64 {
	return allocfreedep.Clean(x)
}

// addSig is an annotated leaf: annotated callees pass without rescanning.
//
//lint:allocfree
func addSig(x uint64) uint64 {
	return x + 1
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// asmStub has no Go body (as an assembly-backed routine would).
func asmStub()
