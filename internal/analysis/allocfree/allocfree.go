// Package allocfree implements the sketchlint analyzer proving the hot-path
// allocation contract: a function whose doc comment carries "//lint:allocfree"
// (the dcs/tdcs update kernels, UpdateBatch, the iheap candidate heap, the
// pipeline Batcher staging path) must contain no allocation-inducing
// construct — not just locally, but over its full intra-module call graph.
//
// The Table-2 costs the repository reproduces (sub-200ns updates, 0-1
// allocs/op queries) hold only while these paths stay off the allocator;
// line-rate distinct-counting monitors live or die on that constant factor.
// Before this analyzer the contract existed only as comments and benchmark
// observations; now it is machine-checked like the seed/lock/wire/delta
// invariants.
//
// Constructs reported inside an annotated function (and, transitively,
// inside every module-internal function it calls):
//
//   - append (may grow and reallocate), make, new
//   - slice and map composite literals, and address-of composite literals
//   - map writes (bucket growth) via assignment or ++/--
//   - string concatenation and allocating string conversions
//   - conversions to interface types and call arguments boxed into
//     interface parameters (non-pointer concrete values)
//   - closures (function literals capture their environment) and go
//     statements
//   - calls that cannot be proven allocation-free: dynamic calls through
//     function values or interfaces, and calls into packages outside the
//     module (standard library) other than a small allowlist of pure
//     arithmetic/atomic packages
//
// A module-internal callee is acceptable when it is itself annotated
// "//lint:allocfree" or when a transitive scan of its body (memoized,
// cycle-tolerant) finds no unsuppressed construct. Violations in a callee
// are reported at the annotated caller's call site, naming the callee and
// the offending construct.
//
// Heap escapes the AST cannot see (a &local outliving its frame, an
// escaping value struct) are the province of cmd/escapecheck, which
// ground-truths the same annotations against the compiler's own escape
// analysis (go build -gcflags='-m -m'); the two gates share the annotation
// vocabulary and run side by side in ./ci.sh check.
//
// Escape hatch: "//lint:allocok <reason>" on the construct's line, for
// amortized allocations that are part of the contract (pool refills on a
// cold pool, singleton-set growth amortized across the stream, scratch
// buffers growing toward a high-water mark).
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the allocfree analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Doc:       "prove //lint:allocfree functions free of allocation-inducing constructs over their intra-module call graph",
	Directive: "allocok",
	Run:       run,
}

// allowedPkgs are packages outside the module whose functions are known not
// to allocate: pure arithmetic and the atomic operations the hot paths use
// for counters.
var allowedPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allowedBuiltins never allocate. panic is included deliberately: it boxes
// its argument, but it terminates the fast path and a kernel that panics has
// already lost the performance argument.
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "clear": true, "delete": true,
	"min": true, "max": true, "panic": true, "real": true, "imag": true,
}

func run(pass *analysis.Pass) error {
	v := &verifier{pass: pass, verdicts: map[types.Object]*verdict{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, annotated := analysis.DocDirective(fn.Doc, "allocfree"); !annotated {
				continue
			}
			ctx := &fnCtx{fset: pass.Fset, info: pass.TypesInfo, file: file}
			v.scan(ctx, fn.Body, func(pos token.Pos, msg string) bool {
				pass.Reportf(pos, "%s in //lint:allocfree function %s", msg, fn.Name.Name)
				return true // keep scanning: every violation is individually suppressible
			})
		}
	}
	return nil
}

// verdict memoizes the transitive scan of one non-annotated module function.
type verdict struct {
	done  bool   // scan finished (false while on the recursion stack)
	clean bool   // valid once done
	pos   token.Pos
	msg   string
}

// verifier walks function bodies for allocation-inducing constructs,
// following module-internal calls.
type verifier struct {
	pass     *analysis.Pass
	verdicts map[types.Object]*verdict
}

// fnCtx carries the package context a body is scanned under; transitive
// callees in other packages bring their own type info and file (for
// suppression lookup).
type fnCtx struct {
	fset *token.FileSet
	info *types.Info
	file *ast.File
}

// scan walks body reporting each allocation-inducing construct through sink;
// sink returns false to stop early (used by the transitive first-violation
// probe). Suppression ("//lint:allocok") is the sink's concern: the top-level
// scan forwards everything through Pass.Reportf so suppressed constructs stay
// in the -json inventory, while the transitive probe treats suppressed lines
// as clean.
func (v *verifier) scan(ctx *fnCtx, body ast.Node, sink func(pos token.Pos, msg string) bool) {
	stopped := false
	report := func(pos token.Pos, msg string) bool {
		if stopped {
			return false
		}
		if !sink(pos, msg) {
			stopped = true
			return false
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			report(n.Pos(), "closure literal captures its environment and allocates")
			return false // the closure body runs later, off the hot path
		case *ast.CompositeLit:
			if tv, ok := ctx.info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					report(n.Pos(), "address-of composite literal allocates")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkMapWrite(ctx, lhs, report)
			}
			if n.Tok == token.ADD_ASSIGN && v.isString(ctx, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.IncDecStmt:
			v.checkMapWrite(ctx, n.X, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && v.isString(ctx, n.X) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			v.checkCall(ctx, n, report)
		}
		return !stopped
	})
}

// checkMapWrite reports lhs when it writes through a map index (insertion can
// grow the bucket array).
func (v *verifier) checkMapWrite(ctx *fnCtx, lhs ast.Expr, report func(token.Pos, string) bool) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if tv, tok := ctx.info.Types[idx.X]; tok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			report(lhs.Pos(), "map write may allocate (bucket growth)")
		}
	}
}

func (v *verifier) isString(ctx *fnCtx, e ast.Expr) bool {
	tv, ok := ctx.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsString != 0
}

// checkCall classifies one call: conversions, builtins, and function calls,
// following module-internal callees transitively.
func (v *verifier) checkCall(ctx *fnCtx, call *ast.CallExpr, report func(token.Pos, string) bool) {
	// Type conversions.
	if tv, ok := ctx.info.Types[call.Fun]; ok && tv.IsType() {
		v.checkConversion(ctx, call, tv.Type, report)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := ctx.info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				switch {
				case allowedBuiltins[id.Name]:
				case id.Name == "append":
					report(call.Pos(), "append may grow and allocate")
				case id.Name == "make":
					report(call.Pos(), "make allocates")
				case id.Name == "new":
					report(call.Pos(), "new allocates")
				default:
					report(call.Pos(), "builtin "+id.Name+" may allocate")
				}
				return
			}
		}
	}

	fn := callee(ctx.info, call)
	if fn == nil {
		report(call.Pos(), "dynamic call cannot be proven allocation-free")
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		report(call.Pos(), "interface method call "+fn.Name()+" cannot be proven allocation-free")
		return
	}
	if sig != nil {
		v.checkBoxedArgs(ctx, call, sig, report)
	}

	pkg := fn.Pkg()
	if pkg != nil && allowedPkgs[pkg.Path()] {
		return
	}
	info := v.pass.Module.FuncDecl(fn)
	if info == nil {
		report(call.Pos(), "call into "+qualName(fn)+" cannot be proven allocation-free (outside the module and not allowlisted)")
		return
	}
	if _, annotated := analysis.DocDirective(info.Decl.Doc, "allocfree"); annotated {
		return
	}
	if vd := v.verify(fn, info); !vd.clean {
		report(call.Pos(), "calls "+qualName(fn)+", which is not allocation-free: "+
			vd.msg+" at "+v.pass.Fset.Position(vd.pos).String()+
			" (annotate the callee //lint:allocfree or fix it)")
	}
}

// checkConversion reports conversions that allocate: into interfaces
// (boxing), into strings from byte/rune slices or integers, and from strings
// into byte/rune slices.
func (v *verifier) checkConversion(ctx *fnCtx, call *ast.CallExpr, target types.Type, report func(token.Pos, string) bool) {
	if len(call.Args) != 1 {
		return
	}
	switch t := target.Underlying().(type) {
	case *types.Interface:
		if !v.pointerLike(ctx, call.Args[0]) {
			report(call.Pos(), "conversion to interface type boxes the operand")
		}
	case *types.Basic:
		if t.Info()&types.IsString != 0 && !v.isString(ctx, call.Args[0]) {
			report(call.Pos(), "string conversion allocates")
		}
	case *types.Slice:
		if v.isString(ctx, call.Args[0]) {
			report(call.Pos(), "conversion from string allocates")
		}
	}
}

// checkBoxedArgs reports non-pointer concrete arguments passed to interface
// parameters (implicit boxing), and non-spread variadic calls (the argument
// slice is allocated at the call site). Pointers, interfaces and nil store
// into the interface word without allocating.
func (v *verifier) checkBoxedArgs(ctx *fnCtx, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string) bool) {
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		report(call.Pos(), "variadic call allocates its argument slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // spread call: the slice passes through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		if !v.pointerLike(ctx, arg) {
			report(arg.Pos(), "argument boxes a non-pointer value into an interface parameter")
		}
	}
}

// pointerLike reports whether e stores into an interface word without
// allocation: pointers, interfaces, channels, maps, functions, unsafe
// pointers, and untyped nil.
func (v *verifier) pointerLike(ctx *fnCtx, e ast.Expr) bool {
	tv, ok := ctx.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Kind() == types.UntypedNil || t.Kind() == types.UnsafePointer
	}
	return false
}

// verify runs the transitive scan of a non-annotated module-internal
// function, memoized. Recursion cycles resolve optimistically (a cycle whose
// members are otherwise clean is clean).
func (v *verifier) verify(fn *types.Func, info *analysis.FuncInfo) *verdict {
	if vd, seen := v.verdicts[fn]; seen {
		if !vd.done {
			return &verdict{done: true, clean: true} // on the recursion stack
		}
		return vd
	}
	vd := &verdict{clean: true}
	v.verdicts[fn] = vd
	if info.Decl.Body != nil {
		ctx := &fnCtx{fset: info.Pkg.Fset, info: info.Pkg.TypesInfo, file: info.File}
		v.scan(ctx, info.Decl.Body, func(pos token.Pos, msg string) bool {
			if analysis.FileLineDirective(ctx.fset, ctx.file, pos, "allocok") {
				return true // suppressed in the callee: acknowledged, keep scanning
			}
			vd.clean = false
			vd.pos = pos
			vd.msg = msg
			return false // first violation decides the verdict
		})
	} else {
		// Body elsewhere (assembly): unprovable.
		vd.clean = false
		vd.pos = info.Decl.Pos()
		vd.msg = "no Go body to verify"
	}
	vd.done = true
	return vd
}

// callee resolves the *types.Func a call invokes, or nil for dynamic calls.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// qualName renders a function as pkgpath.Name or (recv).Name for messages.
func qualName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), nil) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}
