package allocfree_test

import (
	"testing"

	"dcsketch/internal/analysis/allocfree"
	"dcsketch/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "allocfree")
}
