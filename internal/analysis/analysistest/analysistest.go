// Package analysistest runs an analyzer over golden test packages and checks
// its diagnostics against "// want" comment expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A test package lives at testdata/src/<path> relative to the calling test.
// Imports between testdata packages resolve GOPATH-style within testdata/src.
// Each line that should trigger a diagnostic carries a comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every reported diagnostic must match one expectation on its line, and every
// expectation must be matched by exactly one diagnostic.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dcsketch/internal/analysis"
)

// Run loads testdata/src/<path> (plus any testdata-local imports), applies
// the analyzer to the named package, and verifies its diagnostics against the
// package's "// want" expectations.
func Run(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	dirs := map[string]string{}
	err = filepath.WalkDir(srcRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if rel, rerr := filepath.Rel(srcRoot, p); rerr == nil && rel != "." {
				dirs[filepath.ToSlash(rel)] = p
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", srcRoot, err)
	}
	pkgs, err := analysis.LoadTree(dirs)
	if err != nil {
		t.Fatalf("load testdata: %v", err)
	}
	var target *analysis.Package
	for _, p := range pkgs {
		if p.Path == path {
			target = p
		}
	}
	if target == nil {
		t.Fatalf("package %q not found under %s", path, srcRoot)
	}

	diags, err := analysis.Run(a, target, analysis.NewModule(pkgs))
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	// Suppressed diagnostics are acknowledged escapes, not findings: a
	// "//lint:<directive>" on the construct's line must make the "// want"
	// expectation unnecessary, which is exactly what the suppression golden
	// packages assert.
	actionable := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			actionable = append(actionable, d)
		}
	}
	checkExpectations(t, target, actionable)
}

// expectation is one "// want" regexp, keyed by file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range parseWant(t, c.Text, pos) {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: pat})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// matchWant finds an unmatched expectation on the diagnostic's line whose
// regexp matches the message.
func matchWant(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// parseWant extracts the quoted regexps from a `// want "..." "..."` comment.
func parseWant(t *testing.T, text string, pos token.Position) []*regexp.Regexp {
	t.Helper()
	body, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil
	}
	var pats []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s: malformed want comment %q", pos, text)
		}
		end := quotedEnd(rest)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern in %q", pos, text)
		}
		lit := rest[:end+1]
		rest = strings.TrimSpace(rest[end+1:])
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(s)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
		}
		pats = append(pats, re)
	}
	if len(pats) == 0 {
		t.Fatalf("%s: want comment with no patterns: %q", pos, text)
	}
	return pats
}

// quotedEnd returns the index of the closing quote of a leading quoted Go
// string literal (double- or back-quoted), honoring backslash escapes in the
// former.
func quotedEnd(s string) int {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if quote == '"' {
				i++
			}
		case quote:
			return i
		}
	}
	return -1
}
