package analysis

import (
	"go/ast"
	"go/types"
)

// Module indexes every package of one load so analyzers can reason across
// package boundaries: given the types.Object of a called function, FuncDecl
// returns its declaration together with the package and file it lives in.
// This is the shared substrate of allocfree's intra-module call-graph proof.
type Module struct {
	packages []*Package
	funcs    map[types.Object]*FuncInfo
}

// FuncInfo locates one function or method declaration inside the module.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File
}

// NewModule indexes the given packages (typically the full LoadModule or
// LoadTree result). All packages must share one token.FileSet, which the
// loader guarantees.
func NewModule(pkgs []*Package) *Module {
	m := &Module{packages: pkgs, funcs: map[types.Object]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name == nil {
					continue
				}
				obj := pkg.TypesInfo.Defs[fn.Name]
				if obj == nil {
					continue
				}
				m.funcs[obj] = &FuncInfo{Decl: fn, Pkg: pkg, File: file}
			}
		}
	}
	return m
}

// FuncDecl returns the declaration of the named function object, or nil when
// the object is not declared in any indexed package (standard library,
// assembly stubs, interface methods).
func (m *Module) FuncDecl(obj types.Object) *FuncInfo {
	if m == nil || obj == nil {
		return nil
	}
	return m.funcs[obj]
}

// Packages returns the indexed packages in load order.
func (m *Module) Packages() []*Package {
	if m == nil {
		return nil
	}
	return m.packages
}
