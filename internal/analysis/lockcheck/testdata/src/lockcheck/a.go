// Package lockcheck is golden-test input: a struct with mutex-guarded
// fields exercised by correctly and incorrectly locked methods.
package lockcheck

import "sync"

// S carries guarded state.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex

	// count is some counter.
	// guarded by mu
	count int

	items map[string]int // guarded by rw

	free int // unguarded: never reported
}

// NewS builds an S; composite-literal keys are not field accesses.
func NewS() *S {
	return &S{items: map[string]int{}}
}

func (s *S) locked() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
}

func (s *S) lockedDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *S) unguardedWrite() {
	s.count++ // want `write to s.count without holding s.mu`
}

func (s *S) unguardedRead() int {
	return s.count // want `read of s.count without holding s.mu`
}

func (s *S) afterUnlock() {
	s.mu.Lock()
	s.count = 1
	s.mu.Unlock()
	s.count = 2 // want `write to s.count without holding s.mu`
}

// helper is documented as called with mu held.
//
//lint:locked mu
func (s *S) helper() int { return s.count }

func (s *S) readLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.items["a"]
}

func (s *S) writeUnderReadLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.items["a"] = 1 // want `write to s.items guarded by s.rw while holding only the read lock`
}

func (s *S) writeLock() {
	s.rw.Lock()
	defer s.rw.Unlock()
	s.items["a"] = 1
}

func (s *S) freeAccess() int {
	s.free = 9
	return s.free
}

func (s *S) suppressed() {
	s.count = 0 //lint:lockok single-threaded constructor path
}

func external(s *S) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func externalBad(s *S) int {
	return s.count // want `read of s.count without holding s.mu`
}
