package lockcheck_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "lockcheck")
}
