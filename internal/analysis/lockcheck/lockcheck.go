// Package lockcheck implements the sketchlint analyzer enforcing
// "// guarded by <mu>" field annotations: a struct field whose declaration
// comment names a sibling mutex field may only be read or written on local
// paths where that mutex is held.
//
// The sketch data structures are documented single-writer ("wrap it in a
// mutex or use one sketch per goroutine and Merge", internal/dcs), and the
// daemon layers (internal/server, internal/monitor) uphold that with
// mutex-guarded state. lockcheck keeps those contracts true as the code
// grows: it tracks, in source order within each function body, calls to
// <base>.<mu>.Lock/RLock/Unlock/RUnlock (including deferred unlocks, which
// hold to function exit) and reports guarded-field accesses performed while
// the named mutex is not held.
//
// Two refinements:
//
//   - sync.RWMutex read locks permit only reads; a write access (assignment,
//     compound assignment, ++/--, or address-taking) under RLock alone is
//     still reported.
//   - a function whose doc comment carries "//lint:locked <mu>" is assumed
//     to be called with the receiver's <mu> held (for internal helpers whose
//     callers lock).
//
// The analysis is deliberately flow-insensitive across branches (a lock
// acquired inside an if-arm counts for subsequent statements); it trades
// soundness for near-zero false positives, the right balance for an
// invariant checker that gates CI.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"

	"dcsketch/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "report accesses to '// guarded by <mu>' fields without the named mutex held on the local path",
	Directive: "lockok",
	Run:       run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) error {
	guards := guardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// guardedFields maps each annotated struct field object to the name of its
// guarding sibling mutex field.
func guardedFields(pass *analysis.Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's "guarded by <mu>"
// doc or trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockState tracks, per "<base>.<mu>" key, exclusive and shared hold depth.
type lockState struct {
	excl   map[string]int
	shared map[string]int
}

func (ls *lockState) held(key string) bool      { return ls.excl[key] > 0 || ls.shared[key] > 0 }
func (ls *lockState) heldWrite(key string) bool { return ls.excl[key] > 0 }

// checkFunc walks one function body in source order, maintaining lock state
// and reporting unguarded accesses.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	ls := &lockState{excl: map[string]int{}, shared: map[string]int{}}

	// "//lint:locked mu" pre-holds the receiver's mutex.
	if mu, ok := analysis.DocDirectiveArg(fn.Doc, "locked"); ok && fn.Recv != nil && len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
		ls.excl[fn.Recv.List[0].Names[0].Name+"."+mu]++
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock releases at function exit, not here:
			// record a deferred Lock (rare but possible) and ignore
			// deferred Unlocks so the mutex stays held for the rest of
			// the body.
			if key, op, ok := lockCall(pass, n.Call); ok {
				switch op {
				case "Lock":
					ls.excl[key]++
				case "RLock":
					ls.shared[key]++
				}
			}
			return false // don't double-count the inner call expression
		case *ast.CallExpr:
			if key, op, ok := lockCall(pass, n); ok {
				switch op {
				case "Lock":
					ls.excl[key]++
				case "Unlock":
					if ls.excl[key] > 0 {
						ls.excl[key]--
					}
				case "RLock":
					ls.shared[key]++
				case "RUnlock":
					if ls.shared[key] > 0 {
						ls.shared[key]--
					}
				}
				return false
			}
		case *ast.SelectorExpr:
			checkAccess(pass, fn, n, guards, ls)
		}
		return true
	})
}

// checkAccess reports sel if it accesses a guarded field while its mutex is
// not held (or only read-held for a write access).
func checkAccess(pass *analysis.Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr, guards map[types.Object]string, ls *lockState) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	mu, guarded := guards[obj]
	if !guarded {
		return
	}
	base := analysis.ExprString(pass.Fset, sel.X)
	key := base + "." + mu
	write := isWriteContext(fn.Body, sel)
	if write && !ls.heldWrite(key) {
		if ls.held(key) {
			pass.Reportf(sel.Pos(), "write to %s.%s guarded by %s while holding only the read lock", base, sel.Sel.Name, key)
			return
		}
		pass.Reportf(sel.Pos(), "write to %s.%s without holding %s (field is '// guarded by %s')", base, sel.Sel.Name, key, mu)
		return
	}
	if !write && !ls.held(key) {
		pass.Reportf(sel.Pos(), "read of %s.%s without holding %s (field is '// guarded by %s')", base, sel.Sel.Name, key, mu)
	}
}

// lockCall recognizes <base>.<mu>.Lock/Unlock/RLock/RUnlock() and returns
// the "<base>.<mu>" key and operation name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	// The receiver must be a sync (RW)Mutex-typed expression.
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil || !isMutexType(t) {
		return "", "", false
	}
	return analysis.ExprString(pass.Fset, sel.X), op, true
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// one.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isWriteContext reports whether sel appears as a write target: on the left
// of an assignment, as an IncDec operand, or with its address taken.
func isWriteContext(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if containsExpr(lhs, sel) {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if containsExpr(n.X, sel) {
				write = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" && containsExpr(n.X, sel) {
				write = true
			}
		}
		return !write
	})
	return write
}

// containsExpr reports whether needle is the expression root (possibly
// parenthesized) of hay.
func containsExpr(hay ast.Expr, needle *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(hay, func(n ast.Node) bool {
		if n == ast.Node(needle) {
			found = true
		}
		return !found
	})
	return found
}
