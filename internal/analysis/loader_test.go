package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoadModule loads the enclosing module and checks that core packages
// come back parsed, type-checked, and dependency-ordered.
func TestLoadModule(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Abs(root); err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string]int{}
	for i, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded without types or files", p.Path)
		}
		index[p.Path] = i
	}
	for _, want := range []string{"dcsketch", "dcsketch/internal/dcs", "dcsketch/internal/tdcs", "dcsketch/internal/wire", "dcsketch/cmd/sketchlint"} {
		if _, ok := index[want]; !ok {
			t.Errorf("package %s not loaded", want)
		}
	}
	// Dependency order: dcs before tdcs before the root package.
	if !(index["dcsketch/internal/dcs"] < index["dcsketch/internal/tdcs"] && index["dcsketch/internal/tdcs"] < index["dcsketch"]) {
		t.Errorf("packages not in dependency order: dcs=%d tdcs=%d root=%d",
			index["dcsketch/internal/dcs"], index["dcsketch/internal/tdcs"], index["dcsketch"])
	}
}

// TestModulePathErrors covers go.mod discovery failure modes.
func TestModulePathErrors(t *testing.T) {
	if _, err := modulePath(filepath.Join(t.TempDir(), "go.mod")); err == nil {
		t.Error("expected error for missing go.mod")
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Error("expected error for rootless directory")
	}
}
