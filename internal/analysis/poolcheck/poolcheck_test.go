package poolcheck_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, poolcheck.Analyzer, "poolcheck")
}
