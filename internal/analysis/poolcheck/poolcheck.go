// Package poolcheck implements the sketchlint analyzer enforcing the
// sync.Pool discipline the allocation-free ingestion path depends on. The
// pipeline Batcher and the detector's rekey buffer both ride pools; a leaked
// Get regrows the pool's steady state until every batch allocates again, and
// a buffer Put back full resurfaces stale key-deltas on the next Get.
//
// Within each function, for every pool p (identified syntactically by the
// receiver expression of a (*sync.Pool).Get call):
//
//   - every p.Get() must be matched by a p.Put(...) in the same function,
//     unless the function's doc comment carries "//lint:poolown <reason>"
//     declaring a deliberate ownership handoff (the Batcher staging path,
//     which Puts from Flush);
//   - no return statement may sit between the Get and the first Put — that
//     path leaks the buffer (deferred Puts cover every path and are exempt);
//   - a Put whose argument is a slice (or pointer to slice) must be preceded
//     by a length reset — an assignment of a zero-length reslice (x[:0]) to
//     the buffer — so the next Get starts empty instead of replaying stale
//     contents.
//
// Escape hatch: "//lint:poolok <reason>" on the offending line, for Puts of
// buffers that are provably empty by construction (the Flush drain loop).
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the poolcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "poolcheck",
	Doc:       "enforce sync.Pool Get/Put balance, leak-free return paths, and length-reset before Put",
	Directive: "poolok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// poolCall is one Get or Put call site.
type poolCall struct {
	call     *ast.CallExpr
	pool     string // receiver expression, rendered
	deferred bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var gets, puts []poolCall
	var returns []*ast.ReturnStmt
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			name, pool := poolMethod(pass, n)
			switch name {
			case "Get":
				gets = append(gets, poolCall{call: n, pool: pool})
			case "Put":
				puts = append(puts, poolCall{call: n, pool: pool, deferred: deferred[n]})
			}
		}
		return true
	})
	if len(gets) == 0 && len(puts) == 0 {
		return
	}

	_, handoff := analysis.DocDirective(fn.Doc, "poolown")
	for _, get := range gets {
		if handoff {
			continue
		}
		first := token.NoPos
		covered := false
		for _, put := range puts {
			if put.pool != get.pool {
				continue
			}
			if put.deferred {
				covered = true
			}
			if first == token.NoPos || put.call.Pos() < first {
				first = put.call.Pos()
			}
		}
		if first == token.NoPos {
			pass.Reportf(get.call.Pos(),
				"%s.Get has no matching %s.Put in this function (declare the handoff with //lint:poolown <reason> if ownership leaves here)",
				get.pool, get.pool)
			continue
		}
		if covered {
			continue // a deferred Put runs on every path
		}
		for _, ret := range returns {
			if ret.Pos() > get.call.End() && ret.End() < first {
				pass.Reportf(ret.Pos(),
					"return between %s.Get and %s.Put leaks the pooled buffer on this path",
					get.pool, get.pool)
			}
		}
	}

	for _, put := range puts {
		if len(put.call.Args) != 1 {
			continue
		}
		arg := put.call.Args[0]
		target, isSlice := sliceTarget(pass, arg)
		if !isSlice {
			continue
		}
		if !resetBefore(pass, fn.Body, target, put) {
			pass.Reportf(put.call.Pos(),
				"%s.Put of buffer %s without a length reset (%s = %s[:0] or equivalent) — the next Get replays stale contents",
				put.pool, target, target, target)
		}
	}
}

// poolMethod classifies a call as (*sync.Pool).Get or Put and renders the
// pool's receiver expression; name is "" otherwise.
func poolMethod(pass *analysis.Pass, call *ast.CallExpr) (name, pool string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	if full := fn.FullName(); full != "(*sync.Pool).Get" && full != "(*sync.Pool).Put" {
		return "", ""
	}
	return fn.Name(), analysis.ExprString(pass.Fset, ast.Unparen(sel.X))
}

// sliceTarget renders the buffer expression a Put argument designates when it
// is a slice or a pointer to one: Put(buf) resets "buf", Put(bp) with
// bp *[]T resets "*bp".
func sliceTarget(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return "", false
	}
	expr := analysis.ExprString(pass.Fset, ast.Unparen(arg))
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		return expr, true
	case *types.Pointer:
		if _, elemSlice := t.Elem().Underlying().(*types.Slice); elemSlice {
			return "*" + expr, true
		}
	}
	return "", false
}

// resetBefore reports whether an assignment of a zero-length reslice to
// target occurs before the Put (anywhere in the function for deferred Puts,
// which run last regardless of where they appear).
func resetBefore(pass *analysis.Pass, body ast.Node, target string, put poolCall) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if !put.deferred && as.Pos() > put.call.Pos() {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if analysis.ExprString(pass.Fset, ast.Unparen(lhs)) != target {
				continue
			}
			if isEmptyReslice(as.Rhs[i]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isEmptyReslice matches x[:0] (a zero-length reslice of any buffer).
func isEmptyReslice(e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return false
	}
	lit, ok := ast.Unparen(sl.High).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}
