// Package poolcheck is the golden package for the poolcheck analyzer.
package poolcheck

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var objPool sync.Pool

type conn struct{ n int }

var connPool = sync.Pool{New: func() any { return new(conn) }}

func use(b []byte) {}

// --- true positives ---

func leak() *[]byte {
	bp := bufPool.Get().(*[]byte) // want `bufPool\.Get has no matching bufPool\.Put in this function`
	return bp
}

func earlyReturn(fail bool) int {
	bp := bufPool.Get().(*[]byte)
	if fail {
		return 0 // want `return between bufPool\.Get and bufPool\.Put leaks the pooled buffer on this path`
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
	return 1
}

func noReset() {
	bp := bufPool.Get().(*[]byte)
	*bp = append(*bp, 1)
	bufPool.Put(bp) // want `bufPool\.Put of buffer \*bp without a length reset`
}

func crossPool() {
	bp := bufPool.Get().(*[]byte) // want `bufPool\.Get has no matching bufPool\.Put in this function`
	objPool.Put(bp)               // want `objPool\.Put of buffer \*bp without a length reset`
}

// --- true negatives ---

func balanced() {
	bp := bufPool.Get().(*[]byte)
	*bp = append(*bp, 1)
	use(*bp)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// deferredPut covers every return path; the reset may appear anywhere.
func deferredPut(fail bool) int {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	if fail {
		return 0
	}
	*bp = append(*bp, 2)
	*bp = (*bp)[:0]
	return 1
}

// flush Puts buffers it never Got (the Batcher drain side): orphan Puts are
// fine as long as they reset.
func flush(staged []*[]byte) {
	for _, bp := range staged {
		*bp = (*bp)[:0]
		bufPool.Put(bp)
	}
}

// structPool Puts a non-slice object: no reset requirement applies.
func structPool() {
	c := connPool.Get().(*conn)
	c.n++
	connPool.Put(c)
}

// --- ownership handoff ---

// stage mirrors Batcher.UpdateKey: the buffer moves to a staging area and a
// later Flush returns it to the pool.
//
//lint:poolown buffer ownership transfers to the staging queue until Flush
func stage() *[]byte {
	bp := bufPool.Get().(*[]byte)
	return bp
}

// --- suppression ---

// flushEmpty asserts //lint:poolok removes the reset diagnostic (no want).
func flushEmpty(staged []*[]byte) {
	for _, bp := range staged {
		bufPool.Put(bp) //lint:poolok drained buffers are empty by construction
	}
}

// staleOK carries a suppression on a line with nothing to suppress; the
// analyzer must stay silent rather than misapply it.
func staleOK() {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0] //lint:poolok nothing is reported on this line
	bufPool.Put(bp)
}
