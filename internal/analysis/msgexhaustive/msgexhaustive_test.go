package msgexhaustive_test

import (
	"path/filepath"
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/msgexhaustive"
)

func TestMsgExhaustive(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("testdata", "smoke.sh"))
	if err != nil {
		t.Fatal(err)
	}
	msgexhaustive.SmokeScript = abs
	defer func() { msgexhaustive.SmokeScript = "" }()
	analysistest.Run(t, msgexhaustive.Analyzer, "msgwire")
}
