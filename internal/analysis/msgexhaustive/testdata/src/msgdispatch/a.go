// Package msgdispatch provides the dispatch arms the msgexhaustive golden
// test expects to find outside the declaring package. MsgData is
// deliberately unrouted.
package msgdispatch

import "msgwire"

// Dispatch routes one frame type.
func Dispatch(t msgwire.MsgType) string {
	switch t {
	case msgwire.MsgPing:
		return "ping"
	case msgwire.MsgPong:
		return "pong"
	case msgwire.MsgStat:
		return "stat"
	case msgwire.MsgDrop:
		return "drop"
	case msgwire.MsgRaw:
		return "raw"
	}
	return ""
}

// IsCurrent reports whether t is not the legacy type — an equality
// dispatch arm for MsgOld.
func IsCurrent(t msgwire.MsgType) bool { return t != msgwire.MsgOld }
