// Package msgwire is the golden input for the msgexhaustive analyzer: a
// miniature wire protocol whose constants are each missing exactly one
// piece of coverage.
package msgwire

// MsgType identifies a frame's payload.
type MsgType uint8 // want `fuzz target FuzzDecodeData is missing from the fuzz smoke list`

// Frame types. MsgPing is fully wired; each of the others is missing one
// obligation, and MsgRaw/MsgOld carry suppressions (one live, one stale).
const (
	MsgPing MsgType = iota + 1
	MsgPong         // want `has no String case`
	MsgData         // want `has no dispatch arm`
	MsgStat         // want `has no encode\+decode pair \(want AppendStat and DecodeStat\)`
	MsgDrop         // want `\(AppendDrop/DecodeDrop\) is not exercised by the package tests`
	MsgRaw          //lint:msgok raw frames are opaque pass-through by design
	MsgOld          //lint:msgok stale: MsgOld is fully covered, nothing to suppress
)

// MsgCount sizes per-type counter arrays; as a plain int constant it is
// outside the per-constant obligations.
const MsgCount = int(MsgOld) + 1

// String returns the frame-type name. MsgPong's case is deliberately
// missing.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgData:
		return "data"
	case MsgStat:
		return "stat"
	case MsgDrop:
		return "drop"
	case MsgRaw:
		return "raw"
	case MsgOld:
		return "old"
	}
	return "unknown"
}

// AppendPing encodes a ping payload.
func AppendPing(buf []byte) []byte { return append(buf, 1) }

// DecodePing decodes a ping payload.
func DecodePing(p []byte) bool { return len(p) == 1 }

// AppendPong encodes a pong payload.
func AppendPong(buf []byte) []byte { return append(buf, 2) }

// DecodePong decodes a pong payload.
func DecodePong(p []byte) bool { return len(p) == 1 }

// AppendData encodes a data payload.
func AppendData(buf []byte, b []byte) []byte { return append(buf, b...) }

// DecodeData decodes a data payload.
func DecodeData(p []byte) []byte { return p }

// AppendDrop encodes a drop payload.
func AppendDrop(buf []byte) []byte { return buf }

// DecodeDrop decodes a drop payload.
func DecodeDrop(p []byte) bool { return len(p) == 0 }

// AppendOld encodes a legacy payload.
func AppendOld(buf []byte) []byte { return buf }

// DecodeOld decodes a legacy payload.
func DecodeOld(p []byte) bool { return len(p) == 0 }
