package msgwire

import "testing"

// TestRoundTrips exercises the encode+decode pairs; AppendDrop/DecodeDrop
// are deliberately unexercised so the coverage rule has a defect to find.
func TestRoundTrips(t *testing.T) {
	if DecodePing(AppendPing(nil)) == false {
		t.Fatal("ping")
	}
	if DecodePong(AppendPong(nil)) == false {
		t.Fatal("pong")
	}
	if len(DecodeData(AppendData(nil, []byte{1}))) != 1 {
		t.Fatal("data")
	}
	if !DecodeOld(AppendOld(nil)) {
		t.Fatal("old")
	}
}

// FuzzDecodePing is listed in the smoke fixture.
func FuzzDecodePing(f *testing.F) {
	f.Fuzz(func(t *testing.T, p []byte) { DecodePing(p) })
}

// FuzzDecodeData is deliberately absent from the smoke fixture.
func FuzzDecodeData(f *testing.F) {
	f.Fuzz(func(t *testing.T, p []byte) { DecodeData(p) })
}
