#!/usr/bin/env bash
# Fuzz smoke fixture for the msgexhaustive golden test: only the ping
# decoder's fuzz target is listed; the data decoder's is deliberately
# absent so the analyzer has a defect to find.
go test -run=NONE -fuzz='FuzzDecodePing$' -fuzztime=5s ./msgwire
