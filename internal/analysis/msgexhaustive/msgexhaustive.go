// Package msgexhaustive implements the sketchlint analyzer enforcing
// wire-protocol exhaustiveness: every constant of a package's MsgType
// enumeration must be a fully wired citizen of the protocol, so PR-5-style
// protocol growth cannot silently skip a handler.
//
// For a package declaring an integer `type MsgType`, each MsgType-typed
// constant Msg<X> must have:
//
//   - an encode+decode pair: package functions Append<X> and Decode<X>;
//   - round-trip coverage: both names referenced from the package's own
//     _test.go files;
//   - a String case: a `case Msg<X>:` arm in MsgType's String method;
//   - a dispatch arm: a case in some MsgType-tagged switch, or an ==/!=
//     comparison against it, anywhere in the module outside the String
//     method (the server/client/export routing layers).
//
// Additionally, every Fuzz* function in the declaring package's test files
// must be listed in the CI fuzz smoke script (ci.sh at the module root, or
// SmokeScript when overridden), reported at the MsgType declaration; a
// decoder with a fuzz target that CI never runs is unprotected protocol
// surface.
//
// Constants that are deliberately asymmetric (empty payloads, opaque
// pass-through frames) carry //lint:msgok <reason> on their declaration
// line; like every suppression it stays in the sketchlint -json inventory.
package msgexhaustive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the msgexhaustive analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "msgexhaustive",
	Doc:       "every MsgType constant needs an encode+decode pair with tests, a String case, a dispatch arm, and fuzz smoke coverage",
	Directive: "msgok",
	Run:       run,
}

// SmokeScript overrides the fuzz smoke script consulted by the fuzz-target
// rule; when empty, ci.sh at the enclosing module root is used. Golden
// tests point it at a fixture so they do not depend on the real CI script.
var SmokeScript string

func run(pass *analysis.Pass) error {
	tn, ok := pass.Pkg.Scope().Lookup("MsgType").(*types.TypeName)
	if !ok {
		return nil
	}
	basic, ok := tn.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}

	consts := msgTypeConsts(pass, tn)
	if len(consts) == 0 {
		return nil
	}
	typePos := typeDeclPos(pass, tn)
	stringBody, stringCases := stringMethod(pass, tn)
	testIdents, fuzzFuncs := parseTestFiles(pass)
	dispatched := dispatchArms(pass, tn, stringBody)

	for _, c := range consts {
		base := strings.TrimPrefix(c.Name(), "Msg")
		appendName, decodeName := "Append"+base, "Decode"+base
		_, hasAppend := pass.Pkg.Scope().Lookup(appendName).(*types.Func)
		_, hasDecode := pass.Pkg.Scope().Lookup(decodeName).(*types.Func)
		if !hasAppend || !hasDecode {
			pass.Reportf(c.Pos(), "MsgType constant %s has no encode+decode pair (want %s and %s)", c.Name(), appendName, decodeName)
		} else if !testIdents[appendName] || !testIdents[decodeName] {
			pass.Reportf(c.Pos(), "encode+decode pair for %s (%s/%s) is not exercised by the package tests", c.Name(), appendName, decodeName)
		}
		if stringBody == nil {
			// Reported once below, at the type declaration.
		} else if !stringCases[c] {
			pass.Reportf(c.Pos(), "MsgType constant %s has no String case (telemetry labels would fall back to unknown)", c.Name())
		}
		if !dispatched[c] {
			pass.Reportf(c.Pos(), "MsgType constant %s has no dispatch arm anywhere in the module (no MsgType switch case or ==/!= comparison)", c.Name())
		}
	}
	if stringBody == nil && typePos.IsValid() {
		pass.Reportf(typePos, "type MsgType has no String method; telemetry labels need one")
	}

	checkFuzzSmoke(pass, typePos, fuzzFuncs)
	return nil
}

// msgTypeConsts returns the package's MsgType-typed constants in
// declaration order. Derived constants of other types (MsgTypeCount-style
// sizing constants) are excluded by the type check.
func msgTypeConsts(pass *analysis.Pass, tn *types.TypeName) []*types.Const {
	scope := pass.Pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), tn.Type()) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// typeDeclPos locates the MsgType type declaration in the pass's files.
func typeDeclPos(pass *analysis.Pass, tn *types.TypeName) token.Pos {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && pass.TypesInfo.Defs[ts.Name] == tn {
					return ts.Name.Pos()
				}
			}
		}
	}
	return token.NoPos
}

// stringMethod finds MsgType's String method and the set of constants its
// switch arms cover.
func stringMethod(pass *analysis.Pass, tn *types.TypeName) (*ast.BlockStmt, map[types.Object]bool) {
	cases := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "String" || fn.Recv == nil || fn.Body == nil {
				continue
			}
			fobj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fobj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if !types.Identical(t, tn.Type()) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					for obj := range usedConsts(pass.TypesInfo, e) {
						cases[obj] = true
					}
				}
				return true
			})
			return fn.Body, cases
		}
	}
	return nil, cases
}

// dispatchArms scans the whole module for protocol routing: constants used
// in the arms of MsgType-tagged switches or in ==/!= comparisons. The
// String method's own switch is excluded — pretty-printing is not routing.
func dispatchArms(pass *analysis.Pass, tn *types.TypeName, stringBody *ast.BlockStmt) map[types.Object]bool {
	dispatched := map[types.Object]bool{}
	for _, pkg := range pass.ModulePackages() {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if stringBody != nil && n == ast.Node(stringBody) {
					return false
				}
				switch n := n.(type) {
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					t := info.Types[n.Tag].Type
					if t == nil || !types.Identical(t, tn.Type()) {
						return true
					}
					for _, stmt := range n.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							for obj := range usedConsts(info, e) {
								dispatched[obj] = true
							}
						}
					}
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for obj := range usedConsts(info, n.X) {
						dispatched[obj] = true
					}
					for obj := range usedConsts(info, n.Y) {
						dispatched[obj] = true
					}
				}
				return true
			})
		}
	}
	return dispatched
}

// usedConsts collects the constant objects referenced inside e.
func usedConsts(info *types.Info, e ast.Expr) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := info.Uses[id].(*types.Const); ok {
				out[c] = true
			}
		}
		return true
	})
	return out
}

// parseTestFiles parses the package directory's _test.go files (syntax
// only; test files are outside the type-checked load) and returns the set
// of identifiers they mention plus their declared Fuzz* functions.
func parseTestFiles(pass *analysis.Pass) (idents map[string]bool, fuzzFuncs []string) {
	idents = map[string]bool{}
	if len(pass.Files) == 0 {
		return idents, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return idents, nil
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(pass.Fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "Fuzz") {
				fuzzFuncs = append(fuzzFuncs, fn.Name.Name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				idents[id.Name] = true
			}
			return true
		})
	}
	sort.Strings(fuzzFuncs)
	return idents, fuzzFuncs
}

// checkFuzzSmoke verifies every package fuzz target appears in the CI fuzz
// smoke script. Findings anchor at the MsgType declaration: the fix is in
// CI, not at any one fuzz function.
func checkFuzzSmoke(pass *analysis.Pass, typePos token.Pos, fuzzFuncs []string) {
	if len(fuzzFuncs) == 0 || !typePos.IsValid() {
		return
	}
	script := SmokeScript
	if script == "" {
		dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
		root, err := analysis.FindModuleRoot(dir)
		if err != nil {
			return
		}
		script = filepath.Join(root, "ci.sh")
	}
	content, err := os.ReadFile(script)
	if err != nil {
		return
	}
	for _, name := range fuzzFuncs {
		re := regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`)
		if !re.Match(content) {
			pass.Reportf(typePos, "fuzz target %s is missing from the fuzz smoke list in %s", name, filepath.Base(script))
		}
	}
}
