// Package atomicfield implements the sketchlint analyzer enforcing atomics
// discipline: a struct field or package variable touched through sync/atomic
// anywhere in the module must be touched that way everywhere. One plain
// read beside an atomic.AddInt64 is a torn read on 32-bit platforms and a
// data race on all of them — exactly the bug class the telemetry counters
// and the documented single-writer claims must never regress into.
//
// Three rules:
//
//   - Mixed access: a field/variable that is the operand of a sync/atomic
//     call (atomic.AddInt64(&x, ...) and friends) must not be read or
//     written non-atomically anywhere in the module. Composite-literal keys
//     are exempt (initialization before publication).
//   - Alignment: a plain (non-atomic.Int64-typed) field used with 64-bit
//     sync/atomic calls must sit at an 8-byte-aligned offset under 32-bit
//     layout rules (GOARCH=386), where int64 fields align to 4 bytes. The
//     typed atomic.Int64/Uint64 wrappers are always safe and preferred.
//   - Mixed discipline: a field carrying a '// guarded by <mu>' annotation
//     must not also be accessed atomically — pick the lock or the atomic,
//     not both.
//
// //lint:atomicok on the access line suppresses a reviewed finding (e.g. a
// deliberately approximate racy read).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "fields touched via sync/atomic must never be accessed non-atomically, and 64-bit atomics must be alignment-safe",
	Directive: "atomicok",
	Run:       run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// atomicUse records how a field or variable is touched atomically.
type atomicUse struct {
	is64 bool // some sync/atomic call on it is 64-bit
}

func run(pass *analysis.Pass) error {
	flagged := collectAtomicOperands(pass.ModulePackages())
	if len(flagged) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		checkFile(pass, file, flagged)
	}
	checkStructs(pass, flagged)
	return nil
}

// collectAtomicOperands finds every field or package variable passed by
// address to a sync/atomic function anywhere in the module.
func collectAtomicOperands(pkgs []*analysis.Package) map[types.Object]*atomicUse {
	flagged := map[types.Object]*atomicUse{}
	for _, pkg := range pkgs {
		info := pkg.TypesInfo
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := atomicFuncName(info, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				addr, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					return true
				}
				obj := operandObj(info, addr.X)
				if obj == nil {
					return true
				}
				u := flagged[obj]
				if u == nil {
					u = &atomicUse{}
					flagged[obj] = u
				}
				u.is64 = u.is64 || strings.Contains(name, "64")
				return true
			})
		}
	}
	return flagged
}

// atomicFuncName recognizes a call to a sync/atomic package function and
// returns its name.
func atomicFuncName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// operandObj resolves the expression under & to a field or package-variable
// object; locals are skipped (they cannot be shared without also being
// flagged where shared).
func operandObj(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			// Keep package-level variables, drop function locals.
			if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return nil
			}
		}
		return obj
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.ParenExpr:
		return operandObj(info, x.X)
	case *ast.IndexExpr:
		return nil // element of a slice/array: identity is per-index, skip
	}
	return nil
}

// checkFile reports every non-atomic use of a flagged object in file.
func checkFile(pass *analysis.Pass, file *ast.File, flagged map[types.Object]*atomicUse) {
	// skip marks identifier occurrences that are legitimate: operands of
	// sync/atomic calls and composite-literal keys (pre-publication init).
	skip := map[*ast.Ident]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, ok := atomicFuncName(pass.TypesInfo, n); ok && len(n.Args) > 0 {
				ast.Inspect(n.Args[0], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						skip[id] = true
					}
					return true
				})
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						skip[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isFlagged := flagged[obj]; !isFlagged {
			return true
		}
		pass.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access races with it (use sync/atomic or a typed atomic value)", objDisplay(obj))
		return true
	})
}

// checkStructs reports alignment hazards and discipline conflicts on the
// flagged fields declared in this pass's files.
func checkStructs(pass *analysis.Pass, flagged map[types.Object]*atomicUse) {
	// 32-bit layout is the strict case: int64 aligns to 4, so any 64-bit
	// atomic field not explicitly kept at an 8-byte offset can fault or
	// tear on GOARCH=386/arm.
	sizes := types.SizesFor("gc", "386")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn := pass.TypesInfo.Defs[ts.Name]
			if tn == nil {
				return true
			}
			structType, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, structType.NumFields())
			for i := range fields {
				fields[i] = structType.Field(i)
			}
			offsets := sizes.Offsetsof(fields)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					use, isFlagged := flagged[obj]
					if !isFlagged {
						continue
					}
					if m := guardedRe.FindStringSubmatch(fieldComments(field)); m != nil {
						pass.Reportf(name.Pos(), "field %s mixes '// guarded by %s' locking with sync/atomic access; pick one discipline", name.Name, m[1])
					}
					if use.is64 {
						for i, f := range fields {
							if f == obj && offsets[i]%8 != 0 {
								pass.Reportf(name.Pos(), "64-bit atomic field %s is not 8-byte aligned under 32-bit layout (offset %d); move it first in the struct or use atomic.Int64/Uint64", name.Name, offsets[i])
							}
						}
					}
				}
			}
			return true
		})
	}
}

// fieldComments joins a field's doc and trailing comments.
func fieldComments(field *ast.Field) string {
	var parts []string
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil {
			parts = append(parts, cg.Text())
		}
	}
	return strings.Join(parts, "\n")
}

// objDisplay renders a flagged object for diagnostics: Type.field for
// fields (when recoverable), pkg.name for package variables.
func objDisplay(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
