// Package atomicfield is the golden input for the atomicfield analyzer:
// mixed atomic/plain access, 64-bit misalignment, discipline conflicts,
// and suppressions.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

// counter mixes an atomic increment with a plain read.
type counter struct {
	hits int64
}

func (c *counter) inc() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) get() int64 {
	return c.hits // want `accessed with sync/atomic elsewhere`
}

// newCounter initializes the field in a composite literal, which happens
// before publication and is exempt.
func newCounter() *counter {
	return &counter{hits: 0}
}

// approx carries a reviewed suppression for a deliberately racy read.
func (c *counter) approx() int64 {
	return c.hits //lint:atomicok approximate read reviewed, staleness is acceptable here
}

// staleOK carries a suppression on a line with nothing to suppress; the
// analyzer must stay silent rather than misapply it.
func (c *counter) staleOK() {
	atomic.AddInt64(&c.hits, 1) //lint:atomicok nothing is reported on this line
}

// misaligned puts a 64-bit atomic after a bool: offset 4 under 32-bit
// layout, where 64-bit atomic access faults or tears.
type misaligned struct {
	flag bool
	n    int64 // want `not 8-byte aligned`
}

func (m *misaligned) bump() { atomic.AddInt64(&m.n, 1) }

// aligned keeps the 64-bit word first, which is safe on every layout.
type aligned struct {
	n    int64
	flag bool
}

func (a *aligned) bump() { atomic.AddInt64(&a.n, 1) }

// typed uses the typed atomic wrapper, which the runtime always aligns.
type typed struct {
	flag bool
	n    atomic.Int64
}

func (t *typed) bump() { t.n.Add(1) }

// mixed declares a lock discipline and then bypasses it atomically.
type mixed struct {
	mu sync.Mutex
	// guarded by mu
	n int64 // want `mixes '// guarded by mu' locking with sync/atomic access`
}

func (m *mixed) inc() { atomic.AddInt64(&m.n, 1) }

// total is a package-level variable with the same mixed-access defect.
var total int64

func addTotal(n int64) { atomic.AddInt64(&total, n) }

func readTotal() int64 {
	return total // want `accessed with sync/atomic elsewhere`
}
