package atomicfield_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "atomicfield")
}
