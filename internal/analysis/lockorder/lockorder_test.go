package lockorder_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockorder")
}
