// Package lockorderdep provides a cross-package lock for the lockorder
// golden test: the sibling package pins its own mutex before Dep.Mu and
// must be caught acquiring in the reverse order.
package lockorderdep

import "sync"

// Dep exposes its mutex so sibling packages can order against it.
type Dep struct {
	Mu sync.Mutex
}
