// Package lockorder is the golden input for the lockorder analyzer: seeded
// inverted lock pairs, sanctioned pins, transitive and cross-package
// acquisitions, reentrancy, and suppressions.
package lockorder

import (
	"sync"

	"lockorderdep"
)

// A and B are a deliberately inverted pair — the classic AB/BA deadlock —
// with no pin declaring a winner, so both acquisition sites report a cycle.
type A struct{ mu sync.Mutex }

// B pairs with A above.
type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle among lockorder\.A\.mu, lockorder\.B\.mu`
	defer b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock-order cycle among lockorder\.A\.mu, lockorder\.B\.mu`
	defer a.mu.Unlock()
}

// C is pinned before D: the single inverted acquisition in dc fails even
// though the graph holds no full cycle.
type C struct {
	//lint:lockorder before(D.mu)
	mu sync.Mutex
}

// D pairs with C above.
type D struct{ mu sync.Mutex }

func cd(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `declares lockorder\.C\.mu before lockorder\.D\.mu`
	c.mu.Unlock()
	d.mu.Unlock()
}

// E and F invert through helper calls: the cycle edges are recorded at the
// call sites via the transitive acquisition summaries.
type E struct{ mu sync.Mutex }

// F pairs with E above.
type F struct{ mu sync.Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

func lockE(e *E) {
	e.mu.Lock()
	e.mu.Unlock()
}

func ef(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f) // want `lock-order cycle among lockorder\.E\.mu, lockorder\.F\.mu`
}

func fe(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lockE(e) // want `lock-order cycle among lockorder\.E\.mu, lockorder\.F\.mu`
}

// R exercises reentrancy, directly and through a helper.
type R struct{ mu sync.Mutex }

func (r *R) outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `not reentrant`
	r.mu.Unlock()
}

func lockR(r *R) {
	r.mu.Lock()
	r.mu.Unlock()
}

func (r *R) nested() {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockR(r) // want `call to lockorder\.lockR acquires lockorder\.R\.mu while it is already held`
}

// G's helper documents the caller-holds contract with //lint:locked, so
// the h.mu acquisition inside it runs under g.mu — inverting H's pin.
type G struct{ mu sync.Mutex }

// H is pinned before G.
type H struct {
	//lint:lockorder before(G.mu)
	mu sync.Mutex
}

// helper runs with g.mu held by the caller.
//
//lint:locked mu
func (g *G) helper(h *H) {
	h.mu.Lock() // want `declares lockorder\.H\.mu before lockorder\.G\.mu`
	h.mu.Unlock()
}

// L and M: the callback literal registered under l.mu runs later in its
// own lock context, so the m.mu acquisition inside it must NOT become an
// L→M edge — otherwise registerReverse's M→L edge would fake a cycle.
type L struct {
	mu    sync.Mutex
	hooks []func()
}

// M pairs with L above.
type M struct{ mu sync.Mutex }

func register(l *L, m *M) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hooks = append(l.hooks, func() {
		m.mu.Lock()
		m.mu.Unlock()
	})
}

func registerReverse(l *L, m *M) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l.mu.Lock()
	l.mu.Unlock()
}

// X is pinned before the dependency package's lock; dx inverts it across
// the package boundary.
type X struct {
	//lint:lockorder before(lockorderdep.Dep.Mu)
	mu sync.Mutex
}

func xd(x *X, d *lockorderdep.Dep) {
	x.mu.Lock()
	d.Mu.Lock()
	d.Mu.Unlock()
	x.mu.Unlock()
}

func dx(x *X, d *lockorderdep.Dep) {
	d.Mu.Lock()
	x.mu.Lock() // want `declares lockorder\.X\.mu before lockorderdep\.Dep\.Mu`
	x.mu.Unlock()
	d.Mu.Unlock()
}

// U carries a pin naming a lock that does not exist.
type U struct {
	//lint:lockorder before(nosuch)
	mu sync.Mutex // want `names unknown lock "nosuch"`
}

// V carries a pin in the wrong grammar.
type V struct {
	//lint:lockorder after(mu)
	mu sync.Mutex // want `malformed //lint:lockorder directive`
}

// P and Q pin each other first — a contradiction reported at both pins.
type P struct {
	//lint:lockorder before(Q.mu)
	mu sync.Mutex // want `contradictory //lint:lockorder pins`
}

// Q pairs with P above.
type Q struct {
	//lint:lockorder before(P.mu)
	mu sync.Mutex // want `contradictory //lint:lockorder pins`
}

// S1 and S2 invert like A and B, but both sites carry reviewed
// //lint:orderok suppressions: the cycle stays out of CI while remaining
// in the -json inventory.
type S1 struct{ mu sync.Mutex }

// S2 pairs with S1 above.
type S2 struct{ mu sync.Mutex }

func s12(a *S1, b *S2) {
	a.mu.Lock()
	b.mu.Lock() //lint:orderok reviewed: fixture acknowledges the inversion
	b.mu.Unlock()
	a.mu.Unlock()
}

func s21(a *S1, b *S2) {
	b.mu.Lock()
	a.mu.Lock() //lint:orderok reviewed: fixture acknowledges the inversion
	a.mu.Unlock()
	b.mu.Unlock()
}

// staleOK carries a suppression on a line with nothing to suppress; the
// analyzer must stay silent rather than misapply it.
func staleOK(a *S1) {
	a.mu.Lock() //lint:orderok nothing is reported on this line
	a.mu.Unlock()
}
