// Package lockorder implements the sketchlint analyzer enforcing a global
// lock-acquisition order: it builds an inter-procedural lock-order graph
// from every mu.Lock()/RLock() call site in the module (following static
// calls through the Module index) and reports any potential cyclic
// ordering — the static shadow of an AB/BA deadlock.
//
// Locks are identified by their declaration: a sync.Mutex/RWMutex struct
// field or package-level variable, displayed as pkg.Type.field (or pkg.var).
// Acquiring lock B while holding lock A records the edge A → B; calling a
// module function that (transitively) acquires B while holding A records
// the same edge at the call site. A cycle among those edges means two
// goroutines can acquire the same locks in opposite orders.
//
// The sanctioned order is declared in the lock's declaration comment:
//
//	//lint:lockorder before(<lock>)
//
// pins "this lock is acquired before <lock>". <lock> is resolved as a
// sibling field name, Type.field, or pkg.Type.field. An observed edge that
// contradicts a pin is reported at the acquisition site even when the graph
// has no full cycle yet, so the first inverted acquisition fails CI rather
// than the second.
//
// Deliberate imprecision, tuned against false positives: function literals
// are analyzed as independent roots (callbacks and deferred closures run
// with their own lock context, not the registrar's), goroutine spawns do
// not propagate the spawner's held set (the child runs concurrently, so
// "held at spawn" is not an ordering), and the walk is flow-insensitive
// across branches exactly like lockcheck. //lint:orderok on the acquisition
// line suppresses a reviewed finding.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "build the module's lock-acquisition graph and report cyclic orderings and //lint:lockorder pin violations",
	Directive: "orderok",
	Run:       run,
}

// lock is one module lock: a mutex-typed struct field or package variable.
type lock struct {
	obj     types.Object
	pkg     string // package name (not path), for display and pin resolution
	typ     string // owning type name, "" for package-level variables
	field   string // field or variable name
	display string // pkg.typ.field or pkg.field
	pos     token.Pos
}

// pinDecl is one parsed //lint:lockorder before(<ref>) directive.
type pinDecl struct {
	owner *lock
	ref   string // the <ref> inside before(...), "" when malformed
	pos   token.Pos
}

// edge records one observed ordering: to was acquired while from was held.
// via names the called function when the acquisition is transitive.
type edge struct {
	from, to types.Object
	pos      token.Pos
	via      string
}

func run(pass *analysis.Pass) error {
	pkgs := pass.ModulePackages()
	locks, pins := collectLocks(pkgs)
	if len(locks) == 0 {
		return nil
	}
	b := &builder{
		pass:    pass,
		locks:   locks,
		acquire: map[types.Object]map[types.Object]bool{},
		state:   map[types.Object]int{},
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					b.analyzeFunc(pkg, fn)
				}
			}
		}
	}
	report(pass, locks, pins, b.edges)
	return nil
}

// collectLocks indexes every mutex-typed struct field and package-level
// variable in the module, together with their //lint:lockorder pins.
func collectLocks(pkgs []*analysis.Package) (map[types.Object]*lock, []pinDecl) {
	locks := map[types.Object]*lock{}
	var pins []pinDecl
	addPins := func(l *lock, groups ...*ast.CommentGroup) {
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				d, ok := analysis.ParseDirective(c.Text)
				if !ok || d.Name != "lockorder" {
					continue
				}
				pins = append(pins, pinDecl{owner: l, ref: pinRef(d.Args), pos: l.pos})
			}
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeSpec:
					st, ok := n.Type.(*ast.StructType)
					if !ok {
						return true
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							obj := pkg.TypesInfo.Defs[name]
							if obj == nil || !isMutexType(obj.Type()) {
								continue
							}
							l := &lock{
								obj: obj, pkg: pkg.Types.Name(), typ: n.Name.Name,
								field:   name.Name,
								display: pkg.Types.Name() + "." + n.Name.Name + "." + name.Name,
								pos:     name.Pos(),
							}
							locks[obj] = l
							addPins(l, field.Doc, field.Comment)
						}
					}
				case *ast.GenDecl:
					if n.Tok != token.VAR {
						return true
					}
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							obj := pkg.TypesInfo.Defs[name]
							if obj == nil || !isMutexType(obj.Type()) {
								continue
							}
							// Only package-level variables name module locks;
							// locals are invisible outside their function.
							if v, isVar := obj.(*types.Var); !isVar || v.Parent() != pkg.Types.Scope() {
								continue
							}
							l := &lock{
								obj: obj, pkg: pkg.Types.Name(), field: name.Name,
								display: pkg.Types.Name() + "." + name.Name,
								pos:     name.Pos(),
							}
							locks[obj] = l
							addPins(l, n.Doc, vs.Doc, vs.Comment)
						}
					}
				}
				return true
			})
		}
	}
	return locks, pins
}

// pinRef extracts <ref> from a "before(<ref>)" argument, or "" when the
// directive is malformed.
func pinRef(args []string) string {
	if len(args) != 1 {
		return ""
	}
	inner, ok := strings.CutPrefix(args[0], "before(")
	if !ok {
		return ""
	}
	inner, ok = strings.CutSuffix(inner, ")")
	if !ok || inner == "" {
		return ""
	}
	return inner
}

// resolveRef resolves a pin reference against the module's locks:
// "field" (sibling first, then unique module-wide), "Type.field", or
// "pkg.Type.field" ("pkg.var" for package variables). The error string is
// non-empty when the reference is unknown or ambiguous.
func resolveRef(locks map[types.Object]*lock, owner *lock, ref string) (*lock, string) {
	parts := strings.Split(ref, ".")
	ordered := sortedLocks(locks)
	var matches []*lock
	match := func(cond func(*lock) bool) {
		matches = matches[:0]
		for _, l := range ordered {
			if l.obj != owner.obj && cond(l) {
				matches = append(matches, l)
			}
		}
	}
	switch len(parts) {
	case 1:
		// Sibling fields of the owning type shadow the module-wide name.
		match(func(l *lock) bool {
			return l.pkg == owner.pkg && l.typ == owner.typ && l.field == parts[0]
		})
		if len(matches) == 1 {
			return matches[0], ""
		}
		match(func(l *lock) bool { return l.field == parts[0] })
	case 2:
		match(func(l *lock) bool {
			return (l.typ == parts[0] && l.field == parts[1]) ||
				(l.typ == "" && l.pkg == parts[0] && l.field == parts[1])
		})
	case 3:
		match(func(l *lock) bool {
			return l.pkg == parts[0] && l.typ == parts[1] && l.field == parts[2]
		})
	default:
		return nil, fmt.Sprintf("//lint:lockorder pin names unknown lock %q", ref)
	}
	switch len(matches) {
	case 0:
		return nil, fmt.Sprintf("//lint:lockorder pin names unknown lock %q", ref)
	case 1:
		return matches[0], ""
	}
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = m.display
	}
	return nil, fmt.Sprintf("//lint:lockorder pin %q is ambiguous (matches %s)", ref, strings.Join(names, ", "))
}

// sortedLocks returns the locks in deterministic display order.
func sortedLocks(locks map[types.Object]*lock) []*lock {
	out := make([]*lock, 0, len(locks))
	for _, l := range locks {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].display < out[j].display })
	return out
}

// builder accumulates ordering edges over every function body of the module.
type builder struct {
	pass  *analysis.Pass
	locks map[types.Object]*lock
	edges []edge

	// acquire memoizes, per module function, the set of locks its body (and
	// transitively its static module callees) acquires. state guards against
	// recursion through call cycles: 0 unvisited, 1 in progress, 2 done.
	acquire map[types.Object]map[types.Object]bool
	state   map[types.Object]int
}

// analyzeFunc walks one declared function, seeding held state from a
// "//lint:locked <mu>" doc directive (the caller-holds contract lockcheck
// already understands).
func (b *builder) analyzeFunc(pkg *analysis.Package, fn *ast.FuncDecl) {
	held := map[types.Object]int{}
	if mu, ok := analysis.DocDirectiveArg(fn.Doc, "locked"); ok {
		if obj := receiverField(pkg, fn, mu); obj != nil {
			if _, known := b.locks[obj]; known {
				held[obj]++
			}
		}
	}
	b.analyzeBody(pkg, fn.Body, held)
}

// analyzeBody walks a body in source order, maintaining the held multiset
// and recording ordering edges. Function literals are queued as fresh roots:
// they run with their own lock context (callbacks, deferred closures), so
// inheriting the enclosing holds would fabricate edges.
func (b *builder) analyzeBody(pkg *analysis.Package, body *ast.BlockStmt, held map[types.Object]int) {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.GoStmt:
			// The spawned goroutine runs concurrently; the spawner's held
			// set is not an ordering constraint on it. Literal bodies are
			// still analyzed as roots via the queue.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
			return false
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
				return false
			}
			// A deferred Lock acquires at exit while everything still held
			// here is held; a deferred Unlock releases at exit, so it must
			// not decrement mid-body.
			if obj, op, ok := b.lockCall(pkg, n.Call); ok {
				if op == "Lock" || op == "RLock" {
					b.recordAcquire(held, obj, n.Call.Pos())
				}
				return false
			}
			b.callEdges(pkg, n.Call, held)
			return false
		case *ast.CallExpr:
			if obj, op, ok := b.lockCall(pkg, n); ok {
				switch op {
				case "Lock", "RLock":
					b.recordAcquire(held, obj, n.Pos())
				case "Unlock", "RUnlock":
					if held[obj] > 0 {
						held[obj]--
					}
				}
				return false
			}
			b.callEdges(pkg, n, held)
		}
		return true
	})
	for _, lit := range lits {
		b.analyzeBody(pkg, lit.Body, map[types.Object]int{})
	}
}

// recordAcquire registers the edges implied by acquiring obj under held,
// then marks it held.
func (b *builder) recordAcquire(held map[types.Object]int, obj types.Object, pos token.Pos) {
	if held[obj] > 0 {
		b.edges = append(b.edges, edge{from: obj, to: obj, pos: pos})
	} else {
		for h, n := range held {
			if n > 0 {
				b.edges = append(b.edges, edge{from: h, to: obj, pos: pos})
			}
		}
	}
	held[obj]++
}

// callEdges records edges for a static call to a module function that
// (transitively) acquires locks while the caller holds some.
func (b *builder) callEdges(pkg *analysis.Package, call *ast.CallExpr, held map[types.Object]int) {
	if !anyHeld(held) {
		return
	}
	callee := staticCallee(pkg.TypesInfo, call)
	if callee == nil {
		return
	}
	acquired := b.transAcquires(callee)
	if len(acquired) == 0 {
		return
	}
	via := qualifiedName(callee)
	for _, obj := range sortedObjs(acquired, b.locks) {
		if held[obj] > 0 {
			b.edges = append(b.edges, edge{from: obj, to: obj, pos: call.Pos(), via: via})
			continue
		}
		for h, n := range held {
			if n > 0 {
				b.edges = append(b.edges, edge{from: h, to: obj, pos: call.Pos(), via: via})
			}
		}
	}
}

// anyHeld reports whether the multiset holds any lock.
func anyHeld(held map[types.Object]int) bool {
	for _, n := range held {
		if n > 0 {
			return true
		}
	}
	return false
}

// transAcquires returns the set of module locks fn (or any static module
// callee, transitively) acquires. Function literals and goroutine spawns
// inside fn are excluded: the former run in a different lock context, the
// latter concurrently.
func (b *builder) transAcquires(fn types.Object) map[types.Object]bool {
	if b.state[fn] == 1 {
		return nil // recursion through a call cycle: the initiator finishes the set
	}
	if b.state[fn] == 2 {
		return b.acquire[fn]
	}
	b.state[fn] = 1
	set := map[types.Object]bool{}
	if info := b.pass.Module.FuncDecl(fn); info != nil && info.Decl.Body != nil {
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if obj, op, ok := b.lockCall(info.Pkg, n); ok {
					if op == "Lock" || op == "RLock" {
						set[obj] = true
					}
					return false
				}
				if callee := staticCallee(info.Pkg.TypesInfo, n); callee != nil {
					for obj := range b.transAcquires(callee) {
						set[obj] = true
					}
				}
			}
			return true
		})
	}
	b.acquire[fn] = set
	b.state[fn] = 2
	return set
}

// lockCall recognizes <expr>.Lock/Unlock/RLock/RUnlock() on a module lock
// and returns the lock object and operation.
func (b *builder) lockCall(pkg *analysis.Package, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	t := pkg.TypesInfo.Types[sel.X].Type
	if t == nil || !isMutexType(t) {
		return nil, "", false
	}
	obj := lockObj(pkg.TypesInfo, sel.X)
	if obj == nil {
		return nil, "", false
	}
	if _, known := b.locks[obj]; !known {
		return nil, "", false
	}
	return obj, op, true
}

// lockObj resolves the mutex expression of a lock call to its declared
// field or variable object.
func lockObj(info *types.Info, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// staticCallee resolves a call to the declared function or method object it
// statically invokes, or nil for dynamic calls (function values, interface
// methods) and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := info.Uses[id]
	if _, ok := obj.(*types.Func); !ok {
		return nil
	}
	return obj
}

// receiverField resolves a field name against fn's receiver struct type.
func receiverField(pkg *analysis.Package, fn *ast.FuncDecl, name string) types.Object {
	fobj, ok := pkg.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fobj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// qualifiedName renders a function object as pkg.Name or pkg.Type.Name.
func qualifiedName(fn types.Object) string {
	name := fn.Name()
	if f, ok := fn.(*types.Func); ok {
		if recv := f.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// sortedObjs orders a lock set by display name for deterministic edges.
func sortedObjs(set map[types.Object]bool, locks map[types.Object]*lock) []types.Object {
	out := make([]types.Object, 0, len(set))
	for obj := range set {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return locks[out[i]].display < locks[out[j]].display })
	return out
}

// report classifies the observed edges against the pins and emits the
// pass-local diagnostics: malformed and unresolved pins, contradictory
// pins, reentrant acquisitions, pin violations, and cycles among whatever
// edges remain.
func report(pass *analysis.Pass, locks map[types.Object]*lock, pins []pinDecl, edges []edge) {
	type finding struct {
		pos token.Pos
		msg string
	}
	var findings []finding
	add := func(pos token.Pos, format string, args ...any) {
		if inPass(pass, pos) {
			findings = append(findings, finding{pos, fmt.Sprintf(format, args...)})
		}
	}
	disp := func(obj types.Object) string { return locks[obj].display }

	// Resolve pins; order[A][B] means A is declared acquired-before B.
	order := map[types.Object]map[types.Object]*pinDecl{}
	for i := range pins {
		pin := &pins[i]
		if pin.ref == "" {
			add(pin.pos, "malformed //lint:lockorder directive (want before(<lock>))")
			continue
		}
		target, errmsg := resolveRef(locks, pin.owner, pin.ref)
		if errmsg != "" {
			add(pin.pos, "%s", errmsg)
			continue
		}
		if order[pin.owner.obj] == nil {
			order[pin.owner.obj] = map[types.Object]*pinDecl{}
		}
		order[pin.owner.obj][target.obj] = pin
	}
	for _, a := range sortedLocks(locks) {
		for _, bl := range sortedLocks(locks) {
			if a.display >= bl.display {
				continue
			}
			if order[a.obj][bl.obj] != nil && order[bl.obj][a.obj] != nil {
				add(order[a.obj][bl.obj].pos, "contradictory //lint:lockorder pins: %s and %s each declared before the other", a.display, bl.display)
				add(order[bl.obj][a.obj].pos, "contradictory //lint:lockorder pins: %s and %s each declared before the other", bl.display, a.display)
			}
		}
	}

	// Classify edges: reentrancy and pin violations are reported directly
	// and withheld from the cycle graph (the sanctioned direction must not
	// be double-reported as a cycle).
	var graph []edge
	for _, e := range edges {
		switch {
		case e.from == e.to:
			if e.via != "" {
				add(e.pos, "call to %s acquires %s while it is already held (sync mutexes are not reentrant)", e.via, disp(e.to))
			} else {
				add(e.pos, "acquires %s while already holding it (sync mutexes are not reentrant)", disp(e.to))
			}
		case order[e.to] != nil && order[e.to][e.from] != nil:
			if e.via != "" {
				add(e.pos, "call to %s acquires %s while holding %s, but //lint:lockorder declares %s before %s", e.via, disp(e.to), disp(e.from), disp(e.to), disp(e.from))
			} else {
				add(e.pos, "acquires %s while holding %s, but //lint:lockorder declares %s before %s", disp(e.to), disp(e.from), disp(e.to), disp(e.from))
			}
		default:
			graph = append(graph, e)
		}
	}

	// Any strongly connected component with more than one lock (or a
	// retained self-loop) is a potential deadlock; report every edge
	// inside one.
	comp := sccOf(graph)
	for _, e := range graph {
		cf, okf := comp[e.from]
		ct, okt := comp[e.to]
		if !okf || !okt || cf.id != ct.id || cf.size < 2 {
			continue
		}
		members := make([]string, 0, cf.size)
		for obj, c := range comp {
			if c.id == cf.id {
				members = append(members, disp(obj))
			}
		}
		sort.Strings(members)
		if e.via != "" {
			add(e.pos, "lock-order cycle among %s: call to %s acquires %s while holding %s; declare the sanctioned order with //lint:lockorder before(...)", strings.Join(members, ", "), e.via, disp(e.to), disp(e.from))
		} else {
			add(e.pos, "lock-order cycle among %s: acquires %s while holding %s; declare the sanctioned order with //lint:lockorder before(...)", strings.Join(members, ", "), disp(e.to), disp(e.from))
		}
	}

	sort.SliceStable(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// component is one SCC membership entry.
type component struct {
	id   int
	size int
}

// sccOf computes strongly connected components (Tarjan) over the edge list.
func sccOf(edges []edge) map[types.Object]*component {
	adj := map[types.Object]map[types.Object]bool{}
	nodes := []types.Object{}
	addNode := func(o types.Object) {
		if adj[o] == nil {
			adj[o] = map[types.Object]bool{}
			nodes = append(nodes, o)
		}
	}
	for _, e := range edges {
		addNode(e.from)
		addNode(e.to)
		adj[e.from][e.to] = true
	}

	comp := map[types.Object]*component{}
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	next, compID := 0, 0

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			c := &component{id: compID}
			compID++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = c
				c.size++
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

// inPass reports whether pos lies inside one of the pass's files; the graph
// is module-global but each package pass reports only its own sites.
func inPass(pass *analysis.Pass, pos token.Pos) bool {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}
