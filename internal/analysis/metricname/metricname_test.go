package metricname_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "metricname")
}
