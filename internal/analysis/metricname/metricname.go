// Package metricname implements the sketchlint analyzer that polices the
// telemetry namespace. Every series registered on a telemetry.Registry —
// Counter, Gauge, Histogram, CounterFunc, GaugeFunc — is the module's public
// observability contract: dashboards, alert rules and the CI scrape smoke all
// key on exact series strings. The analyzer enforces three invariants at the
// registration site:
//
//   - the family name carries the module namespace: it begins with
//     "dcsketch_" and is lower_snake_case (no uppercase, no colons, no
//     doubled or trailing underscores — stricter than the Prometheus grammar
//     the registry itself accepts, because mixed styles fragment the
//     namespace even when each name is individually legal);
//   - a {label="value",...} block, when present in a constant name, parses
//     and its label names are lower_snake_case;
//   - a fully-constant series string is registered exactly once module-wide
//     (the runtime registry panics on duplicates, but only on the code path
//     that actually runs; the analyzer proves it for paths tests never take).
//
// Names built by concatenation with a constant leftmost operand (the
// per-shard pattern "dcsketch_pipeline_queue_depth{shard=\"" + i + ...) get
// the prefix and snake-case checks on the constant part and are excluded
// from the uniqueness proof. A name with no constant prefix at all cannot be
// audited and is itself a finding. The escape hatch is "//lint:metricok
// <reason>" for e.g. a test fixture registering deliberately hostile names.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the metricname analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "metricname",
	Doc:       "telemetry series are dcsketch_-prefixed snake_case and registered exactly once module-wide",
	Directive: "metricok",
	Run:       run,
}

// registerMethods is the method set of telemetry.Registry whose first
// argument is a series name.
var registerMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

// site is one registration of a fully-constant series name.
type site struct {
	name string
	pos  token.Pos
	fset *token.FileSet
	cur  bool // the site lies in the package under analysis
}

func run(pass *analysis.Pass) error {
	// Pass 1: name-shape checks on the current package only.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isRegistration(pass.TypesInfo, call) {
				return true
			}
			checkNameArg(pass, call)
			return true
		})
	}

	// Pass 2: module-wide uniqueness of fully-constant names. Every package
	// sees the same global site list; to keep each duplicate reported once,
	// a site is only diagnosed when it lies in the current package and an
	// earlier site (any package) registered the same string.
	var sites []site
	for _, pkg := range pass.ModulePackages() {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isRegistration(pkg.TypesInfo, call) {
					return true
				}
				if name, ok := constantName(pkg.TypesInfo, call.Args[0]); ok {
					sites = append(sites, site{
						name: name,
						pos:  call.Args[0].Pos(),
						fset: pkg.Fset,
						cur:  pkg.Types == pass.Pkg,
					})
				}
				return true
			})
		}
	}
	first := map[string]site{}
	for _, s := range sites {
		prev, seen := first[s.name]
		if !seen {
			first[s.name] = s
			continue
		}
		if s.cur {
			at := prev.fset.Position(prev.pos)
			pass.Reportf(s.pos, "series %q already registered at %s:%d; telemetry series must be registered exactly once",
				s.name, filepath.Base(at.Filename), at.Line)
		}
	}
	return nil
}

// isRegistration reports whether call is a series-registering method call on
// a telemetry.Registry (matched by package name/path and type name, so the
// golden-test scaffolding package qualifies like the real one).
func isRegistration(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) < 1 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Name() == "telemetry" || strings.HasSuffix(pkg.Path(), "/telemetry"))
}

// checkNameArg applies the shape checks to the series-name argument.
func checkNameArg(pass *analysis.Pass, call *ast.CallExpr) {
	arg := call.Args[0]
	if name, ok := constantName(pass.TypesInfo, arg); ok {
		checkFullName(pass, arg.Pos(), name)
		return
	}
	if prefix, ok := constantPrefix(pass.TypesInfo, arg); ok {
		checkPrefixOnly(pass, arg.Pos(), prefix)
		return
	}
	pass.Reportf(arg.Pos(), "series name is not statically checkable: use a constant, or concatenation with a constant leftmost operand")
}

// constantName extracts a whole-expression string constant.
func constantName(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// constantPrefix walks the leftmost operand of a '+' chain to a string
// constant: the auditable head of a dynamically assembled series name.
func constantPrefix(info *types.Info, e ast.Expr) (string, bool) {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return "", false
		}
		if s, ok := constantName(info, bin.X); ok {
			return s, true
		}
		e = bin.X
	}
}

// checkFullName validates a complete series string: family shape plus the
// optional label block.
func checkFullName(pass *analysis.Pass, pos token.Pos, name string) {
	family := name
	if brace := strings.IndexByte(name, '{'); brace >= 0 {
		family = name[:brace]
		block := name[brace:]
		if !strings.HasSuffix(block, "}") {
			pass.Reportf(pos, "series %q: unterminated label block", name)
			return
		}
		checkLabelBlock(pass, pos, name, block[1:len(block)-1])
	}
	checkFamily(pass, pos, name, family, true)
}

// checkPrefixOnly validates the constant head of a concatenated name. If the
// head already contains '{', the family is complete and fully checkable;
// otherwise only the prefix and the characters seen so far can be judged.
func checkPrefixOnly(pass *analysis.Pass, pos token.Pos, prefix string) {
	if brace := strings.IndexByte(prefix, '{'); brace >= 0 {
		checkFamily(pass, pos, prefix, prefix[:brace], true)
		return
	}
	checkFamily(pass, pos, prefix, prefix, false)
}

// checkFamily enforces the namespace contract on a family name (or, with
// complete=false, on its constant head): dcsketch_ prefix and
// lower_snake_case.
func checkFamily(pass *analysis.Pass, pos token.Pos, name, family string, complete bool) {
	if !strings.HasPrefix(family, "dcsketch_") {
		pass.Reportf(pos, "series %q: family must begin with the module namespace \"dcsketch_\"", name)
		return
	}
	for i := 0; i < len(family); i++ {
		c := family[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			pass.Reportf(pos, "series %q: family is not lower_snake_case (offending byte %q)", name, c)
			return
		}
	}
	if strings.Contains(family, "__") {
		pass.Reportf(pos, "series %q: family contains a doubled underscore", name)
		return
	}
	if complete && strings.HasSuffix(family, "_") {
		pass.Reportf(pos, "series %q: family ends with an underscore", name)
	}
}

// checkLabelBlock validates a complete {…} interior: name="value" pairs with
// lower_snake_case label names. The value scan mirrors the registry's
// quote-aware parse so the analyzer rejects exactly what registration would
// panic on, plus the style constraint on label names.
func checkLabelBlock(pass *analysis.Pass, pos token.Pos, name, labels string) {
	if labels == "" {
		pass.Reportf(pos, "series %q: empty label block", name)
		return
	}
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			pass.Reportf(pos, "series %q: label pair %q missing '='", name, labels[i:])
			return
		}
		label := labels[i : i+eq]
		if !snakeLabel(label) {
			pass.Reportf(pos, "series %q: label name %q is not lower_snake_case", name, label)
			return
		}
		i += eq + 1
		n, ok := scanQuoted(labels[i:])
		if !ok {
			pass.Reportf(pos, "series %q: label %s has a malformed quoted value", name, label)
			return
		}
		i += n
		if i == len(labels) {
			return
		}
		if labels[i] != ',' {
			pass.Reportf(pos, "series %q: expected ',' after label %s", name, label)
			return
		}
		i++ // a trailing comma terminates the block legally
	}
}

// snakeLabel reports whether s is a lower_snake_case label name.
func snakeLabel(s string) bool {
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// scanQuoted parses one quoted label value at the start of s and returns its
// byte length including both quotes.
func scanQuoted(s string) (int, bool) {
	if len(s) == 0 || s[0] != '"' {
		return 0, false
	}
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return i + 1, true
		case '\n':
			return 0, false
		case '\\':
			if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != '"' && s[i+1] != 'n') {
				return 0, false
			}
			i++
		}
		i++
	}
	return 0, false
}
