// Package metricname is golden-test input covering the telemetry namespace
// contract: dcsketch_ prefix, lower_snake_case, label-block hygiene, and
// exactly-once registration of constant series names.
package metricname

import (
	"strconv"

	"telemetry"
)

const promoted = "dcsketch_promoted_total"

func good(reg *telemetry.Registry) {
	reg.Counter("dcsketch_server_updates_total", "flow updates ingested")
	reg.Gauge("dcsketch_sketch_sample_size", "pairs in the active sample")
	reg.Histogram("dcsketch_server_query_latency_ns", "top-k query latency")
	reg.CounterFunc("dcsketch_runtime_gc_cycles_total", "completed GC cycles", func() uint64 { return 0 })
	reg.GaugeFunc("dcsketch_runtime_goroutines", "live goroutines", func() int64 { return 0 })
	reg.Counter(`dcsketch_server_frames_total{type="updates"}`, "frames by type")
	reg.Counter(`dcsketch_server_frames_total{type="topk_query"}`, "frames by type")
	reg.Counter(promoted, "registered through a named constant")
}

func badPrefix(reg *telemetry.Registry) {
	reg.Counter("server_updates_total", "missing namespace") // want `family must begin with the module namespace "dcsketch_"`
	reg.Gauge("sketch_depth", "missing namespace")           // want `family must begin with the module namespace "dcsketch_"`
}

func badSnake(reg *telemetry.Registry) {
	reg.Counter("dcsketch_serverUpdates_total", "camelCase")  // want `family is not lower_snake_case`
	reg.Gauge("dcsketch_sketch:depth", "colon")               // want `family is not lower_snake_case`
	reg.Counter("dcsketch_server__updates", "doubled")        // want `family contains a doubled underscore`
	reg.Counter("dcsketch_server_updates_", "trailing")       // want `family ends with an underscore`
	reg.Counter("dcsketch_server-updates", "kebab")           // want `family is not lower_snake_case`
}

func badLabels(reg *telemetry.Registry) {
	reg.Counter(`dcsketch_frames_total{type="updates"`, "unterminated")   // want `unterminated label block`
	reg.Counter(`dcsketch_frames_total{Type="updates"}`, "upper label")   // want `label name "Type" is not lower_snake_case`
	reg.Counter(`dcsketch_frames_total{type=updates}`, "unquoted value")  // want `label type has a malformed quoted value`
	reg.Counter(`dcsketch_frames_total{}`, "empty block")                 // want `empty label block`
}

// concatenated names get the prefix/snake checks on the constant head and
// are excluded from the uniqueness proof.
func perShard(reg *telemetry.Registry) {
	for i := 0; i < 4; i++ {
		reg.Gauge("dcsketch_pipeline_queue_depth{shard=\""+strconv.Itoa(i)+"\"}", "per-shard depth")
		reg.Gauge("queue_depth{shard=\""+strconv.Itoa(i)+"\"}", "bad head") // want `family must begin with the module namespace "dcsketch_"`
	}
}

func dynamic(reg *telemetry.Registry, name string) {
	reg.Counter(name, "unauditable")                       // want `series name is not statically checkable`
	reg.Counter(name+"_total", "still unauditable")        // want `series name is not statically checkable`
	reg.Counter(name, "reviewed fixture")                  //lint:metricok hostile-name fixture for registry validation tests
}

func duplicate(reg *telemetry.Registry) {
	reg.Counter("dcsketch_server_updates_total", "again") // want `series "dcsketch_server_updates_total" already registered at a\.go:15`
	reg.Counter(promoted, "again via constant")           // want `series "dcsketch_promoted_total" already registered at a\.go:22`
}
