// Package telemetry is golden-test scaffolding standing in for the real
// internal/telemetry package (the analyzer recognizes Registry methods by
// package name/path and type name).
package telemetry

// Counter is a monotonic series.
type Counter struct{ v uint64 }

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v += n }

// Gauge is a point-in-time series.
type Gauge struct{ v int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v = v }

// Histogram is a bucketed latency series.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(v int64) { h.n++ }

// Registry holds registered series.
type Registry struct{}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// Histogram registers and returns a histogram series.
func (r *Registry) Histogram(name, help string) *Histogram { return &Histogram{} }

// CounterFunc registers a counter sampled from fn at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {}
