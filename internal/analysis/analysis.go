// Package analysis is a self-contained static-analysis framework for the
// dcsketch repository, mirroring the shape of golang.org/x/tools/go/analysis
// on top of the standard library's go/ast and go/types only (the build
// environment is offline, so x/tools cannot be a dependency).
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. The project analyzers live in subpackages
// (seedcompat, lockcheck, wireerr, deltasign) and are driven over the whole
// module by cmd/sketchlint; each is unit-tested against golden packages with
// the analysistest subpackage.
//
// Two source annotations are recognized framework-wide:
//
//   - "//lint:<name> <reason>" on the same line as a reported construct
//     suppresses the named analyzer's diagnostic (e.g. //lint:seedok).
//   - "//lint:locked <mu>" in a function's doc comment declares that the
//     function is only called with the receiver's mutex field <mu> held
//     (consumed by lockcheck).
package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis: a name, documentation, and a Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Directive is the "//lint:<directive>" suppression name honored by
	// Reportf; it defaults to Name.
	Directive string
	// Run inspects a package via pass and reports findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic; the driver and test harness install
	// their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos, unless the source line
// carries a "//lint:<analyzer-name>" suppression directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether the line holding pos carries the analyzer's
// "//lint:<directive>" escape hatch.
func (p *Pass) Suppressed(pos token.Pos) bool {
	directive := p.Analyzer.Directive
	if directive == "" {
		directive = p.Analyzer.Name
	}
	return p.LineDirective(pos, directive)
}

// LineDirective reports whether the source line containing pos carries a
// "//lint:<name>" comment (an escape hatch acknowledging a reviewed,
// intentionally unproven construct).
func (p *Pass) LineDirective(pos token.Pos, name string) bool {
	file := p.FileFor(pos)
	if file == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if p.Fset.Position(c.Pos()).Line != line {
				continue
			}
			if directiveName(c.Text) == name {
				return true
			}
		}
	}
	return false
}

// FileFor returns the *ast.File whose source range contains pos.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// directiveName extracts <name> from a "//lint:<name> ..." comment, or "".
func directiveName(text string) string {
	const prefix = "//lint:"
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// DocDirectiveArg scans a doc comment for "//lint:<name> <arg>" and returns
// the first argument of the first match (e.g. the mutex name in
// "//lint:locked mu"). ok is false when the directive is absent.
func DocDirectiveArg(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) != name {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(c.Text, "//lint:"+name))
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

// ExprString renders an expression as compact source text, used to compare
// expressions structurally (e.g. two mentions of "p.cfg").
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, fset, e)
	return sb.String()
}
