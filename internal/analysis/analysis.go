// Package analysis is a self-contained static-analysis framework for the
// dcsketch repository, mirroring the shape of golang.org/x/tools/go/analysis
// on top of the standard library's go/ast and go/types only (the build
// environment is offline, so x/tools cannot be a dependency).
//
// An Analyzer inspects one type-checked package at a time through a Pass and
// reports Diagnostics. The project analyzers live in subpackages (seedcompat,
// lockcheck, wireerr, deltasign, allocfree, scratchsafe, poolcheck,
// lockorder, goroleak, atomicfield, msgexhaustive, asmabi, metricname) and
// are driven
// over the whole module by cmd/sketchlint; each is unit-tested against golden
// packages with the analysistest subpackage. Analyzers that reason across
// package boundaries (allocfree's call-graph proofs, lockorder's
// acquisition graph, goroleak's join search, atomicfield's module-wide
// access scan, msgexhaustive's dispatch scan) additionally receive a Module
// index over every loaded package.
//
// # The //lint: annotation vocabulary
//
// All source annotations share one syntax, "//lint:<name> [args...]"
// (see ParseDirective), consumed under three grammars:
//
// Same-line suppressions acknowledge a reviewed, intentionally unproven
// construct; the arguments are the free-form reason (always give one):
//
//	//lint:seedok    <reason>   suppress a seedcompat diagnostic
//	//lint:lockok    <reason>   suppress a lockcheck diagnostic
//	//lint:wireok    <reason>   suppress a wireerr diagnostic
//	//lint:deltaok   <reason>   suppress a deltasign diagnostic
//	//lint:allocok   <reason>   suppress an allocfree diagnostic (also
//	                            acknowledges a reviewed escape to
//	                            cmd/perfcheck)
//	//lint:bceok     <reason>   acknowledge a reviewed residual bounds
//	                            check to cmd/perfcheck; stale bceok
//	                            comments are themselves diagnosed
//	//lint:asmok     <reason>   suppress an asmabi diagnostic
//	//lint:scratchok <reason>   suppress a scratchsafe diagnostic
//	//lint:poolok    <reason>   suppress a poolcheck diagnostic
//	//lint:orderok   <reason>   suppress a lockorder diagnostic
//	//lint:daemon    <reason>   the go statement spawns an intentional
//	                            process-lifetime goroutine (goroleak)
//	//lint:atomicok  <reason>   suppress an atomicfield diagnostic
//	//lint:msgok     <reason>   the MsgType constant is asymmetric or
//	                            untested by design (msgexhaustive)
//	//lint:metricok  <reason>   the telemetry series name is intentionally
//	                            outside the namespace contract, e.g. a
//	                            hostile-name test fixture (metricname)
//
// Doc-comment argument directives pass one machine-read argument:
//
//	//lint:locked <mu>   the function is only called with the receiver's
//	                     mutex field <mu> held (consumed by lockcheck)
//
// Doc-comment markers annotate the declaration itself:
//
//	//lint:allocfree          the function (and, transitively, every
//	                          module-internal function it calls) must
//	                          contain no allocation-inducing construct
//	                          (proven by allocfree and ground-truthed
//	                          against escape analysis by cmd/perfcheck)
//	//lint:bce                every bounds check in the function must be
//	                          eliminated by the compiler or acknowledged
//	                          with a same-line //lint:bceok (verified
//	                          against ssa/check_bce by cmd/perfcheck)
//	//lint:inline             the compiler must report the function as
//	                          inlinable ("can inline", budget 80)
//	                          (verified against -m by cmd/perfcheck)
//	//lint:poolown <reason>   the function intentionally retains a
//	                          sync.Pool buffer past its return — ownership
//	                          is handed off (consumed by poolcheck)
//
// Struct fields and package variables carry declaration markers:
//
//	//lint:scratch                  the field is owner-private reusable
//	                                scratch; values derived from it must
//	                                not escape the owning method
//	                                (consumed by scratchsafe)
//	//lint:lockorder before(<lock>) pins the sanctioned acquisition order
//	                                for the annotated mutex: acquiring it
//	                                while <lock> is held is a violation
//	                                even without a completing cycle. <lock>
//	                                resolves as field, Type.field, pkg.var,
//	                                or pkg.Type.field (consumed by
//	                                lockorder)
package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis: a name, documentation, and a Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics.
	Name string
	// Doc is a one-line description.
	Doc string
	// Directive is the "//lint:<directive>" suppression name honored by
	// Reportf; it defaults to Name.
	Directive string
	// Run inspects a package via pass and reports findings through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module indexes every package of the load, for analyzers that follow
	// calls across package boundaries (allocfree). Nil when the driver
	// analyzes packages in isolation.
	Module *Module

	// Report receives each diagnostic; the driver and test harness install
	// their own sinks.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Suppressed marks a finding whose source line carries the analyzer's
	// "//lint:<directive>" escape hatch. Suppressed diagnostics do not fail
	// the build; drivers may still surface them (sketchlint -json does) so
	// the suppression inventory stays auditable.
	Suppressed bool
}

// Reportf reports a formatted diagnostic at pos. A "//lint:<directive>"
// suppression on the source line marks the diagnostic Suppressed rather than
// dropping it; sinks that only want actionable findings filter on the flag.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:        pos,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.Suppressed(pos),
	})
}

// Suppressed reports whether the line holding pos carries the analyzer's
// "//lint:<directive>" escape hatch.
func (p *Pass) Suppressed(pos token.Pos) bool {
	directive := p.Analyzer.Directive
	if directive == "" {
		directive = p.Analyzer.Name
	}
	return p.LineDirective(pos, directive)
}

// LineDirective reports whether the source line containing pos carries a
// "//lint:<name>" comment (an escape hatch acknowledging a reviewed,
// intentionally unproven construct).
func (p *Pass) LineDirective(pos token.Pos, name string) bool {
	return FileLineDirective(p.Fset, p.FileFor(pos), pos, name)
}

// FileLineDirective reports whether the source line containing pos carries a
// "//lint:<name>" comment in file. It is the file-scoped form of
// Pass.LineDirective, for analyzers inspecting packages other than the one
// their Pass presents (allocfree's transitive call-graph scan).
func FileLineDirective(fset *token.FileSet, file *ast.File, pos token.Pos, name string) bool {
	if file == nil {
		return false
	}
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != line {
				continue
			}
			if directiveName(c.Text) == name {
				return true
			}
		}
	}
	return false
}

// ModulePackages returns every package a module-wide analyzer should index:
// the full Module when the driver supplies one, otherwise a singleton view
// of the pass's own package (the isolated-Run fallback).
func (p *Pass) ModulePackages() []*Package {
	if p.Module != nil {
		return p.Module.Packages()
	}
	return []*Package{{
		Path:      p.Pkg.Path(),
		Fset:      p.Fset,
		Files:     p.Files,
		Types:     p.Pkg,
		TypesInfo: p.TypesInfo,
	}}
}

// FileFor returns the *ast.File whose source range contains pos.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	return fileFor(p.Files, pos)
}

func fileFor(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// ExprString renders an expression as compact source text, used to compare
// expressions structurally (e.g. two mentions of "p.cfg").
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	_ = printer.Fprint(&sb, fset, e)
	return sb.String()
}
