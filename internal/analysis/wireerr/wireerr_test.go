package wireerr_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/wireerr"
)

func TestWireErr(t *testing.T) {
	analysistest.Run(t, wireerr.Analyzer, "wireerr")
}
