// Package wireerr implements the sketchlint analyzer that forbids discarding
// errors on the wire path. The daemon's correctness depends on every framed
// write and decode being checked: a swallowed WriteFrame error desynchronizes
// the protocol stream (the peer waits for a reply that never fully left the
// buffer), and a swallowed decode error silently drops flow updates,
// corrupting the sketch-to-stream correspondence the paper's guarantees rest
// on.
//
// Stricter than errcheck, wireerr flags both outright-ignored results
// (expression statements) and "_ =" swallowing for:
//
//   - any error-returning function or method declared in an internal/wire
//     package (WriteFrame, ReadFrame, Decode*, ...);
//   - Flush on a *bufio.Writer (the final step of every framed write);
//   - Write/ReadFull-style io transfers: methods named Write and functions
//     io.WriteString/io.ReadFull/io.Copy.
//
// There is deliberately no escape directive in routine code; the only
// accepted suppression is "//lint:wireok" for e.g. best-effort error replies
// on a connection that is already being torn down.
package wireerr

import (
	"go/ast"
	"go/types"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the wireerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "wireerr",
	Doc:       "report discarded errors from wire encode/decode and io writes on the wire path",
	Directive: "wireok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "ignored")
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "ignored in go statement")
			case *ast.DeferStmt:
				checkDiscard(pass, n.Call, "ignored in deferred call")
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags `_ = wireCall(...)` and multi-value forms that put
// the error result in a blank identifier.
func checkBlankAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	errIdx := errorResultIndex(pass, call)
	if errIdx < 0 || !wirePathCall(pass, call) {
		return
	}
	// Single-value call assigned entirely to _, or the error position
	// specifically blanked.
	if len(assign.Lhs) == 1 && isBlank(assign.Lhs[0]) {
		report(pass, call, "discarded with _ =")
		return
	}
	if errIdx < len(assign.Lhs) && isBlank(assign.Lhs[errIdx]) {
		report(pass, call, "discarded with _ =")
	}
}

// checkDiscard flags a call statement whose error result is dropped.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if errorResultIndex(pass, call) < 0 || !wirePathCall(pass, call) {
		return
	}
	report(pass, call, how)
}

func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	pass.Reportf(call.Pos(), "error from %s %s on the wire path; handle or return it",
		calleeName(pass, call), how)
}

// errorResultIndex returns the index of the trailing error result of call's
// signature, or -1.
func errorResultIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type()) {
			return t.Len() - 1
		}
	default:
		if t != nil && isErrorType(t) {
			return 0
		}
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t.String() == "error"
}

// wirePathCall reports whether call targets a wire-path function: anything
// declared in a package named/pathed "wire", bufio Flush, or an io write.
func wirePathCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := calleeObject(pass, call)
	if callee == nil {
		return false
	}
	if pkg := callee.Pkg(); pkg != nil {
		if pkg.Name() == "wire" || strings.HasSuffix(pkg.Path(), "/wire") {
			return true
		}
		if pkg.Path() == "io" {
			switch callee.Name() {
			case "WriteString", "ReadFull", "Copy", "CopyN":
				return true
			}
		}
	}
	// Method calls: Flush on *bufio.Writer, or any Write method on an
	// io.Writer-shaped receiver.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if selection := pass.TypesInfo.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
			recv := selection.Recv()
			switch callee.Name() {
			case "Flush":
				return isBufioWriter(recv)
			case "Write":
				return true
			}
		}
	}
	return false
}

func isBufioWriter(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "bufio" && obj.Name() == "Writer"
}

// calleeObject resolves the called function's object, or nil.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	return analysis.ExprString(pass.Fset, call.Fun)
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
