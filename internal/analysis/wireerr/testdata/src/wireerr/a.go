// Package wireerr is golden-test input covering discarded and handled
// errors on the wire path.
package wireerr

import (
	"bufio"
	"io"

	"wire"
)

func ignoredCall(w io.Writer, p []byte) {
	wire.WriteFrame(w, p) // want `error from wire.WriteFrame ignored on the wire path`
}

func blankAssign(w io.Writer, p []byte) {
	_ = wire.WriteFrame(w, p) // want `error from wire.WriteFrame discarded with _ =`
}

func handled(w io.Writer, p []byte) error {
	return wire.WriteFrame(w, p)
}

func multiBlank(p []byte) {
	_, _ = wire.DecodeUpdates(p) // want `error from wire.DecodeUpdates discarded with _ =`
}

func multiKeptValue(p []byte) []int {
	out, _ := wire.DecodeUpdates(p) // want `error from wire.DecodeUpdates discarded with _ =`
	return out
}

func multiHandled(p []byte) ([]int, error) {
	return wire.DecodeUpdates(p)
}

func flushIgnored(bw *bufio.Writer) {
	bw.Flush() // want `error from bw.Flush ignored on the wire path`
}

func flushHandled(bw *bufio.Writer) error {
	return bw.Flush()
}

func rawWrite(w io.Writer, p []byte) {
	w.Write(p) // want `error from w.Write ignored on the wire path`
}

func rawWriteBlank(w io.Writer, p []byte) {
	_, _ = w.Write(p) // want `error from w.Write discarded with _ =`
}

func rawWriteHandled(w io.Writer, p []byte) (int, error) {
	return w.Write(p)
}

func ioHelpers(w io.Writer, r io.Reader, p []byte) {
	io.WriteString(w, "x") // want `error from io.WriteString ignored on the wire path`
	io.ReadFull(r, p)      // want `error from io.ReadFull ignored on the wire path`
}

func deferred(w io.Writer, p []byte) {
	defer wire.WriteFrame(w, p) // want `error from wire.WriteFrame ignored in deferred call`
}

func inGoroutine(w io.Writer, p []byte) {
	go wire.WriteFrame(w, p) // want `error from wire.WriteFrame ignored in go statement`
}

func noErrorResult(p []byte) []byte {
	return wire.AppendUpdates(p)
}

func suppressed(w io.Writer, p []byte) {
	_ = wire.WriteFrame(w, p) //lint:wireok best-effort error reply during teardown
}

func helloIgnored(p []byte) {
	wire.DecodeHello(p) // want `error from wire.DecodeHello ignored on the wire path`
}

func helloBlank(p []byte) uint64 {
	id, _ := wire.DecodeHello(p) // want `error from wire.DecodeHello discarded with _ =`
	return id
}

func helloHandled(p []byte) (uint64, error) {
	return wire.DecodeHello(p)
}

func seqAckBlank(p []byte) {
	_, _ = wire.DecodeSeqAck(p) // want `error from wire.DecodeSeqAck discarded with _ =`
}

func seqAckHandled(p []byte) (uint64, error) {
	return wire.DecodeSeqAck(p)
}

func seqAppendNoError(p []byte) []byte {
	return wire.AppendSeqUpdates(p, 1)
}
