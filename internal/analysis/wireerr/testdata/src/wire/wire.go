// Package wire is golden-test scaffolding standing in for the real
// internal/wire package (the analyzer recognizes it by package name/path).
package wire

import "io"

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, payload []byte) error {
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// DecodeUpdates decodes a payload.
func DecodeUpdates(payload []byte) ([]int, error) {
	return nil, nil
}

// AppendUpdates has no error result and is never reported.
func AppendUpdates(buf []byte) []byte { return buf }

// DecodeHello decodes a replay-handshake payload.
func DecodeHello(payload []byte) (uint64, error) {
	return 0, nil
}

// DecodeSeqAck decodes a sequenced-batch ack payload.
func DecodeSeqAck(payload []byte) (uint64, error) {
	return 0, nil
}

// AppendSeqUpdates has no error result and is never reported.
func AppendSeqUpdates(buf []byte, seq uint64) []byte { return buf }
