// Package scratchsafe implements the sketchlint analyzer guarding the
// scratch-buffer aliasing contract. The allocation-free hot paths (PR 2) got
// there by reusing receiver-owned scratch buffers — dcs.samplePairs,
// tdcs.topScratch, iheap.cand, the pipeline staging buffers — which are
// overwritten wholesale on the next call. A caller that holds onto memory
// aliasing one of those buffers sees it silently rewritten under them: the
// classic "top-k slice changed after the next Update" bug, invisible to the
// race detector because it is a single-goroutine aliasing error.
//
// Fields annotated "//lint:scratch" (doc or line comment on the field
// declaration) are scratch sources. Within each function of the declaring
// package, a flow-insensitive taint pass tracks values derived from scratch
// fields — through assignments, slicing, address-taking, and append whose
// destination is tainted — and reports when a tainted value reaches an
// aliasing sink:
//
//   - a return statement
//   - a store into a struct field outside the receiver
//   - a channel send
//   - a goroutine or closure capture
//
// Values of alias-free types (basic types, strings, and structs/arrays
// composed only of those) carry no reference into the buffer, so copying one
// out of a scratch slice launders the taint, as does an explicit copy into a
// fresh buffer (copy(dst, src) does not taint dst; append(nil, src...) and
// append(dst[:0], src...) with an untainted dst are likewise copies).
//
// Escape hatch: "//lint:scratchok <reason>" on the sink's line, for the
// deliberate zero-copy accessors whose doc contract says "valid until the
// next call" (dcs.DistinctSample).
package scratchsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the scratchsafe analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "scratchsafe",
	Doc:       "report values aliasing //lint:scratch buffers escaping via returns, foreign field stores, sends, or goroutine captures",
	Directive: "scratchok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	scratch := scratchFields(pass)
	if len(scratch) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ft := &funcTaint{
				pass:    pass,
				file:    file,
				scratch: scratch,
				recv:    recvObject(pass, fn),
				tainted: map[types.Object]bool{},
			}
			ft.propagate(fn.Body)
			ft.checkSinks(fn.Body)
		}
	}
	return nil
}

// scratchFields collects the field objects annotated //lint:scratch in this
// package's struct declarations.
func scratchFields(pass *analysis.Pass) map[types.Object]bool {
	fields := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				if !fieldMarked(f) {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

// fieldMarked reports whether a struct field carries the //lint:scratch
// marker in its doc or line comment.
func fieldMarked(f *ast.Field) bool {
	if _, ok := analysis.DocDirective(f.Doc, "scratch"); ok {
		return true
	}
	_, ok := analysis.DocDirective(f.Comment, "scratch")
	return ok
}

// recvObject resolves the method receiver's object, or nil for functions.
func recvObject(pass *analysis.Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// funcTaint is the per-function taint state.
type funcTaint struct {
	pass    *analysis.Pass
	file    *ast.File
	scratch map[types.Object]bool
	recv    types.Object
	tainted map[types.Object]bool
}

// propagate runs the flow-insensitive fixpoint: any local assigned a
// scratch-derived value becomes a taint carrier until no assignment adds one.
func (ft *funcTaint) propagate(body ast.Node) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					switch {
					case len(n.Rhs) == len(n.Lhs):
						rhs = n.Rhs[i]
					case len(n.Rhs) == 1:
						rhs = n.Rhs[0] // multi-value: taint all LHS together
					}
					if rhs != nil && ft.taintedExpr(rhs) && ft.markVar(lhs) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && ft.taintedExpr(n.X) && ft.markVar(n.Value) {
					changed = true
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					var rhs ast.Expr
					switch {
					case len(n.Values) == len(n.Names):
						rhs = n.Values[i]
					case len(n.Values) == 1:
						rhs = n.Values[0]
					}
					if rhs != nil && ft.taintedExpr(rhs) && ft.markIdent(name) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// markVar taints the variable behind an assignable expression; returns true
// when the set grew.
func (ft *funcTaint) markVar(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	return ft.markIdent(id)
}

func (ft *funcTaint) markIdent(id *ast.Ident) bool {
	obj := ft.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = ft.pass.TypesInfo.Uses[id]
	}
	if obj == nil || ft.tainted[obj] {
		return false
	}
	if v, isVar := obj.(*types.Var); !isVar || aliasFree(v.Type()) {
		return false
	}
	ft.tainted[obj] = true
	return true
}

// taintedExpr reports whether e may alias a scratch buffer.
func (ft *funcTaint) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ft.pass.TypesInfo.Uses[e]
		return obj != nil && ft.tainted[obj]
	case *ast.SelectorExpr:
		if obj := ft.fieldObj(e); obj != nil && ft.scratch[obj] {
			return true
		}
		return ft.taintedExpr(e.X) && !ft.exprAliasFree(e)
	case *ast.SliceExpr:
		return ft.taintedExpr(e.X)
	case *ast.IndexExpr:
		return ft.taintedExpr(e.X) && !ft.exprAliasFree(e)
	case *ast.StarExpr:
		return ft.taintedExpr(e.X) && !ft.exprAliasFree(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &buf[i] aliases the buffer even when the element type is
			// alias-free.
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return ft.taintedExpr(idx.X)
			}
		}
		return ft.taintedExpr(e.X)
	case *ast.CallExpr:
		// append taints through its destination; other calls (including
		// copy into a fresh buffer) return untainted values.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := ft.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				return ft.taintedExpr(e.Args[0])
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ft.taintedExpr(el) {
				return true
			}
		}
		return false
	}
	return false
}

// fieldObj resolves a selector to the field object it reads, if any.
func (ft *funcTaint) fieldObj(sel *ast.SelectorExpr) types.Object {
	if s, ok := ft.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return ft.pass.TypesInfo.Uses[sel.Sel]
}

// exprAliasFree reports whether e's type carries no reference into a buffer
// (copying it launders taint).
func (ft *funcTaint) exprAliasFree(e ast.Expr) bool {
	tv, ok := ft.pass.TypesInfo.Types[e]
	return ok && tv.Type != nil && aliasFree(tv.Type)
}

// aliasFree reports whether values of t are self-contained copies: basic
// types (strings are immutable) and structs/arrays composed only of those.
func aliasFree(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return t.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if !aliasFree(t.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return aliasFree(t.Elem())
	}
	return false
}

// checkSinks reports tainted values reaching aliasing sinks.
func (ft *funcTaint) checkSinks(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if ft.taintedExpr(res) {
					ft.report(res.Pos(), "returns a value aliasing a //lint:scratch buffer; copy it first")
				}
			}
		case *ast.SendStmt:
			if ft.taintedExpr(n.Value) {
				ft.report(n.Value.Pos(), "sends a value aliasing a //lint:scratch buffer over a channel; copy it first")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if ft.foreignFieldStore(lhs) && ft.taintedExpr(n.Rhs[i]) {
					ft.report(n.Rhs[i].Pos(), "stores a value aliasing a //lint:scratch buffer into a field outside the receiver; copy it first")
				}
			}
		case *ast.FuncLit:
			ft.checkCapture(n)
			return false
		}
		return true
	})
}

// foreignFieldStore reports whether lhs writes a struct field whose root is
// not the method receiver.
func (ft *funcTaint) foreignFieldStore(lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if obj := ft.fieldObj(sel); obj == nil {
		return false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return true
	}
	obj := ft.pass.TypesInfo.Uses[root]
	return obj == nil || obj != ft.recv
}

// rootIdent unwraps selectors, derefs, indexes and parens to the base ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkCapture reports a closure that references tainted locals or scratch
// fields: the goroutine (or stored function) may observe the buffer after it
// is rewritten.
func (ft *funcTaint) checkCapture(lit *ast.FuncLit) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := ft.pass.TypesInfo.Uses[n]; obj != nil && ft.tainted[obj] {
				ft.report(n.Pos(), "closure captures a value aliasing a //lint:scratch buffer; copy it first")
				reported = true
			}
		case *ast.SelectorExpr:
			if obj := ft.fieldObj(n); obj != nil && ft.scratch[obj] {
				ft.report(n.Pos(), "closure captures a //lint:scratch buffer; copy it first")
				reported = true
				return false
			}
		}
		return !reported
	})
}

func (ft *funcTaint) report(pos token.Pos, msg string) {
	ft.pass.Reportf(pos, "%s", msg)
}
