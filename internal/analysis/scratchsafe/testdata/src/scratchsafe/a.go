// Package scratchsafe is the golden package for the scratchsafe analyzer.
package scratchsafe

type pair struct{ k, v uint64 }

type sketch struct {
	scratch []pair          //lint:scratch
	seen    map[uint64]bool //lint:scratch
	out     []pair
	n       int
}

type holder struct{ buf []pair }

// --- true positives ---

func (s *sketch) direct() []pair {
	return s.scratch // want `returns a value aliasing a //lint:scratch buffer`
}

func (s *sketch) throughLocal() []pair {
	p := s.scratch[:0]
	p = append(p, pair{1, 2})
	return p // want `returns a value aliasing a //lint:scratch buffer`
}

func (s *sketch) mapField() map[uint64]bool {
	return s.seen // want `returns a value aliasing a //lint:scratch buffer`
}

func (s *sketch) elemAddr() *pair {
	return &s.scratch[0] // want `returns a value aliasing a //lint:scratch buffer`
}

func (s *sketch) foreignStore(h *holder) {
	h.buf = s.scratch // want `stores a value aliasing a //lint:scratch buffer into a field outside the receiver`
}

func (s *sketch) send(ch chan []pair) {
	ch <- s.scratch // want `sends a value aliasing a //lint:scratch buffer over a channel`
}

func (s *sketch) captureLocal(done func()) {
	p := s.scratch
	go func() {
		_ = p // want `closure captures a value aliasing a //lint:scratch buffer`
		done()
	}()
}

func (s *sketch) captureField() func() int {
	return func() int {
		return len(s.scratch) // want `closure captures a //lint:scratch buffer`
	}
}

// drain shows plain functions are covered too, via any scratch-field access.
func drain(s *sketch) []pair {
	return s.scratch // want `returns a value aliasing a //lint:scratch buffer`
}

// --- true negatives: copies launder the taint ---

func (s *sketch) copied() []pair {
	out := make([]pair, len(s.scratch))
	copy(out, s.scratch)
	return out
}

func (s *sketch) appendedToFresh(dst []pair) []pair {
	dst = append(dst[:0], s.scratch...)
	return dst
}

// first copies one alias-free element out of the buffer.
func (s *sketch) first() pair {
	return s.scratch[0]
}

// rotate stores scratch into another field of the same receiver: still
// owner-private.
func (s *sketch) rotate() {
	s.out = s.scratch[:0]
}

// count reads only alias-free values derived from scratch.
func (s *sketch) count() int {
	n := len(s.scratch)
	for _, p := range s.scratch {
		if p.k != 0 {
			n--
		}
	}
	return n
}

// nonScratch returns a non-scratch buffer field: out of scope.
func (s *sketch) nonScratch() []pair {
	return s.out
}

// --- suppression ---

// zeroCopy is the DistinctSample shape: a documented zero-copy view, valid
// until the next update. The directive suppresses the diagnostic (no want).
func (s *sketch) zeroCopy() []pair {
	return s.scratch //lint:scratchok documented zero-copy view, valid until the next update
}

// staleOK carries a suppression on a line with nothing to suppress; the
// analyzer must stay silent rather than misapply it.
func (s *sketch) staleOK() int {
	return s.n //lint:scratchok nothing here aliases scratch
}
