package scratchsafe_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/scratchsafe"
)

func TestScratchSafe(t *testing.T) {
	analysistest.Run(t, scratchsafe.Analyzer, "scratchsafe")
}
