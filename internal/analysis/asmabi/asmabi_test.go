package asmabi

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFlagsHaveNosplit(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"NOSPLIT", true},
		{"NOSPLIT|NOFRAME", true},
		{"WRAPPER|NOSPLIT", true},
		{"4", true},
		{"7", true},
		{"NOFRAME", false},
		{"RODATA", false},
		{"0", false},
	}
	for _, c := range cases {
		if got := flagsHaveNosplit(c.in); got != c.want {
			t.Errorf("flagsHaveNosplit(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAsmFiles(t *testing.T) {
	dir := t.TempDir()
	src := `#include "textflag.h"
DATA tab<>+0x00(SB)/8, $1
DATA tab<>+0x08(SB)/8, $2
GLOBL tab<>(SB), RODATA|NOPTR, $16

// func f(x int64) int64
TEXT ·f(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), AX // comment with y+8(FP) must not count
	LEAQ tab<>(SB), SI
	MOVQ AX, ret+8(FP)
	RET

TEXT ·bare(SB), $8-0
	RET
`
	if err := os.WriteFile(filepath.Join(dir, "x.s"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := parseAsmFiles(dir, []string{"x.s"})
	if err != nil {
		t.Fatal(err)
	}
	f := idx.texts["f"]
	if f == nil {
		t.Fatal("TEXT ·f not indexed")
	}
	if !f.nosplit || f.argSize != 16 || f.line != 7 {
		t.Errorf("f = %+v, want nosplit, argSize 16, line 7", f)
	}
	if len(f.fpRefs) != 2 || f.fpRefs[0].name != "x" || f.fpRefs[0].off != 0 ||
		f.fpRefs[1].name != "ret" || f.fpRefs[1].off != 8 {
		t.Errorf("f.fpRefs = %+v, want x+0 and ret+8 only (comments stripped)", f.fpRefs)
	}
	if len(f.staticRefs) != 1 || f.staticRefs[0].name != "tab" {
		t.Errorf("f.staticRefs = %+v, want tab", f.staticRefs)
	}
	bare := idx.texts["bare"]
	if bare == nil || bare.nosplit || bare.argSize != 0 {
		t.Errorf("bare = %+v, want no NOSPLIT, argSize 0", bare)
	}
	tab := idx.statics["tab"]
	if tab == nil || tab.globlSize != 16 || tab.dataEnd != 16 {
		t.Errorf("tab = %+v, want globlSize 16, dataEnd 16", tab)
	}
}
