//go:build gc

package asmabi

// Parity's fallback declaration (fallback.go) disagrees on the parameter
// type.
func Parity(x int64) int64 { return x } // want `signature of Parity differs from its fallback declaration in fallback.go`

// MissingFallback has no declaration in the ignored complement, so the
// non-host build would lack it.
func MissingFallback() {} // want `no fallback declaration`

// Matched is cleanly mirrored in fallback.go.
func Matched(a, b int64) int64 { return a + b }
