//go:build fallbackonly

package asmabi

// Parity disagrees with gcfile.go on the parameter type.
func Parity(x int32) int64 { return int64(x) }

// Matched mirrors gcfile.go exactly.
func Matched(a, b int64) int64 { return a + b }

// OnlyFallback exists only in this never-satisfied build, a skew the host
// build would ship without.
func OnlyFallback() {}
