// Assembly for the asmabi golden package. Frame layouts assume a 64-bit
// host (the analyzer computes expectations from go/types for the build
// GOARCH, and CI runs on amd64).
#include "textflag.h"

DATA tab<>+0x00(SB)/8, $0x0000000000000001
DATA tab<>+0x08(SB)/8, $0x0000000000000002
GLOBL tab<>(SB), RODATA|NOPTR, $16

// over<> writes 16 bytes of DATA into an 8-byte GLOBL.
DATA over<>+0x00(SB)/8, $0x0000000000000001
DATA over<>+0x08(SB)/8, $0x0000000000000002
GLOBL over<>(SB), RODATA|NOPTR, $8

TEXT ·good(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ n+8(FP), AX
	LEAQ tab<>(SB), SI
	MOVQ AX, ret+16(FP)
	RET

TEXT ·missingNoescape(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), AX
	MOVQ $0, ret+8(FP)
	RET

TEXT ·noSplitMissing(SB), $0-8
	MOVQ x+0(FP), AX
	RET

TEXT ·argSizeWrong(SB), NOSPLIT, $0-8
	MOVQ x+0(FP), AX
	MOVQ AX, ret+8(FP)
	RET

TEXT ·badOffset(SB), NOSPLIT, $0-16
	MOVQ a+0(FP), AX
	MOVQ b+4(FP), BX
	MOVQ c+16(FP), CX
	RET

TEXT ·refsMissing(SB), NOSPLIT, $0-0
	LEAQ missing<>(SB), SI
	RET

TEXT ·untested(SB), NOSPLIT, $0-8
	MOVQ x+0(FP), AX
	RET

TEXT ·staleOK(SB), NOSPLIT, $0-8
	MOVQ x+0(FP), AX
	RET

TEXT ·orphan(SB), NOSPLIT, $0-0
	RET
