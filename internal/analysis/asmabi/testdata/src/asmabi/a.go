// Package asmabi is the golden package for the asmabi analyzer: assembly
// stubs with seeded ABI defects. The assembly lives in a.s; fallback.go
// carries the never-satisfied fallbackonly tag so the parity checks see an
// ignored complement on every host, and gcfile.go carries the
// always-satisfied gc tag so it counts as a build-constrained file.
package asmabi // want `assembly symbol ·orphan has no Go stub` `DATA for over<> extends past GLOBL size` `fallback-only function OnlyFallback`

// good satisfies every contract; its differential test lives in a_test.go.
//
//go:noescape
func good(dst *[4]int64, n int64) int64

// missingNoescape lacks the //go:noescape directive.
func missingNoescape(p *byte) int64 // want `missing //go:noescape`

// noSplitMissing's TEXT directive omits the NOSPLIT flag.
//
//go:noescape
func noSplitMissing(x int64) // want `not marked NOSPLIT`

// argSizeWrong's TEXT declares $0-8 against a 16-byte ABI0 frame.
//
//go:noescape
func argSizeWrong(x int64) int64 // want `declares argument size 8, ABI0 layout of the Go signature is 16 bytes`

// badOffset's assembly reads b at the wrong offset and references a
// parameter that does not exist.
//
//go:noescape
func badOffset(a, b int64) // want `b\+4\(FP\): ABI0 offset of b is 8` `no parameter or result named c`

// refsMissing references a static data symbol with no GLOBL declaration.
//
//go:noescape
func refsMissing() // want `undeclared static symbol missing<>`

// missingImpl has no TEXT symbol in the package's assembly.
//
//go:noescape
func missingImpl(x int64) // want `no assembly implementation`

// untested is implemented and well-formed but no test references it.
//
//go:noescape
func untested(x int64) // want `no differential asm-vs-reference test`

// suppressedStub is missing //go:noescape, an implementation and a test,
// all acknowledged by the same-line suppression.
func suppressedStub(p *byte) //lint:asmok reviewed: retired stub kept for ABI documentation

// staleOK carries a suppression on a fully contractual stub; the analyzer
// reports nothing here, so the suppression is merely unused.
//
//go:noescape
func staleOK(x int64) //lint:asmok stale: nothing to suppress on this line
