package asmabi

import "testing"

// TestStubsDifferential is the golden stand-in for the real differential
// tests: the analyzer requires each asm entry point to be exercised by name
// in some package test, which this file provides for every stub except
// untested (seeded defect) and suppressedStub (acknowledged).
func TestStubsDifferential(t *testing.T) {
	var dst [4]int64
	if got := good(&dst, 3); got < 0 {
		t.Fatal("impossible")
	}
	var b byte
	_ = missingNoescape(&b)
	noSplitMissing(1)
	_ = argSizeWrong(1)
	badOffset(1, 2)
	refsMissing()
	missingImpl(1)
	staleOK(1)
}
