// Package asmabi implements the sketchlint analyzer cross-checking every
// assembly symbol against its Go stub, beyond what `go vet -asmdecl` covers.
// The internal/vec AVX2 kernels only stay correct while the Go declarations,
// the ABI0 frame layout in the .s file, and the portable fallback all agree;
// a drifted stub signature or a forgotten //go:noescape silently turns the
// ~110ns update path into corruption or heap traffic.
//
// For every package that directly contains .s files, the analyzer checks:
//
//   - Every bodyless Go declaration (asm stub) carries //go:noescape, has a
//     TEXT implementation in the package's assembly, and is referenced by
//     name in at least one of the package's _test.go files (the differential
//     asm-vs-reference tests the house pattern requires for every asm entry
//     point).
//   - The TEXT directive is marked NOSPLIT (the kernels are leaf routines;
//     a missing NOSPLIT re-admits stack-split preemption points) and its
//     declared argument size matches the ABI0 layout computed from the Go
//     signature with go/types sizes.
//   - Every name+offset(FP) reference in the body resolves to a parameter
//     or result at exactly that ABI0 offset (unnamed results are addressed
//     as ret, ret1, ...).
//   - Every static data reference sym<>(SB) resolves to a GLOBL declaration
//     in the package's assembly, and no DATA directive extends past its
//     GLOBL-declared size.
//   - Every TEXT symbol has a Go stub (no orphan assembly entry points).
//   - Build-constrained Go files agree with their ignored complements (the
//     amd64/fallback pair): a function declared on both sides must have a
//     textually identical signature, every exported function in a
//     constrained included file needs a fallback declaration, and the
//     fallback must not export functions the host build lacks.
//
// //lint:asmok on the stub's line suppresses a reviewed finding.
package asmabi

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"dcsketch/internal/analysis"
)

// Analyzer is the asmabi analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "asmabi",
	Doc:       "assembly symbols must match their Go stubs: noescape, NOSPLIT, ABI0 offsets, resolving data references, fallback parity, differential tests",
	Directive: "asmok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if len(pass.Files) == 0 {
		return nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Package).Filename)
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil
		}
		// The golden harness and module loader have already parsed the
		// package; a scan failure here means the dir is synthetic — skip.
		return nil
	}
	if len(bp.SFiles) == 0 {
		return nil
	}

	asm, err := parseAsmFiles(dir, bp.SFiles)
	if err != nil {
		return err
	}
	pkgPos := pass.Files[0].Name.Pos()

	// Go stubs: bodyless function declarations implemented in assembly.
	// stubList keeps source order so diagnostics are deterministic.
	stubs := map[string]*ast.FuncDecl{}
	var stubList []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body != nil || fn.Recv != nil {
				continue
			}
			stubs[fn.Name.Name] = fn
			stubList = append(stubList, fn)
		}
	}

	testedNames, err := testIdentifiers(dir, append(append([]string{}, bp.TestGoFiles...), bp.XTestGoFiles...))
	if err != nil {
		return err
	}

	for _, fn := range stubList {
		name := fn.Name.Name
		if !hasDirective(fn, "//go:noescape") {
			pass.Reportf(fn.Name.Pos(), "asm stub %s is missing //go:noescape — the compiler will assume its pointer arguments escape", name)
		}
		if !testedNames[name] {
			pass.Reportf(fn.Name.Pos(), "asm entry point %s has no differential asm-vs-reference test (no package test references it by name)", name)
		}
		impl, ok := asm.texts[name]
		if !ok {
			pass.Reportf(fn.Name.Pos(), "asm stub %s has no assembly implementation (no TEXT ·%s in %s)", name, name, strings.Join(bp.SFiles, ", "))
			continue
		}
		if !impl.nosplit {
			pass.Reportf(fn.Name.Pos(), "%s: TEXT ·%s is not marked NOSPLIT (asm kernels must be leaf routines)", impl.loc(), name)
		}
		checkFrame(pass, fn, impl)
		for _, ref := range impl.staticRefs {
			if _, ok := asm.statics[ref.name]; !ok {
				pass.Reportf(fn.Name.Pos(), "%s: TEXT ·%s references undeclared static symbol %s<> (no GLOBL in the package's assembly)", ref.loc(), name, ref.name)
			}
		}
	}

	// Assembly-side findings have no Go line to anchor to; report them at
	// the package clause with the .s location in the message.
	for _, impl := range asm.textList {
		if _, ok := stubs[impl.name]; !ok {
			pass.Reportf(pkgPos, "%s: assembly symbol ·%s has no Go stub in this package", impl.loc(), impl.name)
			for _, ref := range impl.staticRefs {
				if _, ok := asm.statics[ref.name]; !ok {
					pass.Reportf(pkgPos, "%s: TEXT ·%s references undeclared static symbol %s<>", ref.loc(), impl.name, ref.name)
				}
			}
		}
	}
	for _, g := range asm.staticList {
		if g.globlSize >= 0 && g.dataEnd > g.globlSize {
			pass.Reportf(pkgPos, "%s: DATA for %s<> extends past GLOBL size (%d > %d bytes)", g.loc(), g.name, g.dataEnd, g.globlSize)
		}
		if g.globlSize < 0 {
			pass.Reportf(pkgPos, "%s: DATA for %s<> has no GLOBL declaration", g.loc(), g.name)
		}
	}

	return checkParity(pass, dir, bp, pkgPos)
}

// hasDirective reports whether the declaration's doc group carries the exact
// directive comment.
func hasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// checkFrame verifies the TEXT argument size and every FP reference against
// the stub's ABI0 layout.
func checkFrame(pass *analysis.Pass, fn *ast.FuncDecl, impl *asmFunc) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return
	}
	offsets, argSize := abi0Layout(sig)
	if impl.argSize >= 0 && impl.argSize != argSize {
		pass.Reportf(fn.Name.Pos(), "%s: TEXT ·%s declares argument size %d, ABI0 layout of the Go signature is %d bytes", impl.loc(), impl.name, impl.argSize, argSize)
	}
	for _, ref := range impl.fpRefs {
		want, ok := offsets[ref.name]
		if !ok {
			pass.Reportf(fn.Name.Pos(), "%s: %s+%d(FP): ·%s has no parameter or result named %s", ref.loc(), ref.name, ref.off, impl.name, ref.name)
			continue
		}
		if ref.off != want {
			pass.Reportf(fn.Name.Pos(), "%s: %s+%d(FP): ABI0 offset of %s is %d", ref.loc(), ref.name, ref.off, ref.name, want)
		}
	}
}

// abi0Layout computes the ABI0 (memory) argument frame: parameters at
// sequential aligned offsets from 0(FP), results following re-aligned to the
// pointer size, total rounded up to the pointer size. Unnamed results are
// addressable as ret, ret1, ret2, ...
func abi0Layout(sig *types.Signature) (map[string]int64, int64) {
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	ptr := sizes.Sizeof(types.Typ[types.UnsafePointer])
	offsets := map[string]int64{}
	off := int64(0)
	place := func(name string, t types.Type) {
		off = align(off, sizes.Alignof(t))
		if name != "" && name != "_" {
			offsets[name] = off
		}
		off += sizes.Sizeof(t)
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		place(p.Name(), p.Type())
	}
	off = align(off, ptr)
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		r := results.At(i)
		name := r.Name()
		if name == "" || name == "_" {
			if i == 0 {
				name = "ret"
			} else {
				name = fmt.Sprintf("ret%d", i)
			}
		}
		place(name, r.Type())
	}
	return offsets, align(off, ptr)
}

func align(off, a int64) int64 {
	if a <= 0 {
		return off
	}
	return (off + a - 1) / a * a
}

// testIdentifiers parses the package's test files and returns every
// identifier they mention, the resolution domain for the differential-test
// requirement.
func testIdentifiers(dir string, names []string) (map[string]bool, error) {
	idents := map[string]bool{}
	fset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue // unparseable test files are not this analyzer's finding
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				idents[id.Name] = true
			}
			return true
		})
	}
	return idents, nil
}

// --- amd64/fallback parity ---------------------------------------------------

// checkParity compares the build-constrained included Go files against the
// package's ignored complements (e.g. vec_amd64.go against vec_other.go on
// an amd64 host): shared functions must agree on signature, exported
// functions in constrained files need a fallback declaration, and the
// fallback must not export functions this build lacks.
func checkParity(pass *analysis.Pass, dir string, bp *build.Package, pkgPos token.Pos) error {
	if len(bp.IgnoredGoFiles) == 0 {
		return nil
	}
	fallbackFset := token.NewFileSet()
	fallback := map[string]*ast.FuncDecl{} // name -> decl in ignored files
	fallbackFile := map[string]string{}
	for _, name := range bp.IgnoredGoFiles {
		f, err := parser.ParseFile(fallbackFset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil {
				fallback[fn.Name.Name] = fn
				fallbackFile[fn.Name.Name] = name
			}
		}
	}
	if len(fallback) == 0 {
		return nil
	}

	included := map[string]bool{} // every top-level func name in the host build
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil {
				included[fn.Name.Name] = true
			}
		}
	}

	for _, file := range pass.Files {
		if !isConstrained(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil {
				continue
			}
			name := fn.Name.Name
			fb, ok := fallback[name]
			if !ok {
				if fn.Name.IsExported() {
					pass.Reportf(fn.Name.Pos(), "exported function %s has no fallback declaration in the package's ignored build-constrained files", name)
				}
				continue
			}
			got := sigString(pass.Fset, fn)
			want := sigString(fallbackFset, fb)
			if got != want {
				pass.Reportf(fn.Name.Pos(), "signature of %s differs from its fallback declaration in %s: %s vs %s", name, fallbackFile[name], got, want)
			}
		}
	}

	names := make([]string, 0, len(fallback))
	for name := range fallback {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if fallback[name].Name.IsExported() && !included[name] {
			pass.Reportf(pkgPos, "%s declares exported fallback-only function %s absent from this build", fallbackFile[name], name)
		}
	}
	return nil
}

// isConstrained reports whether the file carries a //go:build constraint
// (the marker that it has a complementary variant to stay in parity with).
func isConstrained(fset *token.FileSet, file *ast.File) bool {
	pkgLine := fset.Position(file.Package).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line >= pkgLine {
				return false
			}
			if strings.HasPrefix(c.Text, "//go:build") {
				return true
			}
		}
	}
	return false
}

// sigString renders a function's parameter and result types (names elided,
// multi-name fields expanded) for cross-fset comparison.
func sigString(fset *token.FileSet, fn *ast.FuncDecl) string {
	var b strings.Builder
	b.WriteString("func(")
	writeFieldTypes(&b, fset, fn.Type.Params)
	b.WriteString(")")
	if fn.Type.Results != nil && len(fn.Type.Results.List) > 0 {
		b.WriteString(" (")
		writeFieldTypes(&b, fset, fn.Type.Results)
		b.WriteString(")")
	}
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fset *token.FileSet, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	first := true
	for _, f := range fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		t := analysis.ExprString(fset, f.Type)
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(t)
		}
	}
}

// --- assembly parsing --------------------------------------------------------

// asmRef is one symbol reference at a .s location.
type asmRef struct {
	name string
	off  int64
	file string
	line int
}

func (r asmRef) loc() string { return fmt.Sprintf("%s:%d", r.file, r.line) }

// asmFunc is one TEXT symbol and the frame references in its body.
type asmFunc struct {
	name       string
	file       string
	line       int
	nosplit    bool
	argSize    int64 // -1 when the TEXT directive omits it
	fpRefs     []asmRef
	staticRefs []asmRef
}

func (f *asmFunc) loc() string { return fmt.Sprintf("%s:%d", f.file, f.line) }

// asmStatic is one sym<> static data symbol.
type asmStatic struct {
	name      string
	file      string
	line      int   // first DATA or the GLOBL line
	globlSize int64 // -1 when no GLOBL seen
	dataEnd   int64 // highest offset+size across DATA directives
}

func (s *asmStatic) loc() string { return fmt.Sprintf("%s:%d", s.file, s.line) }

// asmIndex is the parsed view of a package's assembly files.
type asmIndex struct {
	texts      map[string]*asmFunc
	textList   []*asmFunc
	statics    map[string]*asmStatic
	staticList []*asmStatic
}

var (
	textRE   = regexp.MustCompile(`^TEXT\s+(?:[A-Za-z0-9_/]*)·([A-Za-z0-9_]+)\(SB\)(.*)$`)
	dataRE   = regexp.MustCompile(`^DATA\s+([A-Za-z0-9_]+)<>\+(0[xX][0-9a-fA-F]+|\d+)\(SB\)/(\d+)`)
	globlRE  = regexp.MustCompile(`^GLOBL\s+([A-Za-z0-9_]+)<>\(SB\)(.*)$`)
	fpRefRE  = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\+(\d+)\(FP\)`)
	staticRE = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)<>(?:\+[0-9a-fA-FxX]+)?\(SB\)`)
	sizeRE   = regexp.MustCompile(`\$(-?\d+)(?:-(\d+))?`)
)

// readFile loads one source file as text.
func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// parseAsmFiles builds the symbol index over the package's .s files with a
// line-oriented scan of the plan9 asm syntax the repository uses.
func parseAsmFiles(dir string, names []string) (*asmIndex, error) {
	idx := &asmIndex{texts: map[string]*asmFunc{}, statics: map[string]*asmStatic{}}
	for _, name := range names {
		if err := idx.parseFile(dir, name); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

func (idx *asmIndex) parseFile(dir, name string) error {
	data, err := readFile(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	var cur *asmFunc
	for i, raw := range strings.Split(data, "\n") {
		lineNo := i + 1
		line := raw
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "TEXT"):
			cur = nil
			m := textRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			fn := &asmFunc{name: m[1], file: name, line: lineNo, argSize: -1}
			rest := m[2]
			for _, part := range strings.Split(rest, ",") {
				part = strings.TrimSpace(part)
				switch {
				case part == "":
				case strings.HasPrefix(part, "$"):
					if sm := sizeRE.FindStringSubmatch(part); sm != nil && sm[2] != "" {
						fn.argSize, _ = strconv.ParseInt(sm[2], 10, 64)
					}
				default:
					if flagsHaveNosplit(part) {
						fn.nosplit = true
					}
				}
			}
			idx.texts[fn.name] = fn
			idx.textList = append(idx.textList, fn)
			cur = fn
		case strings.HasPrefix(line, "DATA"):
			cur = nil
			m := dataRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			off, _ := strconv.ParseInt(m[2], 0, 64)
			size, _ := strconv.ParseInt(m[3], 10, 64)
			s := idx.static(m[1], name, lineNo)
			if end := off + size; end > s.dataEnd {
				s.dataEnd = end
			}
		case strings.HasPrefix(line, "GLOBL"):
			cur = nil
			m := globlRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			s := idx.static(m[1], name, lineNo)
			if sm := sizeRE.FindStringSubmatch(m[2]); sm != nil {
				s.globlSize, _ = strconv.ParseInt(sm[1], 10, 64)
			}
		default:
			if cur == nil {
				continue
			}
			for _, m := range fpRefRE.FindAllStringSubmatch(line, -1) {
				off, _ := strconv.ParseInt(m[2], 10, 64)
				cur.fpRefs = append(cur.fpRefs, asmRef{name: m[1], off: off, file: name, line: lineNo})
			}
			for _, m := range staticRE.FindAllStringSubmatch(line, -1) {
				cur.staticRefs = append(cur.staticRefs, asmRef{name: m[1], file: name, line: lineNo})
			}
		}
	}
	return nil
}

// static returns (creating on first sight) the index entry for sym<>.
func (idx *asmIndex) static(name, file string, line int) *asmStatic {
	s, ok := idx.statics[name]
	if !ok {
		s = &asmStatic{name: name, file: file, line: line, globlSize: -1}
		idx.statics[name] = s
		idx.staticList = append(idx.staticList, s)
	}
	return s
}

// flagsHaveNosplit reports whether a TEXT flags operand includes NOSPLIT,
// accepting both the symbolic textflag.h form and a numeric literal.
func flagsHaveNosplit(flags string) bool {
	for _, tok := range strings.Split(flags, "|") {
		tok = strings.TrimSpace(tok)
		if tok == "NOSPLIT" {
			return true
		}
		if n, err := strconv.ParseInt(tok, 0, 64); err == nil && n&4 != 0 {
			return true
		}
	}
	return false
}
