package asmabi_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/asmabi"
)

func TestAsmABI(t *testing.T) {
	analysistest.Run(t, asmabi.Analyzer, "asmabi")
}
