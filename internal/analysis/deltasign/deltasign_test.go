package deltasign_test

import (
	"testing"

	"dcsketch/internal/analysis/analysistest"
	"dcsketch/internal/analysis/deltasign"
)

func TestDeltaSign(t *testing.T) {
	analysistest.Run(t, deltasign.Analyzer, "deltasign")
}
