// Package deltasign implements the sketchlint analyzer guarding the ±1
// flow-update discipline. The paper's stream model is unit updates: +1 when
// a potentially-malicious connection appears (TCP SYN), -1 when it is
// legitimized (client ACK). The repository encodes that discipline in the
// type system — stream.Update.Delta is an int8 that generators only ever set
// to ±1 — but the sketch Update APIs accept a general int64 delta (they are
// linear, and windowed subtraction needs it). The weak point is the
// conversion: a raw int64(n) at an Update call site launders an arbitrary
// count into the delta channel, which breaks the distinct-count semantics
// (f_v counts *sources*, not packets; feeding per-flow packet counts
// silently turns the detector into a volume monitor, exactly what §2 of the
// paper warns against).
//
// deltasign therefore flags integer conversions appearing as the delta
// argument of an Update/UpdateKey call unless the source type already
// carries the discipline:
//
//   - conversions from int8 (the stream delta type) are allowed;
//   - identity int64 conversions are allowed;
//   - constant expressions evaluating to +1 or -1 are allowed;
//   - everything else (int, uint64, int32 counts, ...) is reported, with
//     "//lint:deltaok <reason>" as the reviewed escape hatch.
//
// The batched ingestion path opens a second laundering channel: updates are
// staged as records (dcs.KeyDelta, dcsketch.FlowUpdate, wire.Update) whose
// Delta field is submitted later via UpdateBatch, so a conversion at the
// composite literal bypasses the call-site check entirely. deltasign
// therefore applies the same conversion discipline to every composite
// literal of a struct with an int64 field named Delta, keyed or positional.
package deltasign

import (
	"go/ast"
	"go/constant"
	"go/types"

	"dcsketch/internal/analysis"
)

// Analyzer is the deltasign analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "deltasign",
	Doc:       "report raw integer-to-int64 delta conversions that bypass the ±1 flow-update discipline",
	Directive: "deltaok",
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall inspects calls to functions or methods named Update/UpdateKey
// whose final parameter is an int64 delta.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	name := calleeName(call)
	if name != "Update" && name != "UpdateKey" {
		return
	}
	sig := calleeSignature(pass, call)
	if sig == nil || sig.Variadic() {
		return
	}
	params := sig.Params()
	if params.Len() == 0 || len(call.Args) != params.Len() {
		return
	}
	last := params.At(params.Len() - 1).Type()
	if basic, ok := last.(*types.Basic); !ok || basic.Kind() != types.Int64 {
		return
	}
	reportSuspectConversion(pass, call.Args[len(call.Args)-1])
}

// checkLit inspects composite literals of batch-record structs — any struct
// with an int64 field named Delta (dcs.KeyDelta, dcsketch.FlowUpdate,
// wire.Update). Staging a batch record is an update submission whose call
// site the analyzer never sees, so the Delta element obeys the same
// conversion discipline as a scalar delta argument.
func checkLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	deltaIdx := -1
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Delta" {
			continue
		}
		if basic, ok := f.Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Int64 {
			deltaIdx = i
		}
		break
	}
	if deltaIdx < 0 {
		return
	}
	for i, elt := range lit.Elts {
		switch e := elt.(type) {
		case *ast.KeyValueExpr:
			if id, ok := e.Key.(*ast.Ident); ok && id.Name == "Delta" {
				reportSuspectConversion(pass, e.Value)
			}
		default:
			if i == deltaIdx {
				reportSuspectConversion(pass, elt)
			}
		}
	}
}

// reportSuspectConversion flags arg when it is an integer→int64 conversion
// whose operand does not already carry the ±1 discipline. Non-conversion
// expressions (literals, variables, arithmetic) pass: they either carry the
// discipline already or cannot be judged locally.
func reportSuspectConversion(pass *analysis.Pass, arg ast.Expr) {
	conv, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(conv.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[conv.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Kind() != types.Int64 {
		return
	}
	inner := conv.Args[0]
	if allowedDeltaSource(pass, inner) {
		return
	}
	srcType := "unknown"
	if t := pass.TypesInfo.Types[inner].Type; t != nil {
		srcType = t.String()
	}
	pass.Reportf(conv.Pos(),
		"raw %s→int64 delta conversion bypasses the ±1 flow-update discipline; derive the delta from a ±1-typed source (int8) or annotate //lint:deltaok",
		srcType)
}

// allowedDeltaSource reports whether the conversion operand already carries
// the ±1 discipline: an int8 value, an int64 identity, or a constant ±1.
func allowedDeltaSource(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		if tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); exact && (v == 1 || v == -1) {
				return true
			}
		}
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Int8, types.Int64:
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}
