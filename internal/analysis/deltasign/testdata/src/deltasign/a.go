// Package deltasign is golden-test input covering delta-argument
// conversions into Update-shaped APIs.
package deltasign

// Sketch stands in for an update API with an int64 delta.
type Sketch struct{}

// Update applies a net frequency change.
func (s *Sketch) Update(src, dst uint32, delta int64) {}

// UpdateKey is Update on a packed key.
func (s *Sketch) UpdateKey(key uint64, delta int64) {}

// Other has an Update with a non-int64 tail and is ignored.
type Other struct{}

// Update here ends in a string.
func (o *Other) Update(name string) {}

func unitUpdates(s *Sketch) {
	s.Update(1, 2, 1)
	s.Update(1, 2, -1)
	s.UpdateKey(9, 1)
}

func int8Source(s *Sketch, d int8) {
	s.Update(1, 2, int64(d))  // allowed: int8 carries the ±1 discipline
	s.UpdateKey(9, int64(-d)) // allowed: still int8
}

func int64Passthrough(s *Sketch, delta int64) {
	s.Update(1, 2, delta)
	s.UpdateKey(9, int64(delta)) // allowed: identity conversion
}

func constUnits(s *Sketch) {
	s.Update(1, 2, int64(1))
	s.Update(1, 2, int64(-1))
}

func launderInt(s *Sketch, count int) {
	s.Update(1, 2, int64(count)) // want `raw int→int64 delta conversion bypasses`
}

func launderUint(s *Sketch, n uint32) {
	s.UpdateKey(7, int64(n)) // want `raw uint32→int64 delta conversion bypasses`
}

func launderInt32(s *Sketch, n int32) {
	s.Update(1, 2, int64(n)) // want `raw int32→int64 delta conversion bypasses`
}

func launderConst(s *Sketch) {
	s.Update(1, 2, int64(7)) // want `delta conversion bypasses`
}

func suppressed(s *Sketch, count int) {
	s.Update(1, 2, int64(count)) //lint:deltaok replaying a pre-aggregated trace
}

func otherShape(o *Other) {
	o.Update("x") // ignored: delta tail is not int64
}

// KeyDelta stands in for a staged batch record: the Delta field is submitted
// later through UpdateBatch, so its composite literals obey the same
// discipline as a scalar delta argument.
type KeyDelta struct {
	Key   uint64
	Delta int64
}

// FlowUpdate stands in for the public batch record shape.
type FlowUpdate struct {
	Src, Dst uint32
	Delta    int64
}

// Labeled has a Delta field that is not an int64 and is ignored.
type Labeled struct {
	Delta string
}

// UpdateBatch stands in for a batch submission API.
func (s *Sketch) UpdateBatch(batch []KeyDelta) {}

func stagedUnits(s *Sketch, d int8, delta int64) {
	s.UpdateBatch([]KeyDelta{
		{Key: 9, Delta: 1},
		{Key: 9, Delta: -1},
		{Key: 9, Delta: int64(d)},     // allowed: int8 carries the ±1 discipline
		{Key: 9, Delta: int64(delta)}, // allowed: identity conversion
	})
}

func stagedLaunderKeyed(s *Sketch, count int) {
	s.UpdateBatch([]KeyDelta{
		{Key: 9, Delta: int64(count)}, // want `raw int→int64 delta conversion bypasses`
	})
}

func stagedLaunderPositional(n uint32) KeyDelta {
	return KeyDelta{7, int64(n)} // want `raw uint32→int64 delta conversion bypasses`
}

func stagedLaunderFlow(n int32) FlowUpdate {
	return FlowUpdate{Src: 1, Dst: 2, Delta: int64(n)} // want `raw int32→int64 delta conversion bypasses`
}

func stagedSuppressed(s *Sketch, count int) {
	s.UpdateBatch([]KeyDelta{
		{Key: 9, Delta: int64(count)}, //lint:deltaok replaying a pre-aggregated trace
	})
}

func stagedOtherShape() Labeled {
	return Labeled{Delta: "x"} // ignored: Delta is not an int64
}
