//go:build dcsdebug

package dcs

import (
	"testing"

	"dcsketch/internal/hashing"
)

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected a dcsdebug panic, got none", what)
		}
	}()
	fn()
}

func TestDebugWellFormedStreamPasses(t *testing.T) {
	cfg := Config{Seed: 7}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	rng := hashing.NewSplitMix64(8)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Next()
		a.UpdateKey(keys[i], 1)
		b.UpdateKey(keys[i], 1)
	}
	// Deletes never exceeding inserts keep every invariant intact.
	for _, k := range keys[:200] {
		a.UpdateKey(k, -1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Subtract(b); err != nil {
		t.Fatal(err)
	}
}

func TestDebugDeleteBelowZeroPanics(t *testing.T) {
	s := mustNew(t, Config{Seed: 9})
	s.UpdateKey(42, 1)
	s.UpdateKey(42, -1)
	mustPanic(t, "second delete of a once-inserted pair", func() {
		s.UpdateKey(42, -1)
	})
}

func TestDebugBadSubtractPanics(t *testing.T) {
	cfg := Config{Seed: 10}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	a.UpdateKey(1, 1)
	b.UpdateKey(2, 1) // not a substream of a
	mustPanic(t, "subtracting a non-substream sketch", func() {
		_ = a.Subtract(b)
	})
}
