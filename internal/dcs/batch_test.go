package dcs

import (
	"math/rand"
	"slices"
	"testing"
)

// randomStream builds n updates with inserts and matched deletes (a delete
// only ever removes a pair previously inserted and still live), the shape
// the half-open state machine produces and the dcsdebug assertions expect.
func randomStream(rng *rand.Rand, n int) []KeyDelta {
	stream := make([]KeyDelta, 0, n)
	live := make([]uint64, 0, n)
	for len(stream) < n {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			stream = append(stream, KeyDelta{Key: live[i], Delta: -1})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		key := rng.Uint64()
		stream = append(stream, KeyDelta{Key: key, Delta: 1})
		live = append(live, key)
	}
	return stream
}

// TestUpdateBatchEquivalence checks the batched kernel against the scalar
// path: any chunking of a stream (including deletes) must produce
// byte-identical sketch state.
func TestUpdateBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stream := randomStream(rng, 5000)

	for _, cfg := range []Config{{Seed: 11}, {Seed: 11, DisableFingerprint: true}} {
		scalar := mustNew(t, cfg)
		batched := mustNew(t, cfg)

		for _, u := range stream {
			scalar.UpdateKey(u.Key, u.Delta)
		}
		for off := 0; off < len(stream); {
			n := 1 + rng.Intn(700) // covers 1-element and multi-hundred chunks
			if off+n > len(stream) {
				n = len(stream) - off
			}
			batched.UpdateBatch(stream[off : off+n])
			off += n
		}

		if !slices.Equal(scalar.counters, batched.counters) {
			t.Fatalf("cfg %+v: batched counters diverge from scalar", cfg)
		}
		if !slices.Equal(scalar.occupied, batched.occupied) {
			t.Fatalf("cfg %+v: batched occupancy diverges from scalar", cfg)
		}
		if scalar.Updates() != batched.Updates() {
			t.Fatalf("cfg %+v: updates %d != %d", cfg, scalar.Updates(), batched.Updates())
		}
	}
}

// TestUpdateBatchSerialRoundTrip checks the batched kernel composes with the
// flat-counter serialization: a sketch fed through UpdateBatch must encode
// byte-identically to a scalar-fed twin, and both must keep producing
// identical state when updating resumes on the decoded copies.
func TestUpdateBatchSerialRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	first, second := randomStream(rng, 3000), randomStream(rng, 2000)
	cfg := Config{Seed: 19}

	scalar := mustNew(t, cfg)
	batched := mustNew(t, cfg)
	for _, u := range first {
		scalar.UpdateKey(u.Key, u.Delta)
	}
	batched.UpdateBatch(first)

	encScalar, err := scalar.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	encBatched, err := batched.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(encScalar, encBatched) {
		t.Fatal("batched sketch encodes differently from scalar twin")
	}

	// Resume on the decoded copies, crossing the kernels over: the decoded
	// scalar twin continues batched and vice versa.
	reScalar, err := UnmarshalBinary(encScalar)
	if err != nil {
		t.Fatal(err)
	}
	reBatched, err := UnmarshalBinary(encBatched)
	if err != nil {
		t.Fatal(err)
	}
	reScalar.UpdateBatch(second)
	for _, u := range second {
		reBatched.UpdateKey(u.Key, u.Delta)
	}
	if !slices.Equal(reScalar.counters, reBatched.counters) {
		t.Fatal("post-round-trip counters diverge between kernels")
	}
	if !slices.Equal(reScalar.occupied, reBatched.occupied) {
		t.Fatal("post-round-trip occupancy diverges between kernels")
	}
}

// TestOccupancyIncrementalMatchesRecount checks that the occupancy index the
// kernel maintains per update equals a from-scratch recount, across inserts,
// deletes, merge, subtract and reset.
func TestOccupancyIncrementalMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := Config{Seed: 3}
	s := mustNew(t, cfg)
	other := mustNew(t, cfg)

	checkOccupancy := func(stage string, sk *Sketch) {
		t.Helper()
		got := slices.Clone(sk.occupied)
		sk.recountOccupancy()
		if !slices.Equal(got, sk.occupied) {
			t.Fatalf("%s: incremental occupancy %v != recount %v", stage, got, sk.occupied)
		}
	}

	s.UpdateBatch(randomStream(rng, 3000))
	checkOccupancy("after stream", s)

	other.UpdateBatch(randomStream(rng, 1000))
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	checkOccupancy("after merge", s)

	if err := s.Subtract(other); err != nil {
		t.Fatal(err)
	}
	checkOccupancy("after subtract", s)

	s.Reset()
	checkOccupancy("after reset", s)
	for _, occ := range s.occupied {
		if occ != 0 {
			t.Fatalf("after reset: occupancy %v not zero", s.occupied)
		}
	}
}

// TestOccupiedBuckets checks the exported per-level occupancy accessor: the
// totals over all levels must equal the number of non-zero-total buckets.
func TestOccupiedBuckets(t *testing.T) {
	cfg := Config{Seed: 5}
	s := mustNew(t, cfg)
	rng := rand.New(rand.NewSource(17))
	s.UpdateBatch(randomStream(rng, 2000))

	total := 0
	for lvl := 0; lvl < s.Config().Levels; lvl++ {
		n := s.OccupiedBuckets(lvl)
		if n < 0 {
			t.Fatalf("level %d: negative occupancy %d", lvl, n)
		}
		total += n
	}
	nonZero := 0
	for i := 0; i < len(s.counters); i += s.width {
		if s.counters[i] != 0 {
			nonZero++
		}
	}
	if total != nonZero {
		t.Fatalf("occupancy total %d != %d non-zero-total buckets", total, nonZero)
	}
}

// TestUpdateBatchEmptyAndZeroDelta checks the degenerate batch shapes.
func TestUpdateBatchEmptyAndZeroDelta(t *testing.T) {
	s := mustNew(t, Config{Seed: 1})
	s.UpdateBatch(nil)
	s.UpdateBatch([]KeyDelta{})
	if got := s.Updates(); got != 0 {
		t.Fatalf("empty batches counted %d updates", got)
	}
}
