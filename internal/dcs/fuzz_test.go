package dcs

import "testing"

func FuzzUnmarshalBinary(f *testing.F) {
	small, err := New(Config{Buckets: 4, Levels: 4, Tables: 1})
	if err != nil {
		f.Fatal(err)
	}
	small.UpdateKey(42, 1)
	seed, err := small.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("DCS1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := UnmarshalBinary(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// query answers without panicking.
		out, err := sk.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := UnmarshalBinary(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		a, b := sk.TopK(3), again.TopK(3)
		if len(a) != len(b) {
			t.Fatalf("round trip changed TopK: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round trip changed TopK[%d]: %+v vs %+v", i, a[i], b[i])
			}
		}
	})
}
