package dcs

import "testing"

// TestQueryStatsSampling checks the counters maintained on the ordinary
// query path: queries, sample shape, decoded singletons, and collision
// decode failures under load.
func TestQueryStatsSampling(t *testing.T) {
	s, err := New(Config{Levels: 8, Tables: 2, Buckets: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qs := s.QueryStats(); qs != (QueryStats{}) {
		t.Fatalf("fresh sketch has stats %+v", qs)
	}
	// Enough keys that the 64-bucket tables must take collisions.
	for k := uint64(1); k <= 500; k++ {
		s.UpdateKey(k*0x9e3779b97f4a7c15, 1)
	}
	pairs, level := s.DistinctSample()
	qs := s.QueryStats()
	if qs.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", qs.Queries)
	}
	if qs.SampleLevel != level || qs.SampleSize != len(pairs) {
		t.Fatalf("sample shape (%d,%d) != stats (%d,%d)",
			level, len(pairs), qs.SampleLevel, qs.SampleSize)
	}
	if qs.DecodeSingletons == 0 {
		t.Fatal("no singletons decoded from a populated sketch")
	}
	if qs.DecodeFailures == 0 {
		t.Fatal("500 keys in 64 buckets produced no collision decodes")
	}
	if qs.ChecksumRejects != 0 || qs.StructuralRejects != 0 {
		t.Fatalf("insert-only stream rejected decodes: %+v", qs)
	}
	s.TopK(5)
	if got := s.QueryStats().Queries; got != 2 {
		t.Fatalf("Queries after TopK = %d, want 2", got)
	}
}

// singletonBucket inserts one key and returns its (level, bucket) under
// table 0, asserting the bucket decodes.
func singletonBucket(t *testing.T, s *Sketch, key uint64) (level, bucket int) {
	t.Helper()
	s.UpdateKey(key, 1)
	level, bucket = s.LevelOf(key), s.BucketOf(0, key)
	if _, _, ok := s.DecodeBucket(level, 0, bucket); !ok {
		t.Fatalf("lone key did not decode at level %d bucket %d", level, bucket)
	}
	return level, bucket
}

// TestQueryStatsChecksumReject corrupts the fingerprint counter of a valid
// singleton — the signature a delete-induced false singleton presents — and
// checks the decode is rejected and counted.
func TestQueryStatsChecksumReject(t *testing.T) {
	s, err := New(Config{Levels: 4, Tables: 1, Buckets: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	level, bucket := singletonBucket(t, s, testKey)
	before := s.QueryStats()
	sg := s.bucketSig(level, 0, bucket)
	sg[s.width-1]++ // fingerprint is the trailing counter
	if _, _, ok := s.DecodeBucket(level, 0, bucket); ok {
		t.Fatal("corrupted fingerprint still decoded")
	}
	qs := s.QueryStats()
	if qs.ChecksumRejects != before.ChecksumRejects+1 {
		t.Fatalf("ChecksumRejects = %d, want %d", qs.ChecksumRejects, before.ChecksumRejects+1)
	}
	sg[s.width-1]-- // restore; the signature decodes again
	if _, _, ok := s.DecodeBucket(level, 0, bucket); !ok {
		t.Fatal("restored signature no longer decodes")
	}
}

// TestQueryStatsStructuralReject copies a valid singleton signature into a
// bucket its key does not hash to — a false singleton the checksum cannot
// catch — and checks the structural re-hash guard rejects and counts it.
func TestQueryStatsStructuralReject(t *testing.T) {
	s, err := New(Config{Levels: 4, Tables: 1, Buckets: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	level, bucket := singletonBucket(t, s, testKey)
	wrong := (bucket + 1) % s.cfg.Buckets
	copy(s.bucketSig(level, 0, wrong), s.bucketSig(level, 0, bucket))
	if _, _, ok := s.DecodeBucket(level, 0, wrong); ok {
		t.Fatal("relocated signature decoded in the wrong bucket")
	}
	if got := s.QueryStats().StructuralRejects; got != 1 {
		t.Fatalf("StructuralRejects = %d, want 1", got)
	}
}

const testKey uint64 = 0xdecafbad
