package dcs

// QueryStats is the sketch's decode-path health state: cumulative decode
// outcome counters plus the shape of the most recent distinct sample. Every
// DecodeBucket caller ticks the decode counters — sampling queries, and on
// a tracking sketch also the per-update before/after diffs and rebuilds —
// so they reflect all decode activity, not just queries. The
// counters are plain (non-atomic) words owned by the sketch's single
// writer — the sketch's existing single-goroutine contract covers them, and
// the query kernels stay free of even uncontended atomic traffic. Callers
// that export them concurrently (the monitor's telemetry probes) read them
// under the lock that already serializes queries.
type QueryStats struct {
	// Queries counts distinct-sampling passes (TopK, Threshold,
	// EstimateDistinctPairs and friends each run one).
	Queries uint64
	// DecodeSingletons counts buckets that decoded into a verified
	// singleton pair.
	DecodeSingletons uint64
	// DecodeFailures counts non-empty buckets whose signature was not a
	// singleton (collisions and deletion residue). Empty buckets are not
	// counted: they are the common case and carry no health signal.
	DecodeFailures uint64
	// ChecksumRejects counts would-be singletons rejected by the
	// fingerprint checksum — the paper's delete-induced false singletons.
	ChecksumRejects uint64
	// StructuralRejects counts decoded pairs rejected because they re-hash
	// to a different level or bucket than they were found in (the residual
	// false-singleton guard behind the checksum).
	StructuralRejects uint64
	// SampleLevel is the first-level bucket at which the most recent
	// sampling pass stopped (the 2^level frequency scale).
	SampleLevel int
	// SampleSize is the number of pairs in the most recent distinct
	// sample.
	SampleSize int
}

// QueryStats returns the current query-path health counters. Like every
// read of the sketch it must be serialized with mutations by the caller.
func (s *Sketch) QueryStats() QueryStats { return s.qstats }
