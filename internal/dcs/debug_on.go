//go:build dcsdebug

// Runtime invariant assertions, enabled by `go test -tags dcsdebug`. For a
// well-formed stream — per-pair deletes never exceeding inserts, the
// discipline the detection application guarantees (a connection is
// legitimized at most once per SYN) — every count signature must satisfy
//
//	0 <= bit counter <= total    and    total >= 0,
//
// because each bit-location counter sums the counts of a sub-multiset of the
// bucket's pairs. A violation means either a caller broke the ±1 update
// discipline or a sketch operation corrupted the linear structure; both are
// bugs worth a loud panic in a debug build. Mutation operations (deletes,
// Merge, Subtract) are asserted; query paths are not, so hostile
// deserialized sketches (fuzz inputs) remain queryable without tripping
// assertions that only well-formed streams promise.
package dcs

import (
	"fmt"

	"dcsketch/internal/sig"
)

// debugAssertions enables the runtime invariant checks in this build.
const debugAssertions = true

// assertSig panics when the signature at (level, table, bucket) violates the
// well-formed-stream invariants.
func (s *Sketch) assertSig(level, table, bucket int, op string) {
	sg := s.bucketSig(level, table, bucket)
	total := sg[0]
	if total < 0 {
		panic(fmt.Sprintf("dcsdebug: %s drove bucket (%d,%d,%d) total negative (%d); deletes exceed inserts",
			op, level, table, bucket, total))
	}
	for j := 1; j <= sig.KeyBits; j++ {
		if sg[j] < 0 || sg[j] > total {
			panic(fmt.Sprintf("dcsdebug: %s left bucket (%d,%d,%d) bit counter %d = %d outside [0, total=%d]",
				op, level, table, bucket, j-1, sg[j], total))
		}
	}
}

// assertKeyBuckets checks the r second-level buckets that key maps to —
// the only signatures one update can touch.
func (s *Sketch) assertKeyBuckets(key uint64, op string) {
	level := s.levelHash.Level(key, s.cfg.Levels)
	for j := 0; j < s.cfg.Tables; j++ {
		s.assertSig(level, j, s.bucketHash[j].Bucket(key, s.cfg.Buckets), op)
	}
}

// assertAllBuckets checks every signature in the sketch.
func (s *Sketch) assertAllBuckets(op string) {
	for level := 0; level < s.cfg.Levels; level++ {
		for j := 0; j < s.cfg.Tables; j++ {
			for b := 0; b < s.cfg.Buckets; b++ {
				s.assertSig(level, j, b, op)
			}
		}
	}
}
