//go:build !dcsdebug

package dcs

// debugAssertions is false in ordinary builds, compiling the assertion call
// sites out entirely; build with -tags dcsdebug to swap in the checking
// implementations (debug_on.go).
const debugAssertions = false

func (s *Sketch) assertKeyBuckets(key uint64, op string) {}

func (s *Sketch) assertAllBuckets(op string) {}
