package dcs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dcsketch/internal/sig"
)

// Serialization format (little-endian, varint-based):
//
//	magic "DCS1" | tables | buckets | levels | seed | epsilon bits |
//	fingerprint flag | updates | counter payload
//
// The counter payload is run-length encoded: a stream of uvarint tokens t
// where an even t encodes a run of t/2 zero counters and an odd t is
// followed by (t-1)/2 zigzag-varint counter values. Sketch counters are
// overwhelmingly zero (only ~log2(U) of 64 levels are populated), so the
// encoding shrinks a multi-megabyte counter array to roughly the size of its
// live content.

const sketchMagic = "DCS1"

// ErrCorrupt is returned when deserialization encounters malformed input.
var ErrCorrupt = errors.New("dcs: corrupt sketch encoding")

// MarshalBinary encodes the sketch. It implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4096)
	buf = append(buf, sketchMagic...)
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Tables))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Buckets))
	buf = binary.AppendUvarint(buf, uint64(s.cfg.Levels))
	buf = binary.LittleEndian.AppendUint64(buf, s.cfg.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.cfg.Epsilon))
	if s.cfg.DisableFingerprint {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(s.cfg.SampleTarget))
	buf = binary.AppendUvarint(buf, s.updates)
	buf = appendCounters(buf, s.counters)
	return buf, nil
}

// appendCounters RLE-encodes counters onto buf.
func appendCounters(buf []byte, counters []int64) []byte {
	i := 0
	n := len(counters)
	for i < n {
		if counters[i] == 0 {
			run := i
			for i < n && counters[i] == 0 {
				i++
			}
			buf = binary.AppendUvarint(buf, uint64(i-run)<<1)
			continue
		}
		run := i
		for i < n && counters[i] != 0 {
			i++
		}
		buf = binary.AppendUvarint(buf, uint64(i-run)<<1|1)
		for _, c := range counters[run:i] {
			buf = binary.AppendVarint(buf, c)
		}
	}
	return buf
}

// UnmarshalBinary decodes a sketch previously produced by MarshalBinary,
// replacing the receiver's state entirely. It implements
// encoding.BinaryUnmarshaler.
func UnmarshalBinary(data []byte) (*Sketch, error) {
	if len(data) < len(sketchMagic) || string(data[:len(sketchMagic)]) != sketchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	data = data[len(sketchMagic):]

	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		data = data[n:]
		return v, nil
	}

	tables, err := readUvarint()
	if err != nil {
		return nil, err
	}
	buckets, err := readUvarint()
	if err != nil {
		return nil, err
	}
	levels, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if len(data) < 17 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	seed := binary.LittleEndian.Uint64(data)
	epsilon := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	fpFlag := data[16]
	data = data[17:]
	sampleTarget, err := readUvarint()
	if err != nil {
		return nil, err
	}
	updates, err := readUvarint()
	if err != nil {
		return nil, err
	}

	// Bound the parameters before allocating: Tables*Buckets*Levels*width
	// is the counter count; reject anything implying > 1 GiB. The product
	// check matters, not just the per-dimension caps — individually-plausible
	// dimensions can still multiply out to a multi-hundred-GiB allocation
	// inside New (fuzz corpus fc7aeaf238eae7e2). The factors are capped at
	// 2^10 * 2^24 * 2^6 * width, so the uint64 product cannot overflow.
	if tables == 0 || tables > 1024 || buckets < 2 || buckets > 1<<24 || levels == 0 || levels > 64 {
		return nil, fmt.Errorf("%w: implausible parameters (r=%d s=%d L=%d)", ErrCorrupt, tables, buckets, levels)
	}
	width := uint64(sig.Layout{Fingerprint: fpFlag != 1}.Width())
	if counterCount := tables * buckets * levels * width; counterCount > (1<<30)/8 {
		return nil, fmt.Errorf("%w: counter array too large (%d counters)", ErrCorrupt, counterCount)
	}

	if sampleTarget > 1<<30 {
		return nil, fmt.Errorf("%w: implausible sample target %d", ErrCorrupt, sampleTarget)
	}
	s, err := New(Config{
		Tables:             int(tables),
		Buckets:            int(buckets),
		Levels:             int(levels),
		Seed:               seed,
		Epsilon:            epsilon,
		SampleTarget:       int(sampleTarget),
		DisableFingerprint: fpFlag == 1,
	})
	if err != nil {
		return nil, fmt.Errorf("dcs: decode config: %w", err)
	}
	s.updates = updates

	i := 0
	for i < len(s.counters) {
		token, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated counter payload", ErrCorrupt)
		}
		data = data[n:]
		runLen := int(token >> 1)
		if runLen <= 0 || runLen > len(s.counters)-i {
			return nil, fmt.Errorf("%w: run length %d exceeds remaining %d", ErrCorrupt, runLen, len(s.counters)-i)
		}
		if token&1 == 0 {
			i += runLen // zero run: counters are already zero
			continue
		}
		for j := 0; j < runLen; j++ {
			v, vn := binary.Varint(data)
			if vn <= 0 {
				return nil, fmt.Errorf("%w: truncated counter value", ErrCorrupt)
			}
			data = data[vn:]
			s.counters[i] = v
			i++
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	s.recountOccupancy()
	return s, nil
}
