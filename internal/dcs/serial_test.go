package dcs

import (
	"bytes"
	"errors"
	"testing"

	"dcsketch/internal/hashing"
)

func TestMarshalRoundTrip(t *testing.T) {
	s := mustNew(t, Config{Buckets: 64, Seed: 101})
	rng := hashing.NewSplitMix64(103)
	for i := 0; i < 5000; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	if !debugAssertions {
		// Net-negative noise must survive serialization too; skipped
		// under -tags dcsdebug, which (correctly) panics on streams
		// whose deletes exceed their inserts.
		for i := 0; i < 500; i++ {
			s.UpdateKey(rng.Next(), -1)
		}
	}

	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.Config() != s.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", got.Config(), s.Config())
	}
	if got.Updates() != s.Updates() {
		t.Fatalf("updates = %d, want %d", got.Updates(), s.Updates())
	}
	if !bytes.Equal(int64sToBytes(got.counters), int64sToBytes(s.counters)) {
		t.Fatal("counters differ after round trip")
	}
}

func int64sToBytes(xs []int64) []byte {
	out := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		for i := 0; i < 8; i++ {
			out = append(out, byte(uint64(x)>>(8*i)))
		}
	}
	return out
}

func TestMarshalEmptySketchIsSmall(t *testing.T) {
	s := mustNew(t, Config{})
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 256 {
		t.Fatalf("empty sketch encodes to %d bytes; RLE should collapse it", len(data))
	}
}

func TestMarshalCompressionOnSparseSketch(t *testing.T) {
	s := mustNew(t, Config{Seed: 1})
	for i := uint64(0); i < 1000; i++ {
		s.UpdateKey(hashing.Mix64(i), 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= s.SizeBytes()/4 {
		t.Fatalf("encoded %d bytes for a %d-byte sketch; expected strong compression", len(data), s.SizeBytes())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE1234"),
		"short magic": []byte("DC"),
		"header only": []byte("DCS1"),
	}
	for name, data := range cases {
		if _, err := UnmarshalBinary(data); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupt input", name)
		}
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	s := mustNew(t, Config{Buckets: 32, Seed: 5})
	for i := uint64(0); i < 200; i++ {
		s.UpdateKey(hashing.Mix64(i), 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, len(data) / 2, 10} {
		if _, err := UnmarshalBinary(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	s := mustNew(t, Config{Buckets: 32, Seed: 6})
	s.UpdateKey(42, 1)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBinary(append(data, 0xff)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestUnmarshalRejectsImplausibleParameters(t *testing.T) {
	// Craft a header claiming an enormous bucket count.
	buf := []byte("DCS1")
	buf = append(buf, 1)                           // tables = 1
	buf = appendUvarintForTest(buf, uint64(1)<<40) // buckets: absurd
	buf = append(buf, 64)                          // levels
	buf = append(buf, make([]byte, 17)...)         // seed+eps+flag
	if _, err := UnmarshalBinary(buf); err == nil {
		t.Fatal("implausible parameters accepted")
	}
}

func TestUnmarshalRejectsOversizedProduct(t *testing.T) {
	// Every dimension is individually inside its cap, but the product
	// implies a ~270 GiB counter array; the decoder must reject it before
	// New allocates (regression for fuzz corpus fc7aeaf238eae7e2).
	buf := []byte("DCS1")
	buf = appendUvarintForTest(buf, 48)     // tables
	buf = appendUvarintForTest(buf, 425983) // buckets
	buf = appendUvarintForTest(buf, 25)     // levels
	buf = append(buf, make([]byte, 17)...)  // seed+eps+flag
	buf = appendUvarintForTest(buf, 0)      // sample target
	buf = appendUvarintForTest(buf, 0)      // updates
	_, err := UnmarshalBinary(buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized counter product: got %v, want ErrCorrupt", err)
	}
}

func appendUvarintForTest(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func TestRoundTripPreservesQueryResults(t *testing.T) {
	s := mustNew(t, Config{Buckets: 256, Seed: 7})
	for src := uint32(1); src <= 30; src++ {
		s.Update(src, 9, 1)
	}
	for src := uint32(1); src <= 10; src++ {
		s.Update(src, 13, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.TopK(2), got.TopK(2)
	if len(a) != len(b) {
		t.Fatalf("TopK sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
