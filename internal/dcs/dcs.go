// Package dcs implements the basic Distinct-Count Sketch of Ganguly,
// Garofalakis, Rastogi and Sabnani ("Streaming Algorithms for Robust,
// Real-Time Detection of DDoS Attacks", ICDCS 2007, §3–§4).
//
// The sketch summarizes a stream of flow updates (source, dest, ±1) in
// guaranteed small space and O(r·log m) time per update, and answers top-k
// queries over the *distinct-source frequency* metric
//
//	f_v = |{u : net occurrences of (u,v) in the stream > 0}|
//
// by extracting a distinct sample of source-destination pairs from the
// sketch's hash structure (procedure BaseTopk, Fig. 3 of the paper).
//
// Structure: a first-level hash h maps each 64-bit pair key onto one of
// Levels buckets with geometrically decreasing probability Pr[h(x)=l] =
// 2^-(l+1). Each first-level bucket holds r independent second-level hash
// tables of s buckets each, and each second-level bucket stores a count
// signature (package sig) from which a lone occupant can be reconstructed
// exactly. Because every structure is a linear function of the stream, the
// sketch natively supports deletions and merging.
package dcs

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"dcsketch/internal/hashing"
	"dcsketch/internal/sig"
	"dcsketch/internal/vec"
)

// The vectorized kernels operate on exactly one lane per key bit; the two
// constants are definitionally equal, and the conversion in applySig relies
// on it.
var _ [vec.Lanes]struct{} = [sig.KeyBits]struct{}{}

// batchChunk is the number of records per precomputation chunk of
// UpdateBatch: large enough to amortize the phase switch, small enough that
// the per-chunk hash outputs (levels, fingerprints, flat counter indices)
// stay resident in L1 while phase 2 replays them.
const batchChunk = 128

// Default parameter values; the defaults for r and s match the paper's
// experimental configuration (§6.1).
const (
	DefaultTables  = 3
	DefaultBuckets = 128
	DefaultLevels  = 64
	DefaultEpsilon = 1.0 / 3.0
)

// Config carries the tunable parameters of a Distinct-Count Sketch.
// The zero value is replaced by the package defaults field-by-field.
type Config struct {
	// Tables is r, the number of independent second-level hash tables per
	// first-level bucket. The analysis wants r = Θ(log(n/δ)); the paper's
	// experiments use 3-4.
	Tables int
	// Buckets is s, the number of buckets per second-level hash table.
	// The analysis wants s = Θ(U·log((n+log m)/δ) / (f_vk·ε²)); the
	// paper's experiments use 64-256.
	Buckets int
	// Levels is the number of first-level hash buckets, Θ(log m²). The
	// default 64 covers the full 64-bit pair domain; only ~log2(U) levels
	// are ever non-empty.
	Levels int
	// Seed derives every hash function in the sketch. Two sketches must
	// share a seed to be mergeable.
	Seed uint64
	// Epsilon is the accuracy parameter ε of the TRACKAPPROXTOPK
	// guarantee, used by the paper-form stopping rule (see SampleTarget).
	Epsilon float64
	// SampleTarget is the estimator's stopping threshold: sampling
	// descends first-level buckets until the distinct sample holds at
	// least this many pairs. Zero selects the practical default of s
	// (Buckets), which loads the stopping level with ~s/2 pairs — still
	// ~94% singleton-recoverable at r=3 — and gives sample sizes large
	// enough to reproduce the paper's reported accuracy. The paper's
	// pseudocode constant (1+ε)·s/16 (Fig. 3, step 3) is available via
	// PaperSampleTarget for ablation; it is a conservative analysis
	// constant that yields ~10-pair samples at s=128.
	SampleTarget int
	// DisableFingerprint drops the checksum counter from the count
	// signatures, reproducing the paper's exact structure. With the
	// counter enabled (default), delete-induced false singletons are
	// detected with probability 1-2^-63 at the cost of one extra counter
	// per bucket (~1.5% space).
	DisableFingerprint bool
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Tables == 0 {
		c.Tables = DefaultTables
	}
	if c.Buckets == 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Levels == 0 {
		c.Levels = DefaultLevels
	}
	if c.Epsilon == 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.SampleTarget == 0 {
		c.SampleTarget = c.Buckets
	}
	return c
}

// PaperSampleTarget returns the stopping threshold exactly as written in the
// paper's pseudocode, (1+ε)·s/16, for use in Config.SampleTarget when
// reproducing the paper's structure verbatim.
func PaperSampleTarget(buckets int, epsilon float64) int {
	t := int((1 + epsilon) * float64(buckets) / 16)
	if t < 1 {
		t = 1
	}
	return t
}

// validate reports the first invalid field of an already-defaulted config.
func (c Config) validate() error {
	switch {
	case c.Tables < 1:
		return fmt.Errorf("dcs: Tables = %d, must be >= 1", c.Tables)
	case c.Buckets < 2:
		return fmt.Errorf("dcs: Buckets = %d, must be >= 2", c.Buckets)
	case c.Levels < 1 || c.Levels > 64:
		return fmt.Errorf("dcs: Levels = %d, must be in [1,64]", c.Levels)
	case c.Epsilon <= 0 || c.Epsilon >= 1:
		return fmt.Errorf("dcs: Epsilon = %v, must be in (0,1)", c.Epsilon)
	case c.SampleTarget < 1:
		return fmt.Errorf("dcs: SampleTarget = %d, must be >= 1", c.SampleTarget)
	}
	return nil
}

// Estimate is one entry of a top-k answer: a destination and its estimated
// distinct-source frequency.
type Estimate struct {
	Dest uint32
	F    int64
}

// SampledPair is one element of the distinct sample recovered from the
// sketch: a pair key together with its net occurrence count in the stream.
type SampledPair struct {
	Key   uint64
	Count int64
}

// KeyDelta is one flow update addressed by its pre-packed 64-bit pair key,
// the unit of the batched ingestion path (UpdateBatch). Delta carries the
// same ±1 discipline as the scalar Update/UpdateKey arguments.
type KeyDelta struct {
	Key   uint64
	Delta int64
}

// Sketch is a basic Distinct-Count Sketch. It is not safe for concurrent
// mutation; wrap it in a mutex or use one sketch per goroutine and Merge.
type Sketch struct {
	cfg    Config
	layout sig.Layout
	width  int

	// tableStride and levelStride are the precomputed distances (in
	// counters) between consecutive second-level tables and consecutive
	// first-level buckets in the flattened counter array, hoisted out of
	// the update kernel.
	tableStride int
	levelStride int

	levelHash  *hashing.Tab64
	fpHash     *hashing.Tab64
	bucketHash []*hashing.Tab64

	// counters is the flattened 4-D array X[level][table][bucket][pos]
	// of the paper (Fig. 2).
	counters []int64

	// occupied[l] counts the second-level buckets at first-level bucket l
	// whose total counter is non-zero. A level with occupied[l] == 0 can
	// hold no decodable singleton (only a positive total decodes), so the
	// sampling loop skips it without scanning its r·s signatures. The
	// count is maintained incrementally by the update kernel and recounted
	// wholesale after the bulk linear operations (Merge, Subtract,
	// deserialization).
	occupied []int32

	// updates counts processed stream updates (inserts + deletes).
	updates uint64

	// Query scratch owned by the sketch and reused across queries, keeping
	// the sampling path allocation-light. Their use makes queries mutating
	// operations; the sketch's existing single-goroutine contract already
	// covers that.
	sampleSeen  map[uint64]struct{} //lint:scratch
	samplePairs []SampledPair       //lint:scratch
	destFreq    map[uint32]int64    //lint:scratch
	estimates   []Estimate          //lint:scratch

	// addends is the per-update masked addend vector (vec.BuildMaskedAddends
	// output), built once per update and applied to each of the r tables.
	// Update scratch, valid only within one kernel invocation.
	addends [vec.Lanes]int64

	// Batch precomputation scratch (UpdateBatch phase 1 → phase 2): per
	// chunked record the pair key, delta, fingerprint, first-level bucket,
	// and the r flat counter indices. Sized at construction so the batch
	// path never allocates.
	batchKeys   []uint64 //lint:scratch
	batchDeltas []int64  //lint:scratch
	batchFps    []int64  //lint:scratch
	batchLevels []int32  //lint:scratch
	batchIdx    []int    //lint:scratch

	// qstats holds the query-path health counters (see QueryStats). Plain
	// words under the same single-writer contract as the rest of the
	// sketch; exported to telemetry through scrape-time probes that take
	// the owning layer's lock.
	qstats QueryStats
}

// New builds an empty sketch. Zero-valued Config fields take the package
// defaults.
func New(cfg Config) (*Sketch, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	layout := sig.Layout{Fingerprint: !cfg.DisableFingerprint}
	width := layout.Width()
	seeds := hashing.NewSplitMix64(cfg.Seed)
	s := &Sketch{
		cfg:         cfg,
		layout:      layout,
		width:       width,
		tableStride: cfg.Buckets * width,
		levelStride: cfg.Tables * cfg.Buckets * width,
		levelHash:   hashing.NewTab64(seeds.Next()),
		fpHash:      hashing.NewTab64(seeds.Next()),
		bucketHash:  make([]*hashing.Tab64, cfg.Tables),
		counters:    make([]int64, cfg.Levels*cfg.Tables*cfg.Buckets*width),
		occupied:    make([]int32, cfg.Levels),
		batchKeys:   make([]uint64, batchChunk),
		batchDeltas: make([]int64, batchChunk),
		batchFps:    make([]int64, batchChunk),
		batchLevels: make([]int32, batchChunk),
		batchIdx:    make([]int, batchChunk*cfg.Tables),
	}
	for j := range s.bucketHash {
		s.bucketHash[j] = hashing.NewTab64(seeds.Next())
	}
	return s, nil
}

// Config returns the sketch's effective (defaulted) configuration.
func (s *Sketch) Config() Config { return s.cfg }

// Updates returns the number of stream updates processed so far.
func (s *Sketch) Updates() uint64 { return s.updates }

// SizeBytes returns the memory footprint of the counter array, the dominant
// component of the sketch (hash tables add a fixed ~16 KiB per function).
func (s *Sketch) SizeBytes() int { return len(s.counters) * 8 }

// bucketSig returns the signature slice for (level, table, bucket).
func (s *Sketch) bucketSig(level, table, bucket int) []int64 {
	i := ((level*s.cfg.Tables+table)*s.cfg.Buckets + bucket) * s.width
	return s.counters[i : i+s.width]
}

// Update processes one flow update for the (src, dst) address pair with net
// frequency change delta (+1 for a potentially-malicious connection such as
// a TCP SYN, -1 when the connection is legitimized, e.g. by the client ACK).
func (s *Sketch) Update(src, dst uint32, delta int64) {
	s.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a pre-packed 64-bit pair key.
//
//lint:allocfree
//lint:inline
func (s *Sketch) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	s.updateKernel(key, delta)
	if debugAssertions && delta < 0 {
		s.assertKeyBuckets(key, "delete")
	}
}

// UpdateBatch applies a batch of flow updates, the bulk form of UpdateKey.
// Zero deltas are skipped. The batch slice is read-only to the sketch and
// may be reused by the caller afterwards.
//
// The batch runs in two phases per chunk of batchChunk records: phase 1
// computes every hash (first-level bucket, fingerprint, and the r flat
// counter indices) into sketch-owned scratch, phase 2 replays the scratch
// applying the vectorized signature adds. Splitting the pure hash
// computation from the counter writes keeps the hash tables hot in cache
// during phase 1 and turns phase 2 into straight-line load-add-store work
// with no hash-table traffic interleaved.
//
//lint:allocfree
//lint:bce
func (s *Sketch) UpdateBatch(batch []KeyDelta) {
	r := len(s.bucketHash)
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > batchChunk {
			chunk = chunk[:batchChunk]
		}
		batch = batch[len(chunk):] //lint:bceok len(chunk) <= len(batch) by construction two lines up

		// Phase 1: hash precomputation. Zero-delta records are compacted
		// away here so phase 2 sees only live updates.
		keys, deltas := s.batchKeys, s.batchDeltas
		fps, levels, idx := s.batchFps, s.batchLevels, s.batchIdx
		n := 0
		for _, u := range chunk {
			if u.Delta == 0 {
				continue
			}
			key := u.Key
			keys[n] = key       //lint:bceok n < batchChunk, the scratch capacity; not provable from the range bound
			deltas[n] = u.Delta //lint:bceok n < batchChunk scratch capacity
			level := s.levelHash.Level(key, s.cfg.Levels)
			levels[n] = int32(level) //lint:bceok n < batchChunk scratch capacity
			if s.layout.Fingerprint {
				fps[n] = s.fpHash.Fingerprint(key) //lint:bceok n < batchChunk scratch capacity
			} else {
				fps[n] = 0 //lint:bceok n < batchChunk scratch capacity
			}
			base := level * s.levelStride
			for j, h := range s.bucketHash {
				idx[n*r+j] = base + j*s.tableStride + h.Bucket(key, s.cfg.Buckets)*s.width //lint:bceok n*r+j < batchChunk*r, the idx scratch capacity
			}
			n++
		}

		// Phase 2: apply. One addend build per record, r vector adds.
		for i := 0; i < n; i++ {
			delta := deltas[i]                                 //lint:bceok i < n <= batchChunk scratch length
			vec.BuildMaskedAddends(&s.addends, keys[i], delta) //lint:bceok i < n <= batchChunk scratch length
			fp := fps[i]                                       //lint:bceok i < n <= batchChunk scratch length
			occ := int32(0)
			for j := 0; j < r; j++ {
				occ += s.applySig(idx[i*r+j], delta, fp) //lint:bceok i*r+j < batchChunk*r idx capacity
			}
			s.occupied[levels[i]] += occ //lint:bceok levels[i] < cfg.Levels from the level hash; i < n scratch length
			if debugAssertions && delta < 0 {
				s.assertKeyBuckets(keys[i], "delete")
			}
		}
		s.updates += uint64(n)
	}
}

// Locate computes key's first-level bucket and fills buckets[j] with key's
// second-level bucket in table j. buckets must have length Tables. It exists
// so the tracking sketch computes each key's hash locations exactly once per
// update and shares them between its before/after singleton diffs and the
// counter write (UpdateLocated).
//
//lint:allocfree
func (s *Sketch) Locate(key uint64, buckets []int) (level int) {
	level = s.levelHash.Level(key, s.cfg.Levels)
	for j, h := range s.bucketHash {
		buckets[j] = h.Bucket(key, s.cfg.Buckets)
	}
	return level
}

// UpdateLocated is UpdateKey for a caller that has already resolved key's
// hash locations via Locate. level and buckets must be exactly Locate's
// output for key; anything else corrupts the sketch.
//
//lint:allocfree
//lint:bce
func (s *Sketch) UpdateLocated(key uint64, delta int64, level int, buckets []int) {
	if delta == 0 {
		return
	}
	if len(buckets) != len(s.bucketHash) {
		panic("dcs: UpdateLocated bucket slice length does not match Tables") //lint:allocok panic boxes its message on the cold misuse path only
	}
	s.updates++
	var fp int64
	if s.layout.Fingerprint {
		fp = s.fpHash.Fingerprint(key)
	}
	vec.BuildMaskedAddends(&s.addends, key, delta)
	base := level * s.levelStride
	occ := int32(0)
	for j, b := range buckets {
		occ += s.applySig(base+j*s.tableStride+b*s.width, delta, fp)
	}
	s.occupied[level] += occ //lint:bceok level < cfg.Levels by the Locate contract
	if debugAssertions && delta < 0 {
		s.assertKeyBuckets(key, "delete")
	}
}

// updateKernel is the update fast path shared by UpdateKey and UpdateBatch:
// one level hash, one optional fingerprint hash, one masked-addend build,
// and per table a bucket hash plus one flat index computation into the
// counter array — no per-table subslicing, and the 64 bit-location adds run
// through the vec lane kernels (AVX2 where available).
//
//lint:allocfree
//lint:bce
func (s *Sketch) updateKernel(key uint64, delta int64) {
	s.updates++
	level := s.levelHash.Level(key, s.cfg.Levels)
	var fp int64
	if s.layout.Fingerprint {
		fp = s.fpHash.Fingerprint(key)
	}
	vec.BuildMaskedAddends(&s.addends, key, delta)
	base := level * s.levelStride
	occ := int32(0)
	for j, h := range s.bucketHash {
		b := h.Bucket(key, s.cfg.Buckets)
		occ += s.applySig(base+j*s.tableStride+b*s.width, delta, fp)
	}
	s.occupied[level] += occ //lint:bceok level < cfg.Levels from the level hash
}

// applySig adds the prebuilt masked addend vector (s.addends, see
// vec.BuildMaskedAddends) plus the total/fingerprint counters to the count
// signature at flat counter index i, and returns the occupancy change of the
// bucket (+1 when the total became non-zero, -1 when it returned to zero).
// The 65 mandatory counters are addressed through a fixed-size array pointer
// so the compiler drops the per-element bounds checks; the 64 bit-location
// counters go through one 64-lane vector add. Building the addends once per
// update amortizes the key-bit masking across the r tables, which is what
// made the masked-add loop (~78% of the PR 2 update profile) disappear.
//
//lint:allocfree
//lint:bce
func (s *Sketch) applySig(i int, delta, fp int64) int32 {
	c := (*[1 + sig.KeyBits]int64)(s.counters[i:]) //lint:bceok one check for the whole 65-counter signature; i is a trusted flat index
	old := c[0]
	tot := old + delta
	c[0] = tot
	occ := int32(0)
	if old == 0 {
		if tot != 0 {
			occ = 1
		}
	} else if tot == 0 {
		occ = -1
	}
	vec.AddInt64Lanes((*[vec.Lanes]int64)(c[1:]), &s.addends)
	if s.layout.Fingerprint {
		s.counters[i+1+sig.KeyBits] += delta * fp //lint:bceok fingerprint counter sits one past the array-pointer window
	}
	return occ
}

// sampleTarget is the estimator's stopping threshold (see
// Config.SampleTarget).
func (s *Sketch) sampleTarget() int { return s.cfg.SampleTarget }

// DecodeBucket reconstructs the lone occupant of second-level bucket
// (level, table, bucket) when the count signature there is a verified
// singleton (procedure ReturnSingleton, Fig. 4, hardened with the
// fingerprint check and a structural re-hash check). ok is false for empty
// buckets, collisions, and false singletons.
func (s *Sketch) DecodeBucket(level, table, bucket int) (key uint64, count int64, ok bool) {
	sg := s.bucketSig(level, table, bucket)
	// Fast path: only a positive total can decode as a singleton, so the
	// overwhelmingly common empty bucket is rejected after one counter
	// read instead of the full 65-counter scan sig.Decode performs.
	if sg[0] == 0 {
		return 0, 0, false
	}
	key, count, state := s.layout.Decode(sg)
	if state != sig.Singleton {
		s.qstats.DecodeFailures++
		return 0, 0, false
	}
	if !s.layout.VerifyFingerprint(sg, count, s.fpHash.Fingerprint(key)) {
		s.qstats.ChecksumRejects++
		return 0, 0, false
	}
	// A decoded pair must actually belong to this level and bucket; a
	// mismatch means a residual false singleton that slipped past the
	// checksum (or the checksum is disabled) and is rejected structurally.
	if s.levelHash.Level(key, s.cfg.Levels) != level ||
		s.bucketHash[table].Bucket(key, s.cfg.Buckets) != bucket {
		s.qstats.StructuralRejects++
		return 0, 0, false
	}
	s.qstats.DecodeSingletons++
	return key, count, true
}

// LevelOf returns the first-level bucket key maps to.
func (s *Sketch) LevelOf(key uint64) int {
	return s.levelHash.Level(key, s.cfg.Levels)
}

// BucketOf returns the second-level bucket key maps to in the given table.
func (s *Sketch) BucketOf(table int, key uint64) int {
	return s.bucketHash[table].Bucket(key, s.cfg.Buckets)
}

// levelSingletons appends to dst the verified singleton pairs found in
// first-level bucket `level`, deduplicated across the r second-level tables,
// and returns the extended slice. seen is the cross-table dedup set, reset by
// the caller per level (a pair occupies exactly one level, so cross-level
// duplicates are impossible).
func (s *Sketch) levelSingletons(level int, seen map[uint64]struct{}, dst []SampledPair) []SampledPair {
	for j := 0; j < s.cfg.Tables; j++ {
		for b := 0; b < s.cfg.Buckets; b++ {
			key, count, ok := s.DecodeBucket(level, j, b)
			if !ok {
				continue
			}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			dst = append(dst, SampledPair{Key: key, Count: count})
		}
	}
	return dst
}

// DistinctSample runs the level-descending sampling loop of BaseTopk
// (Fig. 3, steps 1-6): starting from the topmost first-level bucket it
// recovers all singleton pairs per level until the sample reaches the
// (1+ε)·s/16 target, and returns the sample together with the lowest level
// included. Every returned pair mapped to a level >= the returned one, an
// event of probability 2^-level per distinct pair, so frequencies observed in
// the sample scale by 2^level.
//
// Levels whose occupancy index is zero hold no positive-total bucket and are
// skipped without scanning (they cannot contribute singletons, and an empty
// level can never trip the stopping rule). The returned slice is owned by
// the sketch and is only valid until the next query or update; callers that
// retain the sample must copy it.
func (s *Sketch) DistinctSample() (pairs []SampledPair, level int) {
	target := s.sampleTarget()
	if s.sampleSeen == nil {
		s.sampleSeen = make(map[uint64]struct{}, target*2)
	}
	seen := s.sampleSeen
	pairs = s.samplePairs[:0]
	level = 0
	for b := s.cfg.Levels - 1; b >= 0; b-- {
		if s.occupied[b] == 0 {
			continue
		}
		clear(seen)
		pairs = s.levelSingletons(b, seen, pairs)
		if len(pairs) >= target {
			level = b
			break
		}
	}
	s.samplePairs = pairs
	s.qstats.Queries++
	s.qstats.SampleLevel = level
	s.qstats.SampleSize = len(pairs)
	return pairs, level //lint:scratchok documented zero-copy view, valid until the next query or update
}

// TopK returns the (approximate) k destinations with the largest
// distinct-source frequencies, in descending frequency order (ties broken by
// ascending address). This is procedure BaseTopk (Fig. 3): frequencies are
// occurrence counts in the distinct sample scaled by 2^level.
//
// Note: the paper's pseudocode scales by 2^b where b has already been
// decremented past the last collected level; its analysis (Lemma 4.3)
// defines b as the level at which the loop terminates, i.e. the last level
// included, which is what this implementation uses.
//
// The returned slice is owned by the sketch and only valid until the next
// query or update; callers that retain it must copy (the public API layer
// does).
func (s *Sketch) TopK(k int) []Estimate {
	if k <= 0 {
		return nil
	}
	pairs, level := s.DistinctSample()
	ests := s.destEstimates(pairs, 1<<uint(level))
	if k < len(ests) {
		ests = ests[:k]
	}
	return ests
}

// Threshold returns every destination whose estimated distinct-source
// frequency is at least tau, in descending frequency order (§2, footnote 3).
// The returned slice is sketch-owned scratch with the same validity contract
// as TopK.
func (s *Sketch) Threshold(tau int64) []Estimate {
	pairs, level := s.DistinctSample()
	ests := s.destEstimates(pairs, 1<<uint(level))
	cut := sort.Search(len(ests), func(i int) bool { return ests[i].F < tau })
	return ests[:cut]
}

// EstimateDistinctPairs estimates U, the total number of distinct
// source-destination pairs with positive net frequency, as 2^level · |sample|.
func (s *Sketch) EstimateDistinctPairs() int64 {
	pairs, level := s.DistinctSample()
	return int64(len(pairs)) << uint(level)
}

// destEstimates aggregates a distinct sample into per-destination sample
// frequencies f^s_v, scales them by scale, and returns them sorted by
// descending frequency then ascending destination. Both the aggregation map
// and the returned slice are sketch-owned scratch, valid until the next
// query; callers that retain query answers must copy (the public API layer
// does, via convertEstimates).
func (s *Sketch) destEstimates(pairs []SampledPair, scale int64) []Estimate {
	if s.destFreq == nil {
		s.destFreq = make(map[uint32]int64, len(pairs))
	}
	freq := s.destFreq
	clear(freq)
	for _, p := range pairs {
		freq[hashing.PairDest(p.Key)]++
	}
	ests := s.estimates[:0]
	for dest, f := range freq {
		ests = append(ests, Estimate{Dest: dest, F: f * scale})
	}
	s.estimates = ests
	slices.SortFunc(ests, func(a, b Estimate) int {
		switch {
		case a.F != b.F:
			if a.F > b.F {
				return -1
			}
			return 1
		case a.Dest != b.Dest:
			if a.Dest < b.Dest {
				return -1
			}
			return 1
		}
		return 0
	})
	return ests //lint:scratchok documented zero-copy view, valid until the next query
}

// ErrIncompatible is returned by Merge when the two sketches were built with
// different configurations or seeds.
var ErrIncompatible = errors.New("dcs: sketches have incompatible configurations")

// Merge adds other's counters into s, so that s afterwards summarizes the
// union (concatenation) of both input streams. The sketch is a linear
// transform of the stream, so merging is exact, enabling per-edge-router
// sketches to be combined at a central collector. Both sketches must share
// the same Config, including Seed.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || s.cfg != other.cfg {
		return ErrIncompatible
	}
	for i, c := range other.counters {
		s.counters[i] += c
	}
	s.updates += other.updates
	s.recountOccupancy()
	if debugAssertions {
		s.assertAllBuckets("Merge")
	}
	return nil
}

// Subtract removes other's counters from s, the inverse of Merge: if s
// summarizes stream A∥B and other summarizes B, then afterwards s summarizes
// exactly A. This is what makes epoch-windowed tracking possible (package
// window): retire an old epoch by subtracting its sketch. Both sketches must
// share the same Config, including Seed.
func (s *Sketch) Subtract(other *Sketch) error {
	if other == nil || s.cfg != other.cfg {
		return ErrIncompatible
	}
	for i, c := range other.counters {
		s.counters[i] -= c
	}
	if other.updates > s.updates {
		s.updates = 0
	} else {
		s.updates -= other.updates
	}
	s.recountOccupancy()
	if debugAssertions {
		s.assertAllBuckets("Subtract")
	}
	return nil
}

// Reset clears the sketch to its freshly-constructed state without
// reallocating.
func (s *Sketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
	for i := range s.occupied {
		s.occupied[i] = 0
	}
	s.updates = 0
}

// recountOccupancy rebuilds the per-level occupancy index from the counter
// array; used after bulk linear operations that rewrite counters wholesale.
func (s *Sketch) recountOccupancy() {
	i := 0
	for l := range s.occupied {
		n := int32(0)
		for tb := 0; tb < s.cfg.Tables*s.cfg.Buckets; tb++ {
			if s.counters[i] != 0 {
				n++
			}
			i += s.width
		}
		s.occupied[l] = n
	}
}

// OccupiedBuckets returns the occupancy index entry for one first-level
// bucket: the number of its second-level buckets with a non-zero total.
func (s *Sketch) OccupiedBuckets(level int) int { return int(s.occupied[level]) }

// NonEmptyLevels returns the number of first-level buckets that currently
// hold at least one non-zero counter (the paper's "~23 non-empty levels at
// U = 8·10^6" space observation).
func (s *Sketch) NonEmptyLevels() int {
	n := 0
	for l := 0; l < s.cfg.Levels; l++ {
		if s.levelNonEmpty(l) {
			n++
		}
	}
	return n
}

func (s *Sketch) levelNonEmpty(level int) bool {
	for j := 0; j < s.cfg.Tables; j++ {
		for b := 0; b < s.cfg.Buckets; b++ {
			if !s.layout.IsZero(s.bucketSig(level, j, b)) {
				return true
			}
		}
	}
	return false
}
