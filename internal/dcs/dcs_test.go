package dcs

import (
	"math"
	"testing"

	"dcsketch/internal/exact"
	"dcsketch/internal/hashing"
)

func mustNew(t testing.TB, cfg Config) *Sketch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func TestConfigDefaults(t *testing.T) {
	s := mustNew(t, Config{})
	cfg := s.Config()
	if cfg.Tables != DefaultTables || cfg.Buckets != DefaultBuckets ||
		cfg.Levels != DefaultLevels || cfg.Epsilon != DefaultEpsilon ||
		cfg.SampleTarget != DefaultBuckets {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Tables: -1},
		{Buckets: 1},
		{Levels: 65},
		{Levels: -3},
		{Epsilon: 1.5},
		{Epsilon: -0.1},
		{SampleTarget: -1},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestPaperSampleTarget(t *testing.T) {
	if got := PaperSampleTarget(128, 1.0/3.0); got != 10 {
		t.Fatalf("PaperSampleTarget(128, 1/3) = %d, want 10", got)
	}
	if got := PaperSampleTarget(2, 0.1); got != 1 {
		t.Fatalf("tiny target must clamp to 1, got %d", got)
	}
}

func TestSmallStreamExactRecovery(t *testing.T) {
	// With few distinct pairs relative to s, every pair is recovered and
	// the estimate is exact (scale 2^0 = 1 once the loop hits level 0).
	s := mustNew(t, Config{Buckets: 256, Seed: 1})
	// dest 10: 5 sources; dest 20: 3; dest 30: 1.
	for src := uint32(1); src <= 5; src++ {
		s.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 3; src++ {
		s.Update(src, 20, 1)
	}
	s.Update(1, 30, 1)

	top := s.TopK(3)
	want := []Estimate{{10, 5}, {20, 3}, {30, 1}}
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries: %+v", len(top), top)
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
}

func TestTopKZero(t *testing.T) {
	s := mustNew(t, Config{})
	if got := s.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
	if got := s.TopK(-2); got != nil {
		t.Fatalf("TopK(-2) = %v, want nil", got)
	}
}

func TestEmptySketchQueries(t *testing.T) {
	s := mustNew(t, Config{})
	if got := s.TopK(5); len(got) != 0 {
		t.Fatalf("TopK on empty sketch = %v", got)
	}
	if got := s.EstimateDistinctPairs(); got != 0 {
		t.Fatalf("EstimateDistinctPairs on empty sketch = %d", got)
	}
	if got := s.NonEmptyLevels(); got != 0 {
		t.Fatalf("NonEmptyLevels on empty sketch = %d", got)
	}
}

func TestUpdateZeroDeltaIsNoop(t *testing.T) {
	s := mustNew(t, Config{})
	s.Update(1, 2, 0)
	if s.Updates() != 0 {
		t.Fatal("zero-delta update must not count")
	}
	if s.NonEmptyLevels() != 0 {
		t.Fatal("zero-delta update must not touch counters")
	}
}

// TestDeleteResilience is the paper's central structural claim: the sketch
// after inserts of X∪Y followed by deletes of Y is bit-identical to a sketch
// that only ever saw X.
func TestDeleteResilience(t *testing.T) {
	cfg := Config{Seed: 7}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)

	rng := hashing.NewSplitMix64(9)
	keepers := make([]uint64, 500)
	for i := range keepers {
		keepers[i] = rng.Next()
	}
	transients := make([]uint64, 800)
	for i := range transients {
		transients[i] = rng.Next()
	}

	for _, k := range keepers {
		a.UpdateKey(k, 1)
		b.UpdateKey(k, 1)
	}
	for _, k := range transients {
		a.UpdateKey(k, 1)
	}
	for _, k := range transients {
		a.UpdateKey(k, -1)
	}

	for i := range a.counters {
		if a.counters[i] != b.counters[i] {
			t.Fatalf("counter %d differs after delete cycle: %d vs %d",
				i, a.counters[i], b.counters[i])
		}
	}
}

func TestMergeLinearity(t *testing.T) {
	cfg := Config{Seed: 11}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	both := mustNew(t, cfg)

	rng := hashing.NewSplitMix64(13)
	for i := 0; i < 1000; i++ {
		k := rng.Next()
		if i%2 == 0 {
			a.UpdateKey(k, 1)
		} else {
			b.UpdateKey(k, 1)
		}
		both.UpdateKey(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for i := range a.counters {
		if a.counters[i] != both.counters[i] {
			t.Fatalf("merged counter %d = %d, want %d", i, a.counters[i], both.counters[i])
		}
	}
	if a.Updates() != both.Updates() {
		t.Fatalf("merged updates = %d, want %d", a.Updates(), both.Updates())
	}
}

func TestSubtractInvertsMerge(t *testing.T) {
	cfg := Config{Seed: 91}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	onlyA := mustNew(t, cfg)

	rng := hashing.NewSplitMix64(93)
	for i := 0; i < 1500; i++ {
		k := rng.Next()
		if i%3 == 0 {
			b.UpdateKey(k, 1)
		} else {
			onlyA.UpdateKey(k, 1)
		}
	}
	if err := a.Merge(onlyA); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Subtract(b); err != nil {
		t.Fatalf("Subtract: %v", err)
	}
	for i := range a.counters {
		if a.counters[i] != onlyA.counters[i] {
			t.Fatalf("counter %d = %d after subtract, want %d", i, a.counters[i], onlyA.counters[i])
		}
	}
	if a.Updates() != onlyA.Updates() {
		t.Fatalf("updates = %d, want %d", a.Updates(), onlyA.Updates())
	}
	if err := a.Subtract(nil); err == nil {
		t.Fatal("subtracting nil must fail")
	}
	other := mustNew(t, Config{Seed: 94})
	if err := a.Subtract(other); err == nil {
		t.Fatal("subtracting an incompatible sketch must fail")
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := mustNew(t, Config{Seed: 1})
	b := mustNew(t, Config{Seed: 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different seeds must fail")
	}
	c := mustNew(t, Config{Seed: 1, Buckets: 64})
	if err := a.Merge(c); err == nil {
		t.Fatal("merging sketches with different sizes must fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merging nil must fail")
	}
}

func TestReset(t *testing.T) {
	s := mustNew(t, Config{})
	for i := uint64(0); i < 100; i++ {
		s.UpdateKey(i, 1)
	}
	s.Reset()
	if s.Updates() != 0 || s.NonEmptyLevels() != 0 {
		t.Fatal("Reset must clear all state")
	}
}

func TestRepeatedPairCountsOnceInFrequency(t *testing.T) {
	// A source sending many SYNs to one destination is one distinct
	// source; the sample carries its net count but frequency counts pairs.
	s := mustNew(t, Config{Buckets: 256, Seed: 3})
	for i := 0; i < 50; i++ {
		s.Update(1, 10, 1)
	}
	s.Update(2, 10, 1)
	top := s.TopK(1)
	if len(top) != 1 || top[0].Dest != 10 || top[0].F != 2 {
		t.Fatalf("TopK = %+v, want [{10 2}]", top)
	}
}

func TestThreshold(t *testing.T) {
	s := mustNew(t, Config{Buckets: 256, Seed: 5})
	for src := uint32(1); src <= 8; src++ {
		s.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 2; src++ {
		s.Update(src, 20, 1)
	}
	got := s.Threshold(5)
	if len(got) != 1 || got[0].Dest != 10 || got[0].F != 8 {
		t.Fatalf("Threshold(5) = %+v", got)
	}
	if got := s.Threshold(1); len(got) != 2 {
		t.Fatalf("Threshold(1) = %+v, want 2 destinations", got)
	}
}

func TestNonEmptyLevelsTracksLogU(t *testing.T) {
	// The number of non-empty first-level buckets grows like log2(U)
	// (paper §6.1: ~23 levels at U = 8·10^6).
	s := mustNew(t, Config{Seed: 17})
	rng := hashing.NewSplitMix64(19)
	const u = 1 << 14
	for i := 0; i < u; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	got := s.NonEmptyLevels()
	if got < 12 || got > 20 {
		t.Fatalf("NonEmptyLevels at U=2^14: %d, want ~14-16", got)
	}
}

func TestEstimateDistinctPairs(t *testing.T) {
	s := mustNew(t, Config{Seed: 23})
	rng := hashing.NewSplitMix64(29)
	const u = 20000
	for i := 0; i < u; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	got := float64(s.EstimateDistinctPairs())
	if math.Abs(got-u)/u > 0.35 {
		t.Fatalf("EstimateDistinctPairs = %v, want within 35%% of %d", got, u)
	}
}

// zipfStream feeds a skewed distinct-source workload into the given update
// functions: dest of rank i (1-based) receives ~mass/i^z distinct sources.
func zipfStream(dests int, z float64, mass float64, apply ...func(src, dst uint32, delta int64)) {
	src := uint32(1)
	for i := 1; i <= dests; i++ {
		f := int(mass / math.Pow(float64(i), z))
		if f < 1 {
			f = 1
		}
		dst := uint32(i)
		for j := 0; j < f; j++ {
			for _, fn := range apply {
				fn(src, dst, 1)
			}
			src++
		}
	}
}

func TestAccuracyOnSkewedWorkload(t *testing.T) {
	// Top-5 recall on a z=1.5 Zipf-like workload must be high and the
	// frequency estimates must be within loose relative-error bounds.
	// This mirrors Fig. 8 qualitatively; exact thresholds are generous to
	// stay robust across seeds.
	s := mustNew(t, Config{Buckets: 512, Seed: 31})
	ex := exact.New()
	zipfStream(2000, 1.5, 30000, s.Update, ex.Update)

	const k = 5
	approx := s.TopK(k)
	truth := ex.TopK(k)
	trueSet := make(map[uint32]int64, k)
	for _, e := range truth {
		trueSet[e.Key] = e.Priority
	}
	hits := 0
	for _, e := range approx {
		if _, ok := trueSet[e.Dest]; ok {
			hits++
		}
	}
	if hits < 4 {
		t.Fatalf("top-%d recall = %d/%d; approx=%+v truth=%+v", k, hits, k, approx, truth)
	}
	for _, e := range approx {
		f, ok := trueSet[e.Dest]
		if !ok {
			continue
		}
		rel := math.Abs(float64(e.F-f)) / float64(f)
		if rel > 0.5 {
			t.Errorf("dest %d: estimate %d vs true %d (rel err %.2f)", e.Dest, e.F, f, rel)
		}
	}
}

func TestFlashCrowdDeletionsClearFrequencies(t *testing.T) {
	// Flash crowd: many distinct sources connect and then complete their
	// handshakes (deletes). A lingering attack stays. The sketch must
	// rank the attack destination first afterwards.
	s := mustNew(t, Config{Buckets: 512, Seed: 37})
	const crowd = 5000
	for i := uint32(0); i < crowd; i++ {
		s.Update(1000+i, 80, 1) // flash crowd to dest 80
	}
	for i := uint32(0); i < 400; i++ {
		s.Update(50000+i, 443, 1) // attack on dest 443
	}
	for i := uint32(0); i < crowd; i++ {
		s.Update(1000+i, 80, -1) // crowd handshakes complete
	}
	top := s.TopK(1)
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("after crowd completion TopK = %+v, want dest 443", top)
	}
	if math.Abs(float64(top[0].F)-400)/400 > 0.4 {
		t.Fatalf("attack frequency estimate %d, want ~400", top[0].F)
	}
}

func TestDistinctSampleLevelScale(t *testing.T) {
	// Each sampled pair must truly hash to a level >= the reported level.
	s := mustNew(t, Config{Seed: 41})
	rng := hashing.NewSplitMix64(43)
	for i := 0; i < 30000; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	pairs, level := s.DistinctSample()
	if len(pairs) < s.Config().SampleTarget {
		t.Fatalf("sample size %d below target %d", len(pairs), s.Config().SampleTarget)
	}
	for _, p := range pairs {
		if got := s.levelHash.Level(p.Key, s.cfg.Levels); got < level {
			t.Fatalf("sampled pair at level %d < reported level %d", got, level)
		}
	}
}

func TestSampleIsDistinct(t *testing.T) {
	s := mustNew(t, Config{Seed: 47})
	rng := hashing.NewSplitMix64(53)
	for i := 0; i < 5000; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	pairs, _ := s.DistinctSample()
	seen := make(map[uint64]struct{}, len(pairs))
	for _, p := range pairs {
		if _, dup := seen[p.Key]; dup {
			t.Fatalf("duplicate key %x in distinct sample", p.Key)
		}
		seen[p.Key] = struct{}{}
	}
}

func TestFingerprintAblationStillWorksOnInsertOnly(t *testing.T) {
	// With the fingerprint disabled (the paper's exact structure),
	// insert-only workloads must still produce correct samples.
	s := mustNew(t, Config{Buckets: 256, Seed: 59, DisableFingerprint: true})
	for src := uint32(1); src <= 20; src++ {
		s.Update(src, 7, 1)
	}
	top := s.TopK(1)
	if len(top) != 1 || top[0].Dest != 7 || top[0].F != 20 {
		t.Fatalf("TopK = %+v, want [{7 20}]", top)
	}
}

func TestSizeBytes(t *testing.T) {
	s := mustNew(t, Config{})
	want := 64 * 3 * 128 * 66 * 8
	if got := s.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
	p := mustNew(t, Config{DisableFingerprint: true})
	want = 64 * 3 * 128 * 65 * 8
	if got := p.SizeBytes(); got != want {
		t.Fatalf("paper-layout SizeBytes = %d, want %d", got, want)
	}
}
