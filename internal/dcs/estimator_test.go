package dcs

import (
	"math"
	"testing"

	"dcsketch/internal/exact"
	"dcsketch/internal/hashing"
)

func TestTopKCorrectedSmallStreamExact(t *testing.T) {
	s := mustNew(t, Config{Buckets: 256, Seed: 61})
	for src := uint32(1); src <= 12; src++ {
		s.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 4; src++ {
		s.Update(src, 20, 1)
	}
	top := s.TopKCorrected(2)
	if len(top) != 2 || top[0].Dest != 10 || top[1].Dest != 20 {
		t.Fatalf("TopKCorrected = %+v", top)
	}
	// On a tiny stream every level is fully recoverable: near-exact.
	if math.Abs(float64(top[0].F-12)) > 1 || math.Abs(float64(top[1].F-4)) > 1 {
		t.Fatalf("TopKCorrected frequencies = %+v, want ~[12 4]", top)
	}
}

func TestTopKCorrectedZero(t *testing.T) {
	s := mustNew(t, Config{Seed: 67})
	if got := s.TopKCorrected(0); got != nil {
		t.Fatalf("TopKCorrected(0) = %v", got)
	}
	if got := s.TopKCorrected(3); len(got) != 0 {
		t.Fatalf("TopKCorrected on empty sketch = %v", got)
	}
}

func TestTopKCorrectedImprovesError(t *testing.T) {
	// On a loaded skewed workload the corrected estimator's average top-k
	// relative error should not be worse than the baseline estimator's
	// (it uses strictly more information). Averaged over seeds to be
	// robust.
	var baseErr, corrErr float64
	const seeds = 4
	for seed := uint64(0); seed < seeds; seed++ {
		s := mustNew(t, Config{Seed: 71 + seed})
		ex := exact.New()
		zipfStream(1500, 1.2, 12000, s.Update, ex.Update)

		truth := ex.TopK(10)
		trueF := make(map[uint32]int64, len(truth))
		for _, e := range truth {
			trueF[e.Key] = e.Priority
		}
		relErr := func(ests []Estimate) float64 {
			sum, n := 0.0, 0
			for _, e := range ests {
				if f, ok := trueF[e.Dest]; ok && f > 0 {
					sum += math.Abs(float64(e.F-f)) / float64(f)
					n++
				}
			}
			if n == 0 {
				return 1
			}
			return sum / float64(n)
		}
		baseErr += relErr(s.TopK(10))
		corrErr += relErr(s.TopKCorrected(10))
	}
	baseErr /= seeds
	corrErr /= seeds
	if corrErr > baseErr*1.15 {
		t.Fatalf("corrected estimator error %.3f vs baseline %.3f; expected no worse", corrErr, baseErr)
	}
}

func TestScanLevelOccupancyEstimate(t *testing.T) {
	// The linear-counting population estimate at a moderately loaded
	// level should track the true level population.
	s := mustNew(t, Config{Seed: 73})
	rng := hashing.NewSplitMix64(79)
	perLevel := make(map[int]int)
	for i := 0; i < 300; i++ {
		key := rng.Next()
		perLevel[s.LevelOf(key)]++
		s.UpdateKey(key, 1)
	}
	for level, n := range perLevel {
		if n < 20 || n > 100 {
			continue // only mid-load levels give stable estimates
		}
		sc := s.scanLevel(level)
		if math.Abs(sc.estPairs-float64(n))/float64(n) > 0.4 {
			t.Errorf("level %d: estimated %0.f pairs, true %d", level, sc.estPairs, n)
		}
		if sc.recovery <= 0 || sc.recovery > 1 {
			t.Errorf("level %d: recovery %v out of range", level, sc.recovery)
		}
	}
}

func TestTopKCorrectedWithDeletes(t *testing.T) {
	s := mustNew(t, Config{Buckets: 256, Seed: 83})
	for src := uint32(1); src <= 40; src++ {
		s.Update(src, 5, 1)
	}
	for src := uint32(1); src <= 40; src++ {
		s.Update(src, 5, -1)
	}
	for src := uint32(1); src <= 6; src++ {
		s.Update(src, 9, 1)
	}
	top := s.TopKCorrected(1)
	if len(top) != 1 || top[0].Dest != 9 {
		t.Fatalf("TopKCorrected after deletes = %+v", top)
	}
}
