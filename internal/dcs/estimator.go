package dcs

import (
	"math"
	"sort"

	"dcsketch/internal/hashing"
)

// This file implements an extension beyond the paper: a Horvitz-Thompson
// corrected top-k estimator. The paper's BaseTopk treats the distinct sample
// as complete above the stopping level and scales all sample frequencies by
// one factor 2^b. In reality the boundary level is partially recovered
// (singleton collisions lose a few percent of its pairs), which biases
// estimates down, and levels just below the boundary still carry usable —
// if less recoverable — samples that BaseTopk discards.
//
// TopKCorrected instead weights every recovered pair by the inverse of its
// inclusion probability: Pr[pair lands on level l] = 2^-(l+1), times an
// estimated per-level recovery probability p_l. The level population n_l
// needed for p_l is estimated by linear counting over the second-level
// buckets (Whang et al.: n ≈ -s·ln(empty/s)), and levels whose estimated
// recovery drops below a floor are excluded (their weights would be noise
// amplifiers).
//
// Measured outcome (see EXPERIMENTS.md): at the default (r, s) the
// correction is a wash — the extra boundary-level samples are offset by the
// noise of the estimated recovery probabilities — so TopK remains the
// default estimator and TopKCorrected is kept as a documented negative
// result and a building block for larger-r configurations where it wins.

// minRecovery is the inclusion floor: levels whose estimated singleton
// recovery probability falls below it are not mined.
const minRecovery = 0.5

// levelScan summarizes one first-level bucket for the corrected estimator.
type levelScan struct {
	singles  []SampledPair
	estPairs float64 // linear-counting estimate of the level population
	recovery float64 // estimated probability a level pair is recovered
}

// scanLevel collects verified singletons and occupancy statistics for one
// level.
func (s *Sketch) scanLevel(level int) levelScan {
	var sc levelScan
	seen := make(map[uint64]struct{})
	totalEmpty := 0
	for j := 0; j < s.cfg.Tables; j++ {
		for b := 0; b < s.cfg.Buckets; b++ {
			if s.bucketSig(level, j, b)[0] == 0 {
				// Total count zero: empty for occupancy purposes.
				// (Residual zero-total collision artifacts are
				// possible only for corrupted streams.)
				totalEmpty++
				continue
			}
			key, count, ok := s.DecodeBucket(level, j, b)
			if !ok {
				continue
			}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			sc.singles = append(sc.singles, SampledPair{Key: key, Count: count})
		}
	}
	sBuckets := float64(s.cfg.Buckets)
	avgEmpty := float64(totalEmpty) / float64(s.cfg.Tables)
	if avgEmpty < 1 {
		avgEmpty = 1 // saturated: clamp so the log stays finite
	}
	sc.estPairs = -sBuckets * math.Log(avgEmpty/sBuckets)
	// Probability a given pair is a singleton in one table with n-1
	// other pairs present: (1-1/s)^(n-1); recovery across r independent
	// tables is the complement of missing in all of them.
	n := sc.estPairs
	if n < 1 {
		n = 1
	}
	missOne := 1 - math.Pow(1-1/sBuckets, n-1)
	sc.recovery = 1 - math.Pow(missOne, float64(s.cfg.Tables))
	return sc
}

// TopKCorrected returns the approximate top-k destinations using the
// Horvitz-Thompson estimator described above. It is slower than TopK (it
// scans more levels) but tightens the frequency estimates; use it for
// periodic reporting rather than per-update tracking.
func (s *Sketch) TopKCorrected(k int) []Estimate {
	if k <= 0 {
		return nil
	}
	// A pair is included iff its (single, random) level is one of the
	// mined levels AND it was recovered there, so its inclusion
	// probability is π = Σ_{mined l} Pr[level=l]·p_l and the HT estimate
	// is count_v / π.
	counts := make(map[uint32]int64)
	inclusion := 0.0
	for l := s.cfg.Levels - 1; l >= 0; l-- {
		sc := s.scanLevel(l)
		if sc.recovery < minRecovery {
			// Deeper levels are denser and recover even worse.
			break
		}
		// Pr[level = l] is 2^-(l+1), except the clamped top level
		// which absorbs the tail: 2^-l.
		levelProb := math.Pow(2, -float64(l+1))
		if l == s.cfg.Levels-1 {
			levelProb = math.Pow(2, -float64(l))
		}
		inclusion += levelProb * sc.recovery
		for _, p := range sc.singles {
			counts[hashing.PairDest(p.Key)]++
		}
	}
	if inclusion <= 0 {
		return nil
	}
	ests := make([]Estimate, 0, len(counts))
	for dest, c := range counts {
		ests = append(ests, Estimate{Dest: dest, F: int64(math.Round(float64(c) / inclusion))})
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].F != ests[j].F {
			return ests[i].F > ests[j].F
		}
		return ests[i].Dest < ests[j].Dest
	})
	if k < len(ests) {
		ests = ests[:k]
	}
	return ests
}
