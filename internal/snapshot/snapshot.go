// Package snapshot serializes the collector's full recovery state — the
// merged DCS/TDCS sketch, the monitor's EWMA baseline/variance profiles,
// the server's session replay horizons, the CUSUM tripwire state, and a
// relay's upstream spool — into a single versioned, checksummed file that
// is written atomically (tmp + fsync + rename) and restored on boot.
//
// The format is deliberately dumb: a magic + version header, a sequence of
// length-prefixed typed sections, and a trailing CRC32 over everything
// before it. Sections are optional and appear at most once; a daemon only
// writes the sections that apply to its role (ddosmond has no spool,
// ddosrelay has no CUSUM). All decode paths validate bounds before
// allocating and are hardened by FuzzDecodeSnapshot.
//
// The one invariant the file exists to carry across a process death:
// every batch the dead collector ACKED is either in this state (and the
// restored sessionTable horizon dedups its retransmit) or was never
// acked at all (and the exporter's spool will re-deliver it). See
// DESIGN.md §14 for the restore invariants.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// ErrCorrupt is wrapped by every decode error caused by a malformed,
// truncated, or checksum-failed encoding (as opposed to I/O errors).
var ErrCorrupt = errors.New("snapshot: corrupt encoding")

// magic identifies a dcsketch snapshot file; version gates the layout.
const (
	magic   = "DCSS"
	version = 1
)

// Section kinds. A kind never changes meaning; new state grows new kinds.
const (
	secSketch   = 1 // opaque dcs/tdcs MarshalBinary bytes
	secMonitor  = 2 // monitor EWMA baseline/variance profiles + update count
	secSessions = 3 // sessionTable replay horizons, MRU first
	secCUSUM    = 4 // SYN/FIN CUSUM tripwire state
	secSpool    = 5 // relay upstream exporter spool (pre-encoded frames)
	secKindMax  = secSpool
)

// Decode-time sanity caps: far above any real deployment, low enough that
// a hostile length cannot drive a huge allocation before bounds checks.
const (
	maxProfiles   = 1 << 22  // monitor dest profiles
	maxSessions   = 1 << 22  // session horizons
	maxSpool      = 1 << 22  // spooled batches
	maxPayloadLen = 64 << 20 // one spooled frame payload (mirrors wire.MaxFrameSize)
)

// State is the root recovery object. Nil section pointers (and a nil/empty
// Sketch) mean "not captured"; Decode returns exactly the sections present.
type State struct {
	// Sketch is the opaque dcs/tdcs binary encoding of the merged counter
	// arrays (monitor sketch folded with any pipeline-shard residue). The
	// occupancy index is not serialized — it is recomputed on decode by
	// dcs.UnmarshalBinary, exactly as for shipped MsgSketch frames.
	Sketch   []byte
	Monitor  *MonitorState
	Sessions *SessionsState
	CUSUM    *CUSUMState
	Spool    *SpoolState
}

// MonitorState is the monitor's detection state outside the sketch: the
// per-destination EWMA baseline/variance profiles, the set of destinations
// currently held in alert hysteresis, and the update count driving the
// check cadence.
type MonitorState struct {
	Updates  uint64
	Profiles []DestProfile
	Alerting []uint32
}

// DestProfile is one destination's frozen-baseline EWMA pair.
type DestProfile struct {
	Dest uint32
	Mean float64
	Var  float64
}

// SessionsState carries the server's replay-dedup horizons in
// most-recently-used-first order, so a restore under a smaller MaxSessions
// keeps exactly the horizons the old server would have kept.
type SessionsState struct {
	Horizons []SessionHorizon
}

// SessionHorizon is one exporter session's highest accepted sequence
// number — the dedup promise the server made by acking it.
type SessionHorizon struct {
	ID      uint64
	LastSeq uint64
}

// CUSUMState mirrors cusum.State (kept separate so this package stays a
// leaf both cmd tiers and internal packages can import).
type CUSUMState struct {
	Y         float64
	Alarms    uint64
	Fbar      float64
	Syn       int64
	Fin       int64
	Intervals uint64
	InAlarm   bool
}

// SpoolState is a relay's upstream delivery state: its pinned session, the
// next sequence number it would assign, and every not-yet-acked batch with
// its pre-encoded MsgSeqUpdates payload, oldest first.
type SpoolState struct {
	SessionID uint64
	NextSeq   uint64
	Batches   []SpoolBatch
}

// SpoolBatch is one spooled upstream batch. Payload is the complete
// MsgSeqUpdates frame payload as originally encoded; Updates is the flow
// count inside it (carried for ledger accounting, not re-derived).
type SpoolBatch struct {
	Seq     uint64
	Updates uint32
	Payload []byte
}

// Encode appends the snapshot encoding of st to dst and returns the
// extended slice.
func Encode(dst []byte, st *State) []byte {
	dst = append(dst, magic...)
	dst = append(dst, version)
	if len(st.Sketch) > 0 {
		dst = appendSection(dst, secSketch, st.Sketch)
	}
	if st.Monitor != nil {
		dst = appendSection(dst, secMonitor, encodeMonitor(nil, st.Monitor))
	}
	if st.Sessions != nil {
		dst = appendSection(dst, secSessions, encodeSessions(nil, st.Sessions))
	}
	if st.CUSUM != nil {
		dst = appendSection(dst, secCUSUM, encodeCUSUM(nil, st.CUSUM))
	}
	if st.Spool != nil {
		dst = appendSection(dst, secSpool, encodeSpool(nil, st.Spool))
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst))
}

// Decode parses a snapshot encoding produced by Encode. It never panics on
// hostile input: every length is bounds-checked before allocation and the
// checksum is verified before any section is parsed.
func Decode(data []byte) (*State, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal header", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	if string(body[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, body[:len(magic)])
	}
	if v := body[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, version)
	}
	rest := body[len(magic)+1:]
	st := &State{}
	var seen [secKindMax + 1]bool
	for len(rest) > 0 {
		kind := rest[0]
		rest = rest[1:]
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n > uint64(len(rest)-sz) {
			return nil, fmt.Errorf("%w: section %d length overruns the file", ErrCorrupt, kind)
		}
		payload := rest[sz : sz+int(n)]
		rest = rest[sz+int(n):]
		if kind < 1 || kind > secKindMax {
			return nil, fmt.Errorf("%w: unknown section kind %d", ErrCorrupt, kind)
		}
		if seen[kind] {
			return nil, fmt.Errorf("%w: duplicate section kind %d", ErrCorrupt, kind)
		}
		seen[kind] = true
		var err error
		switch kind {
		case secSketch:
			st.Sketch = append([]byte(nil), payload...)
		case secMonitor:
			st.Monitor, err = decodeMonitor(payload)
		case secSessions:
			st.Sessions, err = decodeSessions(payload)
		case secCUSUM:
			st.CUSUM, err = decodeCUSUM(payload)
		case secSpool:
			st.Spool, err = decodeSpool(payload)
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// appendSection appends one kind-tagged, length-prefixed section.
func appendSection(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func encodeMonitor(dst []byte, m *MonitorState) []byte {
	dst = binary.AppendUvarint(dst, m.Updates)
	dst = binary.AppendUvarint(dst, uint64(len(m.Profiles)))
	for _, p := range m.Profiles {
		dst = binary.LittleEndian.AppendUint32(dst, p.Dest)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Mean))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Var))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Alerting)))
	for _, dest := range m.Alerting {
		dst = binary.LittleEndian.AppendUint32(dst, dest)
	}
	return dst
}

func decodeMonitor(p []byte) (*MonitorState, error) {
	d := decoder{buf: p, what: "monitor"}
	m := &MonitorState{Updates: d.uvarint()}
	nprof := d.uvarint()
	if nprof > maxProfiles || nprof*20 > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: monitor section claims %d profiles in %d bytes", ErrCorrupt, nprof, len(d.buf))
	}
	if nprof > 0 {
		m.Profiles = make([]DestProfile, nprof)
	}
	for i := range m.Profiles {
		m.Profiles[i] = DestProfile{
			Dest: d.u32(),
			Mean: math.Float64frombits(d.u64()),
			Var:  math.Float64frombits(d.u64()),
		}
	}
	nalert := d.uvarint()
	if nalert > maxProfiles || nalert*4 > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: monitor section claims %d alerting dests in %d bytes", ErrCorrupt, nalert, len(d.buf))
	}
	if nalert > 0 {
		m.Alerting = make([]uint32, nalert)
	}
	for i := range m.Alerting {
		m.Alerting[i] = d.u32()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

func encodeSessions(dst []byte, s *SessionsState) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.Horizons)))
	for _, h := range s.Horizons {
		dst = binary.LittleEndian.AppendUint64(dst, h.ID)
		dst = binary.AppendUvarint(dst, h.LastSeq)
	}
	return dst
}

func decodeSessions(p []byte) (*SessionsState, error) {
	d := decoder{buf: p, what: "sessions"}
	n := d.uvarint()
	if n > maxSessions || n*9 > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: sessions section claims %d horizons in %d bytes", ErrCorrupt, n, len(d.buf))
	}
	s := &SessionsState{}
	if n > 0 {
		s.Horizons = make([]SessionHorizon, n)
	}
	for i := range s.Horizons {
		s.Horizons[i] = SessionHorizon{ID: d.u64(), LastSeq: d.uvarint()}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

func encodeCUSUM(dst []byte, c *CUSUMState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Y))
	dst = binary.AppendUvarint(dst, c.Alarms)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Fbar))
	dst = binary.AppendVarint(dst, c.Syn)
	dst = binary.AppendVarint(dst, c.Fin)
	dst = binary.AppendUvarint(dst, c.Intervals)
	var inAlarm byte
	if c.InAlarm {
		inAlarm = 1
	}
	return append(dst, inAlarm)
}

func decodeCUSUM(p []byte) (*CUSUMState, error) {
	d := decoder{buf: p, what: "cusum"}
	c := &CUSUMState{
		Y:         math.Float64frombits(d.u64()),
		Alarms:    d.uvarint(),
		Fbar:      math.Float64frombits(d.u64()),
		Syn:       d.varint(),
		Fin:       d.varint(),
		Intervals: d.uvarint(),
	}
	switch d.u8() {
	case 0:
	case 1:
		c.InAlarm = true
	default:
		d.fail()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return c, nil
}

func encodeSpool(dst []byte, s *SpoolState) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.SessionID)
	dst = binary.AppendUvarint(dst, s.NextSeq)
	dst = binary.AppendUvarint(dst, uint64(len(s.Batches)))
	for _, b := range s.Batches {
		dst = binary.AppendUvarint(dst, b.Seq)
		dst = binary.AppendUvarint(dst, uint64(b.Updates))
		dst = binary.AppendUvarint(dst, uint64(len(b.Payload)))
		dst = append(dst, b.Payload...)
	}
	return dst
}

func decodeSpool(p []byte) (*SpoolState, error) {
	d := decoder{buf: p, what: "spool"}
	s := &SpoolState{SessionID: d.u64(), NextSeq: d.uvarint()}
	n := d.uvarint()
	if n > maxSpool || n*3 > uint64(len(d.buf)) {
		return nil, fmt.Errorf("%w: spool section claims %d batches in %d bytes", ErrCorrupt, n, len(d.buf))
	}
	if n > 0 {
		s.Batches = make([]SpoolBatch, n)
	}
	for i := range s.Batches {
		seq := d.uvarint()
		nup := d.uvarint()
		plen := d.uvarint()
		if nup > math.MaxUint32 || plen > maxPayloadLen {
			d.fail()
			break
		}
		s.Batches[i] = SpoolBatch{Seq: seq, Updates: uint32(nup), Payload: d.bytes(int(plen))}
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// decoder is a tiny cursor over one section payload: reads clamp on
// underrun and latch the failed flag, so decode loops need a single error
// check at the end (finish) instead of one per field.
type decoder struct {
	buf    []byte
	what   string
	failed bool
}

func (d *decoder) fail() { d.failed = true }

func (d *decoder) u8() byte {
	if d.failed || len(d.buf) < 1 {
		d.failed = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.failed || len(d.buf) < 4 {
		d.failed = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.failed || len(d.buf) < 8 {
		d.failed = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.failed {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.failed = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.failed {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.failed = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.failed || n < 0 || len(d.buf) < n {
		d.failed = true
		return nil
	}
	v := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) finish() error {
	if d.failed {
		return fmt.Errorf("%w: truncated %s section", ErrCorrupt, d.what)
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s section", ErrCorrupt, len(d.buf), d.what)
	}
	return nil
}

// WriteFile atomically replaces path with the encoding of st: the bytes are
// written to a temp file in the same directory, fsynced, renamed over path,
// and the directory is fsynced so the rename itself is durable. A crash at
// any point leaves either the old snapshot or the new one, never a torn mix.
func WriteFile(path string, st *State) error {
	data := Encode(nil, st)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: some filesystems refuse it, and
		// the rename is already atomic — this only narrows the window in
		// which a whole-machine crash forgets the newest snapshot.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadFile loads and decodes the snapshot at path. A missing file is
// reported via os.IsNotExist / errors.Is(err, os.ErrNotExist) so boot code
// can distinguish "fresh start" from "corrupt state".
func ReadFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return st, nil
}
