package snapshot

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeSnapshot hardens the snapshot decoder against hostile files: a
// collector restores this state at boot with full trust, so the decoder
// must never panic, over-allocate, or accept a torn encoding. Any input
// that does decode must survive an encode/decode round trip losslessly and
// re-encode to a fixed point, pinning the encoder and decoder to the same
// layout.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(Encode(nil, &State{}))
	f.Add(Encode(nil, &State{Sketch: []byte{1, 2, 3}}))
	f.Add(Encode(nil, &State{
		Monitor:  &MonitorState{Updates: 7, Profiles: []DestProfile{{Dest: 1, Mean: 2, Var: 3}}, Alerting: []uint32{1}},
		Sessions: &SessionsState{Horizons: []SessionHorizon{{ID: 5, LastSeq: 9}}},
		CUSUM:    &CUSUMState{Y: 1, Alarms: 2, Fbar: 3, Syn: -4, Fin: 5, Intervals: 6, InAlarm: true},
		Spool:    &SpoolState{SessionID: 1, NextSeq: 4, Batches: []SpoolBatch{{Seq: 3, Updates: 2, Payload: []byte{0xaa}}}},
	}))
	f.Add([]byte("DCSS\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, st)
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input does not decode: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip lost state:\n in  %+v\n out %+v", st, st2)
		}
		if re2 := Encode(nil, st2); !bytes.Equal(re2, re) {
			t.Fatalf("encoding is not a fixed point:\n 1st %x\n 2nd %x", re, re2)
		}
	})
}
