package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fullState returns a State exercising every section with non-trivial
// values, including negative CUSUM counters and an empty spool payload.
func fullState() *State {
	return &State{
		Sketch: []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		Monitor: &MonitorState{
			Updates: 123456789,
			Profiles: []DestProfile{
				{Dest: 0x0a000001, Mean: 12.5, Var: 3.25},
				{Dest: 0xc0a80101, Mean: 0, Var: 0},
			},
			Alerting: []uint32{0x0a000001},
		},
		Sessions: &SessionsState{
			Horizons: []SessionHorizon{
				{ID: 0xfeedface, LastSeq: 42},
				{ID: 1, LastSeq: 0},
				{ID: ^uint64(0), LastSeq: 1 << 40},
			},
		},
		CUSUM: &CUSUMState{
			Y: 1.75, Alarms: 3, Fbar: 17.5, Syn: -5, Fin: 12,
			Intervals: 99, InAlarm: true,
		},
		Spool: &SpoolState{
			SessionID: 7777,
			NextSeq:   101,
			Batches: []SpoolBatch{
				{Seq: 99, Updates: 256, Payload: []byte{1, 2, 3}},
				{Seq: 100, Updates: 0, Payload: nil},
			},
		},
	}
}

func TestRoundTripFull(t *testing.T) {
	want := fullState()
	got, err := Decode(Encode(nil, want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRoundTripPartial(t *testing.T) {
	cases := []struct {
		name string
		st   *State
	}{
		{"empty", &State{}},
		{"sketch-only", &State{Sketch: []byte{1, 2, 3}}},
		{"sessions-only", &State{Sessions: &SessionsState{}}},
		{"monitor-empty", &State{Monitor: &MonitorState{Updates: 5}}},
		{"spool-empty", &State{Spool: &SpoolState{SessionID: 1, NextSeq: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(Encode(nil, tc.st))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.st) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc.st)
			}
		})
	}
}

// TestDecodeRejectsCorruption flips, truncates, and extends an encoding and
// requires every mutation to fail with ErrCorrupt — the checksum makes any
// single-byte corruption detectable.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(nil, fullState())
	if _, err := Decode(data); err != nil {
		t.Fatalf("pristine encoding rejected: %v", err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: got err %v, want ErrCorrupt", i, err)
		}
	}
	for _, n := range []int{0, 1, len(magic), len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: got err %v, want ErrCorrupt", n, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeRejectsDuplicateSection(t *testing.T) {
	// Hand-build: header + two sessions sections + checksum.
	body := []byte(magic)
	body = append(body, version)
	sec := encodeSessions(nil, &SessionsState{Horizons: []SessionHorizon{{ID: 1, LastSeq: 2}}})
	body = appendSection(body, secSessions, sec)
	body = appendSection(body, secSessions, sec)
	if _, err := Decode(appendChecksum(body)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate section: got err %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	body := []byte(magic)
	body = append(body, version)
	body = appendSection(body, secKindMax+1, []byte{1, 2, 3})
	if _, err := Decode(appendChecksum(body)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("unknown section kind accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	body := []byte(magic)
	body = append(body, version+1)
	if _, err := Decode(appendChecksum(body)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("future version accepted")
	}
}

// TestDecodeRejectsHugeCounts feeds sections whose element counts vastly
// exceed their payload, which must fail the pre-allocation bound check.
func TestDecodeRejectsHugeCounts(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01} // uvarint ~1<<63
	for _, kind := range []byte{secMonitor, secSessions} {
		body := []byte(magic)
		body = append(body, version)
		body = appendSection(body, kind, huge)
		if _, err := Decode(appendChecksum(body)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("kind %d: huge count accepted", kind)
		}
	}
	// Spool counts sit after a fixed header.
	body := []byte(magic)
	body = append(body, version)
	spool := make([]byte, 8) // sessionID
	spool = append(spool, 1) // nextSeq
	spool = append(spool, huge...)
	body = appendSection(body, secSpool, spool)
	if _, err := Decode(appendChecksum(body)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("spool: huge count accepted")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dcsketch.snap")
	want := fullState()
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Overwrite must be atomic: the new state replaces the old in one
	// rename, and no temp files are left behind.
	want2 := &State{Sketch: []byte{9, 9, 9}}
	if err := WriteFile(path, want2); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got2, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile after overwrite: %v", err)
	}
	if !reflect.DeepEqual(got2, want2) {
		t.Fatalf("overwrite mismatch: got %+v", got2)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "dcsketch.snap" {
		t.Fatalf("directory not clean after atomic writes: %v", ents)
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want os.ErrNotExist", err)
	}
}

// appendChecksum finishes a hand-built body the way Encode does.
func appendChecksum(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}
