package server

import (
	"bufio"
	"net"
	"testing"

	"dcsketch/internal/wire"
)

// sessConn opens a frame-level connection for driving the protocol by hand.
type sessConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialSess(t *testing.T, addr string) *sessConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &sessConn{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (rc *sessConn) send(typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
	rc.t.Helper()
	if err := wire.WriteFrame(rc.conn, typ, payload); err != nil {
		rc.t.Fatal(err)
	}
	rtyp, rpayload, err := wire.ReadFrame(rc.r)
	if err != nil {
		rc.t.Fatal(err)
	}
	return rtyp, rpayload
}

func (rc *sessConn) hello(id uint64) uint64 {
	rc.t.Helper()
	typ, payload := rc.send(wire.MsgHello, wire.AppendHello(nil, id))
	if typ != wire.MsgHelloAck {
		rc.t.Fatalf("hello reply = %v (%q)", typ, payload)
	}
	last, err := wire.DecodeHelloAck(payload)
	if err != nil {
		rc.t.Fatal(err)
	}
	return last
}

func (rc *sessConn) seqSend(seq uint64, updates []wire.Update) {
	rc.t.Helper()
	typ, payload := rc.send(wire.MsgSeqUpdates, wire.AppendSeqUpdates(nil, seq, updates))
	if typ != wire.MsgSeqAck {
		rc.t.Fatalf("seq reply = %v (%q)", typ, payload)
	}
	acked, err := wire.DecodeSeqAck(payload)
	if err != nil || acked != seq {
		rc.t.Fatalf("acked seq = %d (%v), want %d", acked, err, seq)
	}
}

func batchOf(n int, dst uint32, delta int64) []wire.Update {
	out := make([]wire.Update, n)
	for i := range out {
		out[i] = wire.Update{Src: uint32(5000 + i), Dst: dst, Delta: delta}
	}
	return out
}

func TestSessionHandshakeAndSequencedBatches(t *testing.T) {
	srv, addr := startServer(t, Config{})
	rc := dialSess(t, addr)

	if last := rc.hello(77); last != 0 {
		t.Fatalf("fresh session lastAcked = %d, want 0", last)
	}
	rc.seqSend(1, batchOf(100, 443, 1))
	rc.seqSend(2, batchOf(50, 443, 1))

	st := srv.Stats()
	if st.Hellos != 1 || st.SeqBatches != 2 || st.Batches != 2 || st.Updates != 150 || st.DuplicateBatches != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SessionsActive != 1 {
		t.Fatalf("sessions active = %d", st.SessionsActive)
	}
}

func TestDuplicateBatchAckedNotReapplied(t *testing.T) {
	srv, addr := startServer(t, Config{})
	rc := dialSess(t, addr)
	rc.hello(9)

	batch := batchOf(200, 80, 1)
	rc.seqSend(1, batch)
	// Retransmit the same sequence, as an exporter would after a lost ack:
	// it must be acked but not change the sketch.
	rc.seqSend(1, batch)
	rc.seqSend(1, batch)

	st := srv.Stats()
	if st.DuplicateBatches != 2 || st.Batches != 1 || st.Updates != 200 {
		t.Fatalf("stats = %+v", st)
	}
	// The sketch estimate carries its usual error, but re-applying the two
	// retransmissions would roughly triple it; anything near one batch
	// proves suppression.
	top := srv.TopK(1)
	if len(top) != 1 || top[0].Dest != 80 || top[0].F < 100 || top[0].F > 350 {
		t.Fatalf("TopK after duplicate suppression = %+v (estimate must be ~200, not ~600)", top)
	}
}

func TestSessionSurvivesReconnect(t *testing.T) {
	srv, addr := startServer(t, Config{})

	rc1 := dialSess(t, addr)
	rc1.hello(1234)
	rc1.seqSend(1, batchOf(10, 1, 1))
	rc1.seqSend(2, batchOf(10, 1, 1))
	rc1.conn.Close()

	// The replay horizon survives the connection: a new connection with the
	// same session ID learns lastAcked=2 and its retransmission of 1..2 is
	// suppressed.
	rc2 := dialSess(t, addr)
	if last := rc2.hello(1234); last != 2 {
		t.Fatalf("lastAcked after reconnect = %d, want 2", last)
	}
	rc2.seqSend(2, batchOf(10, 1, 1)) // duplicate
	rc2.seqSend(3, batchOf(10, 1, 1)) // fresh

	st := srv.Stats()
	if st.Batches != 3 || st.DuplicateBatches != 1 || st.Updates != 30 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeqUpdatesWithoutHelloRejected(t *testing.T) {
	srv, addr := startServer(t, Config{})
	rc := dialSess(t, addr)
	typ, payload := rc.send(wire.MsgSeqUpdates, wire.AppendSeqUpdates(nil, 1, batchOf(5, 2, 1)))
	if typ != wire.MsgError {
		t.Fatalf("reply = %v (%q), want MsgError", typ, payload)
	}
	st := srv.Stats()
	if st.Batches != 0 || st.Updates != 0 || st.ProtocolErrors == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The connection itself survives the in-band error.
	rc.hello(5)
	rc.seqSend(1, batchOf(5, 2, 1))
}

func TestSequenceGapsAreLegal(t *testing.T) {
	// Shedding exporters skip sequences; the server must apply any sequence
	// above the horizon, not insist on contiguity.
	srv, addr := startServer(t, Config{})
	rc := dialSess(t, addr)
	rc.hello(6)
	rc.seqSend(1, batchOf(10, 3, 1))
	rc.seqSend(5, batchOf(10, 3, 1))
	rc.seqSend(3, batchOf(10, 3, 1)) // below the horizon now: duplicate
	st := srv.Stats()
	if st.Batches != 2 || st.DuplicateBatches != 1 || st.Updates != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionTableLRUEviction(t *testing.T) {
	srv, addr := startServer(t, Config{MaxSessions: 2})
	rc := dialSess(t, addr)

	rc.hello(1)
	rc.seqSend(1, batchOf(1, 9, 1))
	rc.hello(2)
	rc.hello(3) // evicts session 1 (LRU)

	st := srv.Stats()
	if st.SessionsActive != 2 || st.SessionsEvicted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Session 1's replay state is gone: a fresh hello sees lastAcked 0.
	if last := rc.hello(1); last != 0 {
		t.Fatalf("evicted session lastAcked = %d, want 0", last)
	}
}

func TestEvictedSessionReconnectResetsHorizon(t *testing.T) {
	// The eviction boundary: once a session falls out of the LRU table its
	// replay horizon is forgotten, so a reconnect starts at lastAcked 0 and
	// a retransmission of an already-applied sequence is applied AGAIN, not
	// suppressed. That double-count is the documented cost of bounding the
	// table; this test pins it so it changes only deliberately.
	srv, addr := startServer(t, Config{MaxSessions: 2})
	rc := dialSess(t, addr)

	rc.hello(1)
	rc.seqSend(7, batchOf(10, 9, 1))
	rc.hello(2)
	rc.hello(3) // table is {1,2}; 3 evicts 1 (LRU)

	// Session 1 returns: its horizon is gone, so the server reports a fresh
	// lastAcked of 0 (re-inserting 1 evicts 2, the LRU now).
	if last := rc.hello(1); last != 0 {
		t.Fatalf("evicted session lastAcked = %d, want 0", last)
	}
	// The exporter, seeing lastAcked 0, replays sequence 7. With the dedup
	// state evicted this is indistinguishable from fresh data: it must be
	// applied, not counted as a duplicate.
	rc.seqSend(7, batchOf(10, 9, 1))

	st := srv.Stats()
	if st.Batches != 2 || st.DuplicateBatches != 0 || st.Updates != 20 {
		t.Fatalf("replayed batch after eviction: stats = %+v (want 2 applied batches, 0 duplicates, 20 updates)", st)
	}
	if st.SessionsEvicted != 2 {
		t.Fatalf("SessionsEvicted = %d, want 2 (session 1 by 3, then session 2 by 1's return)", st.SessionsEvicted)
	}
}

func TestOldProtocolClientsInteroperate(t *testing.T) {
	// A sequence-less client (the seed protocol) and a session client share
	// one server; both streams land, and the old client never needs a
	// handshake.
	srv, addr := startServer(t, Config{})

	old := dial(t, addr)
	if err := old.SendUpdates(batchOf(100, 443, 1)); err != nil {
		t.Fatalf("old-protocol SendUpdates: %v", err)
	}

	rc := dialSess(t, addr)
	rc.hello(42)
	rc.seqSend(1, batchOf(100, 443, 1))

	if err := old.SendUpdates(batchOf(50, 443, 1)); err != nil {
		t.Fatalf("old-protocol SendUpdates after session traffic: %v", err)
	}
	top, err := old.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("TopK = %+v", top)
	}
	st := srv.Stats()
	if st.Batches != 3 || st.Updates != 250 || st.Hellos != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSessionTableUnit(t *testing.T) {
	tab := newSessionTable(2)
	a := tab.lookup(1)
	a.lastSeq = 10
	tab.lookup(2).lastSeq = 20
	if got := tab.lookup(1); got.lastSeq != 10 {
		t.Fatalf("session 1 lastSeq = %d", got.lastSeq)
	}
	// 1 was just used, so inserting 3 must evict 2.
	tab.lookup(3)
	if tab.len() != 2 || tab.evicted != 1 {
		t.Fatalf("len=%d evicted=%d", tab.len(), tab.evicted)
	}
	// 1 survived the eviction with its state; re-creating 2 (which evicts 3,
	// the new LRU) starts from zero.
	if got := tab.lookup(1); got.lastSeq != 10 {
		t.Fatalf("session 1 lost its state: %d", got.lastSeq)
	}
	if got := tab.lookup(2); got.lastSeq != 0 {
		t.Fatalf("evicted session 2 kept lastSeq = %d", got.lastSeq)
	}
	if tab.len() != 2 || tab.evicted != 2 {
		t.Fatalf("final len=%d evicted=%d", tab.len(), tab.evicted)
	}
}
