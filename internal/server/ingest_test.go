package server

import (
	"bufio"
	"io"
	"net"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/wire"
)

// TestShardedIngestOverWire exercises the pipeline-routed ingest mode end to
// end: acked update frames must be visible to a query issued afterwards,
// both over the wire and through the in-process TopK.
func TestShardedIngestOverWire(t *testing.T) {
	srv, addr := startServer(t, Config{IngestShards: 4})
	c := dial(t, addr)

	batch := make([]wire.Update, 0, 200)
	for i := uint32(0); i < 200; i++ {
		batch = append(batch, wire.Update{Src: 1000 + i, Dst: 443, Delta: 1})
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatalf("SendUpdates: %v", err)
	}
	top, err := c.TopK(1)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("TopK = %+v", top)
	}
	if top[0].F < 180 || top[0].F > 220 {
		t.Fatalf("estimate %d, want ~200", top[0].F)
	}
	inproc := srv.TopK(1)
	if len(inproc) != 1 || inproc[0].Dest != 443 {
		t.Fatalf("in-process TopK = %+v", inproc)
	}
	st := srv.Stats()
	if st.Updates != 200 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedIngestDeletes checks that negative deltas routed through the
// pipeline cancel inserts, as in the inline mode.
func TestShardedIngestDeletes(t *testing.T) {
	_, addr := startServer(t, Config{IngestShards: 2})
	c := dial(t, addr)

	ins := make([]wire.Update, 0, 50)
	del := make([]wire.Update, 0, 50)
	for i := uint32(0); i < 50; i++ {
		ins = append(ins, wire.Update{Src: i, Dst: 80, Delta: 1})
		del = append(del, wire.Update{Src: i, Dst: 80, Delta: -1})
	}
	if err := c.SendUpdates(ins); err != nil {
		t.Fatal(err)
	}
	if err := c.SendUpdates(del); err != nil {
		t.Fatal(err)
	}
	top, err := c.TopK(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range top {
		if e.Dest == 80 && e.F > 5 {
			t.Fatalf("deleted flow still estimated at %d", e.F)
		}
	}
}

// TestShardedIngestMergesMonitorSketch checks the query fold covers both
// halves of the split state: updates routed to the pipeline shards and edge
// sketches merged into the monitor.
func TestShardedIngestMergesMonitorSketch(t *testing.T) {
	sketchCfg := dcs.Config{Buckets: 128, Seed: 5}
	srv, addr := startServer(t, Config{
		Monitor:      monitor.Config{Sketch: sketchCfg},
		IngestShards: 2,
	})
	c := dial(t, addr)

	edge, err := tdcs.New(sketchCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		edge.Update(i, 9, 1)
	}
	encoded, err := edge.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSketch(encoded); err != nil {
		t.Fatalf("SendSketch: %v", err)
	}
	// Stream a second destination through the pipeline path.
	batch := make([]wire.Update, 0, 300)
	for i := uint32(0); i < 300; i++ {
		batch = append(batch, wire.Update{Src: 2000 + i, Dst: 443, Delta: 1})
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatal(err)
	}
	top, err := c.TopK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Dest != 443 || top[1].Dest != 9 {
		t.Fatalf("folded TopK = %+v, want 443 then 9", top)
	}
	if srv.Stats().Sketches != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

// TestShardedIngestSeqDedup checks exactly-once replay suppression holds
// when sequenced batches route through the pipeline.
func TestShardedIngestSeqDedup(t *testing.T) {
	srv, addr := startServer(t, Config{IngestShards: 2})
	rc := dialSess(t, addr)
	rc.hello(9)

	batch := batchOf(200, 80, 1)
	rc.seqSend(1, batch)
	rc.seqSend(1, batch)
	rc.seqSend(1, batch)

	st := srv.Stats()
	if st.DuplicateBatches != 2 || st.Batches != 1 || st.Updates != 200 {
		t.Fatalf("stats = %+v", st)
	}
	top := srv.TopK(1)
	if len(top) != 1 || top[0].Dest != 80 || top[0].F < 100 || top[0].F > 350 {
		t.Fatalf("TopK after duplicate suppression = %+v (estimate must be ~200, not ~600)", top)
	}
}

// TestShardedIngestShutdown checks Shutdown drains handlers and stops the
// pipeline workers without deadlock, repeatedly.
func TestShardedIngestShutdown(t *testing.T) {
	srv, addr := startServer(t, Config{IngestShards: 2})
	c := dial(t, addr)
	if err := c.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown()
}

// BenchmarkServerIngest measures the whole ingest pipeline per update frame:
// wire bytes in from a real TCP client, frame read into the pooled arena,
// in-place decode, pipeline staging, kernel application. One op is one
// 512-record MsgUpdates frame; the reported updates/s metric is the
// per-record throughput. The client streams frames without waiting for acks
// (a drain goroutine consumes them), so the measurement is pipelined
// throughput, not request-response latency.
func BenchmarkServerIngest(b *testing.B) {
	const recordsPerFrame = 512

	srv, err := New(Config{IngestShards: 2, ReadTimeout: -1, WriteTimeout: -1})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	go func() {
		// Drain acks so the server's reply writes never block.
		_, _ = io.Copy(io.Discard, conn)
	}()

	batch := make([]wire.Update, recordsPerFrame)
	for i := range batch {
		batch[i] = wire.Update{Src: uint32(i), Dst: uint32(i % 64), Delta: 1}
	}
	payload := wire.AppendUpdates(nil, batch)
	var frame []byte
	frame = append(frame, 0, 0, 0, 0, byte(wire.MsgUpdates))
	frame[0] = byte(len(payload))
	frame[1] = byte(len(payload) >> 8)
	frame[2] = byte(len(payload) >> 16)
	frame[3] = byte(len(payload) >> 24)
	frame = append(frame, payload...)

	w := bufio.NewWriterSize(conn, 1<<16)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(frame); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	// Barrier: every written frame must be decoded and staged before the
	// clock stops (shard application overlaps, bounded by the queue depth).
	for srv.Stats().Batches < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*recordsPerFrame/b.Elapsed().Seconds(), "updates/s")
	if got := srv.Stats().Updates; got != uint64(b.N)*recordsPerFrame {
		b.Fatalf("updates counted = %d, want %d", got, uint64(b.N)*recordsPerFrame)
	}
}
