package server

import (
	"bufio"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/wire"
)

// rawConn dials addr without the Client wrapper so tests can write
// malformed frames byte-for-byte.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn, bufio.NewReader(conn)
}

// expectError sends one frame and requires a MsgError reply on the same
// connection (the in-band error path keeps the connection alive).
func expectError(t *testing.T, conn net.Conn, r *bufio.Reader, typ wire.MsgType, payload []byte) {
	t.Helper()
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatal(err)
	}
	reply, msg, err := wire.ReadFrame(r)
	if err != nil || reply != wire.MsgError {
		t.Fatalf("reply to bad %v frame = (%v, %q, %v), want MsgError", typ, reply, msg, err)
	}
}

// TestProtocolErrorsByType drives every in-band protocol-error path over a
// real connection and checks each lands in its own ErrorsByType slot.
func TestProtocolErrorsByType(t *testing.T) {
	srv, addr := startServer(t, Config{Monitor: monitor.Config{Sketch: dcs.Config{Seed: 1}}})
	conn, r := rawConn(t, addr)

	// Truncated MsgUpdates: count says 1 update, payload is empty.
	expectError(t, conn, r, wire.MsgUpdates, []byte{1})
	// Malformed MsgTopKQuery: trailing garbage after the varint.
	expectError(t, conn, r, wire.MsgTopKQuery, []byte{1, 0xff})
	// Undecodable MsgSketch payload.
	expectError(t, conn, r, wire.MsgSketch, []byte("not a sketch"))
	// Decodable sketch that the monitor must refuse to merge (seed mismatch).
	edge, err := tdcs.New(dcs.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := edge.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	expectError(t, conn, r, wire.MsgSketch, encoded)
	// Defined frame types that are not valid requests.
	expectError(t, conn, r, wire.MsgAck, nil)
	expectError(t, conn, r, wire.MsgTopKReply, nil)
	expectError(t, conn, r, wire.MsgError, []byte("client-side error"))
	// Undefined type byte: counted as unknown, not attributed to a type.
	expectError(t, conn, r, wire.MsgType(200), []byte("??"))

	st := srv.Stats()
	wantErrs := map[wire.MsgType]uint64{
		wire.MsgUpdates:   1,
		wire.MsgTopKQuery: 1,
		wire.MsgTopKReply: 1,
		wire.MsgSketch:    2,
		wire.MsgAck:       1,
		wire.MsgError:     1,
	}
	for typ, want := range wantErrs {
		if got := st.ErrorsByType[typ]; got != want {
			t.Errorf("ErrorsByType[%v] = %d, want %d", typ, got, want)
		}
	}
	if st.UnknownFrames != 1 {
		t.Errorf("UnknownFrames = %d, want 1", st.UnknownFrames)
	}
	// Total in-band errors: 7 typed + 1 unknown.
	if st.ProtocolErrors != 8 {
		t.Errorf("ProtocolErrors = %d, want 8", st.ProtocolErrors)
	}
	// Every read frame is counted by type regardless of outcome.
	wantFrames := map[wire.MsgType]uint64{
		wire.MsgUpdates:   1,
		wire.MsgTopKQuery: 1,
		wire.MsgTopKReply: 1,
		wire.MsgSketch:    2,
		wire.MsgAck:       1,
		wire.MsgError:     1,
	}
	for typ, want := range wantFrames {
		if got := st.FramesByType[typ]; got != want {
			t.Errorf("FramesByType[%v] = %d, want %d", typ, got, want)
		}
	}
}

// waitForStats polls srv.Stats until cond accepts it (stat updates race the
// test past connection-drop paths, which have no in-band reply to sync on).
func waitForStats(t *testing.T, srv *Server, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats = %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOversizedFrameCountedAndDropped writes a frame header whose length
// prefix exceeds MaxFrameSize: the server must count it separately from
// in-band protocol errors and drop the connection.
func TestOversizedFrameCountedAndDropped(t *testing.T) {
	srv, addr := startServer(t, Config{})
	conn, r := rawConn(t, addr)

	var header [5]byte
	binary.LittleEndian.PutUint32(header[:4], wire.MaxFrameSize+1)
	header[4] = byte(wire.MsgUpdates)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	// No resync is possible, so the connection must be dropped, not answered.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.ReadFrame(r); err == nil {
		t.Fatal("server replied to an oversized frame instead of dropping")
	}
	st := waitForStats(t, srv, "oversized frame", func(st Stats) bool {
		return st.OversizedFrames == 1
	})
	if st.ProtocolErrors != 1 {
		t.Errorf("ProtocolErrors = %d, want 1", st.ProtocolErrors)
	}
	var typed uint64
	for _, n := range st.ErrorsByType {
		typed += n
	}
	if typed != 0 {
		t.Errorf("oversized frame leaked into ErrorsByType: %v", st.ErrorsByType)
	}
	// The header was rejected before the frame was read; nothing by type.
	if st.FramesByType[wire.MsgUpdates] != 0 {
		t.Errorf("FramesByType[updates] = %d, want 0", st.FramesByType[wire.MsgUpdates])
	}
}

// TestConnLifecycleCounters exercises accept, reject (over MaxConns), and
// close accounting.
func TestConnLifecycleCounters(t *testing.T) {
	srv, addr := startServer(t, Config{MaxConns: 1})
	c1 := dial(t, addr)
	if err := c1.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.ConnsAccepted != 1 || st.ConnsActive != 1 {
		t.Fatalf("after first conn: %+v", st)
	}

	c2, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err == nil {
		t.Fatal("connection over MaxConns served a request")
	}
	waitForStats(t, srv, "rejected conn", func(st Stats) bool {
		return st.ConnsRejected == 1
	})

	_ = c1.Close()
	st = waitForStats(t, srv, "closed conn", func(st Stats) bool {
		return st.ConnsClosed == 1 && st.ConnsActive == 0
	})
	if st.ConnsAccepted != 1 {
		t.Errorf("ConnsAccepted = %d, want 1", st.ConnsAccepted)
	}
}

// TestServerTelemetry registers the server on a registry, drives good and
// bad traffic, and checks the exported series.
func TestServerTelemetry(t *testing.T) {
	srv, addr := startServer(t, Config{})
	reg := telemetry.NewRegistry()
	srv.RegisterTelemetry(reg)

	c := dial(t, addr)
	if err := c.SendUpdates([]wire.Update{{Src: 1, Dst: 443, Delta: 1}, {Src: 2, Dst: 443, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(1); err != nil {
		t.Fatal(err)
	}
	conn, r := rawConn(t, addr)
	expectError(t, conn, r, wire.MsgTopKQuery, []byte{1, 0xff})

	vals := map[string]float64{}
	hists := map[string]*telemetry.HistogramSnapshot{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
		hists[s.Name] = s.Hist
	}
	for name, want := range map[string]float64{
		"dcsketch_server_updates_total":                            2,
		"dcsketch_server_batches_total":                            1,
		"dcsketch_server_queries_total":                            1,
		`dcsketch_server_frames_total{type="updates"}`:             1,
		`dcsketch_server_frames_total{type="topk_query"}`:          2,
		`dcsketch_server_protocol_errors_total{type="topk_query"}`: 1,
		`dcsketch_server_protocol_errors_total{type="updates"}`:    0,
		"dcsketch_server_conns_accepted_total":                     2,
		"dcsketch_server_conns_active":                             2,
		"dcsketch_server_unknown_frames_total":                     0,
		"dcsketch_server_oversized_frames_total":                   0,
	} {
		if vals[name] != want {
			t.Errorf("%s = %v, want %v", name, vals[name], want)
		}
	}
	// The good query was timed by the live bundle; the malformed one bailed
	// out before the observation.
	if h := hists["dcsketch_server_query_latency_ns"]; h == nil || h.Count != 1 {
		t.Errorf("query latency hist = %+v, want 1 observation", h)
	}
	// Monitor telemetry rides along with the server's registration.
	if vals["dcsketch_monitor_updates_total"] != 2 {
		t.Errorf("monitor updates_total = %v, want 2", vals["dcsketch_monitor_updates_total"])
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheusText([]byte(sb.String())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}
