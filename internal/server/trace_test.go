package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcsketch/internal/debugapi"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// stagesOf collects the stage sequence of a trace.
func stagesOf(evs []tracelog.Event) []tracelog.Stage {
	out := make([]tracelog.Stage, len(evs))
	for i, ev := range evs {
		out[i] = ev.Stage
	}
	return out
}

func hasStage(evs []tracelog.Event, want tracelog.Stage) bool {
	for _, ev := range evs {
		if ev.Stage == want {
			return true
		}
	}
	return false
}

// TestTraceRecordsBatchLifecyclePipeline pins the recorded story of one
// sequenced batch through the sharded pipeline: decode, shard staging,
// apply, ack — and a replay suppressed as a duplicate with the session
// horizon in aux.
func TestTraceRecordsBatchLifecyclePipeline(t *testing.T) {
	srv, addr := startServer(t, Config{IngestShards: 2})
	rc := dialSess(t, addr)
	rc.hello(77)
	rc.seqSend(1, batchOf(32, 443, 1))
	rc.seqSend(2, batchOf(32, 443, 1))
	rc.seqSend(2, batchOf(32, 443, 1)) // replay

	evs := srv.Tracer().Trace(77, 2, nil)
	for _, want := range []tracelog.Stage{
		tracelog.StageServerDecode, tracelog.StageShardStage,
		tracelog.StageServerApply, tracelog.StageServerAck,
		tracelog.StageServerDup,
	} {
		if !hasStage(evs, want) {
			t.Errorf("trace of (77,2) missing %v: %v", want, stagesOf(evs))
		}
	}
	// Shard workers apply asynchronously; the staged updates must land
	// within the shutdown-free window.
	deadline := time.Now().Add(5 * time.Second)
	for !hasStage(srv.Tracer().Trace(77, 2, nil), tracelog.StageShardApply) {
		if time.Now().After(deadline) {
			t.Fatal("shard-apply never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	// The duplicate's aux carries the dedup horizon (lastSeq at decision).
	for _, ev := range srv.Tracer().Trace(77, 2, nil) {
		if ev.Stage == tracelog.StageServerDup && ev.Aux != 2 {
			t.Errorf("dup horizon aux = %d, want 2", ev.Aux)
		}
	}
	// Connection-scoped events exist under the (0,0) key side of the ring.
	all := srv.Tracer().Events(nil)
	if !hasStage(all, tracelog.StageServerConnOpen) {
		t.Error("no conn-open event recorded")
	}
}

// TestTraceRecordsBatchLifecycleInline covers the single-monitor path and
// the reject events: a decode failure and a sequenced batch before hello.
func TestTraceRecordsBatchLifecycleInline(t *testing.T) {
	srv, addr := startServer(t, Config{})

	// No-hello reject first, on its own connection.
	rcBad := dialSess(t, addr)
	typ, _ := rcBad.send(wire.MsgSeqUpdates, wire.AppendSeqUpdates(nil, 1, batchOf(4, 2, 1)))
	if typ != wire.MsgError {
		t.Fatalf("pre-hello seq batch reply = %v, want error", typ)
	}

	rc := dialSess(t, addr)
	rc.hello(99)
	rc.seqSend(1, batchOf(16, 80, 1))

	evs := srv.Tracer().Trace(99, 1, nil)
	for _, want := range []tracelog.Stage{
		tracelog.StageServerDecode, tracelog.StageServerApply, tracelog.StageServerAck,
	} {
		if !hasStage(evs, want) {
			t.Errorf("inline trace missing %v: %v", want, stagesOf(evs))
		}
	}
	if hasStage(evs, tracelog.StageShardStage) {
		t.Error("inline mode recorded a shard staging event")
	}

	found := false
	for _, ev := range srv.Tracer().Events(nil) {
		if ev.Stage == tracelog.StageServerDecodeReject && ev.Aux == tracelog.RejectNoHello {
			found = true
		}
	}
	if !found {
		t.Error("no-hello reject not recorded")
	}
}

// TestTraceScrapeDuringIngest is the -race contention test the observability
// contract requires: /debug/trace and /debug/alerts scrapes must be safe —
// and non-empty — while the server ingests at benchmark shape (a pipelined
// raw-frame blaster plus a live sequenced session writing the same rings the
// scrapers read).
func TestTraceScrapeDuringIngest(t *testing.T) {
	srv, addr := startServer(t, Config{IngestShards: 2, ReadTimeout: -1, WriteTimeout: -1})
	th := httptest.NewServer(tracelog.TraceHandler(srv.Tracer()))
	defer th.Close()
	ah := httptest.NewServer(debugapi.AlertsHandler(srv.Monitor()))
	defer ah.Close()

	const session = 4242
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes atomic.Uint64

	// Benchmark-shaped load: stream MsgUpdates frames without waiting for
	// acks. Write errors after stop are expected (the listener is dying).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() { _, _ = io.Copy(io.Discard, conn) }()
	batch := batchOf(256, 443, 1)
	payload := wire.AppendUpdates(nil, batch)
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := bufio.NewWriterSize(conn, 1<<15)
		for {
			select {
			case <-stop:
				_ = w.Flush()
				return
			default:
			}
			if err := wire.WriteFrame(w, wire.MsgUpdates, payload); err != nil {
				return
			}
		}
	}()

	// Concurrent scrapers: trace reads race the ring writers, alert reads
	// race the monitor's check cadence.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := 1; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				if i == 0 {
					url = th.URL + "?session=" + strconv.Itoa(session) + "&seq=" + strconv.Itoa(1+seq%64)
				} else {
					url = ah.URL + "/debug/alerts"
				}
				resp, err := http.Get(url)
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && json.Valid(body) {
					scrapes.Add(1)
				}
			}
		}(i)
	}

	// The sequenced session runs on the test goroutine so its assertions
	// can t.Fatal; every 8th batch is replayed to keep dup events flowing.
	rc := dialSess(t, addr)
	rc.hello(session)
	for seq := uint64(1); seq <= 64; seq++ {
		rc.seqSend(seq, batch)
		if seq%8 == 0 {
			rc.seqSend(seq, batch)
		}
	}
	close(stop)
	wg.Wait()

	if scrapes.Load() == 0 {
		t.Fatal("no scrape succeeded during ingest")
	}
	// Assert on the newest batch: older seqs may have been evicted from
	// the connection's bounded ring by design (oldest-record eviction).
	evs := srv.Tracer().Trace(session, 64, nil)
	if !hasStage(evs, tracelog.StageServerDup) || !hasStage(evs, tracelog.StageServerApply) {
		t.Fatalf("mid-load trace incomplete: %v", stagesOf(evs))
	}
}
