package server

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/wire"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, addr.String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestUpdateAndQueryOverWire(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dial(t, addr)

	batch := make([]wire.Update, 0, 200)
	for i := uint32(0); i < 200; i++ {
		batch = append(batch, wire.Update{Src: 1000 + i, Dst: 443, Delta: 1})
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatalf("SendUpdates: %v", err)
	}
	top, err := c.TopK(1)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top) != 1 || top[0].Dest != 443 {
		t.Fatalf("TopK = %+v", top)
	}
	// The estimate is approximate: a few of the 200 pairs may collide in
	// all r second-level tables.
	if top[0].F < 180 || top[0].F > 220 {
		t.Fatalf("estimate %d, want ~200", top[0].F)
	}
	st := srv.Stats()
	if st.Updates != 200 || st.Batches != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeletesOverWire(t *testing.T) {
	_, addr := startServer(t, Config{})
	c := dial(t, addr)

	ins := make([]wire.Update, 0, 50)
	del := make([]wire.Update, 0, 50)
	for i := uint32(0); i < 50; i++ {
		ins = append(ins, wire.Update{Src: i, Dst: 80, Delta: 1})
		del = append(del, wire.Update{Src: i, Dst: 80, Delta: -1})
	}
	if err := c.SendUpdates(ins); err != nil {
		t.Fatal(err)
	}
	if err := c.SendUpdates(del); err != nil {
		t.Fatal(err)
	}
	top, err := c.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 0 {
		t.Fatalf("TopK after cancellation = %+v", top)
	}
}

func TestSketchShipping(t *testing.T) {
	sketchCfg := dcs.Config{Buckets: 128, Seed: 5}
	srv, addr := startServer(t, Config{Monitor: monitor.Config{Sketch: sketchCfg}})
	c := dial(t, addr)

	// Build an edge sketch locally and ship it.
	edge, err := tdcs.New(sketchCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		edge.Update(i, 9, 1)
	}
	encoded, err := edge.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSketch(encoded); err != nil {
		t.Fatalf("SendSketch: %v", err)
	}
	top := srv.TopK(1)
	if len(top) != 1 || top[0].Dest != 9 {
		t.Fatalf("server TopK after sketch merge = %+v", top)
	}
	if srv.Stats().Sketches != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestSketchSeedMismatchRejected(t *testing.T) {
	srv, addr := startServer(t, Config{Monitor: monitor.Config{Sketch: dcs.Config{Seed: 1}}})
	c := dial(t, addr)

	edge, err := tdcs.New(dcs.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := edge.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSketch(encoded); err == nil {
		t.Fatal("mismatched-seed sketch accepted")
	}
	if srv.Stats().ProtocolErrors == 0 {
		t.Fatal("protocol error not counted")
	}
	// The connection survives an application-level error.
	if err := c.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err != nil {
		t.Fatalf("connection dead after rejected sketch: %v", err)
	}
}

func TestMalformedFrameGetsError(t *testing.T) {
	srv, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An unknown frame type must elicit MsgError, not a hang or crash.
	if err := wire.WriteFrame(conn, wire.MsgType(99), []byte("??")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil || typ != wire.MsgError {
		t.Fatalf("reply = (%v, %q, %v), want MsgError", typ, payload, err)
	}
	if srv.Stats().ProtocolErrors == 0 {
		t.Fatal("protocol error not counted")
	}
}

func TestConcurrentExporters(t *testing.T) {
	srv, addr := startServer(t, Config{})
	const (
		exporters = 8
		batches   = 20
		perBatch  = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, exporters)
	for e := 0; e < exporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for b := 0; b < batches; b++ {
				batch := make([]wire.Update, perBatch)
				for i := range batch {
					src := uint32(e)<<16 | uint32(b*perBatch+i)
					batch[i] = wire.Update{Src: src, Dst: 7, Delta: 1}
				}
				if err := c.SendUpdates(batch); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(exporters * batches * perBatch)
	if got := srv.Stats().Updates; got != want {
		t.Fatalf("server ingested %d updates, want %d", got, want)
	}
	top := srv.TopK(1)
	if len(top) != 1 || top[0].Dest != 7 {
		t.Fatalf("TopK = %+v", top)
	}
}

func TestMaxConnsEnforced(t *testing.T) {
	_, addr := startServer(t, Config{MaxConns: 1})
	c1 := dial(t, addr)
	if err := c1.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	// The second connection is accepted at TCP level then closed; any
	// request on it must fail.
	c2, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err == nil {
		t.Fatal("connection over MaxConns served a request")
	}
}

func TestShutdownUnblocksClients(t *testing.T) {
	srv, addr := startServer(t, Config{})
	c := dial(t, addr)
	if err := c.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Shutdown()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
	if err := c.SendUpdates([]wire.Update{{Src: 1, Dst: 2, Delta: 1}}); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	srv, _ := startServer(t, Config{})
	srv.Shutdown()
	srv.Shutdown()
}

func TestAlertOverServer(t *testing.T) {
	var mu sync.Mutex
	var alerts []monitor.Alert
	_, addr := startServer(t, Config{
		Monitor: monitor.Config{CheckInterval: 100, MinFrequency: 50},
		OnAlert: func(a monitor.Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		},
	})
	c := dial(t, addr)
	batch := make([]wire.Update, 500)
	for i := range batch {
		batch[i] = wire.Update{Src: uint32(i), Dst: 443, Delta: 1}
	}
	if err := c.SendUpdates(batch); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) == 0 || alerts[0].Dest != 443 {
		t.Fatalf("alerts = %+v", alerts)
	}
}
