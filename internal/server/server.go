// Package server implements the DDoS monitor daemon's network front end: a
// TCP server accepting the wire protocol from edge exporters. Each
// connection may stream flow-update batches, ship encoded edge sketches for
// collector-side merging, and issue top-k queries answered from the shared
// tracking state — realizing the paper's Fig. 1 deployment with one process.
//
// Concurrency model: one goroutine per accepted connection. By default all
// connections feed one mutex-protected monitor; with Config.IngestShards > 0
// update frames are instead staged straight into a sharded ingest pipeline
// (one private sketch per shard worker, merged at query time), which removes
// the shared sketch lock from the ingest path at the cost of continuous
// alert detection (see Config.IngestShards). Either way the per-record path
// is allocation-free: frames are read into pooled per-connection arenas,
// decoded in place, and fed to the kernel without per-frame slices. The
// server owns every goroutine it starts: Shutdown stops the listener, closes
// live connections, and blocks until all handlers have exited.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/monitor"
	"dcsketch/internal/pipeline"
	"dcsketch/internal/tdcs"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// Config parametrizes a Server.
type Config struct {
	// Monitor configures the shared detection state.
	Monitor monitor.Config
	// OnAlert, if non-nil, receives alerts from the shared monitor.
	OnAlert func(monitor.Alert)
	// ReadTimeout bounds how long a connection may stay silent before
	// being dropped (default 30s; negative disables).
	ReadTimeout time.Duration
	// WriteTimeout bounds how long a reply write (frame + flush) may block
	// on a peer that stops reading before the handler gives up and drops
	// the connection (default: the resolved ReadTimeout; negative
	// disables). Without it a stalled reader parks the handler goroutine
	// forever.
	WriteTimeout time.Duration
	// MaxConns bounds concurrent connections (default 256).
	MaxConns int
	// MaxSessions bounds the exporter-replay dedup table (default 1024);
	// past the bound the least-recently-used session's state is evicted.
	MaxSessions int
	// IngestShards, when > 0, routes update frames into a sharded ingest
	// pipeline (that many shard workers, each owning a private sketch)
	// instead of the shared monitor, so concurrent connections ingest
	// without contending on one sketch lock. Queries fold the shards plus
	// the monitor's sketch (MsgSketch merges still land on the monitor).
	// Tradeoff: the monitor no longer sees individual updates, so
	// continuous alert detection (OnAlert, Alerting) only covers
	// monitor-routed traffic — deployments that need per-interval alerting
	// on streamed updates should keep the default inline path. 0 (default)
	// preserves the inline single-monitor behavior exactly.
	IngestShards int
	// Trace receives the server's flight-recorder events (per-connection
	// decode/dedup/apply/ack plus shard stage/apply), keyed by the wire
	// protocol's (session, seq) batch identity. Nil allocates a private
	// recorder — the recorder is always on; its record path is allocation-
	// free and a few dozen nanoseconds per frame. Pass a shared recorder to
	// merge the exporter's half of the story (export.Config.Trace) into the
	// same /debug/trace timeline.
	Trace *tracelog.Recorder
	// Forward, if non-nil, receives every accepted update batch before it
	// is applied locally — the relay tier's upstream tap. For sequenced
	// batches it runs under the server mutex, atomically with the replay-
	// horizon advance: the batch is admitted upstream (spooled) before the
	// horizon moves and before the ack is written, so "acked downstream
	// implies spooled upstream" holds even across a crash-safe snapshot. A
	// Forward error aborts the batch without advancing the horizon and
	// drops the connection unacked, so the exporter retransmits. The slice
	// is only valid for the duration of the call: implementations must
	// copy or encode it synchronously and must not call back into the
	// server.
	Forward func(updates []wire.Update) error
	// ShedOnFull, with IngestShards > 0, switches the shard queues from
	// blocking backpressure to deterministic whole-batch shedding: a batch
	// arriving at a full shard queue is dropped (newest first), counted in
	// the pipeline's shed telemetry, and recorded in the flight recorder,
	// instead of parking the connection handler. Default off: the blocking
	// path preserves lossless ingest for deployments that prefer
	// backpressure over loss.
	ShedOnFull bool
}

// Server is the monitor daemon's network front end.
type Server struct {
	cfg Config

	// snapMu gates batch admission against crash-safe state capture:
	// handlers hold it shared across dispatch (one uncontended RLock per
	// frame), SnapshotState takes it exclusively. Without the gate a
	// sequenced batch could advance its replay horizon under mu and stage
	// its updates into the shard queues on either side of a live snapshot,
	// tearing "horizon covers batch" away from "sketch contains batch" —
	// exactly the invariant a restore must be able to trust.
	//
	//lint:lockorder before(mu)
	snapMu sync.RWMutex
	// mu serializes monitor access with the counter snapshots so Stats
	// is consistent with the detection state. Monitor calls made under it
	// take the monitor's own lock, so that nesting is the sanctioned
	// order module-wide. The relay's Forward tap also runs under it, so
	// the exporter spool lock nests the same way.
	//
	//lint:lockorder before(monitor.Monitor.mu)
	//lint:lockorder before(export.Exporter.mu)
	mu sync.Mutex
	// mon is the shared detection state. guarded by mu
	mon *monitor.Monitor
	// pipe is the sharded ingest pipeline, nil unless Config.IngestShards
	// > 0. It serializes itself (shard channels); handlers stage into it
	// through per-connection Batchers without holding mu.
	pipe *pipeline.Pipeline
	// sessions is the exporter-replay dedup table; holding mu across the
	// dedup check, the batch application, and the lastSeq advance is what
	// makes replayed-batch suppression atomic with the sketch. guarded by mu
	sessions *sessionTable

	// connMu guards the connection-lifecycle state below.
	connMu sync.Mutex
	// listener is the bound listener, nil until Listen. guarded by connMu
	listener net.Listener
	// conns tracks live connections so Shutdown can close them. guarded by connMu
	conns map[net.Conn]struct{}

	wg       sync.WaitGroup
	shutdown chan struct{}
	once     sync.Once

	// Traffic counters. guarded by mu
	updatesIn, batchesIn, queriesIn, sketchesIn, protocolErrs uint64
	// Replay-session counters: handshakes, sequenced batches received, and
	// duplicates suppressed by the dedup table. guarded by mu
	hellosIn, seqBatchesIn, dupBatches uint64
	// forwardErrs counts batches aborted because the Forward tap refused
	// them (relay shutting down); each also drops its connection unacked.
	// guarded by mu
	forwardErrs uint64
	// framesByType counts dispatched frames per defined type (indexed by
	// wire.MsgType; index 0 unused). guarded by mu
	framesByType [wire.MsgTypeCount]uint64
	// errorsByType attributes protocol errors to the defined frame type
	// that carried them (decode failures, invalid request types, rejected
	// sketch merges). guarded by mu
	errorsByType [wire.MsgTypeCount]uint64
	// unknownFrames counts frames with an undefined type byte. guarded by mu
	unknownFrames uint64
	// oversizedFrames counts frames rejected for exceeding
	// wire.MaxFrameSize before payload allocation. guarded by mu
	oversizedFrames uint64

	// Connection lifecycle counters. guarded by connMu
	connsAccepted, connsRejected, connsClosed uint64
	// acceptErrors counts listener Accept failures (all of which are now
	// retried with backoff rather than silently killing the accept loop).
	// guarded by connMu
	acceptErrors uint64

	// tel holds the telemetry bundle once RegisterTelemetry attaches one;
	// nil (one atomic load per query frame) until then.
	tel atomic.Pointer[telemetry.ServerMetrics]

	// rec is the flight recorder; handlers acquire one ring each, so every
	// Record call stays on its connection's goroutine (the ring
	// single-writer contract).
	rec *tracelog.Recorder
	// connSeq mints the writer tag stamped into each connection ring.
	connSeq atomic.Uint64
	// decodeRejects counts frames whose payload was rejected before any
	// state change; kept as a lock-free mirror of the per-type error
	// counters so the monitor's alert-evidence ledger can snapshot it from
	// inside its own critical section without touching mu.
	decodeRejects atomic.Uint64
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = cfg.ReadTimeout
	}
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 256
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 1024
	}
	mon, err := monitor.New(cfg.Monitor, cfg.OnAlert)
	if err != nil {
		return nil, err
	}
	var pipe *pipeline.Pipeline
	if cfg.IngestShards > 0 {
		// The pipeline's shard sketches must share the monitor's effective
		// (defaulted) sketch config so query-time folds merge exactly.
		//
		// The shallow queue (vs pipeline.DefaultQueueDepth) is deliberate:
		// handlers only ship batch envelopes (up to DefaultBatchSize
		// records each), so even a short queue absorbs large bursts, and a
		// deep one just parks megabytes of staging buffers outside the
		// recycle pool — every GC then wipes the pool and the ingest path
		// re-allocates the parked inventory.
		pipe, err = pipeline.New(mon.Config().Sketch, cfg.IngestShards, ingestQueueDepth)
		if err != nil {
			return nil, err
		}
		if cfg.ShedOnFull {
			pipe.EnableShedding()
		}
	}
	rec := cfg.Trace
	if rec == nil {
		rec = tracelog.New(tracelog.Options{})
	}
	if pipe != nil {
		pipe.AttachTracer(rec)
	}
	s := &Server{
		cfg:      cfg,
		mon:      mon,
		pipe:     pipe,
		sessions: newSessionTable(cfg.MaxSessions),
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
		rec:      rec,
	}
	mon.SetDecodeRejectProbe(s.decodeRejects.Load)
	return s, nil
}

// Tracer returns the server's flight recorder — the one passed as
// Config.Trace, or the private recorder drawn when none was. It backs the
// /debug/trace endpoint and the chaos tests' timeline reconstruction.
func (s *Server) Tracer() *tracelog.Recorder { return s.rec }

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting connections
// in a background goroutine. The bound address is returned.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close()
		return nil, err
	}
	return ln.Addr(), nil
}

// Serve starts accepting connections from a caller-provided listener (the
// seam for wrapped transports, e.g. a faultnet.Listener in chaos tests).
// Ownership of ln passes to the server: Shutdown closes it. A server serves
// at most one listener.
func (s *Server) Serve(ln net.Listener) error {
	// Registering under connMu orders this against Shutdown: either the
	// accept loop is accounted in wg before Shutdown closes connections
	// (so Wait covers it), or shutdown already began and Serve refuses.
	s.connMu.Lock()
	var refuse error
	select {
	case <-s.shutdown:
		refuse = errors.New("server: already shut down")
	default:
		if s.listener != nil {
			refuse = errors.New("server: already serving a listener")
		} else {
			s.listener = ln
			s.wg.Add(1)
		}
	}
	s.connMu.Unlock()
	if refuse != nil {
		return refuse
	}
	// Serving is when batches start flowing, so it is when the recorder's
	// coarse clock starts ticking; Shutdown joins the ticker goroutine.
	s.rec.StartClock(0)
	go s.acceptLoop(ln)
	return nil
}

// acceptBackoff bounds the retry pacing for transient Accept failures
// (EMFILE, ECONNABORTED, and friends): exponential from 5ms to 1s.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				// The listener itself is gone; nothing left to accept.
				return
			}
			s.noteAcceptError()
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Transient resource errors (fd exhaustion, aborted
			// handshakes) recover; retrying with backoff keeps the
			// listener alive instead of silently killing it, and the
			// error counter makes a persistent failure observable.
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-s.shutdown:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		if !s.track(conn) {
			_ = conn.Close() // over MaxConns (or shutting down)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// noteAcceptError counts one listener Accept failure.
func (s *Server) noteAcceptError() {
	s.connMu.Lock()
	s.acceptErrors++
	s.connMu.Unlock()
}

func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.shutdown:
		return false
	default:
	}
	if len(s.conns) >= s.cfg.MaxConns {
		s.connsRejected++
		return false
	}
	s.conns[conn] = struct{}{}
	s.connsAccepted++
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connsClosed++
	s.connMu.Unlock()
	_ = conn.Close()
}

// connState is the per-connection protocol state threaded through dispatch.
type connState struct {
	// sessionID is the replay session announced by MsgHello (0 before any
	// handshake). It scopes the dedup lookups for MsgSeqUpdates frames on
	// this connection.
	sessionID uint64
	// ring is the connection's flight-recorder ring; only this connection's
	// handler goroutine Records into it.
	ring *tracelog.Ring
	// scratch holds the connection's pooled ingest buffers for the life of
	// the connection.
	scratch *ingestScratch
	// batcher stages decoded updates into the ingest pipeline; nil in the
	// inline (monitor) mode.
	batcher *pipeline.Batcher
}

// ingestScratch aggregates the reusable per-connection ingest buffers: the
// frame payload arena (wire.ReadFrameInto), the decoded update records
// (wire.DecodeUpdatesInto), and the re-keyed batch handed to the monitor's
// bulk path. One connection at a time owns an instance (handle holds it from
// pool Get to the deferred Put), so in steady state a frame travels
// socket → payload arena → decoded records → kernel with zero per-record
// allocations.
type ingestScratch struct {
	payload []byte         //lint:scratch
	ups     []wire.Update  //lint:scratch
	keys    []dcs.KeyDelta //lint:scratch
	// reply holds each framed reply (header + payload) so it goes out in
	// one Write with no per-frame header allocation (see wire.AppendFrame).
	reply []byte //lint:scratch
	// ack is the seq-ack payload staging area (max uvarint64 width).
	ack [10]byte //lint:scratch
}

// ingestQueueDepth is the per-shard queue length for the server's ingest
// pipeline, counted in envelopes. Handlers ship whole batches, so 64
// envelopes buffer up to 64*pipeline.DefaultBatchSize records per shard.
const ingestQueueDepth = 64

// ingestScratchPool recycles ingest buffers across connections; buffers keep
// their grown capacity, so a reconnecting exporter's frames find a warm
// arena.
var ingestScratchPool = sync.Pool{New: func() any { return new(ingestScratch) }}

// handle runs one connection's request loop.
//
//lint:poolown scratch is owned by this handler from Get to the deferred Put; dispatch only borrows it
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	connID := uint32(s.connSeq.Add(1))
	cs := connState{
		scratch: ingestScratchPool.Get().(*ingestScratch),
		ring:    s.rec.Acquire(connID),
	}
	defer ingestScratchPool.Put(cs.scratch)
	cs.ring.Record(tracelog.StageServerConnOpen, 0, 0, 0, uint64(connID))
	defer func() {
		// The close event lands keyed to the session the connection last
		// served, so a cut connection's trace shows where its batches
		// stopped; the ring itself stays readable after release.
		cs.ring.Record(tracelog.StageServerConnClose, cs.sessionID, 0, 0, uint64(connID))
		s.rec.Release(cs.ring)
	}()
	if s.pipe != nil {
		cs.batcher = s.pipe.NewBatcher()
		// A handler that exits with staged updates (peer vanished between
		// frames) still ships them: updates are acked per frame after an
		// explicit Flush, so this final flush only covers unacked leftovers.
		defer cs.batcher.Flush()
	}
	for {
		if s.cfg.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
				return
			}
		}
		typ, payload, err := s.readFrame(r, cs.scratch)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The length prefix cannot be trusted for resync,
				// so the connection is dropped; count the rejection
				// separately from in-band protocol errors.
				s.mu.Lock()
				s.oversizedFrames++
				s.protocolErrs++
				s.mu.Unlock()
			}
			return
		}
		s.noteFrame(typ)
		// Bound the reply write before dispatching: a peer that stops
		// reading must time the handler out, not park it forever on a
		// full send buffer.
		if s.cfg.WriteTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
				return
			}
		}
		// The shared snapshot gate makes each frame's state changes (horizon
		// advance, local staging, upstream forward) atomic with respect to
		// crash-safe state capture; see Server.snapMu.
		s.snapMu.RLock()
		err = s.dispatch(&cs, typ, payload, w)
		s.snapMu.RUnlock()
		if err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// readFrame reads one frame into the connection's payload arena, observing
// server shutdown (Shutdown closes connections, which unblocks the read).
// The returned payload aliases sc.payload and is valid until the next call.
func (s *Server) readFrame(r *bufio.Reader, sc *ingestScratch) (wire.MsgType, []byte, error) {
	select {
	case <-s.shutdown:
		return 0, nil, errors.New("server: shutting down")
	default:
	}
	typ, payload, buf, err := wire.ReadFrameInto(r, sc.payload)
	sc.payload = buf
	return typ, payload, err
}

// writeReply frames one reply in the connection's scratch buffer and sends
// it with a single Write. Stock wire.WriteFrame's stack header escapes into
// the io.Writer interface call, costing an allocation per reply; framing in
// the pooled scratch keeps the steady-state ack path allocation-free.
func (s *Server) writeReply(cs *connState, w io.Writer, t wire.MsgType, payload []byte) error {
	buf, err := wire.AppendFrame(cs.scratch.reply[:0], t, payload)
	cs.scratch.reply = buf[:0]
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// dispatch applies one request frame and writes the reply. payload and the
// scratch buffers inside cs are only valid for the duration of the call.
func (s *Server) dispatch(cs *connState, typ wire.MsgType, payload []byte, w io.Writer) error {
	switch typ {
	case wire.MsgUpdates:
		updates, err := wire.DecodeUpdatesInto(payload, cs.scratch.ups[:0])
		cs.scratch.ups = updates[:0]
		if err != nil {
			s.noteProtocolError(typ)
			cs.ring.Record(tracelog.StageServerDecodeReject, cs.sessionID, 0, 0, tracelog.RejectDecode)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		if s.cfg.Forward != nil {
			s.mu.Lock()
			err := s.cfg.Forward(updates)
			if err != nil {
				s.forwardErrs++
			}
			s.mu.Unlock()
			if err != nil {
				return fmt.Errorf("server: forward: %w", err)
			}
		}
		s.applyBatch(cs, cs.sessionID, 0, updates)
		return s.writeReply(cs, w, wire.MsgAck, nil)

	case wire.MsgHello:
		id, err := wire.DecodeHello(payload)
		if err != nil {
			s.noteProtocolError(typ)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		s.mu.Lock()
		sess := s.sessions.lookup(id)
		lastAcked := sess.lastSeq
		s.hellosIn++
		s.mu.Unlock()
		cs.sessionID = id
		// Echo the replay horizon: everything at or below lastAcked is
		// applied and will never be re-applied; the exporter prunes its
		// spool to it and resends the rest.
		return s.writeReply(cs, w, wire.MsgHelloAck, wire.AppendHelloAck(nil, lastAcked))

	case wire.MsgSeqUpdates:
		seq, updates, err := wire.DecodeSeqUpdatesInto(payload, cs.scratch.ups[:0])
		cs.scratch.ups = updates[:0]
		if err != nil {
			s.noteProtocolError(typ)
			cs.ring.Record(tracelog.StageServerDecodeReject, cs.sessionID, 0, 0, tracelog.RejectDecode)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		if cs.sessionID == 0 {
			s.noteProtocolError(typ)
			cs.ring.Record(tracelog.StageServerDecodeReject, 0, seq, 0, tracelog.RejectNoHello)
			return wire.WriteFrame(w, wire.MsgError, []byte("sequenced batch before MsgHello handshake"))
		}
		cs.ring.Record(tracelog.StageServerDecode, cs.sessionID, seq, uint32(len(updates)), 0)
		if cs.batcher != nil {
			// Pipeline mode: the dedup decision (and lastSeq advance)
			// happens under mu, the staging outside it. The ack is
			// written only after Flush, so "acked implies visible to
			// later queries" still holds; a retransmission of seq on
			// any connection after the advance is suppressed as a
			// duplicate either way.
			s.mu.Lock()
			sess := s.sessions.lookup(cs.sessionID)
			s.seqBatchesIn++
			dup := seq <= sess.lastSeq
			horizon := sess.lastSeq
			var fwdErr error
			if dup {
				// Already applied: the previous ack was lost. Ack
				// again, apply nothing — this is the exactly-once
				// half of the at-least-once retransmission contract.
				s.dupBatches++
			} else {
				// The relay tap admits the batch upstream inside the
				// same critical section that advances the horizon: a
				// snapshot can never capture an advanced horizon whose
				// batch is missing from the upstream spool.
				if s.cfg.Forward != nil {
					fwdErr = s.cfg.Forward(updates)
				}
				if fwdErr == nil {
					sess.lastSeq = seq
				} else {
					s.forwardErrs++
				}
			}
			s.mu.Unlock()
			if fwdErr != nil {
				// Dropping the connection unacked (rather than replying
				// MsgError, which the exporter treats as a terminal
				// rejection) leaves the batch in the exporter's spool
				// for retransmission after reconnect.
				return fmt.Errorf("server: forward session %d seq %d: %w", cs.sessionID, seq, fwdErr)
			}
			if dup {
				cs.ring.Record(tracelog.StageServerDup, cs.sessionID, seq, 0, horizon)
			} else {
				s.applyBatch(cs, cs.sessionID, seq, updates)
			}
			err := s.writeReply(cs, w, wire.MsgSeqAck, wire.AppendSeqAck(cs.scratch.ack[:0], seq))
			if err == nil {
				cs.ring.Record(tracelog.StageServerAck, cs.sessionID, seq, 0, seq)
			}
			return err
		}
		// Inline mode: re-key outside the lock (same as MsgUpdates); for a
		// duplicate this work is wasted, but duplicates are the rare retry
		// path and keeping the lock hold identical to the fresh-batch case
		// keeps sequence handling off the sketch hot path. Holding mu
		// across the dedup check, the application, and the lastSeq advance
		// makes replayed-batch suppression atomic with the sketch.
		keys := rekeyInto(cs.scratch.keys[:0], updates)
		cs.scratch.keys = keys[:0]
		s.mu.Lock()
		sess := s.sessions.lookup(cs.sessionID)
		s.seqBatchesIn++
		dup := seq <= sess.lastSeq
		horizon := sess.lastSeq
		var fwdErr error
		if dup {
			s.dupBatches++
		} else {
			// Same admission order as the pipeline branch: upstream spool
			// first, then local apply and horizon advance, all atomic
			// under mu.
			if s.cfg.Forward != nil {
				fwdErr = s.cfg.Forward(updates)
			}
			if fwdErr == nil {
				s.mon.UpdateBatch(keys)
				s.batchesIn++
				s.updatesIn += uint64(len(keys))
				sess.lastSeq = seq
			} else {
				s.forwardErrs++
			}
		}
		s.mu.Unlock()
		if fwdErr != nil {
			return fmt.Errorf("server: forward session %d seq %d: %w", cs.sessionID, seq, fwdErr)
		}
		if dup {
			cs.ring.Record(tracelog.StageServerDup, cs.sessionID, seq, 0, horizon)
		} else {
			cs.ring.Record(tracelog.StageServerApply, cs.sessionID, seq, uint32(len(keys)), 0)
		}
		err = s.writeReply(cs, w, wire.MsgSeqAck, wire.AppendSeqAck(cs.scratch.ack[:0], seq))
		if err == nil {
			cs.ring.Record(tracelog.StageServerAck, cs.sessionID, seq, 0, seq)
		}
		return err

	case wire.MsgTopKQuery:
		tel := s.tel.Load()
		var start time.Time
		if tel != nil {
			start = time.Now()
		}
		k, err := wire.DecodeTopKQuery(payload)
		if err != nil {
			s.noteProtocolError(typ)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		ests, err := s.topK(k)
		if err != nil {
			s.noteProtocolError(typ)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		entries := make([]wire.TopKEntry, len(ests))
		for i, e := range ests {
			entries[i] = wire.TopKEntry{Dest: e.Dest, F: e.F}
		}
		err = s.writeReply(cs, w, wire.MsgTopKReply, wire.AppendTopKReply(nil, entries))
		if err == nil {
			cs.ring.Record(tracelog.StageServerQuery, cs.sessionID, 0, uint32(k), 0)
		}
		if tel != nil {
			tel.QueryLatency.Observe(uint64(time.Since(start)))
		}
		return err

	case wire.MsgSketch:
		edge, err := tdcs.UnmarshalBinary(payload)
		if err != nil {
			s.noteProtocolError(typ)
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		s.mu.Lock()
		err = s.mon.MergeSketch(edge)
		if err == nil {
			s.sketchesIn++
		} else {
			s.protocolErrs++
			s.errorsByType[wire.MsgSketch]++
		}
		s.mu.Unlock()
		if err != nil {
			return s.writeReply(cs, w, wire.MsgError, []byte(err.Error()))
		}
		return s.writeReply(cs, w, wire.MsgAck, nil)

	default:
		s.noteProtocolError(typ)
		return s.writeReply(cs, w, wire.MsgError, []byte(fmt.Sprintf("unknown frame type %d", typ)))
	}
}

// rekeyInto converts a decoded wire batch into the monitor's keyed form,
// dropping no-op zero deltas. Results are appended to dst (pass a
// length-zero slice with retained capacity to reuse a scratch buffer).
func rekeyInto(dst []dcs.KeyDelta, updates []wire.Update) []dcs.KeyDelta {
	for _, u := range updates {
		if u.Delta == 0 {
			continue
		}
		dst = append(dst, dcs.KeyDelta{Key: hashing.PairKey(u.Src, u.Dst), Delta: u.Delta})
	}
	return dst
}

// applyBatch feeds one decoded update frame into the ingest path: the
// per-connection pipeline batcher when sharded ingest is configured, the
// shared monitor otherwise. In pipeline mode the batch is flushed to the
// shard queues before returning, so the caller's subsequent ack keeps the
// "acked implies visible to later queries" contract (pipeline folds drain
// every shard queue before merging).
func (s *Server) applyBatch(cs *connState, session, seq uint64, updates []wire.Update) {
	if cs.batcher != nil {
		var n uint64
		for _, u := range updates {
			if u.Delta == 0 {
				continue
			}
			cs.batcher.UpdateKey(hashing.PairKey(u.Src, u.Dst), u.Delta)
			n++
		}
		cs.batcher.FlushTraced(cs.ring, session, seq)
		s.mu.Lock()
		s.batchesIn++
		s.updatesIn += n
		s.mu.Unlock()
		cs.ring.Record(tracelog.StageServerApply, session, seq, uint32(n), 0)
		return
	}
	keys := rekeyInto(cs.scratch.keys[:0], updates)
	cs.scratch.keys = keys[:0]
	s.mu.Lock()
	s.mon.UpdateBatch(keys)
	s.batchesIn++
	s.updatesIn += uint64(len(keys))
	s.mu.Unlock()
	cs.ring.Record(tracelog.StageServerApply, session, seq, uint32(len(keys)), 0)
}

// noteFrame counts one successfully read frame by type.
func (s *Server) noteFrame(typ wire.MsgType) {
	s.mu.Lock()
	if int(typ) > 0 && int(typ) < wire.MsgTypeCount {
		s.framesByType[typ]++
	} else {
		s.unknownFrames++
	}
	s.mu.Unlock()
}

// noteProtocolError counts one protocol error, attributed to its frame type
// when that type is defined (undefined types are already visible as
// unknownFrames).
func (s *Server) noteProtocolError(typ wire.MsgType) {
	s.mu.Lock()
	s.protocolErrs++
	if int(typ) > 0 && int(typ) < wire.MsgTypeCount {
		s.errorsByType[typ]++
	}
	s.mu.Unlock()
	// Lock-free mirror for the alert-evidence ledger (see decodeRejects).
	s.decodeRejects.Add(1)
}

// topK answers a top-k query from the configured ingest topology: the shared
// monitor inline, or a fold of the pipeline shards merged with the monitor's
// sketch (MsgSketch merges land there) when sharded ingest is on. The folded
// snapshot is private to this call, so its estimates need no copy.
func (s *Server) topK(k int) ([]dcs.Estimate, error) {
	if s.pipe == nil {
		s.mu.Lock()
		ests := s.mon.TopK(k)
		s.queriesIn++
		s.mu.Unlock()
		return ests, nil
	}
	acc, err := s.pipe.FoldBase()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	err = s.mon.MergeBaseInto(acc)
	if err == nil {
		s.queriesIn++
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	snap := tdcs.FromBase(acc)
	return snap.TopK(k), nil
}

// TopK answers from the configured ingest topology (for in-process callers).
// In sharded-ingest mode a fold error yields nil.
func (s *Server) TopK(k int) []dcs.Estimate {
	ests, err := s.topK(k)
	if err != nil {
		return nil
	}
	return ests
}

// Alerting reports the shared monitor's alert state for dest.
func (s *Server) Alerting(dest uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon.Alerting(dest)
}

// Stats reports server counters.
type Stats struct {
	// Updates..Sketches count successfully applied requests;
	// ProtocolErrors is the total across every error class below
	// (per-type, unknown, oversized).
	Updates, Batches, Queries, Sketches, ProtocolErrors uint64
	// Hellos counts replay handshakes; SeqBatches counts sequenced update
	// frames received (applied + duplicate); DuplicateBatches counts
	// retransmissions suppressed by the dedup table (acked, not applied).
	Hellos, SeqBatches, DuplicateBatches uint64
	// ForwardErrors counts batches aborted by the Forward tap (each also
	// dropped its connection unacked, so the batch stays retransmittable).
	ForwardErrors uint64
	// SessionsActive is the live dedup-table size; SessionsEvicted counts
	// LRU evictions past the MaxSessions bound (each eviction reopens a
	// double-apply window for that session's retransmissions).
	SessionsActive  int
	SessionsEvicted uint64
	// FramesByType[t] counts successfully read frames of defined type t
	// (indexed by wire.MsgType; index 0 is unused).
	FramesByType [wire.MsgTypeCount]uint64
	// ErrorsByType[t] attributes protocol errors to the defined frame
	// type that carried them: payload decode failures, frame types that
	// are not valid requests, and rejected sketch merges.
	ErrorsByType [wire.MsgTypeCount]uint64
	// UnknownFrames counts frames whose type byte is undefined.
	UnknownFrames uint64
	// OversizedFrames counts frames rejected for exceeding
	// wire.MaxFrameSize; each also drops its connection.
	OversizedFrames uint64
	// ConnsAccepted, ConnsRejected (over MaxConns), and ConnsClosed count
	// connection lifecycle events; ConnsActive is the live count.
	ConnsAccepted, ConnsRejected, ConnsClosed uint64
	ConnsActive                               int
	// AcceptErrors counts listener Accept failures; the accept loop
	// retries them with backoff instead of exiting.
	AcceptErrors uint64
}

// Stats returns a consistent snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Updates:          s.updatesIn,
		Batches:          s.batchesIn,
		Queries:          s.queriesIn,
		Sketches:         s.sketchesIn,
		ProtocolErrors:   s.protocolErrs,
		Hellos:           s.hellosIn,
		SeqBatches:       s.seqBatchesIn,
		DuplicateBatches: s.dupBatches,
		ForwardErrors:    s.forwardErrs,
		SessionsActive:   s.sessions.len(),
		SessionsEvicted:  s.sessions.evicted,
		FramesByType:     s.framesByType,
		ErrorsByType:     s.errorsByType,
		UnknownFrames:    s.unknownFrames,
		OversizedFrames:  s.oversizedFrames,
	}
	s.mu.Unlock()
	s.connMu.Lock()
	st.ConnsAccepted = s.connsAccepted
	st.ConnsRejected = s.connsRejected
	st.ConnsClosed = s.connsClosed
	st.ConnsActive = len(s.conns)
	st.AcceptErrors = s.acceptErrors
	s.connMu.Unlock()
	return st
}

// Monitor exposes the shared monitor, e.g. so embedders can read
// AlertStats or SketchHealth directly. The monitor serializes its own
// state; mutating its sketch outside the server's methods is not supported.
func (s *Server) Monitor() *monitor.Monitor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mon
}

// RegisterTelemetry attaches the live bundle (query-frame latency) and
// registers the server's scrape-time probes on reg: request totals,
// per-type frame and protocol-error counters, oversized/unknown frame
// counters, and connection lifecycle. It also registers the shared
// monitor's telemetry (check latency, alert ring, sketch health). Call at
// most once per server and registry pair; the server may already be
// serving — the bundle attaches atomically.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	tel := telemetry.NewServerMetrics(reg)

	reg.CounterFunc("dcsketch_server_updates_total",
		"Flow updates applied from MsgUpdates frames.",
		func() uint64 { return s.Stats().Updates })
	reg.CounterFunc("dcsketch_server_batches_total",
		"MsgUpdates frames applied.",
		func() uint64 { return s.Stats().Batches })
	reg.CounterFunc("dcsketch_server_queries_total",
		"Top-k query frames answered.",
		func() uint64 { return s.Stats().Queries })
	reg.CounterFunc("dcsketch_server_sketches_total",
		"Edge sketches merged.",
		func() uint64 { return s.Stats().Sketches })
	for t := wire.MsgUpdates; int(t) < wire.MsgTypeCount; t++ {
		t := t
		reg.CounterFunc(`dcsketch_server_frames_total{type="`+t.String()+`"}`,
			"Frames read, by frame type.",
			func() uint64 { return s.Stats().FramesByType[t] })
		reg.CounterFunc(`dcsketch_server_protocol_errors_total{type="`+t.String()+`"}`,
			"Protocol errors, by the frame type that carried them.",
			func() uint64 { return s.Stats().ErrorsByType[t] })
	}
	reg.CounterFunc("dcsketch_server_hellos_total",
		"Replay-session handshakes (MsgHello) accepted.",
		func() uint64 { return s.Stats().Hellos })
	reg.CounterFunc("dcsketch_server_seq_batches_total",
		"Sequenced update frames received (applied plus duplicate).",
		func() uint64 { return s.Stats().SeqBatches })
	reg.CounterFunc("dcsketch_server_duplicate_batches_total",
		"Retransmitted batches suppressed by the replay dedup table.",
		func() uint64 { return s.Stats().DuplicateBatches })
	reg.CounterFunc("dcsketch_server_forward_errors_total",
		"Batches aborted by the relay forward tap (connection dropped unacked).",
		func() uint64 { return s.Stats().ForwardErrors })
	reg.GaugeFunc("dcsketch_server_sessions_active",
		"Live replay sessions in the dedup table.",
		func() int64 { return int64(s.Stats().SessionsActive) })
	reg.CounterFunc("dcsketch_server_sessions_evicted_total",
		"Replay sessions LRU-evicted past the MaxSessions bound.",
		func() uint64 { return s.Stats().SessionsEvicted })
	reg.CounterFunc("dcsketch_server_accept_errors_total",
		"Listener accept failures (retried with backoff).",
		func() uint64 { return s.Stats().AcceptErrors })
	reg.CounterFunc("dcsketch_server_unknown_frames_total",
		"Frames with an undefined type byte.",
		func() uint64 { return s.Stats().UnknownFrames })
	reg.CounterFunc("dcsketch_server_oversized_frames_total",
		"Frames rejected for exceeding the maximum frame size.",
		func() uint64 { return s.Stats().OversizedFrames })
	reg.CounterFunc("dcsketch_server_conns_accepted_total",
		"Connections accepted.",
		func() uint64 { return s.Stats().ConnsAccepted })
	reg.CounterFunc("dcsketch_server_conns_rejected_total",
		"Connections rejected over the MaxConns limit.",
		func() uint64 { return s.Stats().ConnsRejected })
	reg.CounterFunc("dcsketch_server_conns_closed_total",
		"Connections closed.",
		func() uint64 { return s.Stats().ConnsClosed })
	reg.GaugeFunc("dcsketch_server_conns_active",
		"Live connections.",
		func() int64 { return int64(s.Stats().ConnsActive) })

	s.Monitor().RegisterTelemetry(reg)
	if s.pipe != nil {
		s.pipe.RegisterTelemetry(reg)
	}
	s.tel.Store(tel)
}

// Shutdown stops accepting, closes all live connections, and waits for
// every goroutine the server started to exit. Safe to call multiple times.
func (s *Server) Shutdown() {
	s.once.Do(func() {
		close(s.shutdown)
		s.connMu.Lock()
		if s.listener != nil {
			_ = s.listener.Close()
		}
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	// Handlers flush their batchers on the way out (deferred in handle), so
	// the pipeline workers are only stopped once every handler has exited.
	// pipeline.Close is idempotent, matching Shutdown's contract.
	if s.pipe != nil {
		s.pipe.Close()
	}
	s.rec.StopClock()
}
