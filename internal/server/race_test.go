package server

import (
	"sync"
	"testing"
	"time"

	"dcsketch/internal/wire"
)

// TestListenShutdownRace is the regression test for two startup/shutdown
// data races: Listen stored s.listener without a lock while a concurrent
// Shutdown read it (so a racing shutdown could miss closing the fresh
// listener), and Listen's wg.Add could race Shutdown's wg.Wait from a zero
// counter, which sync.WaitGroup forbids. Listen now registers under connMu
// and refuses once shutdown has begun. Run with -race to exercise the
// original faults.
func TestListenShutdownRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		srv, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Shutdown()
		}()
		// Listen may lose the race and report the server already shut
		// down; both outcomes must leave no listener behind.
		_, _ = srv.Listen("127.0.0.1:0")
		<-done
		srv.Shutdown() // whichever side won, this must close the listener
	}
}

// TestConcurrentMixedTraffic drives updates, sketch shipments, queries, and
// stat reads from many goroutines at once; under -race it checks the
// monitor/counter locking end to end.
func TestConcurrentMixedTraffic(t *testing.T) {
	srv, addr := startServer(t, Config{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for e := 0; e < 4; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for b := 0; b < 25; b++ {
				batch := make([]wire.Update, 20)
				for i := range batch {
					batch[i] = wire.Update{Src: uint32(e)<<20 | uint32(b*20+i), Dst: 9, Delta: 1}
				}
				if err := c.SendUpdates(batch); err != nil {
					errs <- err
					return
				}
				if _, err := c.TopK(3); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(e)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = srv.Stats()
				_ = srv.TopK(2)
				_ = srv.Alerting(9)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := srv.Stats().Updates; got != 4*25*20 {
		t.Fatalf("server ingested %d updates, want %d", got, 4*25*20)
	}
}
