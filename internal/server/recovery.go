// Crash-safe snapshot capture and restore for the server: the merged
// sketch (pipeline shards + monitor), the monitor's detection profiles,
// and the session replay horizons, captured atomically under the snapshot
// admission gate so the file's sections can never disagree about which
// batches are inside. See DESIGN.md §14 for the recovery model.
package server

import (
	"errors"
	"fmt"

	"dcsketch/internal/dcs"
	"dcsketch/internal/snapshot"
)

// SnapshotState captures the server's full recovery state. It is safe on a
// live server — the snapshot gate pauses batch admission for the duration
// of the capture (a pipeline fold plus a few map walks; milliseconds at
// Table-2 scale) — and on a Shutdown one, which is how the daemon writes
// its final flush.
func (s *Server) SnapshotState() (*snapshot.State, error) {
	return s.SnapshotStateWith(nil)
}

// SnapshotStateWith is SnapshotState with a hook that runs inside the same
// admission gate, so embedders (the relay tier) can capture companion
// state — the upstream exporter spool — atomically with the horizons that
// promise it. extra must not call back into the server.
func (s *Server) SnapshotStateWith(extra func(st *snapshot.State) error) (*snapshot.State, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	// In sharded mode the recovery sketch is the pipeline fold plus the
	// monitor's counters, merged by linearity into one exact sketch — the
	// same fold a top-k query performs. The fold happens under the gate,
	// so no handler is between its horizon advance and its shard staging.
	var st snapshot.State
	var acc *dcs.Sketch
	if s.pipe != nil {
		var err error
		if acc, err = s.pipe.FoldBase(); err != nil {
			return nil, fmt.Errorf("server: snapshot fold: %w", err)
		}
	}
	s.mu.Lock()
	err := s.captureLocked(acc, &st)
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("server: snapshot sketch: %w", err)
	}

	if extra != nil {
		if err := extra(&st); err != nil {
			return nil, err
		}
	}
	return &st, nil
}

// captureLocked fills st's sketch, monitor, and sessions sections. In
// sharded mode acc is the pipeline fold; the monitor's counters merge into
// it by linearity (the same fold a top-k query performs). Inline mode
// (acc nil) serializes the monitor's sketch directly.
//
//lint:locked mu
func (s *Server) captureLocked(acc *dcs.Sketch, st *snapshot.State) error {
	var err error
	if acc != nil {
		if err = s.mon.MergeBaseInto(acc); err == nil {
			st.Sketch, err = acc.MarshalBinary()
		}
	} else {
		st.Sketch, err = s.mon.SnapshotSketch()
	}
	if err != nil {
		return err
	}
	prof := s.mon.SnapshotProfile()
	st.Monitor = &prof
	st.Sessions = &snapshot.SessionsState{Horizons: s.sessions.export()}
	return nil
}

// RestoreState loads a previously captured snapshot into a fresh server:
// the sketch and profiles into the monitor (pipeline shards restart empty —
// the snapshot already folded their residue), the horizons into the session
// table. It must run before Serve; restoring under live traffic would race
// the very invariants the snapshot exists to preserve.
func (s *Server) RestoreState(st *snapshot.State) error {
	s.connMu.Lock()
	serving := s.listener != nil
	s.connMu.Unlock()
	if serving {
		return errors.New("server: RestoreState after Serve")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(st.Sketch) > 0 {
		if err := s.mon.RestoreSketch(st.Sketch); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	if st.Monitor != nil {
		s.mon.RestoreProfile(*st.Monitor)
	}
	if st.Sessions != nil {
		s.sessions.restore(st.Sessions.Horizons)
	}
	return nil
}
