package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dcsketch/internal/faultnet"
	"dcsketch/internal/wire"
)

// startFaultServer binds a real listener, wraps it with inj, and serves
// through the Serve seam so every accepted connection carries the fault
// schedule.
func startFaultServer(t *testing.T, cfg Config, inj *faultnet.Injector) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(inj.Listen(ln)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// TestStalledReaderTimesOut is the write-deadline regression test: a peer
// that stops draining (modeled by blackholing the server side's writes)
// must not park the handler goroutine forever — the WriteTimeout fires, the
// handler drops the connection, and Shutdown still completes promptly.
func TestStalledReaderTimesOut(t *testing.T) {
	inj := faultnet.New(faultnet.Config{
		Seed:            1,
		CutAfter:        64, // threshold fires while reading the large request
		MaxCuts:         1,
		BlackholeWrites: true,
	})
	srv, addr := startFaultServer(t, Config{WriteTimeout: 200 * time.Millisecond}, inj)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A request comfortably past the cut threshold: the server's wrapped
	// connection latches the blackhole while reading it, so the reply write
	// stalls and only the write deadline can save the handler.
	if err := wire.WriteFrame(conn, wire.MsgUpdates, wire.AppendUpdates(nil, batchOf(64, 7, 1))); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := wire.ReadFrame(bufio.NewReader(conn))
		done <- err
	}()
	start := time.Now()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read succeeded through a blackholed reply path")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler stalled: reply neither arrived nor was the connection dropped")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("connection dropped only after %v; write deadline did not fire", elapsed)
	}
	if st := inj.Stats(); st.Blackholes != 1 {
		t.Fatalf("faultnet stats = %+v, want exactly one blackhole", st)
	}
	// The handler goroutine is free again: Shutdown must not hang on it.
	srv.Shutdown()
}

// TestMidFrameResetRecovers cuts client connections mid-frame repeatedly;
// the server must survive every partial frame and keep serving fresh
// connections.
func TestMidFrameResetRecovers(t *testing.T) {
	_, addr := startServer(t, Config{})
	inj := faultnet.New(faultnet.Config{Seed: 7, CutAfter: 300})

	cuts := 0
	for i := 0; i < 5; i++ {
		c, err := inj.Dial(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if err := wire.WriteFrame(c, wire.MsgUpdates, wire.AppendUpdates(nil, batchOf(50, 7, 1))); err != nil {
				if !errors.Is(err, faultnet.ErrInjectedReset) {
					t.Fatalf("unexpected write error: %v", err)
				}
				cuts++
				break
			}
			if _, _, err := wire.ReadFrame(bufio.NewReader(c)); err != nil {
				cuts++
				break
			}
		}
		c.Close()
	}
	if cuts != 5 {
		t.Fatalf("cuts = %d, want one per connection", cuts)
	}

	// A clean client still gets answers.
	cl := dial(t, addr)
	if err := cl.SendUpdates(batchOf(10, 9, 1)); err != nil {
		t.Fatalf("server wedged after mid-frame resets: %v", err)
	}
	if _, err := cl.TopK(1); err != nil {
		t.Fatal(err)
	}
}

// TestPartialHeaderThenClose sends a torn frame header and disconnects; the
// server must drop the connection without counting an applied request.
func TestPartialHeaderThenClose(t *testing.T) {
	srv, addr := startServer(t, Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Two bytes of the four-byte length prefix, then nothing.
	if _, err := conn.Write([]byte{0x10, 0x00}); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	cl := dial(t, addr)
	if err := cl.SendUpdates(batchOf(5, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Batches != 1 || st.Updates != 5 {
		t.Fatalf("stats after torn header = %+v", st)
	}
}

// TestSlowLorisWrites drips a whole frame one byte at a time; the server's
// buffered reader must assemble and ack it.
func TestSlowLorisWrites(t *testing.T) {
	srv, addr := startServer(t, Config{})
	inj := faultnet.New(faultnet.Config{
		Seed:       3,
		WriteChunk: 1,
		Delay:      100 * time.Microsecond,
	})
	c, err := inj.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := wire.WriteFrame(c, wire.MsgUpdates, wire.AppendUpdates(nil, batchOf(20, 11, 1))); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(bufio.NewReader(c))
	if err != nil || typ != wire.MsgAck {
		t.Fatalf("slow-loris frame reply = (%v, %v), want MsgAck", typ, err)
	}
	if st := inj.Stats(); st.PartialWrites == 0 {
		t.Fatal("WriteChunk=1 injected no partial writes")
	}
	if st := srv.Stats(); st.Batches != 1 || st.Updates != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShutdownRacesInflightDispatch shuts the server down while clients are
// mid-stream; Shutdown must reap every handler without deadlock (and the
// race detector watches the rest).
func TestShutdownRacesInflightDispatch(t *testing.T) {
	srv, addr := startServer(t, Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			inj := faultnet.New(faultnet.Config{Seed: seed, WriteChunk: 16})
			c, err := inj.Dial(addr, 2*time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			r := bufio.NewReader(c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := wire.WriteFrame(c, wire.MsgUpdates, wire.AppendUpdates(nil, batchOf(100, 2, 1))); err != nil {
					return
				}
				if _, _, err := wire.ReadFrame(r); err != nil {
					return
				}
			}
		}(uint64(i + 1))
	}

	time.Sleep(20 * time.Millisecond) // let the streams get in flight
	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(shutdownDone)
	}()
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown deadlocked against in-flight dispatch")
	}
	close(stop)
	wg.Wait()
}

// flakyListener fails its first `failures` Accept calls with a transient
// error, then delegates to the real listener.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

var errFlaky = errors.New("transient accept failure")

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.failures > 0
	if fail {
		l.failures--
	}
	l.mu.Unlock()
	if fail {
		return nil, errFlaky
	}
	return l.Listener.Accept()
}

// TestAcceptErrorsRetriedWithBackoff proves a failing Accept no longer kills
// the accept loop: the errors are counted, retried, and the listener then
// serves normally.
func TestAcceptErrorsRetriedWithBackoff(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(&flakyListener{Listener: ln, failures: 3}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)

	// The three failures cost ~5+10+20ms of backoff before Accept recovers.
	cl := dial(t, ln.Addr().String())
	if err := cl.SendUpdates(batchOf(5, 1, 1)); err != nil {
		t.Fatalf("accept loop did not recover: %v", err)
	}
	if st := srv.Stats(); st.AcceptErrors != 3 || st.ConnsAccepted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeRefusesDoubleAndShutdown pins the Serve seam's ownership rules.
func TestServeRefusesDoubleAndShutdown(t *testing.T) {
	srv, _ := startServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("second Serve on one server succeeded")
	}
	srv.Shutdown()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown succeeded")
	}
}

// TestClientPoisonedAfterTransportError: the first transport failure must
// stick — later calls fail fast with ErrPoisoned instead of reusing a
// desynchronized stream.
func TestClientPoisonedAfterTransportError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A peer that accepts, reads a little, and slams the connection shut:
	// the client's round trip dies mid-reply.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		_, _ = conn.Read(buf)
		conn.Close()
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := c.SendUpdates(batchOf(10, 1, 1))
	if first == nil {
		t.Fatal("round trip against a slamming peer succeeded")
	}
	if errors.Is(first, ErrPoisoned) {
		t.Fatalf("first error already wrapped ErrPoisoned: %v", first)
	}
	second := c.SendUpdates(batchOf(10, 1, 1))
	if !errors.Is(second, ErrPoisoned) {
		t.Fatalf("second call error = %v, want ErrPoisoned", second)
	}
	if _, err := c.TopK(1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("TopK after poison = %v, want ErrPoisoned", err)
	}
}
