package server

import (
	"container/list"

	"dcsketch/internal/snapshot"
)

// session is one exporter replay session's dedup state: the highest batch
// sequence already applied into the shared sketch. A MsgSeqUpdates frame
// whose sequence is at or below lastSeq has already been applied — it is
// acked again (the first ack was evidently lost) but not re-applied, which
// is what turns the exporter's at-least-once retransmission into
// exactly-once application. Sequences are strictly increasing per session;
// gaps are legal (the exporter sheds spooled batches under pressure and
// skips their sequences).
type session struct {
	id      uint64
	lastSeq uint64
}

// sessionTable is the bounded, LRU-evicted dedup table mapping session IDs
// to their replay state. It is not self-locking: the server accesses it
// under the same mutex that guards the sketch, so the dedup check, the
// batch application, and the lastSeq advance are one atomic step.
//
// The bound is the correctness horizon: while at most max sessions are
// live, dedup state is never lost. Past that, the least-recently-used
// session's state is evicted, and a retransmission arriving after eviction
// would be applied again (the table trades unbounded memory for a bounded,
// observable risk window — evictions are counted and exported).
type sessionTable struct {
	max int
	// ll orders sessions most-recently-used first; elements hold *session.
	ll *list.List
	m  map[uint64]*list.Element

	evicted uint64
}

// newSessionTable returns a table bounded to max sessions (clamped to 1).
func newSessionTable(max int) *sessionTable {
	if max < 1 {
		max = 1
	}
	return &sessionTable{
		max: max,
		ll:  list.New(),
		m:   make(map[uint64]*list.Element, max),
	}
}

// lookup returns the session for id, creating it (and evicting the LRU
// entry past the bound) if needed, and marks it most recently used.
func (t *sessionTable) lookup(id uint64) *session {
	if el, ok := t.m[id]; ok {
		t.ll.MoveToFront(el)
		return el.Value.(*session)
	}
	for t.ll.Len() >= t.max {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.m, oldest.Value.(*session).id)
		t.evicted++
	}
	s := &session{id: id}
	t.m[id] = t.ll.PushFront(s)
	return s
}

// len returns the number of live sessions.
func (t *sessionTable) len() int { return t.ll.Len() }

// export captures every live session's replay horizon, most-recently-used
// first, for a crash-safe snapshot. The caller holds the server mutex, so
// the horizons are atomic with the sketch state captured alongside them.
func (t *sessionTable) export() []snapshot.SessionHorizon {
	if t.ll.Len() == 0 {
		return nil
	}
	out := make([]snapshot.SessionHorizon, 0, t.ll.Len())
	for el := t.ll.Front(); el != nil; el = el.Next() {
		s := el.Value.(*session)
		out = append(out, snapshot.SessionHorizon{ID: s.id, LastSeq: s.lastSeq})
	}
	return out
}

// restore replaces the table's content with previously exported horizons
// (most-recently-used first), dropping duplicates and clamping to the
// table's bound by keeping the most recently used entries — exactly the
// ones LRU eviction would have kept, so a restore can only ever narrow the
// dedup window relative to what the dead server promised, never widen it.
func (t *sessionTable) restore(horizons []snapshot.SessionHorizon) {
	t.ll = list.New()
	t.m = make(map[uint64]*list.Element, t.max)
	for _, h := range horizons {
		if t.ll.Len() >= t.max {
			t.evicted++
			continue
		}
		if _, ok := t.m[h.ID]; ok {
			continue
		}
		t.m[h.ID] = t.ll.PushBack(&session{id: h.ID, lastSeq: h.LastSeq})
	}
}
