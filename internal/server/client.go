package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"dcsketch/internal/wire"
)

// Client is an edge-side connection to the monitor daemon: it streams flow
// updates, ships encoded sketches, and issues top-k queries. A Client is
// not safe for concurrent use; run one per exporter goroutine.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
	scratch []byte
}

// Dial connects to the daemon at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		timeout: timeout,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes one frame and reads the reply.
func (c *Client) roundTrip(t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, nil, fmt.Errorf("server: set deadline: %w", err)
	}
	if err := wire.WriteFrame(c.w, t, payload); err != nil {
		return 0, nil, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, nil, fmt.Errorf("server: flush: %w", err)
	}
	return wire.ReadFrame(c.r)
}

// expectAck consumes an Ack reply, surfacing server-side errors.
func expectAck(typ wire.MsgType, payload []byte, err error) error {
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		return fmt.Errorf("server: remote error: %s", payload)
	default:
		return fmt.Errorf("server: unexpected reply type %d", typ)
	}
}

// SendUpdates ships a batch of flow updates and waits for the ack.
func (c *Client) SendUpdates(updates []wire.Update) error {
	c.scratch = wire.AppendUpdates(c.scratch[:0], updates)
	return expectAck(c.roundTrip(wire.MsgUpdates, c.scratch))
}

// SendSketch ships an encoded sketch for collector-side merging.
func (c *Client) SendSketch(encoded []byte) error {
	return expectAck(c.roundTrip(wire.MsgSketch, encoded))
}

// TopK queries the daemon's current top-k destinations.
func (c *Client) TopK(k int) ([]wire.TopKEntry, error) {
	typ, payload, err := c.roundTrip(wire.MsgTopKQuery, wire.AppendTopKQuery(nil, k))
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgTopKReply:
		return wire.DecodeTopKReply(payload)
	case wire.MsgError:
		return nil, fmt.Errorf("server: remote error: %s", payload)
	default:
		return nil, fmt.Errorf("server: unexpected reply type %d", typ)
	}
}
