package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"dcsketch/internal/wire"
)

// Client is an edge-side connection to the monitor daemon: it streams flow
// updates, ships encoded sketches, and issues top-k queries. A Client is
// not safe for concurrent use; run one per exporter goroutine.
//
// A Client is poisoned by its first transport error: any mid-frame write or
// read failure leaves the byte stream desynchronized (the peer may hold a
// partial frame, or an unread reply is in flight), so every later call
// fails fast with the original error instead of silently corrupting the
// framing. In-band MsgError replies arrive on an intact stream and do not
// poison. There is no reconnection here — that is internal/export's job.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
	scratch []byte
	// err is the sticky first transport error; once set, roundTrip
	// refuses without touching the connection.
	err error
}

// ErrPoisoned is wrapped by calls on a client whose connection already
// failed mid-frame.
var ErrPoisoned = errors.New("server: client poisoned by earlier transport error")

// Dial connects to the daemon at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		timeout: timeout,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip writes one frame and reads the reply. Any transport failure
// poisons the client: a half-written request or half-read reply cannot be
// resynchronized, so later round trips on this connection would pair
// requests with the wrong replies.
func (c *Client) roundTrip(t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	if c.err != nil {
		return 0, nil, fmt.Errorf("%w: %w", ErrPoisoned, c.err)
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		c.err = err
		return 0, nil, fmt.Errorf("server: set deadline: %w", err)
	}
	if err := wire.WriteFrame(c.w, t, payload); err != nil {
		c.err = err
		return 0, nil, err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
		return 0, nil, fmt.Errorf("server: flush: %w", err)
	}
	typ, reply, err := wire.ReadFrame(c.r)
	if err != nil {
		c.err = err
	}
	return typ, reply, err
}

// expectAck consumes an Ack reply, surfacing server-side errors.
func expectAck(typ wire.MsgType, payload []byte, err error) error {
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgAck:
		return nil
	case wire.MsgError:
		return fmt.Errorf("server: remote error: %s", payload)
	default:
		return fmt.Errorf("server: unexpected reply type %d", typ)
	}
}

// SendUpdates ships a batch of flow updates and waits for the ack.
func (c *Client) SendUpdates(updates []wire.Update) error {
	c.scratch = wire.AppendUpdates(c.scratch[:0], updates)
	return expectAck(c.roundTrip(wire.MsgUpdates, c.scratch))
}

// SendSketch ships an encoded sketch for collector-side merging.
func (c *Client) SendSketch(encoded []byte) error {
	return expectAck(c.roundTrip(wire.MsgSketch, encoded))
}

// TopK queries the daemon's current top-k destinations.
func (c *Client) TopK(k int) ([]wire.TopKEntry, error) {
	typ, payload, err := c.roundTrip(wire.MsgTopKQuery, wire.AppendTopKQuery(nil, k))
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgTopKReply:
		return wire.DecodeTopKReply(payload)
	case wire.MsgError:
		return nil, fmt.Errorf("server: remote error: %s", payload)
	default:
		return nil, fmt.Errorf("server: unexpected reply type %d", typ)
	}
}
