package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/snapshot"
)

func monCfg() monitor.Config {
	return monitor.Config{Sketch: dcs.Config{Buckets: 64, Seed: 5}}
}

// restoreInto builds a fresh server from cfg, restores st into it, and
// starts it listening.
func restoreInto(t *testing.T, cfg Config, st *snapshot.State) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, addr.String()
}

// TestSnapshotRestoreRoundTrip drives sequenced batches into a server,
// snapshots it, restores into a fresh server, and checks the restart
// contract: identical query state, the old replay horizon echoed on hello,
// and a retransmitted pre-crash batch acked without being re-applied.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, shards := range []int{0, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := Config{Monitor: monCfg(), IngestShards: shards}
			srv, addr := startServer(t, cfg)
			sc := dialSess(t, addr)
			if got := sc.hello(77); got != 0 {
				t.Fatalf("fresh horizon = %d", got)
			}
			for seq := uint64(1); seq <= 5; seq++ {
				sc.seqSend(seq, batchOf(4, uint32(seq), 1))
			}
			want := srv.TopK(10)
			st, err := srv.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			srv.Shutdown()

			srv2, addr2 := restoreInto(t, cfg, st)
			if got := srv2.TopK(10); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("restored TopK = %v, want %v", got, want)
			}
			sc2 := dialSess(t, addr2)
			if got := sc2.hello(77); got != 5 {
				t.Fatalf("restored horizon = %d, want 5", got)
			}
			// A retransmit of an applied batch: acked, not re-applied.
			sc2.seqSend(5, batchOf(4, 5, 1))
			if got := srv2.TopK(10); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("TopK after duplicate replay = %v, want %v", got, want)
			}
			if ss := srv2.Stats(); ss.DuplicateBatches != 1 {
				t.Fatalf("DuplicateBatches = %d, want 1", ss.DuplicateBatches)
			}
			// New traffic continues from the restored state.
			sc2.seqSend(6, batchOf(4, 6, 1))
			if got := srv2.TopK(10); len(got) != 6 {
				t.Fatalf("TopK after new batch has %d entries, want 6", len(got))
			}
		})
	}
}

// TestSnapshotRefusedAfterServe pins RestoreState's precondition.
func TestSnapshotRefusedAfterServe(t *testing.T) {
	srv, _ := startServer(t, Config{Monitor: monCfg()})
	if err := srv.RestoreState(&snapshot.State{}); err == nil {
		t.Fatal("RestoreState after Listen did not fail")
	}
}

// TestSnapshotConfigMismatchRejected pins the sketch-config guard: a
// snapshot from a differently dimensioned collector must not restore.
func TestSnapshotConfigMismatchRejected(t *testing.T) {
	srv, err := New(Config{Monitor: monCfg()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(Config{Monitor: monitor.Config{Sketch: dcs.Config{Buckets: 32, Seed: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(st); err == nil {
		t.Fatal("mismatched sketch config restored without error")
	}
}

// TestSnapshotAtomicWithHorizons is the tear test for the snapshot gate:
// while one session streams sequenced batches (batch seq carries its own
// destination, so the sketch reveals exactly which batches it contains),
// concurrent snapshots are captured live. Every snapshot must satisfy
// "sketch contents == batches 1..horizon" — a destination acked before the
// capture can neither be missing from the restored sketch (lost-acked) nor
// present beyond the horizon (double-apply after restore). Presence is the
// assertion, not the exact estimate: DCS distinct counts carry sketch
// noise, membership of the tracked set does not at this load.
func TestSnapshotAtomicWithHorizons(t *testing.T) {
	cfg := Config{Monitor: monitor.Config{Sketch: dcs.Config{Buckets: 256, Seed: 5}}, IngestShards: 2}
	srv, addr := startServer(t, cfg)

	const batches = 60
	var stop atomic.Bool
	var snaps []*snapshot.State
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			st, err := srv.SnapshotState()
			if err != nil {
				t.Error(err)
				return
			}
			snaps = append(snaps, st)
			// Breathe between captures: the write lock starves the stream
			// (and the point is snapshots interleaved with traffic, not a
			// lock-contention benchmark).
			time.Sleep(2 * time.Millisecond)
		}
	}()

	sc := dialSess(t, addr)
	sc.hello(31)
	for seq := uint64(1); seq <= batches; seq++ {
		sc.seqSend(seq, batchOf(3, uint32(seq), 1))
	}
	stop.Store(true)
	wg.Wait()

	// Sample the captures evenly; each check boots a full restored server.
	stride := 1
	if len(snaps) > 32 {
		stride = len(snaps) / 32
	}
	checked := 0
	for i := 0; i < len(snaps); i += stride {
		st := snaps[i]
		var horizon uint64
		if st.Sessions != nil {
			for _, h := range st.Sessions.Horizons {
				if h.ID == 31 {
					horizon = h.LastSeq
				}
			}
		}
		srv2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv2.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		got := srv2.TopK(batches + 1)
		if uint64(len(got)) != horizon {
			t.Fatalf("snapshot at horizon %d restores %d destinations", horizon, len(got))
		}
		seen := map[uint32]bool{}
		for _, e := range got {
			if e.Dest == 0 || uint64(e.Dest) > horizon {
				t.Fatalf("snapshot at horizon %d holds dest %d (f=%d): batch beyond the promised horizon",
					horizon, e.Dest, e.F)
			}
			seen[e.Dest] = true
		}
		if uint64(len(seen)) != horizon {
			t.Fatalf("snapshot at horizon %d holds %d distinct dests: an acked batch is missing",
				horizon, len(seen))
		}
		srv2.Shutdown()
		checked++
	}
	if checked == 0 {
		t.Fatal("no snapshots captured during the stream")
	}
}

// TestSessionEvictionRacingSnapshot is the satellite-3 regression test:
// many sessions churn through a small LRU table (forcing evictions) while
// snapshots are captured live. No captured horizon may ever be wider than
// what the server actually acked for that session, no snapshot may exceed
// the table bound, and restoring any snapshot into the bounded table must
// keep at most the bound's most-recently-used entries — the dedup window
// can only ever narrow across a crash, never widen.
func TestSessionEvictionRacingSnapshot(t *testing.T) {
	const maxSessions = 4
	cfg := Config{Monitor: monCfg(), MaxSessions: maxSessions}
	srv, addr := startServer(t, cfg)

	const sessions = 16
	var acked [sessions + 1]atomic.Uint64 // highest seq acked per session id
	var stop atomic.Bool
	var snapErr atomic.Value
	captured := make([][]snapshot.SessionHorizon, 0, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			st, err := srv.SnapshotState()
			if err != nil {
				snapErr.Store(err)
				return
			}
			if st.Sessions != nil {
				captured = append(captured, st.Sessions.Horizons)
			}
		}
	}()

	// Four workers interleave sessions 1..16 over the 4-slot table; every
	// lookup of a cold session evicts the LRU one.
	var clients sync.WaitGroup
	for w := 0; w < 4; w++ {
		clients.Add(1)
		go func(w int) {
			defer clients.Done()
			sc := dialSess(t, addr)
			for round := 0; round < 30; round++ {
				id := uint64(w*4 + round%4 + 1)
				sc.hello(id)
				// Sequences grow per (session, worker-round); the table
				// keeps the max it acked.
				seq := uint64(round + 1)
				sc.seqSend(seq, batchOf(2, uint32(id), 1))
				for {
					prev := acked[id].Load()
					if seq <= prev || acked[id].CompareAndSwap(prev, seq) {
						break
					}
				}
			}
		}(w)
	}
	clients.Wait()
	stop.Store(true)
	wg.Wait()
	if err, ok := snapErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if len(captured) == 0 {
		t.Fatal("no snapshots captured during the churn")
	}

	for _, horizons := range captured {
		if len(horizons) > maxSessions {
			t.Fatalf("snapshot holds %d horizons, table bound is %d", len(horizons), maxSessions)
		}
		seen := map[uint64]bool{}
		for _, h := range horizons {
			if seen[h.ID] {
				t.Fatalf("snapshot holds session %d twice", h.ID)
			}
			seen[h.ID] = true
			if h.ID == 0 || h.ID > sessions {
				t.Fatalf("snapshot holds unknown session %d", h.ID)
			}
			if max := acked[h.ID].Load(); h.LastSeq > max {
				t.Fatalf("snapshot promises session %d horizon %d, server only ever acked %d",
					h.ID, h.LastSeq, max)
			}
		}
	}

	// Restoring the widest capture into an even smaller table keeps only
	// the most-recently-used entries and counts the rest as evicted.
	widest := captured[0]
	for _, h := range captured {
		if len(h) > len(widest) {
			widest = h
		}
	}
	small := newSessionTable(2)
	small.restore(widest)
	if small.len() > 2 {
		t.Fatalf("restore into bound-2 table kept %d sessions", small.len())
	}
	if len(widest) > 2 && small.evicted != uint64(len(widest)-2) {
		t.Fatalf("restore evicted %d, want %d", small.evicted, len(widest)-2)
	}
	for i, h := range widest[:small.len()] {
		el, ok := small.m[h.ID]
		if !ok {
			t.Fatalf("restore dropped MRU entry %d (session %d)", i, h.ID)
		}
		if got := el.Value.(*session).lastSeq; got != h.LastSeq {
			t.Fatalf("session %d restored horizon %d, want %d", h.ID, got, h.LastSeq)
		}
	}
}
