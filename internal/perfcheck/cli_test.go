package perfcheck

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixture returns the absolute path of one testdata fixture module, skipping
// the test when the go tool is unavailable (the e2e tests really compile).
func fixture(t *testing.T, name string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestMainCleanFixture(t *testing.T) {
	var b strings.Builder
	pins := []Pin{
		{Contract: BCE, Pkg: "fixtureclean", Name: "Sum", Source: "test:1"},
		{Contract: Inline, Pkg: "fixtureclean", Name: "Sum", Source: "test:2"},
		{Contract: Allocfree, Pkg: "fixtureclean", Name: "Fill", Source: "test:3"},
	}
	code, err := Main(Options{Dir: fixture(t, "cleanmod"), Pins: pins}, &b)
	if err != nil || code != 0 {
		t.Fatalf("Main(clean) = %d, %v\n%s", code, err, b.String())
	}
	if out := b.String(); out != "" {
		t.Errorf("clean run produced output:\n%s", out)
	}
}

func TestMainDirtyFixture(t *testing.T) {
	var b strings.Builder
	code, err := Main(Options{Dir: fixture(t, "dirtymod")}, &b)
	if err != nil {
		t.Fatalf("Main(dirty): %v", err)
	}
	if code != 1 {
		t.Fatalf("Main(dirty) = %d, want 1\n%s", code, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"[allocfree] Box: heap allocation in //lint:allocfree function: v escapes to heap",
		"[bce] At: residual bounds check in //lint:bce function: Found IsInBounds",
		"stale //lint:bceok",
		"cannot inline Recurse",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dirty output missing %q:\n%s", want, out)
		}
	}
	// The acknowledged escapes in BoxOK/AtOK are suppressed, not violations.
	for _, reject := range []string{"BoxOK", "AtOK"} {
		if strings.Contains(out, reject) {
			t.Errorf("plain output reports suppressed function %s:\n%s", reject, out)
		}
	}
	if !strings.Contains(out, "4 violation(s)") {
		t.Errorf("dirty output summary wrong (want 4 violations):\n%s", out)
	}
}

func TestMainDirtyFixtureJSON(t *testing.T) {
	var b strings.Builder
	code, err := Main(Options{Dir: fixture(t, "dirtymod"), JSON: true}, &b)
	if err != nil || code != 1 {
		t.Fatalf("Main(dirty,json) = %d, %v\n%s", code, err, b.String())
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	var summary jsonSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatalf("summary trailer: %v\n%s", err, lines[len(lines)-1])
	}
	if !summary.Summary || summary.Tool != "perfcheck" || summary.Findings != 4 || summary.Suppressed != 2 {
		t.Errorf("summary = %+v, want 4 findings + 2 suppressed", summary)
	}
	suppressed := 0
	for _, line := range lines[:len(lines)-1] {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("finding line %q: %v", line, err)
		}
		if f.Suppressed {
			suppressed++
		}
	}
	if suppressed != 2 {
		t.Errorf("JSON stream has %d suppressed findings, want 2 (BoxOK, AtOK)", suppressed)
	}
}

func TestMainContractFilter(t *testing.T) {
	var b strings.Builder
	code, err := Main(Options{
		Dir:       fixture(t, "dirtymod"),
		Contracts: map[Contract]bool{Allocfree: true},
		Tool:      "escapecheck",
	}, &b)
	if err != nil || code != 1 {
		t.Fatalf("Main(dirty,allocfree) = %d, %v\n%s", code, err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "escapes to heap") {
		t.Errorf("allocfree-only run missing escape findings:\n%s", out)
	}
	for _, reject := range []string{"[bce]", "[inline]", "Recurse", "stale"} {
		if strings.Contains(out, reject) {
			t.Errorf("allocfree-only run leaked %q:\n%s", reject, out)
		}
	}
	if !strings.Contains(out, "escapecheck: 1 violation(s)") {
		t.Errorf("filtered summary wrong (want 1 violation under tool name):\n%s", out)
	}
}

func TestMainPinDeannotated(t *testing.T) {
	var b strings.Builder
	pins := []Pin{{Contract: BCE, Pkg: "fixtureclean", Name: "Helper", Source: "pins.txt:4"}}
	code, err := Main(Options{Dir: fixture(t, "cleanmod"), Pins: pins}, &b)
	if err != nil {
		t.Fatalf("Main: %v", err)
	}
	if code != 1 {
		t.Fatalf("Main = %d, want 1\n%s", code, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "clean.go:") || !strings.Contains(out, "pinned in pins.txt:4") ||
		!strings.Contains(out, "not annotated //lint:bce") {
		t.Errorf("pin violation not source-located:\n%s", out)
	}
}

func TestMainPinUnknownSymbol(t *testing.T) {
	var b strings.Builder
	pins := []Pin{{Contract: BCE, Pkg: "fixtureclean", Name: "Nope", Source: "pins.txt:9"}}
	code, err := Main(Options{Dir: fixture(t, "cleanmod"), Pins: pins}, &b)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "unknown symbol fixtureclean:Nope") ||
		!strings.Contains(err.Error(), "pins.txt:9") {
		t.Fatalf("Main(unknown pin) = %d, %v; want exit 2 naming the pin", code, err)
	}
}
