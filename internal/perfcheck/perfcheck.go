// Package perfcheck turns the //lint:allocfree, //lint:bce and //lint:inline
// annotations into compiler-ground-truth contracts. The sketchlint analyzers
// prove hot-path properties at the AST level; perfcheck closes the gap the
// AST cannot see by compiling the annotated packages with
//
//	go build -gcflags='-m -m -d=ssa/check_bce/debug=1' <packages>
//
// and checking the compiler's own decisions against each annotated span:
//
//   - allocfree: no "escapes to heap" / "moved to heap" diagnostic may land
//     inside the span (suppress a reviewed escape with a same-line
//     "//lint:allocok <reason>").
//   - bce: no residual "Found IsInBounds" / "Found IsSliceInBounds" site may
//     land inside the span (suppress a reviewed data-dependent check with a
//     same-line "//lint:bceok <reason>").
//   - inline: the function must get a positive "can inline" decision; a
//     "cannot inline" (the -m -m reason is reported) or a missing decision
//     fails the contract.
//
// Suppressions are themselves checked where perfcheck is the only consumer:
// a //lint:bceok comment inside a span whose line the compiler no longer
// flags is reported as stale, so the acknowledged-bounds-check inventory
// cannot rot. //lint:allocok is exempt from the stale sweep — it is shared
// vocabulary with the sketchlint allocfree analyzer, whose AST diagnostics
// (map growth, append) the compiler's -m output never mentions, so a
// compiler-silent allocok line may still be suppressing a live AST finding.
//
// Coverage pins (a committed pins file, see ParsePins) make the proof surface
// explicit: a pinned function that exists but lost its annotation is a
// source-located violation, and a pin naming no function in the module at all
// is an operational error (misspelling), not a silent pass.
package perfcheck

import (
	"bufio"
	"fmt"
	"go/ast"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"dcsketch/internal/analysis"
	"dcsketch/internal/perfdiag"
)

// Contract identifies one compiler-verified performance contract.
type Contract int

const (
	// Allocfree requires the span free of heap-escape decisions.
	Allocfree Contract = iota
	// BCE requires the span free of residual bounds checks.
	BCE
	// Inline requires a positive inlining decision for the function.
	Inline

	numContracts = 3
)

// String names the contract as it appears in pins files and directives.
func (c Contract) String() string {
	switch c {
	case Allocfree:
		return "allocfree"
	case BCE:
		return "bce"
	case Inline:
		return "inline"
	}
	return "unknown"
}

// suppression is the same-line acknowledgment directive for the contract
// ("" when the contract has none).
func (c Contract) suppression() string {
	switch c {
	case Allocfree:
		return "allocok"
	case BCE:
		return "bceok"
	}
	return ""
}

// ParseContract resolves a pins-file contract word.
func ParseContract(s string) (Contract, bool) {
	switch s {
	case "allocfree":
		return Allocfree, true
	case "bce":
		return BCE, true
	case "inline":
		return Inline, true
	}
	return 0, false
}

// Span is the source extent of one annotated function under one contract. A
// function carrying several directives yields one Span per contract.
type Span struct {
	Pkg      string // import path
	Name     string // receiver-qualified, e.g. (*Sketch).updateKernel
	File     string // absolute path
	Start    int    // func keyword line (doc comment excluded)
	End      int    // closing-brace line, inclusive
	Contract Contract
}

// Decl locates one function declaration in the module, annotated or not.
// Used to distinguish a pin on a de-annotated function (violation) from a
// pin on a misspelled symbol (operational error).
type Decl struct {
	File string
	Line int
}

// CollectSpans walks the module's function declarations and returns the
// contract spans for every //lint:allocfree, //lint:bce and //lint:inline
// doc directive, plus the location of every declared function keyed by
// "pkgpath:qualifiedname".
func CollectSpans(pkgs []*analysis.Package) ([]Span, map[string]Decl) {
	var spans []Span
	decls := make(map[string]Decl)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				start := pkg.Fset.Position(fn.Pos()) // excludes the doc comment
				end := pkg.Fset.Position(fn.End())
				name := qualifiedName(fn)
				decls[pkg.Path+":"+name] = Decl{File: start.Filename, Line: start.Line}
				for c := Contract(0); c < numContracts; c++ {
					if _, annotated := analysis.DocDirective(fn.Doc, c.String()); !annotated {
						continue
					}
					spans = append(spans, Span{
						Pkg:      pkg.Path,
						Name:     name,
						File:     start.Filename,
						Start:    start.Line,
						End:      end.Line,
						Contract: c,
					})
				}
			}
		}
	}
	return spans, decls
}

// qualifiedName renders a FuncDecl as name, (Recv).name or (*Recv).name.
func qualifiedName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	ptr := false
	if st, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = st.X
	}
	base := "?"
	switch t := t.(type) {
	case *ast.Ident:
		base = t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			base = id.Name
		}
	}
	if ptr {
		return "(*" + base + ")." + fn.Name.Name
	}
	return "(" + base + ")." + fn.Name.Name
}

// Pin is one coverage requirement: the named function must carry the
// contract's annotation.
type Pin struct {
	Contract Contract
	Pkg      string // import path
	Name     string // qualified function name
	Source   string // "file:line" of the pin, for error messages
}

// Key returns the decls-map key for the pinned symbol.
func (p Pin) Key() string { return p.Pkg + ":" + p.Name }

// ParsePins reads a pins file: one "<contract> <pkgpath>:<symbol>" per line,
// with '#' comments and blank lines skipped. Methods are written
// (*Recv).name exactly as the annotations render them. Malformed lines and
// unknown contract words are errors carrying name:line.
func ParsePins(r io.Reader, name string) ([]Pin, error) {
	var pins []Pin
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed pin %q (want \"<contract> <pkgpath>:<symbol>\")", name, n, line)
		}
		c, ok := ParseContract(word)
		if !ok {
			return nil, fmt.Errorf("%s:%d: unknown contract %q (want allocfree, bce or inline)", name, n, word)
		}
		rest = strings.TrimSpace(rest)
		pkg, sym, ok := strings.Cut(rest, ":")
		if !ok || pkg == "" || sym == "" {
			return nil, fmt.Errorf("%s:%d: malformed symbol %q (want <pkgpath>:<symbol>)", name, n, rest)
		}
		pins = append(pins, Pin{Contract: c, Pkg: pkg, Name: sym, Source: fmt.Sprintf("%s:%d", name, n)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return pins, nil
}

// UnknownPins returns the pins naming no declared function in the module —
// misspellings that must be operational errors, never silent passes.
func UnknownPins(pins []Pin, decls map[string]Decl) []Pin {
	var unknown []Pin
	for _, p := range pins {
		if _, ok := decls[p.Key()]; !ok {
			unknown = append(unknown, p)
		}
	}
	return unknown
}

// Finding is one contract violation (or a live suppression, flagged for the
// inventory rather than counted against the gate).
type Finding struct {
	File       string
	Line       int
	Col        int
	Contract   Contract
	Func       string // annotated function, or pinned symbol for pin findings
	Msg        string
	Suppressed bool
}

// LineReader returns the text of one 1-based source line ("" when
// unavailable). The file is the span's absolute path.
type LineReader func(file string, line int) string

// Evaluate checks the compiler diagnostics against the contract spans and
// pins. Returned findings are sorted by position; suppressed escape/bounds
// findings are included with Suppressed=true so callers can inventory them,
// and do not count as violations.
func Evaluate(spans []Span, pins []Pin, decls map[string]Decl, diags []perfdiag.Diag, src LineReader) []Finding {
	var out []Finding

	// Pins on declared-but-unannotated functions: the proof surface shrank.
	have := make(map[string]bool, len(spans))
	for _, sp := range spans {
		have[sp.Contract.String()+"\x00"+sp.Pkg+":"+sp.Name] = true
	}
	for _, p := range pins {
		if have[p.Contract.String()+"\x00"+p.Key()] {
			continue
		}
		d, ok := decls[p.Key()]
		if !ok {
			continue // UnknownPins handles misspellings as hard errors
		}
		out = append(out, Finding{
			File: d.File, Line: d.Line, Col: 1, Contract: p.Contract, Func: p.Key(),
			Msg: fmt.Sprintf("function is pinned in %s but not annotated //lint:%s", p.Source, p.Contract),
		})
	}

	// Escape and bounds-check diagnostics inside matching spans. -m -m can
	// repeat a diagnostic at one position (with and without the flow-trace
	// suffix) and check_bce repeats sites reached through inlining; report
	// each (kind, position) once. Lines acknowledged by the contract's
	// same-line suppression stay in the output flagged Suppressed, and are
	// remembered so the stale-suppression sweep below knows the comment is
	// live.
	seen := map[string]bool{}
	liveSuppression := map[string]bool{} // "file:line" with a compiler-confirmed suppression
	for _, d := range diags {
		var c Contract
		switch d.Kind {
		case perfdiag.KindEscape:
			c = Allocfree
		case perfdiag.KindBoundsCheck:
			c = BCE
		default:
			continue
		}
		sp := matchSpan(spans, c, d)
		if sp == nil {
			continue
		}
		key := fmt.Sprintf("%d\x00%s:%d:%d", c, d.File, d.Line, d.Col)
		if seen[key] {
			continue
		}
		seen[key] = true
		f := Finding{File: sp.File, Line: d.Line, Col: d.Col, Contract: c, Func: sp.Name,
			Msg: describe(c, d.Msg)}
		if strings.Contains(src(sp.File, d.Line), "//lint:"+c.suppression()) {
			f.Suppressed = true
			liveSuppression[fmt.Sprintf("%d\x00%s:%d", c, sp.File, d.Line)] = true
		}
		out = append(out, f)
	}

	// Stale suppressions: a bceok inside a span on a line the compiler no
	// longer flags is a rotted acknowledgment — the reviewed bounds check is
	// gone and the comment must go with it. Only bceok is swept: allocok
	// also suppresses the sketchlint allocfree analyzer's AST diagnostics
	// (map growth, append), which never appear in -m output, so perfcheck
	// cannot decide staleness for it.
	staleSeen := map[string]bool{}
	for _, sp := range spans {
		if sp.Contract != BCE {
			continue
		}
		supp := sp.Contract.suppression()
		for line := sp.Start; line <= sp.End; line++ {
			if !strings.Contains(src(sp.File, line), "//lint:"+supp) {
				continue
			}
			key := fmt.Sprintf("%d\x00%s:%d", sp.Contract, sp.File, line)
			if liveSuppression[key] || staleSeen[key] {
				continue
			}
			staleSeen[key] = true
			out = append(out, Finding{
				File: sp.File, Line: line, Col: 1, Contract: sp.Contract, Func: sp.Name,
				Msg: fmt.Sprintf("stale //lint:%s: the compiler reports no %s on this line", supp, noun(sp.Contract)),
			})
		}
	}

	// Inline pins: every //lint:inline span needs a positive decision at its
	// declaration line.
	for _, sp := range spans {
		if sp.Contract != Inline {
			continue
		}
		decided := false
		for _, d := range diags {
			if d.Line != sp.Start || !fileMatches(sp.File, d.File) {
				continue
			}
			switch d.Kind {
			case perfdiag.KindCanInline:
				decided = true
			case perfdiag.KindCannotInline:
				decided = true
				out = append(out, Finding{
					File: sp.File, Line: d.Line, Col: d.Col, Contract: Inline, Func: sp.Name,
					Msg: d.Msg,
				})
			}
			if decided {
				break
			}
		}
		if !decided {
			out = append(out, Finding{
				File: sp.File, Line: sp.Start, Col: 1, Contract: Inline, Func: sp.Name,
				Msg: "no inlining decision recorded for //lint:inline function (was its package compiled?)",
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Contract < b.Contract
	})
	return out
}

// describe renders the violation message for an in-span compiler diagnostic.
func describe(c Contract, msg string) string {
	return fmt.Sprintf("%s in //lint:%s function: %s", noun(c), c, msg)
}

// noun names what the contract forbids, for messages.
func noun(c Contract) string {
	if c == BCE {
		return "residual bounds check"
	}
	return "heap allocation"
}

// matchSpan finds the annotated function span of the given contract whose
// line range contains the diagnostic. Compiler paths are package-relative or
// absolute depending on invocation; spans hold absolute paths, so match on
// path suffix.
func matchSpan(spans []Span, c Contract, d perfdiag.Diag) *Span {
	for i := range spans {
		sp := &spans[i]
		if sp.Contract != c || d.Line < sp.Start || d.Line > sp.End {
			continue
		}
		if fileMatches(sp.File, d.File) {
			return sp
		}
	}
	return nil
}

// fileMatches reports whether a compiler-printed path refers to the span's
// absolute file. The compiler emits absolute, module-relative or ./-prefixed
// paths depending on how the build names the package; spans hold absolute
// paths, so match on path suffix.
func fileMatches(spanFile, diagFile string) bool {
	diagFile = strings.TrimPrefix(filepath.ToSlash(diagFile), "./")
	return spanFile == diagFile || strings.HasSuffix(spanFile, "/"+diagFile)
}

// SpanPackages returns the sorted set of import paths containing spans.
func SpanPackages(spans []Span) []string {
	set := map[string]bool{}
	for _, sp := range spans {
		set[sp.Pkg] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
