package perfcheck

import (
	"strings"
	"testing"

	"dcsketch/internal/perfdiag"
)

func TestParsePins(t *testing.T) {
	in := `# perf contract pins
allocfree dcsketch/internal/dcs:(*Sketch).applySig

bce dcsketch/internal/vec:addInt64LanesGeneric
inline dcsketch/internal/telemetry:(*Counter).Inc
`
	pins, err := ParsePins(strings.NewReader(in), "pins.txt")
	if err != nil {
		t.Fatalf("ParsePins: %v", err)
	}
	want := []Pin{
		{Contract: Allocfree, Pkg: "dcsketch/internal/dcs", Name: "(*Sketch).applySig", Source: "pins.txt:2"},
		{Contract: BCE, Pkg: "dcsketch/internal/vec", Name: "addInt64LanesGeneric", Source: "pins.txt:4"},
		{Contract: Inline, Pkg: "dcsketch/internal/telemetry", Name: "(*Counter).Inc", Source: "pins.txt:5"},
	}
	if len(pins) != len(want) {
		t.Fatalf("got %d pins, want %d: %+v", len(pins), len(want), pins)
	}
	for i := range want {
		if pins[i] != want[i] {
			t.Errorf("pin[%d] = %+v, want %+v", i, pins[i], want[i])
		}
	}
}

func TestParsePinsRejectsMalformed(t *testing.T) {
	cases := []struct{ in, wantErr string }{
		{"allocfree\n", "malformed pin"},
		{"escape pkg:f\n", `unknown contract "escape"`},
		{"bce nosymbol\n", "malformed symbol"},
		{"bce :f\n", "malformed symbol"},
		{"inline pkg:\n", "malformed symbol"},
	}
	for _, c := range cases {
		if _, err := ParsePins(strings.NewReader(c.in), "p.txt"); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParsePins(%q) err = %v, want containing %q", c.in, err, c.wantErr)
		} else if !strings.Contains(err.Error(), "p.txt:1") {
			t.Errorf("ParsePins(%q) err = %v, want file:line prefix", c.in, err)
		}
	}
}

func TestParseContract(t *testing.T) {
	for _, c := range []Contract{Allocfree, BCE, Inline} {
		got, ok := ParseContract(c.String())
		if !ok || got != c {
			t.Errorf("ParseContract(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseContract("asm"); ok {
		t.Error("ParseContract accepted an unknown word")
	}
}

func TestUnknownPins(t *testing.T) {
	decls := map[string]Decl{"pkg:F": {File: "f.go", Line: 3}}
	pins := []Pin{
		{Contract: BCE, Pkg: "pkg", Name: "F"},
		{Contract: BCE, Pkg: "pkg", Name: "Missp", Source: "p.txt:7"},
	}
	unknown := UnknownPins(pins, decls)
	if len(unknown) != 1 || unknown[0].Name != "Missp" {
		t.Fatalf("UnknownPins = %+v, want the misspelled pin only", unknown)
	}
}

// mapReader backs Evaluate's suppression probes with an in-memory file.
func mapReader(lines map[string]map[int]string) LineReader {
	return func(file string, line int) string { return lines[file][line] }
}

func TestEvaluateEscapeAndSuppression(t *testing.T) {
	spans := []Span{{Pkg: "p", Name: "F", File: "/abs/f.go", Start: 10, End: 20, Contract: Allocfree}}
	diags := []perfdiag.Diag{
		{File: "f.go", Line: 12, Col: 3, Kind: perfdiag.KindEscape, Msg: "moved to heap: v"},
		{File: "f.go", Line: 12, Col: 3, Kind: perfdiag.KindEscape, Msg: "moved to heap: v:"}, // -m -m repeat
		{File: "f.go", Line: 15, Col: 3, Kind: perfdiag.KindEscape, Msg: "x escapes to heap"},
		{File: "f.go", Line: 25, Col: 1, Kind: perfdiag.KindEscape, Msg: "outside the span"},
	}
	src := mapReader(map[string]map[int]string{"/abs/f.go": {15: "\tx := y //lint:allocok reviewed"}})
	got := Evaluate(spans, nil, nil, diags, src)
	if len(got) != 2 {
		t.Fatalf("Evaluate = %+v, want 2 findings (dedup + span filter)", got)
	}
	if got[0].Line != 12 || got[0].Suppressed || got[0].Contract != Allocfree {
		t.Errorf("finding 0 = %+v, want unsuppressed escape at line 12", got[0])
	}
	if got[1].Line != 15 || !got[1].Suppressed {
		t.Errorf("finding 1 = %+v, want suppressed escape at line 15", got[1])
	}
}

func TestEvaluateBCEDedupAndStale(t *testing.T) {
	spans := []Span{{Pkg: "p", Name: "F", File: "/abs/f.go", Start: 10, End: 20, Contract: BCE}}
	diags := []perfdiag.Diag{
		{File: "f.go", Line: 11, Col: 9, Kind: perfdiag.KindBoundsCheck, Msg: "Found IsInBounds"},
		{File: "f.go", Line: 11, Col: 9, Kind: perfdiag.KindBoundsCheck, Msg: "Found IsInBounds"},
		{File: "/usr/local/go/src/slices/sort.go", Line: 12, Col: 1, Kind: perfdiag.KindBoundsCheck, Msg: "Found IsInBounds"},
	}
	src := mapReader(map[string]map[int]string{"/abs/f.go": {
		11: "\t_ = xs[i]",
		14: "\t_ = xs[j] //lint:bceok stale now",
	}})
	got := Evaluate(spans, nil, nil, diags, src)
	if len(got) != 2 {
		t.Fatalf("Evaluate = %+v, want residual check + stale suppression", got)
	}
	if got[0].Line != 11 || got[0].Suppressed {
		t.Errorf("finding 0 = %+v, want unsuppressed bounds check at 11", got[0])
	}
	if got[1].Line != 14 || !strings.Contains(got[1].Msg, "stale //lint:bceok") {
		t.Errorf("finding 1 = %+v, want stale bceok at 14", got[1])
	}
}

func TestEvaluateLiveSuppressionIsNotStale(t *testing.T) {
	spans := []Span{{Pkg: "p", Name: "F", File: "/abs/f.go", Start: 10, End: 20, Contract: BCE}}
	diags := []perfdiag.Diag{
		{File: "f.go", Line: 11, Col: 9, Kind: perfdiag.KindBoundsCheck, Msg: "Found IsInBounds"},
	}
	src := mapReader(map[string]map[int]string{"/abs/f.go": {11: "\t_ = xs[i] //lint:bceok data-dependent"}})
	got := Evaluate(spans, nil, nil, diags, src)
	if len(got) != 1 || !got[0].Suppressed {
		t.Fatalf("Evaluate = %+v, want exactly one suppressed finding", got)
	}
}

func TestEvaluateInlineDecisions(t *testing.T) {
	spans := []Span{
		{Pkg: "p", Name: "Good", File: "/abs/f.go", Start: 5, End: 8, Contract: Inline},
		{Pkg: "p", Name: "Bad", File: "/abs/f.go", Start: 12, End: 30, Contract: Inline},
		{Pkg: "p", Name: "Silent", File: "/abs/f.go", Start: 40, End: 44, Contract: Inline},
	}
	diags := []perfdiag.Diag{
		{File: "f.go", Line: 5, Col: 6, Kind: perfdiag.KindCanInline, Name: "Good", Msg: "can inline Good"},
		{File: "f.go", Line: 12, Col: 6, Kind: perfdiag.KindCannotInline, Name: "Bad",
			Msg: "cannot inline Bad: function too complex: cost 203 exceeds budget 80"},
	}
	got := Evaluate(spans, nil, nil, diags, mapReader(nil))
	if len(got) != 2 {
		t.Fatalf("Evaluate = %+v, want cannot-inline + no-decision findings", got)
	}
	if got[0].Func != "Bad" || !strings.Contains(got[0].Msg, "cost 203") {
		t.Errorf("finding 0 = %+v, want the compiler's cannot-inline reason", got[0])
	}
	if got[1].Func != "Silent" || !strings.Contains(got[1].Msg, "no inlining decision") {
		t.Errorf("finding 1 = %+v, want missing-decision violation", got[1])
	}
}

func TestEvaluatePinOnDeannotatedFunction(t *testing.T) {
	decls := map[string]Decl{"p:F": {File: "/abs/f.go", Line: 3}}
	pins := []Pin{{Contract: Inline, Pkg: "p", Name: "F", Source: "pins.txt:9"}}
	got := Evaluate(nil, pins, decls, nil, mapReader(nil))
	if len(got) != 1 {
		t.Fatalf("Evaluate = %+v, want one pin violation", got)
	}
	f := got[0]
	if f.File != "/abs/f.go" || f.Line != 3 || f.Contract != Inline ||
		!strings.Contains(f.Msg, "pinned in pins.txt:9") || !strings.Contains(f.Msg, "//lint:inline") {
		t.Errorf("pin violation = %+v, want source-located message naming the pin", f)
	}
}

func TestEvaluatePinSatisfiedBySpan(t *testing.T) {
	spans := []Span{{Pkg: "p", Name: "F", File: "/abs/f.go", Start: 5, End: 8, Contract: BCE}}
	decls := map[string]Decl{"p:F": {File: "/abs/f.go", Line: 5}}
	pins := []Pin{
		{Contract: BCE, Pkg: "p", Name: "F"},
		{Contract: Inline, Pkg: "p", Name: "F", Source: "pins.txt:2"}, // different contract: still missing
	}
	got := Evaluate(spans, pins, decls, nil, mapReader(nil))
	if len(got) != 1 || got[0].Contract != Inline {
		t.Fatalf("Evaluate = %+v, want only the inline pin to fail", got)
	}
}

func TestSpanPackages(t *testing.T) {
	spans := []Span{
		{Pkg: "b", Contract: BCE}, {Pkg: "a", Contract: Inline}, {Pkg: "b", Contract: Allocfree},
	}
	got := SpanPackages(spans)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SpanPackages = %v, want [a b]", got)
	}
}

func TestGcflags(t *testing.T) {
	all := []Span{{Contract: Allocfree}, {Contract: BCE}, {Contract: Inline}}
	if got := gcflags(all); got != "-m -m -d=ssa/check_bce/debug=1" {
		t.Errorf("gcflags(all) = %q", got)
	}
	if got := gcflags([]Span{{Contract: Allocfree}}); got != "-m -m" {
		t.Errorf("gcflags(allocfree) = %q", got)
	}
	if got := gcflags([]Span{{Contract: BCE}}); got != "-d=ssa/check_bce/debug=1" {
		t.Errorf("gcflags(bce) = %q", got)
	}
}
