module fixtureclean

go 1.24
