// Package clean holds contract-satisfying functions for the perfcheck
// end-to-end test: every annotation below is provable by the compiler.
package clean

// Sum is a bounds-check-free, inlinable reduction.
//
//lint:bce i < len(xs) proves every access
//lint:inline pinned hot helper
func Sum(xs []int64) int64 {
	var t int64
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}

// Fill writes v to every element without allocating.
//
//lint:allocfree fixture hot path
func Fill(dst []int64, v int64) {
	for i := range dst {
		dst[i] = v
	}
}

// Helper is deliberately unannotated; the pin tests point at it to prove a
// pinned-but-deannotated function fails the gate with a located diagnostic.
func Helper(x int64) int64 { return x + 1 }
