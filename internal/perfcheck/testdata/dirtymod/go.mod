module fixturedirty

go 1.24
