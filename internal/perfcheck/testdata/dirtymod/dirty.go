// Package dirty seeds one violation of every perfcheck contract, plus a live
// and a stale suppression, for the end-to-end test.
package dirty

// Box leaks its local through the return — an unacknowledged escape.
//
//lint:allocfree seeded violation
func Box(x int64) *int64 {
	v := x
	return &v
}

// BoxOK carries a reviewed, acknowledged escape.
//
//lint:allocfree live suppression case
func BoxOK(x int64) *int64 {
	v := x //lint:allocok reviewed boxing for the fixture
	return &v
}

// At indexes without a provable bound — a residual check.
//
//lint:bce seeded violation
func At(xs []int64, i int) int64 {
	return xs[i]
}

// AtOK acknowledges its data-dependent residual check.
//
//lint:bce live suppression case
func AtOK(xs []int64, i int) int64 {
	return xs[i] //lint:bceok data-dependent index in fixture
}

// Stale carries a bceok on a line whose bounds check the compiler
// eliminates (the len guard proves the index), so the acknowledgment is
// rotted. allocok comments are exempt from the stale sweep — they may be
// suppressing AST-analyzer diagnostics invisible to the compiler — so the
// fixture uses the bce contract here.
//
//lint:bce stale suppression case
func Stale(dst []int64) {
	if len(dst) > 0 {
		dst[0] = 1 //lint:bceok no residual check actually survives here
	}
}

// Recurse cannot be inlined (recursion), violating its pin.
//
//lint:inline seeded violation
func Recurse(n int) int {
	if n <= 0 {
		return 0
	}
	return n + Recurse(n-1)
}
