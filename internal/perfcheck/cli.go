package perfcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"dcsketch/internal/analysis"
	"dcsketch/internal/perfdiag"
)

// Options configures one perfcheck run (shared by cmd/perfcheck and the
// cmd/escapecheck compatibility wrapper).
type Options struct {
	// Dir is the directory whose enclosing module is checked ("" = cwd).
	Dir string
	// Pins are the coverage requirements (from -require-file / -require).
	Pins []Pin
	// Contracts selects which contracts run (nil/empty = all three).
	Contracts map[Contract]bool
	// JSON switches output to one JSON object per finding plus a summary
	// trailer, matching the sketchlint inventory conventions.
	JSON bool
	// Tool is the name used in messages ("perfcheck" when empty).
	Tool string
}

// jsonFinding mirrors Finding for the -json stream.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Contract   string `json:"contract"`
	Func       string `json:"func"`
	Msg        string `json:"msg"`
	Suppressed bool   `json:"suppressed"`
}

// jsonSummary is the trailer line, keyed "summary":true like sketchlint's.
type jsonSummary struct {
	Summary    bool   `json:"summary"`
	Tool       string `json:"tool"`
	Packages   int    `json:"packages"`
	Spans      int    `json:"spans"`
	Findings   int    `json:"findings"`
	Suppressed int    `json:"suppressed"`
	ElapsedMS  int64  `json:"elapsed_ms"`
}

// Main runs the contract checks and writes the report. Exit code semantics
// follow the house tools: 0 clean, 1 violations, 2 operational errors (the
// error return).
func Main(opts Options, w io.Writer) (int, error) {
	start := time.Now()
	tool := opts.Tool
	if tool == "" {
		tool = "perfcheck"
	}
	dir := opts.Dir
	if dir == "" {
		cwd, err := os.Getwd()
		if err != nil {
			return 2, err
		}
		dir = cwd
	}
	root, err := analysis.FindModuleRoot(dir)
	if err != nil {
		return 2, err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return 2, err
	}
	spans, decls := CollectSpans(pkgs)
	spans = selectContracts(spans, opts.Contracts)
	pins := selectPins(opts.Pins, opts.Contracts)

	if unknown := UnknownPins(pins, decls); len(unknown) > 0 {
		var b strings.Builder
		for i, p := range unknown {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s pins unknown symbol %s:%s (no such function in the module)", p.Source, p.Pkg, p.Name)
		}
		return 2, fmt.Errorf("%s", b.String())
	}

	if len(spans) == 0 && len(pins) == 0 {
		fmt.Fprintf(w, "%s: no contract annotations found; nothing to check\n", tool)
		return 0, nil
	}

	var diags []perfdiag.Diag
	if pkgPaths := SpanPackages(spans); len(pkgPaths) > 0 {
		out, err := compileDiagnostics(root, gcflags(spans), pkgPaths)
		if err != nil {
			return 2, err
		}
		diags = perfdiag.Parse(strings.NewReader(out))
	}

	findings := Evaluate(spans, pins, decls, diags, fileLineReader())

	violations, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			violations++
		}
		if opts.JSON {
			line, _ := json.Marshal(jsonFinding{
				File: f.File, Line: f.Line, Col: f.Col, Contract: f.Contract.String(),
				Func: f.Func, Msg: f.Msg, Suppressed: f.Suppressed,
			})
			fmt.Fprintln(w, string(line))
			continue
		}
		if f.Suppressed {
			continue // plain mode reports only gate-relevant findings
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s: %s\n", f.File, f.Line, f.Col, f.Contract, f.Func, f.Msg)
	}

	if opts.JSON {
		line, _ := json.Marshal(jsonSummary{
			Summary: true, Tool: tool, Packages: len(SpanPackages(spans)), Spans: len(spans),
			Findings: violations, Suppressed: suppressed, ElapsedMS: time.Since(start).Milliseconds(),
		})
		fmt.Fprintln(w, string(line))
	} else if violations > 0 {
		fmt.Fprintf(w, "%s: %d violation(s) across %d annotated span(s)\n", tool, violations, len(spans))
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

// selectContracts filters spans to the selected contracts (nil = all).
func selectContracts(spans []Span, sel map[Contract]bool) []Span {
	if len(sel) == 0 {
		return spans
	}
	out := spans[:0:0]
	for _, sp := range spans {
		if sel[sp.Contract] {
			out = append(out, sp)
		}
	}
	return out
}

// selectPins filters pins to the selected contracts (nil = all).
func selectPins(pins []Pin, sel map[Contract]bool) []Pin {
	if len(sel) == 0 {
		return pins
	}
	out := pins[:0:0]
	for _, p := range pins {
		if sel[p.Contract] {
			out = append(out, p)
		}
	}
	return out
}

// gcflags returns the compiler flags the selected spans need: -m -m for
// escape and inlining decisions, the check_bce debug pass for bounds checks.
// One combined invocation serves all contracts and shares its build cache
// with repeated runs (diagnostics are replayed from the cache).
func gcflags(spans []Span) string {
	needMM, needBCE := false, false
	for _, sp := range spans {
		switch sp.Contract {
		case Allocfree, Inline:
			needMM = true
		case BCE:
			needBCE = true
		}
	}
	var parts []string
	if needMM {
		parts = append(parts, "-m", "-m")
	}
	if needBCE {
		parts = append(parts, "-d=ssa/check_bce/debug=1")
	}
	return strings.Join(parts, " ")
}

// compileDiagnostics builds the given packages with the diagnostic flags and
// returns the compiler's combined output. The -gcflags value applies to the
// packages named on the command line.
func compileDiagnostics(root, flags string, pkgPaths []string) (string, error) {
	args := append([]string{"build", "-gcflags=" + flags}, pkgPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), nil
}

// fileLineReader returns a LineReader over real files, caching each file's
// lines across the many per-line suppression probes Evaluate makes.
func fileLineReader() LineReader {
	cache := map[string][]string{}
	return func(file string, line int) string {
		lines, ok := cache[file]
		if !ok {
			data, err := os.ReadFile(file)
			if err != nil {
				cache[file] = nil
				return ""
			}
			lines = strings.Split(string(data), "\n")
			cache[file] = lines
		}
		if line < 1 || line > len(lines) {
			return ""
		}
		return lines[line-1]
	}
}
