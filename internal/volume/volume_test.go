package volume

import (
	"testing"

	"dcsketch/internal/hashing"
	"dcsketch/internal/stream"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(4, 256, 1)
	truth := make(map[uint32]int64)
	rng := hashing.NewSplitMix64(2)
	for i := 0; i < 50000; i++ {
		dst := uint32(rng.Next() % 2000)
		cm.Add(dst, 1)
		truth[dst]++
	}
	for dst, want := range truth {
		if got := cm.Estimate(dst); got < want {
			t.Fatalf("dest %d: estimate %d < true %d (Count-Min must never underestimate)", dst, got, want)
		}
	}
}

func TestCountMinAccurateOnHeavyHitter(t *testing.T) {
	cm := NewCountMin(4, 1024, 3)
	cm.Add(7, 100000)
	rng := hashing.NewSplitMix64(4)
	for i := 0; i < 20000; i++ {
		cm.Add(uint32(rng.Next()%5000), 1)
	}
	got := cm.Estimate(7)
	if got < 100000 || got > 101000 {
		t.Fatalf("heavy hitter estimate %d, want ~100000", got)
	}
}

func TestCountMinClampsBadParams(t *testing.T) {
	cm := NewCountMin(0, 0, 1)
	cm.Add(1, 1)
	if cm.Estimate(1) != 1 {
		t.Fatal("degenerate 1x1 sketch must still count")
	}
}

func TestHeavyHittersFindTopDest(t *testing.T) {
	hh := NewHeavyHitters(4, 1024, 100, 5)
	rng := hashing.NewSplitMix64(6)
	for i := 0; i < 30000; i++ {
		hh.Update(uint32(rng.Next()), uint32(rng.Next()%1000), 1)
	}
	for i := 0; i < 5000; i++ {
		hh.Update(uint32(i), 7777, 1)
	}
	top := hh.TopK(1)
	if len(top) != 1 || top[0].Dest != 7777 {
		t.Fatalf("TopK = %+v, want dest 7777", top)
	}
	if top[0].Volume < 5000 {
		t.Fatalf("volume estimate %d < 5000", top[0].Volume)
	}
	if hh.Packets() != 35000 {
		t.Fatalf("Packets = %d, want 35000", hh.Packets())
	}
}

func TestHeavyHittersCapacityBounded(t *testing.T) {
	hh := NewHeavyHitters(3, 256, 10, 7)
	for d := uint32(0); d < 1000; d++ {
		hh.Update(1, d, 1)
	}
	if got := len(hh.TopK(1000)); got > 10 {
		t.Fatalf("candidate set %d exceeds capacity 10", got)
	}
}

func TestVolumeDetectorBlindToDeletes(t *testing.T) {
	// The defining weakness: a flash crowd whose handshakes complete
	// produces MORE volume (SYN + ACK packets), not less. The volume
	// detector still ranks the crowd first, unlike the distinct-count
	// sketch.
	hh := NewHeavyHitters(4, 512, 100, 8)
	crowd, err := (stream.FlashCrowd{Dest: 80, Clients: 3000, CompletionRate: 1.0, Seed: 9}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 1000, Seed: 10}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stream.Interleave(11, crowd, attack) {
		hh.Update(u.Src, u.Dst, int64(u.Delta))
	}
	top := hh.TopK(1)
	if len(top) != 1 || top[0].Dest != 80 {
		t.Fatalf("volume top-1 = %+v; the crowd (6000 pkts) must outrank the flood (1000 pkts)", top)
	}
}

func TestSampleAndHoldCatchesElephants(t *testing.T) {
	sh := NewSampleAndHold(0.01, 1000, 12)
	// Elephant: 50k packets. Mice: 1 packet each.
	for i := 0; i < 50000; i++ {
		sh.Update(uint32(i), 1, 1)
	}
	for d := uint32(100); d < 1100; d++ {
		sh.Update(1, d, 1)
	}
	top := sh.TopK(1)
	if len(top) == 0 || top[0].Dest != 1 {
		t.Fatalf("TopK = %+v, want the elephant dest 1", top)
	}
	if sh.Packets() != 51000 {
		t.Fatalf("Packets = %d", sh.Packets())
	}
}

func TestSampleAndHoldMissesLowVolumeFlood(t *testing.T) {
	// A distributed low-rate SYN flood: 2000 distinct sources send ONE
	// SYN each to the victim... but to sample-and-hold per destination,
	// that's 2000 packets — detectable. The evasion case is per-FLOW
	// accounting: model it by spreading the attack across many victims
	// (e.g. a /24), each receiving few packets: sampling misses most.
	sh := NewSampleAndHold(0.001, 100, 13)
	for v := uint32(0); v < 256; v++ {
		for z := uint32(0); z < 8; z++ {
			sh.Update(10000+z, 0x0a000000+v, 1)
		}
	}
	if held := sh.Held(); held > 20 {
		t.Fatalf("low-rate flood held %d destinations; expected sampling to miss most", held)
	}
}

func TestSampleAndHoldBounds(t *testing.T) {
	sh := NewSampleAndHold(1.0, 5, 14)
	for d := uint32(0); d < 100; d++ {
		sh.Update(1, d, 1)
	}
	if sh.Held() != 5 {
		t.Fatalf("Held = %d, want capped at 5", sh.Held())
	}
	clamped := NewSampleAndHold(7.0, 0, 15)
	clamped.Update(1, 1, 1)
	if clamped.Held() != 1 {
		t.Fatal("clamped tracker must hold the first sampled dest")
	}
}

func TestZeroDeltaIgnored(t *testing.T) {
	hh := NewHeavyHitters(3, 64, 10, 16)
	hh.Update(1, 2, 0)
	if hh.Packets() != 0 {
		t.Fatal("zero-delta update counted as a packet")
	}
	sh := NewSampleAndHold(1, 10, 17)
	sh.Update(1, 2, 0)
	if sh.Packets() != 0 {
		t.Fatal("zero-delta update counted as a packet")
	}
}
