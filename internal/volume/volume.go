// Package volume implements the volume-based detection baselines the paper
// argues against (§1): trackers that rank destinations by *packet volume*
// rather than by distinct half-open sources. Two classic small-space
// detectors are provided — a Count-Min sketch with a candidate heap, and
// Estan-Varghese-style sample-and-hold — so the evaluation can demonstrate
// the paper's robustness claims:
//
//   - a SYN flood of deliberately tiny flows ("none of the malicious
//     half-open TCP flows will be large since no data packets are ever
//     exchanged") can hide below volume thresholds while lighting up the
//     distinct-source metric; and
//   - a flash crowd of legitimate traffic saturates volume detectors even
//     though its handshakes complete, while the distinct-count sketch's
//     deletions clear it.
//
// Both baselines deliberately count every observed packet towards a
// destination's volume — including the ACKs that *remove* half-open state —
// because that is what a volume detector sees on the wire.
package volume

import (
	"sort"

	"dcsketch/internal/hashing"
	"dcsketch/internal/iheap"
)

// Estimate is a destination with its estimated packet volume.
type Estimate struct {
	Dest   uint32
	Volume int64
}

// CountMin is a Count-Min sketch over destination addresses.
type CountMin struct {
	rows, cols int
	counters   []int64
	hashes     []*hashing.Tab64
}

// NewCountMin builds a rows x cols Count-Min sketch. rows and cols must be
// positive; typical settings are rows 3-5 and cols in the hundreds.
func NewCountMin(rows, cols int, seed uint64) *CountMin {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	seeds := hashing.NewSplitMix64(seed)
	cm := &CountMin{
		rows:     rows,
		cols:     cols,
		counters: make([]int64, rows*cols),
		hashes:   make([]*hashing.Tab64, rows),
	}
	for i := range cm.hashes {
		cm.hashes[i] = hashing.NewTab64(seeds.Next())
	}
	return cm
}

// Add increases dest's volume by count.
func (cm *CountMin) Add(dest uint32, count int64) {
	for i, h := range cm.hashes {
		cm.counters[i*cm.cols+h.Bucket(uint64(dest), cm.cols)] += count
	}
}

// Estimate returns the (over-)estimate of dest's volume: the minimum over
// the rows.
func (cm *CountMin) Estimate(dest uint32) int64 {
	est := int64(-1)
	for i, h := range cm.hashes {
		c := cm.counters[i*cm.cols+h.Bucket(uint64(dest), cm.cols)]
		if est < 0 || c < est {
			est = c
		}
	}
	return est
}

// SizeBytes returns the counter-array footprint.
func (cm *CountMin) SizeBytes() int { return len(cm.counters) * 8 }

// HeavyHitters ranks destinations by packet volume using a Count-Min sketch
// plus a bounded candidate heap (the standard CM-heap top-k construction).
type HeavyHitters struct {
	cm       *CountMin
	heap     *iheap.Heap
	capacity int
	packets  int64
}

// NewHeavyHitters builds a volume heavy-hitter tracker that retains up to
// capacity candidate destinations.
func NewHeavyHitters(rows, cols, capacity int, seed uint64) *HeavyHitters {
	if capacity < 1 {
		capacity = 1
	}
	return &HeavyHitters{
		cm:       NewCountMin(rows, cols, seed),
		heap:     iheap.New(capacity),
		capacity: capacity,
	}
}

// Update observes one flow update as a packet on the wire. The sign of
// delta is irrelevant to a volume detector: an ACK is traffic too.
func (h *HeavyHitters) Update(src, dst uint32, delta int64) {
	if delta == 0 {
		return
	}
	h.packets++
	h.cm.Add(dst, 1)
	est := h.cm.Estimate(dst)
	if cur, ok := h.heap.Get(dst); ok {
		h.heap.Adjust(dst, est-cur)
		return
	}
	if h.heap.Len() < h.capacity {
		h.heap.Adjust(dst, est)
		return
	}
	// Replace the smallest candidate if the newcomer beats it.
	min := h.smallest()
	if est > min.Priority {
		h.heap.Remove(min.Key)
		h.heap.Adjust(dst, est)
	}
}

// smallest scans the candidate heap for its minimum entry. The heap is a
// max-heap and candidate sets are small (hundreds), so the linear scan on
// candidate replacement is acceptable.
func (h *HeavyHitters) smallest() iheap.Entry {
	entries := h.heap.Snapshot()
	min := entries[0]
	for _, e := range entries[1:] {
		if e.Priority < min.Priority || (e.Priority == min.Priority && e.Key > min.Key) {
			min = e
		}
	}
	return min
}

// TopK returns the k destinations with the largest estimated volumes.
func (h *HeavyHitters) TopK(k int) []Estimate {
	top := h.heap.TopK(k)
	out := make([]Estimate, len(top))
	for i, e := range top {
		out[i] = Estimate{Dest: e.Key, Volume: e.Priority}
	}
	return out
}

// Packets returns the total packets observed.
func (h *HeavyHitters) Packets() int64 { return h.packets }

// SampleAndHold implements Estan & Varghese's sample-and-hold: each packet
// is sampled with a fixed probability; once a destination is sampled it gets
// an exact counter ("held"). Large-volume flows are caught with high
// probability; small ones are missed — precisely why low-volume SYN floods
// evade it.
type SampleAndHold struct {
	prob    float64
	rng     *hashing.SplitMix64
	held    map[uint32]int64
	maxHeld int
	packets int64
}

// NewSampleAndHold builds a tracker sampling with probability prob and
// holding at most maxHeld destination counters.
func NewSampleAndHold(prob float64, maxHeld int, seed uint64) *SampleAndHold {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	if maxHeld < 1 {
		maxHeld = 1
	}
	return &SampleAndHold{
		prob:    prob,
		rng:     hashing.NewSplitMix64(seed),
		held:    make(map[uint32]int64),
		maxHeld: maxHeld,
	}
}

// Update observes one flow update as a packet.
func (s *SampleAndHold) Update(src, dst uint32, delta int64) {
	if delta == 0 {
		return
	}
	s.packets++
	if c, ok := s.held[dst]; ok {
		s.held[dst] = c + 1
		return
	}
	if len(s.held) >= s.maxHeld {
		return
	}
	if float64(s.rng.Next()>>11)/(1<<53) < s.prob {
		s.held[dst] = 1
	}
}

// TopK returns the k held destinations with the largest counters, sorted by
// descending volume then ascending address.
func (s *SampleAndHold) TopK(k int) []Estimate {
	out := make([]Estimate, 0, len(s.held))
	for dst, c := range s.held {
		out = append(out, Estimate{Dest: dst, Volume: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Volume != out[j].Volume {
			return out[i].Volume > out[j].Volume
		}
		return out[i].Dest < out[j].Dest
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Held returns the number of held counters.
func (s *SampleAndHold) Held() int { return len(s.held) }

// Packets returns the total packets observed.
func (s *SampleAndHold) Packets() int64 { return s.packets }
