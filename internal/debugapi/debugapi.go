// Package debugapi defines the JSON shapes and HTTP handlers of the daemon's
// debug surface that go beyond raw telemetry: the alert-evidence ledger
// (/debug/alerts, /debug/alerts/{id}). The shapes live here — not in the
// server — so offline readers (sketchtool explain) can decode a saved
// response without importing the serving stack.
package debugapi

import (
	"encoding/json"
	"net/http"
	"strings"

	"dcsketch/internal/monitor"
	"dcsketch/internal/trace"
)

// TopKEntry is one tracked destination inside an evidence snapshot.
type TopKEntry struct {
	Victim    string `json:"victim"`
	Dest      uint32 `json:"dest"`
	Estimated int64  `json:"estimated"`
}

// EvidenceRecord is the JSON form of one alert-evidence ledger entry: every
// input of the alert decision, snapshotted at onset.
type EvidenceRecord struct {
	ID          uint64  `json:"id"`
	Victim      string  `json:"victim"`
	Dest        uint32  `json:"dest"`
	Estimated   int64   `json:"estimated"`
	Baseline    float64 `json:"baseline"`
	BaselineVar float64 `json:"baseline_var"`
	Trigger     float64 `json:"trigger"`
	AtUpdate    uint64  `json:"at_update"`

	TopK []TopKEntry `json:"topk"`

	// Sketch health at onset: decode outcomes and sample shape, so a
	// reader can judge how trustworthy the estimate was.
	SketchQueries     uint64 `json:"sketch_queries"`
	DecodeSingletons  uint64 `json:"decode_singletons"`
	DecodeFailures    uint64 `json:"decode_failures"`
	ChecksumRejects   uint64 `json:"checksum_rejects"`
	StructuralRejects uint64 `json:"structural_rejects"`
	SampleLevel       int    `json:"sample_level"`
	SampleSize        int    `json:"sample_size"`
	LevelsNonEmpty    int    `json:"levels_nonempty"`
	Rebuilds          uint64 `json:"rebuilds"`

	CUSUMValue     float64 `json:"cusum_value"`
	CUSUMThreshold float64 `json:"cusum_threshold"`
	CUSUMAlarm     bool    `json:"cusum_alarm"`
	DecodeRejects  uint64  `json:"decode_rejects"`
}

// NewEvidenceRecord converts a ledger entry to its JSON form.
func NewEvidenceRecord(ev monitor.Evidence) EvidenceRecord {
	rec := EvidenceRecord{
		ID:          ev.ID,
		Victim:      trace.FormatIPv4(ev.Alert.Dest),
		Dest:        ev.Alert.Dest,
		Estimated:   ev.Alert.Estimated,
		Baseline:    ev.Alert.Baseline,
		BaselineVar: ev.BaselineVar,
		Trigger:     ev.Trigger,
		AtUpdate:    ev.Alert.AtUpdate,

		SketchQueries:     ev.Health.Query.Queries,
		DecodeSingletons:  ev.Health.Query.DecodeSingletons,
		DecodeFailures:    ev.Health.Query.DecodeFailures,
		ChecksumRejects:   ev.Health.Query.ChecksumRejects,
		StructuralRejects: ev.Health.Query.StructuralRejects,
		SampleLevel:       ev.Health.Query.SampleLevel,
		SampleSize:        ev.Health.Query.SampleSize,
		LevelsNonEmpty:    ev.Health.LevelsNonEmpty,
		Rebuilds:          ev.Health.Rebuilds,

		CUSUMValue:     ev.CUSUMValue,
		CUSUMThreshold: ev.CUSUMThreshold,
		CUSUMAlarm:     ev.CUSUMAlarm,
		DecodeRejects:  ev.DecodeRejects,
	}
	rec.TopK = make([]TopKEntry, len(ev.TopK))
	for i, e := range ev.TopK {
		rec.TopK[i] = TopKEntry{
			Victim:    trace.FormatIPv4(e.Dest),
			Dest:      e.Dest,
			Estimated: e.F,
		}
	}
	return rec
}

// AlertsHandler serves the alert-evidence ledger as JSON. Mounted at both
// /debug/alerts (the whole ledger, oldest first) and /debug/alerts/ (a
// single entry addressed as /debug/alerts/{id}); an unknown or malformed id
// is a 404.
func AlertsHandler(mon *monitor.Monitor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/debug/alerts")
		rest = strings.TrimPrefix(rest, "/")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if rest == "" {
			evs := mon.Evidence()
			out := make([]EvidenceRecord, len(evs))
			for i, ev := range evs {
				out[i] = NewEvidenceRecord(ev)
			}
			_ = enc.Encode(out)
			return
		}
		id, ok := parseID(rest)
		if !ok {
			http.Error(w, "bad evidence id", http.StatusNotFound)
			return
		}
		ev, ok := mon.EvidenceByID(id)
		if !ok {
			http.Error(w, "no such evidence entry (never raised, or evicted)", http.StatusNotFound)
			return
		}
		_ = enc.Encode(NewEvidenceRecord(ev))
	})
}

// parseID parses a decimal evidence id with overflow checking.
func parseID(s string) (uint64, bool) {
	if s == "" {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}
