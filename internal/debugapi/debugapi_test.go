package debugapi

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/monitor"
	"dcsketch/internal/stream"
)

func floodedMonitor(t *testing.T) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(monitor.Config{
		Sketch:        dcs.Config{Buckets: 256, Seed: 5},
		CheckInterval: 500,
		MinFrequency:  100,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetDecodeRejectProbe(func() uint64 { return 7 })
	attack, err := (stream.SYNFlood{Victim: 443, Zombies: 3000, Seed: 6}).Updates()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range attack {
		m.Update(u.Src, u.Dst, int64(u.Delta))
	}
	return m
}

func TestAlertsHandlerListAndByID(t *testing.T) {
	h := AlertsHandler(floodedMonitor(t))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("list status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("list content type %q", ct)
	}
	var list []EvidenceRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list) == 0 {
		t.Fatal("flood produced no evidence")
	}
	ev := list[0]
	if ev.Dest != 443 || ev.Victim != "0.0.1.187" {
		t.Fatalf("evidence victim = %q dest = %d, want dest 443", ev.Victim, ev.Dest)
	}
	if float64(ev.Estimated) < ev.Trigger {
		t.Fatalf("estimate %d below trigger %v", ev.Estimated, ev.Trigger)
	}
	if len(ev.TopK) == 0 || ev.SketchQueries == 0 {
		t.Fatalf("evidence missing snapshot payloads: %+v", ev)
	}
	if ev.DecodeRejects != 7 {
		t.Fatalf("decode rejects = %d, want probe value 7", ev.DecodeRejects)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/alerts/1", nil))
	if rec.Code != 200 {
		t.Fatalf("by-id status %d", rec.Code)
	}
	var one EvidenceRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatalf("decode by-id: %v", err)
	}
	if one.ID != 1 || one.Dest != ev.Dest {
		t.Fatalf("by-id returned %+v, want entry %+v", one, ev)
	}
}

func TestAlertsHandlerNotFound(t *testing.T) {
	h := AlertsHandler(floodedMonitor(t))
	for _, path := range []string{
		"/debug/alerts/999999",
		"/debug/alerts/abc",
		"/debug/alerts/-1",
		"/debug/alerts/99999999999999999999999999", // uint64 overflow
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 404 {
			t.Errorf("GET %s status = %d, want 404", path, rec.Code)
		}
	}
}
