// Package metrics implements the paper's evaluation metrics (§6.1): top-k
// recall — the fraction of the true top-k destinations present in the
// approximate answer — and the average relative error of the frequency
// estimates over the recall set R (the true top-k destinations that the
// estimator did return).
package metrics

import "math"

// Estimate pairs a destination with an estimated frequency. It mirrors the
// estimator output types without importing them, keeping the package
// dependency-free.
type Estimate struct {
	Dest uint32
	F    int64
}

// Recall returns |approx ∩ true| / k for a top-k query, following §6.1:
// "the fraction of the true top-k destinations in the approximate top-k
// result". k is taken as len(truth); an empty truth yields recall 1.
func Recall(approx, truth []Estimate) float64 {
	if len(truth) == 0 {
		return 1
	}
	trueSet := make(map[uint32]struct{}, len(truth))
	for _, e := range truth {
		trueSet[e.Dest] = struct{}{}
	}
	hits := 0
	for _, e := range approx {
		if _, ok := trueSet[e.Dest]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// AvgRelativeError returns the mean of |f̂_v − f_v| / f_v over the recall set
// R — the destinations that appear in both the approximate answer and the
// truth (§6.1). Destinations the estimator missed entirely are accounted by
// Recall, not here. An empty recall set yields 0. True frequencies of zero
// are skipped (they cannot appear in a meaningful truth set).
func AvgRelativeError(approx, truth []Estimate) float64 {
	trueF := make(map[uint32]int64, len(truth))
	for _, e := range truth {
		trueF[e.Dest] = e.F
	}
	sum, n := 0.0, 0
	for _, e := range approx {
		f, ok := trueF[e.Dest]
		if !ok || f == 0 {
			continue
		}
		sum += math.Abs(float64(e.F-f)) / float64(f)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}
