package metrics

import (
	"math"
	"testing"
)

func TestRecallPerfect(t *testing.T) {
	truth := []Estimate{{1, 100}, {2, 50}, {3, 25}}
	approx := []Estimate{{3, 20}, {1, 110}, {2, 55}}
	if got := Recall(approx, truth); got != 1 {
		t.Fatalf("Recall = %v, want 1", got)
	}
}

func TestRecallPartial(t *testing.T) {
	truth := []Estimate{{1, 100}, {2, 50}, {3, 25}, {4, 10}}
	approx := []Estimate{{1, 100}, {9, 60}, {3, 25}, {8, 11}}
	if got := Recall(approx, truth); got != 0.5 {
		t.Fatalf("Recall = %v, want 0.5", got)
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if got := Recall(nil, nil); got != 1 {
		t.Fatalf("Recall(nil,nil) = %v, want 1", got)
	}
	if got := Recall(nil, []Estimate{{1, 1}}); got != 0 {
		t.Fatalf("Recall(nil,truth) = %v, want 0", got)
	}
}

func TestAvgRelativeError(t *testing.T) {
	truth := []Estimate{{1, 100}, {2, 50}}
	approx := []Estimate{{1, 110}, {2, 40}}
	// errors: 0.1 and 0.2 -> mean 0.15
	if got := AvgRelativeError(approx, truth); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("AvgRelativeError = %v, want 0.15", got)
	}
}

func TestAvgRelativeErrorIgnoresMisses(t *testing.T) {
	truth := []Estimate{{1, 100}, {2, 50}}
	approx := []Estimate{{1, 100}, {9, 999}} // dest 9 not in truth
	if got := AvgRelativeError(approx, truth); got != 0 {
		t.Fatalf("AvgRelativeError = %v, want 0 (exact on the recall set)", got)
	}
}

func TestAvgRelativeErrorEmpty(t *testing.T) {
	if got := AvgRelativeError(nil, nil); got != 0 {
		t.Fatalf("AvgRelativeError(nil,nil) = %v, want 0", got)
	}
	if got := AvgRelativeError([]Estimate{{1, 5}}, []Estimate{{2, 5}}); got != 0 {
		t.Fatalf("disjoint sets must yield 0, got %v", got)
	}
}

func TestAvgRelativeErrorSkipsZeroTruth(t *testing.T) {
	truth := []Estimate{{1, 0}, {2, 10}}
	approx := []Estimate{{1, 5}, {2, 11}}
	if got := AvgRelativeError(approx, truth); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("AvgRelativeError = %v, want 0.1", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{5}); got != 0 {
		t.Fatalf("Stddev single = %v", got)
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stddev = %v, want 2", got)
	}
}
