package sig

import (
	"testing"
	"testing/quick"

	"dcsketch/internal/hashing"
)

func newSig(l Layout) []int64 { return make([]int64, l.Width()) }

func TestWidth(t *testing.T) {
	if w := (Layout{}).Width(); w != 65 {
		t.Fatalf("plain layout width = %d, want 65", w)
	}
	if w := (Layout{Fingerprint: true}).Width(); w != 66 {
		t.Fatalf("fingerprint layout width = %d, want 66", w)
	}
}

func TestEmptyDecode(t *testing.T) {
	for _, l := range []Layout{{}, {Fingerprint: true}} {
		s := newSig(l)
		key, count, state := l.Decode(s)
		if state != Empty || key != 0 || count != 0 {
			t.Fatalf("zero signature: got (%v,%v,%v), want Empty", key, count, state)
		}
		if !l.IsZero(s) {
			t.Fatal("zero signature must report IsZero")
		}
	}
}

func TestSingletonRoundTrip(t *testing.T) {
	l := Layout{Fingerprint: true}
	fph := hashing.NewTab64(1)
	err := quick.Check(func(key uint64, countRaw uint16) bool {
		count := int64(countRaw) + 1
		s := newSig(l)
		fp := fph.Fingerprint(key)
		for i := int64(0); i < count; i++ {
			l.Update(s, key, 1, fp)
		}
		gotKey, gotCount, state := l.Decode(s)
		return state == Singleton && gotKey == key && gotCount == count &&
			l.VerifyFingerprint(s, gotCount, fph.Fingerprint(gotKey))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRestoresSingleton(t *testing.T) {
	// Insert two keys, delete one: the bucket must decode as a singleton
	// of the survivor (delete-resilience, the paper's core property).
	l := Layout{Fingerprint: true}
	fph := hashing.NewTab64(2)
	err := quick.Check(func(a, b uint64) bool {
		if a == b {
			return true
		}
		s := newSig(l)
		l.Update(s, a, 1, fph.Fingerprint(a))
		l.Update(s, b, 1, fph.Fingerprint(b))
		l.Update(s, a, -1, fph.Fingerprint(a))
		key, count, state := l.Decode(s)
		return state == Singleton && key == b && count == 1 &&
			l.VerifyFingerprint(s, count, fph.Fingerprint(key))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteToEmpty(t *testing.T) {
	l := Layout{Fingerprint: true}
	fph := hashing.NewTab64(3)
	err := quick.Check(func(keys []uint64) bool {
		s := newSig(l)
		for _, k := range keys {
			l.Update(s, k, 1, fph.Fingerprint(k))
		}
		for _, k := range keys {
			l.Update(s, k, -1, fph.Fingerprint(k))
		}
		_, _, state := l.Decode(s)
		return state == Empty && l.IsZero(s)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollisionDetected(t *testing.T) {
	l := Layout{}
	err := quick.Check(func(a, b uint64) bool {
		if a == b {
			return true
		}
		s := newSig(l)
		l.Update(s, a, 1, 0)
		l.Update(s, b, 1, 0)
		_, _, state := l.Decode(s)
		// Two distinct keys with count 1 each always differ in a bit,
		// so that bit counter is 1 != total 2.
		return state == Collision
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFalseSingletonCaughtByFingerprint(t *testing.T) {
	// Structural false singletons (a mixed bucket whose bit counters all
	// land in {0, total}) require interleavings of multi-count keys that
	// are hard to hit organically, so hand-build one: counters that
	// structurally claim "key 0b101, count 2" while the fingerprint
	// counter was accumulated from different content. The fingerprint
	// check must reject it.
	l := Layout{Fingerprint: true}
	fph := hashing.NewTab64(4)
	s := newSig(l)
	// Hand-build counters that structurally claim "key 0b101, count 2"
	// but whose fingerprint was accumulated from different content.
	s[0] = 2
	s[1] = 2 // bit 0
	s[3] = 2 // bit 2
	s[l.fpIndex()] = fph.Fingerprint(0b101)*1 + fph.Fingerprint(0b001)*1

	key, count, state := l.Decode(s)
	if state != Singleton || key != 0b101 || count != 2 {
		t.Fatalf("setup: decode = (%v,%v,%v)", key, count, state)
	}
	if l.VerifyFingerprint(s, count, fph.Fingerprint(key)) {
		t.Fatal("fingerprint must reject a mixed bucket masquerading as a singleton")
	}
}

func TestNetNegativeTreatedAsCollision(t *testing.T) {
	l := Layout{}
	s := newSig(l)
	l.Update(s, 42, -1, 0)
	if _, _, state := l.Decode(s); state != Collision {
		t.Fatalf("net-negative bucket decoded as %v, want Collision", state)
	}
}

func TestZeroTotalNonZeroBitsIsCollision(t *testing.T) {
	l := Layout{}
	s := newSig(l)
	// key 3 inserted once, key 1 deleted once: total 0, residual bits.
	l.Update(s, 3, 1, 0)
	l.Update(s, 1, -1, 0)
	if _, _, state := l.Decode(s); state != Collision {
		t.Fatalf("zero-total residual bucket decoded as %v, want Collision", state)
	}
}

func TestAddMerge(t *testing.T) {
	l := Layout{Fingerprint: true}
	fph := hashing.NewTab64(5)
	err := quick.Check(func(a, b uint64) bool {
		s1, s2, both := newSig(l), newSig(l), newSig(l)
		l.Update(s1, a, 1, fph.Fingerprint(a))
		l.Update(s2, b, 1, fph.Fingerprint(b))
		l.Update(both, a, 1, fph.Fingerprint(a))
		l.Update(both, b, 1, fph.Fingerprint(b))
		l.Add(s1, s2)
		for i := range s1 {
			if s1[i] != both[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNoFingerprintLayoutAlwaysVerifies(t *testing.T) {
	l := Layout{}
	s := newSig(l)
	l.Update(s, 9, 1, 12345)
	if !l.VerifyFingerprint(s, 1, 999) {
		t.Fatal("layout without fingerprint must always verify")
	}
}

func BenchmarkUpdate(b *testing.B) {
	l := Layout{Fingerprint: true}
	s := newSig(l)
	fph := hashing.NewTab64(6)
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		l.Update(s, k, 1, fph.Fingerprint(k))
	}
}

func BenchmarkDecode(b *testing.B) {
	l := Layout{Fingerprint: true}
	s := newSig(l)
	l.Update(s, 0xdeadbeefcafef00d, 3, 77)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Decode(s)
	}
}
