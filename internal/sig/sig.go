// Package sig implements the count signatures stored in every second-level
// hash bucket of a Distinct-Count Sketch (paper §3).
//
// A signature for the 64-bit pair domain is an array of counters laid out as
//
//	[ total | bit_1 .. bit_64 | fingerprint? ]
//
// where total is the net number of pair occurrences that hashed into the
// bucket, bit_j is the net number of occurrences whose key has bit j set, and
// the optional fingerprint counter holds the net sum of count·fp(key) for a
// random fingerprint function fp. Because every counter update is a signed
// add, the structure is impervious to deletions: the signature after a stream
// of inserts and matching deletes is identical to one that never saw the
// deleted items.
//
// A bucket is decodable as a singleton when every bit counter equals either 0
// or the total (paper's ReturnSingleton, Fig. 4). With deletions in the
// stream, rare "false singletons" are possible — a mixed bucket whose residual
// counters happen to mimic a single key. The fingerprint counter detects
// those with probability 1 - 2^-63: the caller checks that the fingerprint
// counter equals total·fp(decodedKey).
package sig

// KeyBits is the width of the sketched pair domain: source and destination
// are 32-bit IPv4 addresses, so pairs live in [2^64] and signatures carry
// 2·log2(m) = 64 bit-location counters.
const KeyBits = 64

// Layout describes the counter layout of one count signature.
type Layout struct {
	// Fingerprint indicates whether the trailing checksum counter is
	// present. It is an extension over the paper (see package comment);
	// disabling it reproduces the paper's structure exactly.
	Fingerprint bool
}

// Width returns the number of int64 counters in one signature.
func (l Layout) Width() int {
	w := 1 + KeyBits
	if l.Fingerprint {
		w++
	}
	return w
}

// fpIndex returns the index of the fingerprint counter. Only valid when
// l.Fingerprint is true.
func (l Layout) fpIndex() int { return 1 + KeyBits }

// Update applies a net frequency change of delta for key to the signature
// counters in sig, which must have length l.Width(). fp is the key's
// fingerprint and is ignored unless the layout carries a fingerprint counter.
func (l Layout) Update(sig []int64, key uint64, delta int64, fp int64) {
	sig[0] += delta
	for j := 0; j < KeyBits; j++ {
		if key&(1<<uint(j)) != 0 {
			sig[1+j] += delta
		}
	}
	if l.Fingerprint {
		sig[l.fpIndex()] += delta * fp
	}
}

// State classifies the decoded content of a signature.
type State int

const (
	// Empty means no net items are present in the bucket.
	Empty State = iota + 1
	// Singleton means the counters are consistent with exactly one
	// distinct key (returned alongside its net count).
	Singleton
	// Collision means at least two distinct keys are provably present.
	Collision
)

// Decode inspects a signature and, when it is consistent with a single
// distinct key, reconstructs that key and its net count.
//
// Decode performs the structural check only (bit counters ∈ {0, total}); the
// fingerprint verification, which needs the hash function, is done by
// VerifyFingerprint. A Singleton result with count <= 0 is impossible for
// well-formed streams (deletes never exceed inserts per pair) and is reported
// as Collision so corrupted streams cannot yield phantom samples.
func (l Layout) Decode(sig []int64) (key uint64, count int64, state State) {
	total := sig[0]
	if total == 0 {
		// All-zero bit counters with zero total is the empty bucket; a
		// zero total with nonzero bit counters is a net-negative
		// artifact of a corrupted stream — treat as collision.
		for j := 1; j <= KeyBits; j++ {
			if sig[j] != 0 {
				return 0, 0, Collision
			}
		}
		return 0, 0, Empty
	}
	if total < 0 {
		return 0, 0, Collision
	}
	for j := 0; j < KeyBits; j++ {
		switch sig[1+j] {
		case total:
			key |= 1 << uint(j)
		case 0:
			// bit j is 0 in the candidate key
		default:
			return 0, 0, Collision
		}
	}
	return key, total, Singleton
}

// VerifyFingerprint reports whether a decoded singleton (key, count) is
// consistent with the signature's fingerprint counter. fp must be the
// fingerprint of key under the sketch's fingerprint hash. Layouts without a
// fingerprint counter always verify.
func (l Layout) VerifyFingerprint(sig []int64, count int64, fp int64) bool {
	if !l.Fingerprint {
		return true
	}
	return sig[l.fpIndex()] == count*fp
}

// IsZero reports whether every counter in sig is zero (a fully empty,
// artifact-free bucket).
func (l Layout) IsZero(sig []int64) bool {
	for _, c := range sig {
		if c != 0 {
			return false
		}
	}
	return true
}

// Add accumulates the counters of src into dst, implementing sketch merging
// (the signature is a linear function of the stream). Both slices must have
// length l.Width().
func (l Layout) Add(dst, src []int64) {
	for i := range dst {
		dst[i] += src[i]
	}
}
