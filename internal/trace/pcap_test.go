package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func pcapSample(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Time:    uint64(i) * 137,
			Src:     uint32(0x0a000000 + i),
			Dst:     0xCB007107,
			SrcPort: uint16(1024 + i),
			DstPort: 443,
			Flags:   TCPFlags(i%31 + 1),
		}
	}
	return recs
}

func TestPcapRoundTrip(t *testing.T) {
	recs := pcapSample(500)
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewPcapReader(&buf)
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if r.Skipped() != 0 {
		t.Fatalf("Skipped = %d on an all-TCP capture", r.Skipped())
	}
}

func TestPcapEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := NewPcapWriter(&buf).Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewPcapReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty capture yielded %d records", len(got))
	}
}

func TestPcapRejectsBadMagic(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 24))).Next(); !errors.Is(err, ErrNotPcap) {
		t.Fatalf("bad magic: err = %v", err)
	}
	if _, err := NewPcapReader(bytes.NewReader(nil)).Next(); !errors.Is(err, ErrNotPcap) {
		t.Fatalf("empty input: err = %v", err)
	}
}

func TestPcapRejectsWrongLinktype(t *testing.T) {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(h[20:], 101) // LINKTYPE_RAW
	if _, err := NewPcapReader(bytes.NewReader(h[:])).Next(); err == nil {
		t.Fatal("non-Ethernet linktype accepted")
	}
}

func TestPcapSkipsNonTCP(t *testing.T) {
	// Hand-build a capture with one ARP frame, one UDP/IPv4 packet and
	// one TCP packet: only the TCP one must surface.
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Write(Record{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	capture := buf.Bytes()

	// Append an ARP frame record (ethertype 0x0806).
	arp := make([]byte, 16+etherHeaderLen)
	binary.LittleEndian.PutUint32(arp[8:], etherHeaderLen)
	binary.LittleEndian.PutUint32(arp[12:], etherHeaderLen)
	binary.BigEndian.PutUint16(arp[16+12:], 0x0806)
	capture = append(capture, arp...)

	// Append a UDP packet (IPv4 proto 17).
	udp := make([]byte, 16+etherHeaderLen+20+8)
	binary.LittleEndian.PutUint32(udp[8:], uint32(etherHeaderLen+20+8))
	binary.LittleEndian.PutUint32(udp[12:], uint32(etherHeaderLen+20+8))
	binary.BigEndian.PutUint16(udp[16+12:], etherTypeIPv4)
	ip := udp[16+etherHeaderLen:]
	ip[0] = 0x45
	ip[9] = 17 // UDP
	capture = append(capture, udp...)

	r := NewPcapReader(bytes.NewReader(capture))
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Flags != FlagSYN {
		t.Fatalf("got %+v, want the single TCP packet", got)
	}
	if r.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", r.Skipped())
	}
}

func TestPcapBigEndianAndNanos(t *testing.T) {
	// Build a big-endian nanosecond capture by hand with one TCP packet.
	var buf bytes.Buffer
	var h [24]byte
	binary.BigEndian.PutUint32(h[0:], pcapMagicNanos)
	binary.BigEndian.PutUint32(h[20:], linktypeEN10MB)
	buf.Write(h[:])

	pkt := make([]byte, packetLen)
	binary.BigEndian.PutUint16(pkt[12:], etherTypeIPv4)
	ip := pkt[etherHeaderLen:]
	ip[0] = 0x45
	ip[9] = ipProtoTCP
	binary.BigEndian.PutUint32(ip[12:], 7)
	binary.BigEndian.PutUint32(ip[16:], 9)
	tcp := ip[20:]
	binary.BigEndian.PutUint16(tcp[0:], 1000)
	binary.BigEndian.PutUint16(tcp[2:], 80)
	tcp[13] = byte(FlagSYN | FlagACK)

	var ph [16]byte
	binary.BigEndian.PutUint32(ph[0:], 10)        // sec
	binary.BigEndian.PutUint32(ph[4:], 500_000)   // nanos -> 500 µs
	binary.BigEndian.PutUint32(ph[8:], packetLen) // caplen
	binary.BigEndian.PutUint32(ph[12:], packetLen)
	buf.Write(ph[:])
	buf.Write(pkt)

	got, err := ReadAll(NewPcapReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records", len(got))
	}
	want := Record{Time: 0, Src: 7, Dst: 9, SrcPort: 1000, DstPort: 80, Flags: FlagSYN | FlagACK}
	if got[0] != want {
		t.Fatalf("got %+v, want %+v", got[0], want)
	}
}

func TestPcapTimeRebased(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	// Absolute timestamps far from zero; the reader rebases to the first.
	for i := uint64(0); i < 3; i++ {
		if err := w.Write(Record{Time: 1_700_000_000_000_000 + i*250, Src: 1, Dst: 2, Flags: FlagSYN}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewPcapReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Time != uint64(i)*250 {
			t.Fatalf("record %d time = %d, want %d", i, r.Time, i*250)
		}
	}
}

func TestPcapTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Write(Record{Src: 1, Dst: 2, Flags: FlagSYN}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{30, len(data) - 3} {
		_, err := ReadAll(NewPcapReader(bytes.NewReader(data[:cut])))
		if !errors.Is(err, ErrBadTrace) {
			t.Errorf("truncation at %d: err = %v", cut, err)
		}
	}
}

func TestPcapHugeCaplenRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var ph [16]byte
	binary.LittleEndian.PutUint32(ph[8:], 1<<30)
	buf.Write(ph[:])
	if _, err := NewPcapReader(&buf).Next(); !errors.Is(err, io.EOF) && !errors.Is(err, ErrBadTrace) {
		t.Fatalf("huge caplen: err = %v", err)
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	// Verify the emitted IPv4 checksum is correct: re-sum including the
	// checksum field must yield 0xffff (ones-complement identity).
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.Write(Record{Src: 0x0a010203, Dst: 0xc0a80101, SrcPort: 1, DstPort: 2, Flags: FlagSYN}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ip := data[24+16+etherHeaderLen:]
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	if sum != 0xffff {
		t.Fatalf("IPv4 checksum invalid: residual sum %#x", sum)
	}
}
