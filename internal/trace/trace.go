// Package trace implements the packet/flow trace substrate feeding the DDoS
// monitor: a NetFlow-lite record carrying the fields the paper's detection
// pipeline needs (addresses, ports, TCP flags — §2 suggests NetFlow or
// GigaScope exports of egress flows and TCP flags), plus compact binary and
// human-readable text serializations with robust parsing.
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// TCPFlags is the TCP flag byte; bit positions follow the TCP header.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// flagLetters maps flag bits to their canonical letters in header order.
var flagLetters = []struct {
	bit    TCPFlags
	letter byte
}{
	{FlagFIN, 'F'},
	{FlagSYN, 'S'},
	{FlagRST, 'R'},
	{FlagPSH, 'P'},
	{FlagACK, 'A'},
}

// String renders flags as tcpdump-style letters ("SA" for SYN+ACK); "." for
// none.
func (f TCPFlags) String() string {
	if f == 0 {
		return "."
	}
	var b strings.Builder
	for _, fl := range flagLetters {
		if f&fl.bit != 0 {
			b.WriteByte(fl.letter)
		}
	}
	return b.String()
}

// ParseFlags parses the String representation.
func ParseFlags(s string) (TCPFlags, error) {
	if s == "." || s == "" {
		return 0, nil
	}
	var f TCPFlags
	for i := 0; i < len(s); i++ {
		matched := false
		for _, fl := range flagLetters {
			if s[i] == fl.letter {
				f |= fl.bit
				matched = true
				break
			}
		}
		if !matched {
			return 0, fmt.Errorf("trace: unknown TCP flag %q in %q", s[i], s)
		}
	}
	return f, nil
}

// Record is one trace entry: a packet (or flow event) observation.
type Record struct {
	// Time is a logical timestamp in microseconds from trace start.
	Time uint64
	// Src and Dst are IPv4 addresses in host byte order.
	Src, Dst uint32
	// SrcPort and DstPort are the transport ports.
	SrcPort, DstPort uint16
	// Flags carries the TCP flags of the observation.
	Flags TCPFlags
}

// FormatIPv4 renders an address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIPv4 parses dotted-quad form.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("trace: %q is not a dotted-quad IPv4 address", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("trace: bad IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// String renders the record in the text trace format:
//
//	time src:sport > dst:dport flags
func (r Record) String() string {
	return fmt.Sprintf("%d %s:%d > %s:%d %s",
		r.Time, FormatIPv4(r.Src), r.SrcPort, FormatIPv4(r.Dst), r.DstPort, r.Flags)
}

// ParseRecord parses the text format produced by Record.String.
func ParseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[2] != ">" {
		return Record{}, fmt.Errorf("trace: malformed record %q", line)
	}
	var r Record
	t, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad timestamp in %q: %v", line, err)
	}
	r.Time = t
	r.Src, r.SrcPort, err = parseEndpoint(fields[1])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad source in %q: %v", line, err)
	}
	r.Dst, r.DstPort, err = parseEndpoint(fields[3])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad destination in %q: %v", line, err)
	}
	r.Flags, err = ParseFlags(fields[4])
	if err != nil {
		return Record{}, fmt.Errorf("trace: bad flags in %q: %v", line, err)
	}
	return r, nil
}

func parseEndpoint(s string) (uint32, uint16, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return 0, 0, fmt.Errorf("missing port in %q", s)
	}
	ip, err := ParseIPv4(s[:i])
	if err != nil {
		return 0, 0, err
	}
	port, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("bad port in %q", s)
	}
	return ip, uint16(port), nil
}
