package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements libpcap-format support so the monitor ingests real
// capture files (tcpdump -w) directly: a reader that parses the classic
// pcap global header and per-packet records, decodes Ethernet/IPv4/TCP
// headers, and yields the same Record type as the native formats; and a
// writer that emits captures replayable with standard tools. Non-TCP and
// non-IPv4 packets are skipped (counted, not errored): a capture is allowed
// to contain ARP, UDP and friends.
//
// Supported: classic pcap magic 0xa1b2c3d4 (microsecond timestamps) and
// 0xa1b23c4d (nanosecond), either endianness, linktype EN10MB (Ethernet).

const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapMagicNanos  = 0xa1b23c4d
	linktypeEN10MB  = 1

	etherTypeIPv4  = 0x0800
	ipProtoTCP     = 6
	etherHeaderLen = 14
	maxSnapLen     = 1 << 18
)

// ErrNotPcap is returned when the input does not start with a pcap header.
var ErrNotPcap = errors.New("trace: not a pcap file")

// PcapReader reads TCP/IPv4 packets from a libpcap capture as Records.
type PcapReader struct {
	r          *bufio.Reader
	order      binary.ByteOrder
	nanos      bool
	readHeader bool
	// Skipped counts packets that were not TCP/IPv4 (or were truncated
	// below the needed headers).
	skipped uint64
	// base anchors timestamps so Record.Time starts near zero.
	base    uint64
	haveTS  bool
	scratch []byte
}

// NewPcapReader wraps r.
func NewPcapReader(r io.Reader) *PcapReader {
	return &PcapReader{r: bufio.NewReader(r)}
}

// Skipped returns how many non-TCP/IPv4 packets were skipped so far.
func (p *PcapReader) Skipped() uint64 { return p.skipped }

func (p *PcapReader) header() error {
	var h [24]byte
	if _, err := io.ReadFull(p.r, h[:]); err != nil {
		return fmt.Errorf("%w: truncated global header", ErrNotPcap)
	}
	magicLE := binary.LittleEndian.Uint32(h[:4])
	magicBE := binary.BigEndian.Uint32(h[:4])
	switch {
	case magicLE == pcapMagicMicros:
		p.order = binary.LittleEndian
	case magicLE == pcapMagicNanos:
		p.order, p.nanos = binary.LittleEndian, true
	case magicBE == pcapMagicMicros:
		p.order = binary.BigEndian
	case magicBE == pcapMagicNanos:
		p.order, p.nanos = binary.BigEndian, true
	default:
		return fmt.Errorf("%w: bad magic %x", ErrNotPcap, h[:4])
	}
	if lt := p.order.Uint32(h[20:]); lt != linktypeEN10MB {
		return fmt.Errorf("trace: unsupported pcap linktype %d (want Ethernet)", lt)
	}
	p.readHeader = true
	return nil
}

// Next returns the next TCP/IPv4 packet as a Record, or io.EOF at a clean
// end of capture. Record.Time is microseconds since the first packet.
func (p *PcapReader) Next() (Record, error) {
	if !p.readHeader {
		if err := p.header(); err != nil {
			return Record{}, err
		}
	}
	for {
		var ph [16]byte
		if _, err := io.ReadFull(p.r, ph[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("%w: truncated packet header", ErrBadTrace)
		}
		sec := uint64(p.order.Uint32(ph[0:]))
		frac := uint64(p.order.Uint32(ph[4:]))
		caplen := p.order.Uint32(ph[8:])
		if caplen > maxSnapLen {
			return Record{}, fmt.Errorf("%w: caplen %d too large", ErrBadTrace, caplen)
		}
		if cap(p.scratch) < int(caplen) {
			p.scratch = make([]byte, caplen)
		}
		data := p.scratch[:caplen]
		if _, err := io.ReadFull(p.r, data); err != nil {
			return Record{}, fmt.Errorf("%w: truncated packet body", ErrBadTrace)
		}

		micros := sec * 1_000_000
		if p.nanos {
			micros += frac / 1000
		} else {
			micros += frac
		}
		if !p.haveTS {
			p.base, p.haveTS = micros, true
		}

		rec, ok := decodeEthernetTCP(data)
		if !ok {
			p.skipped++
			continue
		}
		rec.Time = micros - p.base
		return rec, nil
	}
}

// decodeEthernetTCP parses Ethernet/IPv4/TCP headers into a Record (Time
// unset). ok is false for anything that is not a well-formed TCP/IPv4
// packet.
func decodeEthernetTCP(data []byte) (Record, bool) {
	if len(data) < etherHeaderLen {
		return Record{}, false
	}
	if binary.BigEndian.Uint16(data[12:14]) != etherTypeIPv4 {
		return Record{}, false
	}
	ip := data[etherHeaderLen:]
	if len(ip) < 20 {
		return Record{}, false
	}
	if ip[0]>>4 != 4 {
		return Record{}, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl {
		return Record{}, false
	}
	if ip[9] != ipProtoTCP {
		return Record{}, false
	}
	tcp := ip[ihl:]
	if len(tcp) < 14 {
		return Record{}, false
	}
	return Record{
		Src:     binary.BigEndian.Uint32(ip[12:16]),
		Dst:     binary.BigEndian.Uint32(ip[16:20]),
		SrcPort: binary.BigEndian.Uint16(tcp[0:2]),
		DstPort: binary.BigEndian.Uint16(tcp[2:4]),
		Flags:   TCPFlags(tcp[13] & 0x1f),
	}, true
}

// PcapWriter writes Records as a libpcap capture (classic microsecond
// format, little-endian, Ethernet linktype) with minimal synthetic
// Ethernet/IPv4/TCP framing, replayable by tcpdump/wireshark.
type PcapWriter struct {
	w           *bufio.Writer
	wroteHeader bool
	buf         []byte
}

// NewPcapWriter wraps w.
func NewPcapWriter(w io.Writer) *PcapWriter {
	return &PcapWriter{w: bufio.NewWriter(w)}
}

// packetLen is the fixed frame size: Ethernet(14) + IPv4(20) + TCP(20).
const packetLen = etherHeaderLen + 20 + 20

func (pw *PcapWriter) writeHeader() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:], pcapMagicMicros)
	binary.LittleEndian.PutUint16(h[4:], 2) // version major
	binary.LittleEndian.PutUint16(h[6:], 4) // version minor
	binary.LittleEndian.PutUint32(h[16:], maxSnapLen)
	binary.LittleEndian.PutUint32(h[20:], linktypeEN10MB)
	if _, err := pw.w.Write(h[:]); err != nil {
		return fmt.Errorf("trace: write pcap header: %w", err)
	}
	pw.wroteHeader = true
	return nil
}

// Write appends one record as a synthetic TCP packet.
func (pw *PcapWriter) Write(r Record) error {
	if !pw.wroteHeader {
		if err := pw.writeHeader(); err != nil {
			return err
		}
	}
	if pw.buf == nil {
		pw.buf = make([]byte, 16+packetLen)
	}
	b := pw.buf
	binary.LittleEndian.PutUint32(b[0:], uint32(r.Time/1_000_000))
	binary.LittleEndian.PutUint32(b[4:], uint32(r.Time%1_000_000))
	binary.LittleEndian.PutUint32(b[8:], packetLen)
	binary.LittleEndian.PutUint32(b[12:], packetLen)

	eth := b[16:]
	for i := 0; i < 12; i++ {
		eth[i] = 0 // zero MACs
	}
	binary.BigEndian.PutUint16(eth[12:], etherTypeIPv4)

	ip := eth[etherHeaderLen:]
	ip[0] = 0x45 // v4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:], 40) // total length
	ip[8] = 64                             // TTL
	ip[9] = ipProtoTCP
	binary.BigEndian.PutUint32(ip[12:], r.Src)
	binary.BigEndian.PutUint32(ip[16:], r.Dst)
	binary.BigEndian.PutUint16(ip[10:], ipv4Checksum(ip[:20]))

	tcp := ip[20:]
	binary.BigEndian.PutUint16(tcp[0:], r.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], r.DstPort)
	tcp[12] = 5 << 4 // data offset 5 words
	tcp[13] = byte(r.Flags)
	binary.BigEndian.PutUint16(tcp[14:], 65535) // window

	if _, err := pw.w.Write(b); err != nil {
		return fmt.Errorf("trace: write pcap packet: %w", err)
	}
	return nil
}

// Flush flushes buffered output, writing the header even for empty
// captures.
func (pw *PcapWriter) Flush() error {
	if !pw.wroteHeader {
		if err := pw.writeHeader(); err != nil {
			return err
		}
	}
	return pw.w.Flush()
}

// ipv4Checksum computes the IPv4 header checksum over hdr (with the
// checksum field zeroed by the caller).
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
