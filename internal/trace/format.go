package trace

import (
	"fmt"
	"io"
)

// Format names the supported trace encodings.
const (
	FormatBinary = "binary"
	FormatText   = "text"
	FormatPcap   = "pcap"
)

// NewReader returns a Reader for the named format ("binary", "text" or
// "pcap").
func NewReader(format string, r io.Reader) (Reader, error) {
	switch format {
	case FormatBinary:
		return NewBinaryReader(r), nil
	case FormatText:
		return NewTextReader(r), nil
	case FormatPcap:
		return NewPcapReader(r), nil
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want binary, text or pcap)", format)
	}
}

// NewWriter returns a Writer for the named format.
func NewWriter(format string, w io.Writer) (Writer, error) {
	switch format {
	case FormatBinary:
		return NewBinaryWriter(w), nil
	case FormatText:
		return NewTextWriter(w), nil
	case FormatPcap:
		return NewPcapWriter(w), nil
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want binary, text or pcap)", format)
	}
}
