package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary trace format: an 8-byte header ("DTRC" + version 1 + 3 reserved
// bytes) followed by fixed 21-byte little-endian records:
//
//	time u64 | src u32 | dst u32 | sport u16 | dport u16 | flags u8

const (
	binaryMagic   = "DTRC"
	binaryVersion = 1
	recordSize    = 21
)

// ErrBadTrace is wrapped by all format errors from readers in this package.
var ErrBadTrace = errors.New("trace: malformed trace")

// BinaryWriter writes records in the binary trace format.
type BinaryWriter struct {
	w           *bufio.Writer
	wroteHeader bool
	buf         [recordSize]byte
}

// NewBinaryWriter wraps w. Call Flush before closing the underlying writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Write appends one record.
func (bw *BinaryWriter) Write(r Record) error {
	if !bw.wroteHeader {
		header := [8]byte{}
		copy(header[:], binaryMagic)
		header[4] = binaryVersion
		if _, err := bw.w.Write(header[:]); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		bw.wroteHeader = true
	}
	b := bw.buf[:]
	binary.LittleEndian.PutUint64(b[0:], r.Time)
	binary.LittleEndian.PutUint32(b[8:], r.Src)
	binary.LittleEndian.PutUint32(b[12:], r.Dst)
	binary.LittleEndian.PutUint16(b[16:], r.SrcPort)
	binary.LittleEndian.PutUint16(b[18:], r.DstPort)
	b[20] = byte(r.Flags)
	if _, err := bw.w.Write(b); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered output, writing the header even for empty traces.
func (bw *BinaryWriter) Flush() error {
	if !bw.wroteHeader {
		header := [8]byte{}
		copy(header[:], binaryMagic)
		header[4] = binaryVersion
		if _, err := bw.w.Write(header[:]); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		bw.wroteHeader = true
	}
	return bw.w.Flush()
}

// BinaryReader reads the binary trace format.
type BinaryReader struct {
	r          *bufio.Reader
	readHeader bool
	buf        [recordSize]byte
}

// NewBinaryReader wraps r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next returns the next record, or io.EOF at a clean end of trace.
func (br *BinaryReader) Next() (Record, error) {
	if !br.readHeader {
		var header [8]byte
		if _, err := io.ReadFull(br.r, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return Record{}, fmt.Errorf("%w: truncated header", ErrBadTrace)
			}
			return Record{}, fmt.Errorf("trace: read header: %w", err)
		}
		if string(header[:4]) != binaryMagic {
			return Record{}, fmt.Errorf("%w: bad magic %q", ErrBadTrace, header[:4])
		}
		if header[4] != binaryVersion {
			return Record{}, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, header[4])
		}
		br.readHeader = true
	}
	b := br.buf[:]
	if _, err := io.ReadFull(br.r, b); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("%w: truncated record", ErrBadTrace)
		}
		return Record{}, fmt.Errorf("trace: read record: %w", err)
	}
	return Record{
		Time:    binary.LittleEndian.Uint64(b[0:]),
		Src:     binary.LittleEndian.Uint32(b[8:]),
		Dst:     binary.LittleEndian.Uint32(b[12:]),
		SrcPort: binary.LittleEndian.Uint16(b[16:]),
		DstPort: binary.LittleEndian.Uint16(b[18:]),
		Flags:   TCPFlags(b[20]),
	}, nil
}

// TextWriter writes records in the line-oriented text format, one record per
// line, with '#' comment support on read.
type TextWriter struct {
	w *bufio.Writer
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Write appends one record line.
func (tw *TextWriter) Write(r Record) error {
	if _, err := tw.w.WriteString(r.String()); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	if err := tw.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered output.
func (tw *TextWriter) Flush() error { return tw.w.Flush() }

// TextReader reads the text format, skipping blank lines and '#' comments.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{s: bufio.NewScanner(r)}
}

// Next returns the next record, or io.EOF at end of input.
func (tr *TextReader) Next() (Record, error) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("%w: line %d: %v", ErrBadTrace, tr.line, err)
		}
		return rec, nil
	}
	if err := tr.s.Err(); err != nil {
		return Record{}, fmt.Errorf("trace: scan: %w", err)
	}
	return Record{}, io.EOF
}

// Reader is the common interface of both trace readers.
type Reader interface {
	Next() (Record, error)
}

// Writer is the common interface of both trace writers.
type Writer interface {
	Write(Record) error
	Flush() error
}

// ReadAll drains a reader into a slice.
func ReadAll(r Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// WriteAll writes all records and flushes.
func WriteAll(w Writer, recs []Record) error {
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}
