package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFlagsStringRoundTrip(t *testing.T) {
	err := quick.Check(func(raw uint8) bool {
		f := TCPFlags(raw) & (FlagFIN | FlagSYN | FlagRST | FlagPSH | FlagACK)
		parsed, err := ParseFlags(f.String())
		return err == nil && parsed == f
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlagsKnownForms(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SA" {
		t.Fatalf("SYN|ACK renders as %q, want \"SA\"", got)
	}
	if got := TCPFlags(0).String(); got != "." {
		t.Fatalf("no flags renders as %q, want \".\"", got)
	}
	if _, err := ParseFlags("SX"); err == nil {
		t.Fatal("unknown flag letter accepted")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	err := quick.Check(func(ip uint32) bool {
		parsed, err := ParseIPv4(FormatIPv4(ip))
		return err == nil && parsed == ip
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.-4"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) accepted", s)
		}
	}
}

func TestRecordTextRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: 0, Src: 0x0a000001, Dst: 0xc0a80101, SrcPort: 12345, DstPort: 80, Flags: FlagSYN},
		{Time: 999999, Src: 1, Dst: 2, SrcPort: 0, DstPort: 65535, Flags: FlagSYN | FlagACK},
		{Time: 42, Src: 0xffffffff, Dst: 0, SrcPort: 1, DstPort: 1, Flags: 0},
	}
	for _, r := range recs {
		got, err := ParseRecord(r.String())
		if err != nil {
			t.Fatalf("ParseRecord(%q): %v", r.String(), err)
		}
		if got != r {
			t.Fatalf("round trip %q: got %+v, want %+v", r.String(), got, r)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"1 2 3",
		"x 1.2.3.4:1 > 5.6.7.8:2 S",
		"1 1.2.3.4:1 < 5.6.7.8:2 S",
		"1 1.2.3.4 > 5.6.7.8:2 S",
		"1 1.2.3.4:99999 > 5.6.7.8:2 S",
		"1 1.2.3.4:1 > 5.6.7.8:2 Z",
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) accepted", line)
		}
	}
}

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Time:    uint64(i * 17),
			Src:     uint32(i*2654435761 + 1),
			Dst:     uint32(i*40503 + 7),
			SrcPort: uint16(i),
			DstPort: 443,
			Flags:   TCPFlags(i % 32),
		}
	}
	return recs
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(1000)
	var buf bytes.Buffer
	if err := WriteAll(NewBinaryWriter(&buf), recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBinaryWriter(&buf).Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty trace yielded %d records", len(got))
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("XXXX\x01\x00\x00\x00"))
	if _, err := r.Next(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad magic: err = %v, want ErrBadTrace", err)
	}
}

func TestBinaryRejectsBadVersion(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("DTRC\x09\x00\x00\x00"))
	if _, err := r.Next(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("bad version: err = %v, want ErrBadTrace", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	recs := sampleRecords(3)
	var buf bytes.Buffer
	if err := WriteAll(NewBinaryWriter(&buf), recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewBinaryReader(bytes.NewReader(data[:len(data)-5]))
	_, err := ReadAll(r)
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated trace: err = %v, want ErrBadTrace", err)
	}
}

func TestBinaryRejectsEmptyInput(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("")).Next(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("empty input: err = %v, want ErrBadTrace", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := sampleRecords(200)
	var buf bytes.Buffer
	if err := WriteAll(NewTextWriter(&buf), recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header comment\n\n0 1.2.3.4:1 > 5.6.7.8:80 S\n   \n# tail\n"
	got, err := ReadAll(NewTextReader(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].DstPort != 80 {
		t.Fatalf("got %+v", got)
	}
}

func TestTextReportsLineNumber(t *testing.T) {
	input := "# ok\n0 1.2.3.4:1 > 5.6.7.8:80 S\nnot a record\n"
	r := NewTextReader(strings.NewReader(input))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want ErrBadTrace naming line 3", err)
	}
}

func TestTextEOF(t *testing.T) {
	r := NewTextReader(strings.NewReader(""))
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}
