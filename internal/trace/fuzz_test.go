package trace

import (
	"bytes"
	"testing"
)

func FuzzParseRecord(f *testing.F) {
	f.Add("0 1.2.3.4:1 > 5.6.7.8:80 S")
	f.Add("999 255.255.255.255:65535 > 0.0.0.0:0 FSRPA")
	f.Add("x 1.2.3.4:1 > 5.6.7.8:80 S")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		// Anything that parses must round-trip.
		again, err := ParseRecord(rec.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rec.String(), line, err)
		}
		if again != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, again)
		}
	})
}

func FuzzParseIPv4(f *testing.F) {
	f.Add("1.2.3.4")
	f.Add("256.1.1.1")
	f.Add("....")
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIPv4(s)
		if err != nil {
			return
		}
		if got, err := ParseIPv4(FormatIPv4(ip)); err != nil || got != ip {
			t.Fatalf("round trip of %q failed: %v", s, err)
		}
	})
}

func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid trace and mutations of it.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	_ = w.Write(Record{Time: 1, Src: 2, Dst: 3, SrcPort: 4, DstPort: 5, Flags: FlagSYN})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("DTRC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic and must terminate (bounded by input size).
		r := NewBinaryReader(bytes.NewReader(data))
		for i := 0; i < len(data)+2; i++ {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	})
}
