package cusum

import (
	"testing"

	"dcsketch/internal/hashing"
)

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(0, 1); err == nil {
		t.Fatal("zero drift accepted")
	}
	if _, err := NewDetector(-1, 1); err == nil {
		t.Fatal("negative drift accepted")
	}
	if _, err := NewDetector(1, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := NewSYNFIN(0.35, 2, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestDetectorStaysQuietUnderDrift(t *testing.T) {
	d, err := NewDetector(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d.Observe(0.3) { // below drift: Y pinned at 0
			t.Fatalf("false alarm at observation %d", i)
		}
	}
	if d.Value() != 0 {
		t.Fatalf("Y = %v, want 0 under sub-drift input", d.Value())
	}
}

func TestDetectorFiresOnShift(t *testing.T) {
	d, err := NewDetector(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 100; i++ {
		if d.Observe(1.5) && fired < 0 {
			fired = i
		}
	}
	if fired < 0 {
		t.Fatal("persistent shift never alarmed")
	}
	if fired > 5 {
		t.Fatalf("alarm after %d observations; Y grows by 1/step, threshold 3", fired)
	}
	if d.Alarms() == 0 {
		t.Fatal("alarm counter not incremented")
	}
	d.Reset()
	if d.Value() != 0 {
		t.Fatal("Reset must clear the statistic")
	}
}

func TestSYNFINQuietOnBalancedTraffic(t *testing.T) {
	s, err := NewSYNFIN(0.35, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(1)
	for interval := 0; interval < 200; interval++ {
		n := 50 + int(rng.Next()%20)
		for i := 0; i < n; i++ {
			s.RecordSYN()
			s.RecordFIN() // every connection eventually closes
		}
		if s.EndInterval() {
			t.Fatalf("false alarm at interval %d (stat %v)", interval, s.Statistic())
		}
	}
}

func TestSYNFINDetectsFlood(t *testing.T) {
	s, err := NewSYNFIN(0.35, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up the FIN baseline with normal traffic.
	for interval := 0; interval < 50; interval++ {
		for i := 0; i < 60; i++ {
			s.RecordSYN()
			s.RecordFIN()
		}
		s.EndInterval()
	}
	// Flood: SYNs triple, FINs stay flat.
	fired := -1
	for interval := 0; interval < 20; interval++ {
		for i := 0; i < 180; i++ {
			s.RecordSYN()
		}
		for i := 0; i < 60; i++ {
			s.RecordFIN()
		}
		if s.EndInterval() && fired < 0 {
			fired = interval
		}
	}
	if fired < 0 {
		t.Fatal("flood never alarmed")
	}
	if fired > 3 {
		t.Fatalf("alarm only after %d flood intervals", fired)
	}
}

func TestSYNFINBaselineFrozenDuringAlarm(t *testing.T) {
	s, err := NewSYNFIN(0.35, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for interval := 0; interval < 20; interval++ {
		for i := 0; i < 40; i++ {
			s.RecordSYN()
			s.RecordFIN()
		}
		s.EndInterval()
	}
	// Sustained flood: the alarm must persist, not be absorbed.
	alarmed := 0
	for interval := 0; interval < 60; interval++ {
		for i := 0; i < 400; i++ {
			s.RecordSYN()
		}
		for i := 0; i < 40; i++ {
			s.RecordFIN()
		}
		if s.EndInterval() {
			alarmed++
		}
	}
	if alarmed < 55 {
		t.Fatalf("sustained flood alarmed only %d/60 intervals", alarmed)
	}
	if !s.InAlarm() {
		t.Fatal("detector not in alarm at end of sustained flood")
	}
}

func TestSYNFINReset(t *testing.T) {
	s, err := NewSYNFIN(0.35, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.RecordSYN()
	}
	s.EndInterval()
	s.Reset()
	if s.InAlarm() || s.Statistic() != 0 {
		t.Fatal("Reset must clear alarm state")
	}
	if s.Intervals() != 1 {
		t.Fatalf("Intervals = %d, want 1 (not cleared by Reset)", s.Intervals())
	}
}
