// Package cusum implements the nonparametric CUSUM (Sequential Change Point
// Detection) SYN-flood detector of Wang, Zhang and Shin ("Detecting SYN
// Flooding Attacks", INFOCOM 2002), which the paper cites as a complementary
// technique (§1): it watches the *aggregate* difference between TCP SYN and
// FIN/RST counts at a router and flags abrupt changes, but cannot identify
// victims or work network-wide — which is exactly what the Distinct-Count
// Sketch adds. The repository pairs the two: CUSUM as a cheap link-level
// tripwire, the sketch for victim identification.
package cusum

import "fmt"

// Detector is a one-sided nonparametric CUSUM over a normalized statistic
// X_n: it accumulates Y_n = max(0, Y_{n-1} + X_n - Drift) and alarms while
// Y_n > Threshold. Under normal conditions E[X_n] < Drift keeps Y near zero;
// a SYN flood drives X_n up and Y across the threshold within a few
// observation intervals.
type Detector struct {
	// Drift is the CUSUM drift term a (Wang et al. use a value chosen so
	// the normal-condition statistic has negative mean drift).
	Drift float64
	// Threshold is the alarm level h.
	Threshold float64

	y      float64
	alarms int
}

// NewDetector builds a detector; drift must be positive and threshold
// non-negative.
func NewDetector(drift, threshold float64) (*Detector, error) {
	if drift <= 0 {
		return nil, fmt.Errorf("cusum: drift = %v, must be positive", drift)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("cusum: threshold = %v, must be non-negative", threshold)
	}
	return &Detector{Drift: drift, Threshold: threshold}, nil
}

// Observe folds one normalized observation into the statistic and reports
// whether the detector is in alarm afterwards.
func (d *Detector) Observe(x float64) bool {
	d.y += x - d.Drift
	if d.y < 0 {
		d.y = 0
	}
	if d.y > d.Threshold {
		d.alarms++
		return true
	}
	return false
}

// Value returns the current CUSUM statistic Y_n.
func (d *Detector) Value() float64 { return d.y }

// Alarms returns how many observations were in alarm.
func (d *Detector) Alarms() int { return d.alarms }

// Reset clears the statistic (e.g. after mitigation).
func (d *Detector) Reset() { d.y = 0 }

// SYNFIN aggregates per-interval SYN and FIN/RST counts and feeds Wang et
// al.'s normalized difference X_n = (SYN_n - FIN_n) / F̄_n into a CUSUM,
// where F̄_n is an EWMA of the FIN/RST count (their normalization makes the
// statistic traffic-volume independent).
type SYNFIN struct {
	det *Detector
	// alpha is the EWMA factor for the FIN/RST baseline.
	alpha float64

	fbar      float64
	syn, fin  int64
	intervals int
	inAlarm   bool
}

// NewSYNFIN builds the aggregate detector. Wang et al.'s reported operating
// point corresponds to drift ≈ 0.35 and threshold ≈ 1-5 for 10 s intervals;
// alpha is the FIN-baseline smoothing factor (0 < alpha <= 1).
func NewSYNFIN(drift, threshold, alpha float64) (*SYNFIN, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("cusum: alpha = %v, must be in (0,1]", alpha)
	}
	det, err := NewDetector(drift, threshold)
	if err != nil {
		return nil, err
	}
	return &SYNFIN{det: det, alpha: alpha, fbar: 1}, nil
}

// RecordSYN counts one SYN in the current interval.
func (s *SYNFIN) RecordSYN() { s.syn++ }

// RecordFIN counts one FIN or RST in the current interval.
func (s *SYNFIN) RecordFIN() { s.fin++ }

// EndInterval closes the current observation interval, updates the CUSUM,
// and reports whether the detector is in alarm.
func (s *SYNFIN) EndInterval() bool {
	x := float64(s.syn-s.fin) / s.fbar
	// The FIN baseline learns only outside alarm, mirroring the
	// frozen-baseline rule used by the sketch monitor: a sustained flood
	// must not become the new normal.
	if !s.inAlarm {
		s.fbar += s.alpha * (float64(s.fin) - s.fbar)
		if s.fbar < 1 {
			s.fbar = 1
		}
	}
	s.syn, s.fin = 0, 0
	s.intervals++
	s.inAlarm = s.det.Observe(x)
	return s.inAlarm
}

// InAlarm reports the detector state after the last interval.
func (s *SYNFIN) InAlarm() bool { return s.inAlarm }

// Intervals returns how many intervals have been closed.
func (s *SYNFIN) Intervals() int { return s.intervals }

// Statistic returns the current CUSUM value.
func (s *SYNFIN) Statistic() float64 { return s.det.Value() }

// Threshold returns the alarm level the statistic is compared against; it is
// immutable after NewSYNFIN, so reading it is safe from any goroutine.
func (s *SYNFIN) Threshold() float64 { return s.det.Threshold }

// Reset clears both the CUSUM statistic and the interval counters.
func (s *SYNFIN) Reset() {
	s.det.Reset()
	s.syn, s.fin = 0, 0
	s.inAlarm = false
}

// State is the serializable detector state: everything RecordSYN/RecordFIN,
// EndInterval, and the underlying CUSUM mutate. The tuning parameters
// (drift, threshold, alpha) are deliberately excluded — they are
// configuration, re-supplied to NewSYNFIN on restore, so a snapshot cannot
// silently change the operating point of a restarted detector.
type State struct {
	Y         float64 // CUSUM statistic Y_n
	Alarms    int     // observations that were in alarm
	Fbar      float64 // EWMA FIN/RST baseline F̄_n (>= 1)
	Syn       int64   // SYN count of the open interval
	Fin       int64   // FIN/RST count of the open interval
	Intervals int     // closed intervals
	InAlarm   bool    // detector state after the last closed interval
}

// State captures the detector's mutable state for a crash-safe snapshot.
// Like every SYNFIN method it assumes the caller serializes access.
func (s *SYNFIN) State() State {
	return State{
		Y:         s.det.y,
		Alarms:    s.det.alarms,
		Fbar:      s.fbar,
		Syn:       s.syn,
		Fin:       s.fin,
		Intervals: s.intervals,
		InAlarm:   s.inAlarm,
	}
}

// Restore replaces the detector's mutable state with a previously captured
// State, validating the invariants EndInterval maintains (Y >= 0, F̄ >= 1,
// non-negative counters) so a corrupt snapshot cannot wedge the statistic.
func (s *SYNFIN) Restore(st State) error {
	if st.Y < 0 || st.Fbar < 1 {
		return fmt.Errorf("cusum: restore state Y=%v Fbar=%v violates Y>=0, Fbar>=1", st.Y, st.Fbar)
	}
	if st.Alarms < 0 || st.Intervals < 0 {
		return fmt.Errorf("cusum: restore state has negative counters (alarms=%d intervals=%d)", st.Alarms, st.Intervals)
	}
	s.det.y = st.Y
	s.det.alarms = st.Alarms
	s.fbar = st.Fbar
	s.syn, s.fin = st.Syn, st.Fin
	s.intervals = st.Intervals
	s.inAlarm = st.InAlarm
	return nil
}
