package tracelog

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestParseTraceQuery pins accepted and rejected query shapes.
func TestParseTraceQuery(t *testing.T) {
	good := []struct {
		raw          string
		session, seq uint64
	}{
		{"session=1&seq=2", 1, 2},
		{"seq=2&session=1", 1, 2},
		{"session=0&seq=0", 0, 0},
		{"session=18446744073709551615&seq=7", ^uint64(0), 7},
		{"&session=1&&seq=2&", 1, 2}, // empty pairs are ignored
	}
	for _, c := range good {
		s, q, err := ParseTraceQuery(c.raw)
		if err != nil {
			t.Fatalf("ParseTraceQuery(%q): %v", c.raw, err)
		}
		if s != c.session || q != c.seq {
			t.Fatalf("ParseTraceQuery(%q) = (%d, %d), want (%d, %d)", c.raw, s, q, c.session, c.seq)
		}
	}
	bad := []string{
		"",
		"session=1",
		"seq=2",
		"session=1&seq=2&session=3",
		"session=1&seq=2&seq=3",
		"session=1&seq=2&k=3",
		"session=-1&seq=2",
		"session=0x10&seq=2",
		"session=&seq=2",
		"session=18446744073709551616&seq=0", // 2^64 overflows
		"session",
		"session=1&seq=1 ",
	}
	for _, raw := range bad {
		if _, _, err := ParseTraceQuery(raw); err == nil {
			t.Fatalf("ParseTraceQuery(%q) accepted, want error", raw)
		}
	}
}

// TestTraceHandler drives the handler end to end and checks the Dump shape.
func TestTraceHandler(t *testing.T) {
	rec := New(Options{SlotsPerRing: 16})
	rec.SetNow(5)
	ring := rec.Acquire(2)
	ring.Record(StageServerDecode, 11, 3, 64, 0)
	ring.Record(StageServerApply, 11, 3, 64, 0)
	ring.Record(StageServerDecode, 11, 4, 1, 0) // other batch

	h := TraceHandler(rec)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?session=11&seq=3", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d, body %q", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var d Dump
	if err := json.Unmarshal(rr.Body.Bytes(), &d); err != nil {
		t.Fatalf("unmarshal dump: %v", err)
	}
	if d.Session != 11 || d.Seq != 3 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v, want session 11 seq 3 with 2 events", d)
	}
	if d.Events[0].Stage != "server-decode" || d.Events[1].Stage != "server-apply" {
		t.Fatalf("stages = %q, %q", d.Events[0].Stage, d.Events[1].Stage)
	}
	if ev := d.Events[0].Event(); ev.Stage != StageServerDecode || ev.N != 64 || ev.TS != 5 {
		t.Fatalf("EventRecord.Event round trip = %+v", ev)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?session=11", nil))
	if rr.Code != 400 {
		t.Fatalf("missing seq: status = %d, want 400", rr.Code)
	}
}

// FuzzDecodeTraceQuery hammers the pure query parser: it must never panic,
// and on success the parsed pair must survive a rebuild/reparse round trip.
func FuzzDecodeTraceQuery(f *testing.F) {
	f.Add("session=1&seq=2")
	f.Add("seq=2&session=1")
	f.Add("session=18446744073709551615&seq=0")
	f.Add("session=1&seq=2&session=3")
	f.Add("a=b")
	f.Add("session==1&seq=2")
	f.Add("%73ession=1")
	f.Add(strings.Repeat("&", 100))
	f.Fuzz(func(t *testing.T, raw string) {
		session, seq, err := ParseTraceQuery(raw)
		if err != nil {
			return
		}
		// Round trip: a canonical rebuild must parse to the same pair.
		rebuilt := "session=" + formatUint(session) + "&seq=" + formatUint(seq)
		s2, q2, err2 := ParseTraceQuery(rebuilt)
		if err2 != nil || s2 != session || q2 != seq {
			t.Fatalf("round trip %q -> %q failed: (%d,%d,%v)", raw, rebuilt, s2, q2, err2)
		}
		// Accepted queries must also be well-formed by net/url's book, so
		// the handler and any reverse proxy agree on the semantics.
		vals, uerr := url.ParseQuery(raw)
		if uerr == nil {
			// Compare numerically: the raw value may carry leading zeros.
			if got, perr := parseDecUint64(vals.Get("session")); perr != nil || got != session {
				t.Fatalf("net/url sees session=%q, parser saw %d (raw %q)", vals.Get("session"), session, raw)
			}
			if got, perr := parseDecUint64(vals.Get("seq")); perr != nil || got != seq {
				t.Fatalf("net/url sees seq=%q, parser saw %d (raw %q)", vals.Get("seq"), seq, raw)
			}
		}
	})
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
