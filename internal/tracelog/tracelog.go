// Package tracelog is the dcsketch flight recorder: fixed-size, per-stage
// event records in cache-line-sized ring buffers that trace an update batch
// through the whole pipeline — exporter enqueue/spool/send/ack, server
// decode/dedup/apply/ack, shard stage/apply, and query visibility — keyed by
// the wire protocol's existing (session, seq) batch identity, so provenance
// needs no wire-format change.
//
// # Design
//
// Every record site costs a handful of atomic stores and no allocation: the
// Record path is proven by the allocfree analyzer and ground-truthed by
// cmd/perfcheck (see perfpins.txt), so the recorder is safe to leave enabled
// in production. Timestamps come from a coarse monotonic clock — a single
// atomic nanosecond counter advanced by a recorder-owned ticker goroutine —
// because reading time.Now() is neither allocation-provable nor cheap enough
// for the hot path. A global sequence number (Event.GSeq) gives a total
// order across rings even when the coarse clock lumps events into one tick.
//
// Each Ring has exactly one writer (a connection handler, the exporter loop,
// a shard worker); any number of readers may snapshot it concurrently. Slots
// are 64-byte seqlocks whose fields are all atomic.Uint64: the writer bumps
// the slot version to odd, stores the fields, and bumps it back to even;
// readers retry or discard a slot whose version is odd or changed underfoot.
// Wraparound therefore evicts oldest records without ever tearing one —
// TestRingWraparoundNeverTears holds this as a property under concurrency.
//
// The Recorder owns the rings, the clock, and the global sequence; Trace
// merges per-ring snapshots into the (session, seq) timeline served by
// cmd/ddosmond's /debug/trace endpoint and read offline by sketchtool trace.
package tracelog

// Stage identifies where in the pipeline an event was recorded. The zero
// value is reserved so a torn or never-written slot cannot masquerade as a
// valid record.
type Stage uint8

const (
	// StageInvalid is the reserved zero value.
	StageInvalid Stage = iota

	// Exporter (edge) lifecycle, recorded under the exporter mutex.

	// StageExportEnqueue: a batch entered the spool (aux = spool depth after).
	StageExportEnqueue
	// StageExportShed: the spool was full and its oldest batch was dropped;
	// the event is keyed by the shed batch (aux = spool depth after).
	StageExportShed
	// StageExportSend: a send attempt for the spool head (aux = attempt count).
	StageExportSend
	// StageExportAck: the server acked through this batch (aux = acked seq).
	StageExportAck
	// StageExportDrop: the batch was dropped after send (connection loss
	// budget exhausted or shutdown; aux = attempt count).
	StageExportDrop
	// StageExportPrune: the hello handshake's replay horizon showed the
	// server already holds this spooled batch (aux = horizon).
	StageExportPrune
	// StageExportDial: a dial finished (seq 0; aux 1 on success, 0 on failure).
	StageExportDial
	// StageExportHello: hello handshake completed (seq 0; aux = echoed horizon).
	StageExportHello
	// StageExportCut: a live connection was torn down after a transport
	// failure (seq 0; aux = reconnect count so far).
	StageExportCut

	// Server (daemon) lifecycle, recorded by the per-connection handler.

	// StageServerConnOpen: a client connection was accepted (aux = conn id).
	StageServerConnOpen
	// StageServerConnClose: the connection handler returned (aux = conn id).
	StageServerConnClose
	// StageServerDecode: a MsgSeqUpdates frame decoded (n = update count).
	StageServerDecode
	// StageServerDecodeReject: a frame failed to decode (aux = reject code).
	StageServerDecodeReject
	// StageServerDup: dedup suppressed a replayed batch (aux = session horizon).
	StageServerDup
	// StageServerApply: the batch was applied to the monitor or staged into
	// the pipeline (n = update count).
	StageServerApply
	// StageServerAck: the ack for this batch was written back (aux = seq).
	StageServerAck
	// StageServerQuery: a top-k query was served on this connection
	// (session/seq 0; n = k).
	StageServerQuery

	// Shard (pipeline) lifecycle.

	// StageShardStage: the batcher handed this batch's updates for one shard
	// to its worker queue (writer = shard, n = updates staged).
	StageShardStage
	// StageShardApply: a shard worker folded the staged updates into its
	// sketch (writer = shard, n = updates applied).
	StageShardApply
	// StageShardShed: the shard queue was full with shedding enabled, so the
	// whole staged batch was dropped instead of blocking the handler
	// (writer = shard, n = updates shed, aux = shard index).
	StageShardShed

	stageCount // number of stages, for bounds and tests
)

// Reject codes carried in StageServerDecodeReject's Aux word.
const (
	// RejectDecode: the frame payload failed to decode.
	RejectDecode uint64 = 1
	// RejectNoHello: a sequenced batch arrived before the MsgHello handshake.
	RejectNoHello uint64 = 2
)

// stageNames is indexed by Stage.
var stageNames = [stageCount]string{
	StageInvalid:            "invalid",
	StageExportEnqueue:      "export-enqueue",
	StageExportShed:         "export-shed",
	StageExportSend:         "export-send",
	StageExportAck:          "export-ack",
	StageExportDrop:         "export-drop",
	StageExportPrune:        "export-prune",
	StageExportDial:         "export-dial",
	StageExportHello:        "export-hello",
	StageExportCut:          "export-cut",
	StageServerConnOpen:     "server-conn-open",
	StageServerConnClose:    "server-conn-close",
	StageServerDecode:       "server-decode",
	StageServerDecodeReject: "server-decode-reject",
	StageServerDup:          "server-dup",
	StageServerApply:        "server-apply",
	StageServerAck:          "server-ack",
	StageServerQuery:        "server-query",
	StageShardStage:         "shard-stage",
	StageShardApply:         "shard-apply",
	StageShardShed:          "shard-shed",
}

// String returns the stable kebab-case stage name used in JSON output and by
// the sketchtool trace reader.
func (s Stage) String() string {
	if s >= stageCount {
		return "unknown"
	}
	return stageNames[s]
}

// StageFromString inverts String; it returns StageInvalid for unknown names.
func StageFromString(name string) Stage {
	for i, n := range stageNames {
		if n == name {
			return Stage(i)
		}
	}
	return StageInvalid
}

// Event is one decoded flight-recorder record.
type Event struct {
	// GSeq is the recorder-global sequence number: a total order over every
	// event in every ring of one Recorder.
	GSeq uint64
	// TS is the coarse monotonic timestamp, nanoseconds since the recorder
	// clock's base instant (0 when the clock was never started).
	TS uint64
	// Session and Seq key the batch the event belongs to; both are 0 for
	// connection-scoped events (dial, hello, conn open/close, query).
	Session uint64
	Seq     uint64
	// Stage says where in the pipeline the event was recorded.
	Stage Stage
	// Writer tags the recording ring (connection id, shard index, 0 for the
	// exporter loop).
	Writer uint32
	// N is the stage-specific record count (updates decoded, staged, ...).
	N uint32
	// Aux is the stage-specific extra word documented per Stage constant.
	Aux uint64
}

// meta packs Stage, Writer and N into one word so a slot stays within a
// cache line: stage in bits 56..63, writer in 32..55 (24 bits), n in 0..31.
func packMeta(st Stage, writer uint32, n uint32) uint64 {
	return uint64(st)<<56 | uint64(writer&0xFFFFFF)<<32 | uint64(n)
}

func unpackMeta(m uint64) (st Stage, writer uint32, n uint32) {
	return Stage(m >> 56), uint32(m >> 32 & 0xFFFFFF), uint32(m)
}
