package tracelog

import (
	"testing"
	"time"
	"unsafe"
)

// TestSlotIsOneCacheLine pins the 64-byte slot layout the package doc
// promises; growing Event past it silently halves recorder locality.
func TestSlotIsOneCacheLine(t *testing.T) {
	if sz := unsafe.Sizeof(slot{}); sz != 64 {
		t.Fatalf("slot size = %d bytes, want 64", sz)
	}
}

// TestStageStringRoundTrip pins every stage's name and its inversion.
func TestStageStringRoundTrip(t *testing.T) {
	seen := map[string]Stage{}
	for s := Stage(0); s < stageCount; s++ {
		name := s.String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("stages %d and %d share name %q", prev, s, name)
		}
		seen[name] = s
		if got := StageFromString(name); got != s {
			t.Fatalf("StageFromString(%q) = %d, want %d", name, got, s)
		}
	}
	if got := StageFromString("no-such-stage"); got != StageInvalid {
		t.Fatalf("StageFromString(bogus) = %d, want StageInvalid", got)
	}
	if got := Stage(250).String(); got != "unknown" {
		t.Fatalf("out-of-range Stage.String() = %q, want unknown", got)
	}
}

// TestMetaPacking exercises the stage/writer/n word at its boundaries.
func TestMetaPacking(t *testing.T) {
	cases := []struct {
		st     Stage
		writer uint32
		n      uint32
	}{
		{StageExportEnqueue, 0, 0},
		{StageServerDecode, 1, 512},
		{StageShardApply, 0xFFFFFF, ^uint32(0)},
		{stageCount - 1, 7, 42},
	}
	for _, c := range cases {
		st, w, n := unpackMeta(packMeta(c.st, c.writer, c.n))
		if st != c.st || w != c.writer || n != c.n {
			t.Fatalf("packMeta(%d,%d,%d) round-tripped to (%d,%d,%d)",
				c.st, c.writer, c.n, st, w, n)
		}
	}
}

// TestRecordAndTrace writes a small batch story and reads it back merged and
// ordered.
func TestRecordAndTrace(t *testing.T) {
	rec := New(Options{SlotsPerRing: 16})
	rec.SetNow(1000)
	exp := rec.Acquire(0)
	srv := rec.Acquire(3)

	exp.Record(StageExportEnqueue, 7, 1, 128, 1)
	exp.Record(StageExportSend, 7, 1, 128, 1)
	srv.Record(StageServerDecode, 7, 1, 128, 0)
	srv.Record(StageServerApply, 7, 1, 128, 0)
	srv.Record(StageServerAck, 7, 1, 0, 1)
	exp.Record(StageExportAck, 7, 1, 0, 1)
	// Unrelated batch must not show up in the trace.
	exp.Record(StageExportEnqueue, 7, 2, 64, 2)

	evs := rec.Trace(7, 1, nil)
	want := []Stage{StageExportEnqueue, StageExportSend, StageServerDecode,
		StageServerApply, StageServerAck, StageExportAck}
	if len(evs) != len(want) {
		t.Fatalf("Trace returned %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev.Stage != want[i] {
			t.Fatalf("event %d stage = %v, want %v", i, ev.Stage, want[i])
		}
		if i > 0 && evs[i-1].GSeq >= ev.GSeq {
			t.Fatalf("events not gseq-ordered at %d: %d then %d", i, evs[i-1].GSeq, ev.GSeq)
		}
		if ev.TS != 1000 {
			t.Fatalf("event %d ts = %d, want coarse clock reading 1000", i, ev.TS)
		}
	}
	if evs[2].Writer != 3 {
		t.Fatalf("server event writer = %d, want 3", evs[2].Writer)
	}
	if all := rec.Events(nil); len(all) != 7 {
		t.Fatalf("Events returned %d, want 7", len(all))
	}
}

// TestAcquireReleaseRecycles proves rings recycle through the free list,
// history is retained across recycling, and the retention cap drops the
// oldest released ring.
func TestAcquireReleaseRecycles(t *testing.T) {
	rec := New(Options{SlotsPerRing: 16, MaxRings: 2})
	a := rec.Acquire(1)
	a.Record(StageServerConnOpen, 0, 0, 0, 1)
	a.Record(StageServerDecode, 9, 5, 10, 0)
	rec.Release(a)

	b := rec.Acquire(2)
	if b != a {
		t.Fatalf("Acquire did not recycle the released ring")
	}
	if b.Writer() != 2 {
		t.Fatalf("recycled ring writer = %d, want 2", b.Writer())
	}
	// History survives the recycle: the old batch is still traceable.
	if evs := rec.Trace(9, 5, nil); len(evs) != 1 {
		t.Fatalf("pre-recycle event lost: got %d events", len(evs))
	}
	rec.Release(b)

	// Overflow the retention cap with distinct rings.
	r1, r2, r3 := rec.Acquire(3), rec.Acquire(4), rec.Acquire(5)
	if rec.RingCount() != 3 {
		t.Fatalf("ring count = %d, want 3", rec.RingCount())
	}
	rec.Release(r1)
	rec.Release(r2)
	rec.Release(r3) // cap 2: r1 (oldest released) must be dropped
	if rec.RingCount() != 2 {
		t.Fatalf("ring count after cap = %d, want 2", rec.RingCount())
	}
	for _, rg := range rec.snapshotRings() {
		if rg == r1 {
			t.Fatalf("oldest released ring survived the retention cap")
		}
	}
}

// TestClockAdvances starts the ticker clock and waits for movement.
func TestClockAdvances(t *testing.T) {
	rec := New(Options{})
	if rec.WallBase() != 0 {
		t.Fatalf("wall base before StartClock = %d, want 0", rec.WallBase())
	}
	rec.StartClock(time.Millisecond)
	defer rec.StopClock()
	rec.StartClock(time.Millisecond) // idempotent
	if rec.WallBase() == 0 {
		t.Fatalf("wall base not set by StartClock")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rec.Now() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("coarse clock never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	rec.StopClock()
	rec.StopClock() // idempotent after stop
}
