package tracelog

import (
	"sort"
	"sync"
	"time"
)

// Options configures a Recorder. The zero value is usable: 256 slots per
// ring, 64 retained released rings.
type Options struct {
	// SlotsPerRing is the per-ring record capacity; rounded up to a power of
	// two, minimum 16, default 256 (16 KiB of slots per ring).
	SlotsPerRing int
	// MaxRings bounds how many released rings are retained for postmortem
	// reads; the oldest released ring (and its history) is dropped beyond
	// it. Live rings are bounded by the caller (server MaxConns, shard
	// count), not by this knob. Default 64.
	MaxRings int
}

// Recorder owns a set of single-writer rings, the global event sequence and
// the coarse monotonic clock they share. All methods are safe for concurrent
// use; only Ring.Record is restricted to the ring's one writer.
type Recorder struct {
	gseq atomicU64pad // global event order, claimed by every Record
	now  atomicU64pad // coarse clock: ns since the clock base instant
	wall atomicI64pad // wall-clock UnixNano of the clock base (0: never started)

	mu        sync.Mutex // guards rings, free, clockStop
	rings     []*Ring    // every retained ring, acquisition order
	free      []*Ring    // released rings awaiting reuse, oldest first
	slotsPer  int
	maxRings  int
	clockStop func()
}

// New builds a Recorder.
func New(o Options) *Recorder {
	slots := o.SlotsPerRing
	if slots <= 0 {
		slots = 256
	}
	if slots < 16 {
		slots = 16
	}
	// Round up to a power of two so Record can mask instead of divide.
	p := 1
	for p < slots {
		p <<= 1
	}
	maxRings := o.MaxRings
	if maxRings <= 0 {
		maxRings = 64
	}
	return &Recorder{slotsPer: p, maxRings: maxRings}
}

// Acquire hands out a ring for one writer, reusing a released ring (its
// prior records are retained as history — they carry their own keys) or
// allocating a fresh one. Never call it on a per-event path.
func (r *Recorder) Acquire(writer uint32) *Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rg *Ring
	if n := len(r.free); n > 0 {
		rg = r.free[0]
		copy(r.free, r.free[1:])
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	} else {
		rg = &Ring{rec: r, slots: make([]slot, r.slotsPer), mask: uint64(r.slotsPer - 1)}
		r.rings = append(r.rings, rg)
	}
	rg.writer.Store(uint64(writer))
	return rg
}

// Release returns a ring to the free list once its writer is done with it.
// The ring's records stay readable (a postmortem usually concerns exactly
// the connections that just died) until the retention cap recycles or drops
// the ring.
func (r *Recorder) Release(rg *Ring) {
	if rg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.free = append(r.free, rg)
	if len(r.free) <= r.maxRings {
		return
	}
	// Over the retention cap: forget the oldest released ring entirely.
	old := r.free[0]
	copy(r.free, r.free[1:])
	r.free[len(r.free)-1] = nil
	r.free = r.free[:len(r.free)-1]
	for i, known := range r.rings {
		if known == old {
			r.rings = append(r.rings[:i], r.rings[i+1:]...)
			break
		}
	}
}

// StartClock begins advancing the coarse clock every step (default 100µs
// when step <= 0) from a recorder-owned ticker goroutine. It is a no-op if
// the clock is already running. StopClock joins the goroutine.
func (r *Recorder) StartClock(step time.Duration) {
	if step <= 0 {
		step = 100 * time.Microsecond
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.clockStop != nil {
		return
	}
	base := time.Now()
	r.wall.Store(base.UnixNano())
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(step)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				r.now.Store(uint64(time.Since(base)))
			}
		}
	}()
	r.clockStop = func() {
		close(quit)
		<-done
	}
}

// StopClock stops and joins the clock goroutine started by StartClock.
func (r *Recorder) StopClock() {
	r.mu.Lock()
	stop := r.clockStop
	r.clockStop = nil
	r.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// SetNow pins the coarse clock to ns for deterministic tests. Do not mix
// with a running StartClock ticker.
func (r *Recorder) SetNow(ns uint64) { r.now.Store(ns) }

// Now returns the coarse clock's current reading in nanoseconds since base.
func (r *Recorder) Now() uint64 { return r.now.Load() }

// WallBase returns the wall-clock UnixNano of the clock base instant, or 0
// if the clock was never started.
func (r *Recorder) WallBase() int64 { return r.wall.Load() }

// GSeq returns the number of events recorded so far across all rings.
func (r *Recorder) GSeq() uint64 { return r.gseq.Load() }

// RingCount returns how many rings the recorder currently retains.
func (r *Recorder) RingCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rings)
}

// snapshotRings copies the ring list so snapshots run outside the lock.
func (r *Recorder) snapshotRings() []*Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Ring(nil), r.rings...)
}

// Trace returns every retained event for the (session, seq) batch, merged
// across rings and sorted by global sequence — the exporter→server→shard
// story of one batch.
func (r *Recorder) Trace(session, seq uint64, dst []Event) []Event {
	start := len(dst)
	var buf []Event
	for _, rg := range r.snapshotRings() {
		buf = rg.Snapshot(buf[:0])
		for _, ev := range buf {
			if ev.Session == session && ev.Seq == seq {
				dst = append(dst, ev)
			}
		}
	}
	sortEvents(dst[start:])
	return dst
}

// Events returns every retained event across all rings sorted by global
// sequence. It powers full-dump debugging (sketchtool trace -all).
func (r *Recorder) Events(dst []Event) []Event {
	start := len(dst)
	for _, rg := range r.snapshotRings() {
		dst = rg.Snapshot(dst)
	}
	sortEvents(dst[start:])
	return dst
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].GSeq < evs[j].GSeq })
}
