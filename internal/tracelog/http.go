package tracelog

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Dump is the JSON shape served by /debug/trace and read back by
// `sketchtool trace`: one batch's merged, gseq-ordered timeline.
type Dump struct {
	// Session and Seq echo the queried batch identity.
	Session uint64 `json:"session"`
	Seq     uint64 `json:"seq"`
	// ClockBaseUnixNS anchors every event's TSNS offset to wall time; 0 when
	// the recorder clock was never started.
	ClockBaseUnixNS int64 `json:"clock_base_unix_ns"`
	// Events is the timeline, oldest first.
	Events []EventRecord `json:"events"`
}

// EventRecord is one Event rendered for JSON.
type EventRecord struct {
	GSeq    uint64 `json:"gseq"`
	TSNS    uint64 `json:"ts_ns"`
	Session uint64 `json:"session"`
	Seq     uint64 `json:"seq"`
	Stage   string `json:"stage"`
	Writer  uint32 `json:"writer"`
	N       uint32 `json:"n"`
	Aux     uint64 `json:"aux"`
}

// Record converts an EventRecord back to an Event (stage name round-trips
// through StageFromString). Used by the offline readers.
func (er EventRecord) Event() Event {
	return Event{
		GSeq:    er.GSeq,
		TS:      er.TSNS,
		Session: er.Session,
		Seq:     er.Seq,
		Stage:   StageFromString(er.Stage),
		Writer:  er.Writer,
		N:       er.N,
		Aux:     er.Aux,
	}
}

// NewDump renders a gseq-sorted event slice as a Dump.
func NewDump(session, seq uint64, wallBase int64, evs []Event) Dump {
	d := Dump{Session: session, Seq: seq, ClockBaseUnixNS: wallBase, Events: make([]EventRecord, 0, len(evs))}
	for _, ev := range evs {
		d.Events = append(d.Events, EventRecord{
			GSeq:    ev.GSeq,
			TSNS:    ev.TS,
			Session: ev.Session,
			Seq:     ev.Seq,
			Stage:   ev.Stage.String(),
			Writer:  ev.Writer,
			N:       ev.N,
			Aux:     ev.Aux,
		})
	}
	return d
}

// ParseTraceQuery parses a /debug/trace raw query of the form
// "session=<dec>&seq=<dec>" (either order, both required, decimal uint64,
// no duplicates, no unknown keys). It is deliberately a pure function over
// the raw string so FuzzDecodeTraceQuery can hammer it without an HTTP
// server in the loop.
func ParseTraceQuery(raw string) (session, seq uint64, err error) {
	var haveSession, haveSeq bool
	for raw != "" {
		var pair string
		if i := indexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" {
			continue
		}
		eq := indexByte(pair, '=')
		if eq < 0 {
			return 0, 0, fmt.Errorf("trace query: %q is not key=value", pair)
		}
		key, val := pair[:eq], pair[eq+1:]
		v, perr := parseDecUint64(val)
		if perr != nil {
			return 0, 0, fmt.Errorf("trace query %s: %w", key, perr)
		}
		switch key {
		case "session":
			if haveSession {
				return 0, 0, fmt.Errorf("trace query: duplicate session")
			}
			session, haveSession = v, true
		case "seq":
			if haveSeq {
				return 0, 0, fmt.Errorf("trace query: duplicate seq")
			}
			seq, haveSeq = v, true
		default:
			return 0, 0, fmt.Errorf("trace query: unknown key %q", key)
		}
	}
	if !haveSession || !haveSeq {
		return 0, 0, fmt.Errorf("trace query: need both session= and seq=")
	}
	return session, seq, nil
}

// parseDecUint64 parses a non-empty decimal uint64 with overflow detection.
func parseDecUint64(s string) (uint64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad decimal %q", s)
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, fmt.Errorf("overflow in %q", s)
		}
		v = v*10 + d
	}
	return v, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// TraceHandler serves /debug/trace?session=&seq= as a JSON Dump from rec.
func TraceHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		session, seq, err := ParseTraceQuery(req.URL.RawQuery)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		evs := rec.Trace(session, seq, nil)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(NewDump(session, seq, rec.WallBase(), evs)); err != nil {
			// The response is already streaming; nothing useful to send.
			return
		}
	})
}
