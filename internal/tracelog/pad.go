package tracelog

import "sync/atomic"

// atomicU64pad is an atomic.Uint64 padded to a full cache line. The
// recorder's global sequence and clock words are hammered by every writer in
// the process; padding keeps them from false-sharing with each other or with
// the recorder's mutex.
type atomicU64pad struct {
	atomic.Uint64
	_ [56]byte
}

// atomicI64pad is the signed sibling of atomicU64pad.
type atomicI64pad struct {
	atomic.Int64
	_ [56]byte
}
