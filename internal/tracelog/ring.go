package tracelog

import "sync/atomic"

// slot is one 64-byte seqlock record. Every field is an atomic so the
// single writer and any number of concurrent readers stay race-free: the
// writer bumps ver to odd, stores the payload, and bumps ver back to even;
// a reader that observes an odd or changed ver discards its copy. The
// trailing pad keeps one slot per cache line so neighboring writers (in
// distinct rings) never false-share.
type slot struct {
	ver     atomic.Uint64 // seqlock version: odd while the writer is mid-store
	gseq    atomic.Uint64
	ts      atomic.Uint64
	session atomic.Uint64
	seq     atomic.Uint64
	meta    atomic.Uint64 // packMeta(stage, writer, n)
	aux     atomic.Uint64
	_       [8]byte // pad to 64 bytes
}

// Ring is one single-writer event ring. Exactly one goroutine may call
// Record (the exporter loop under its mutex, a server connection handler, a
// shard worker); Snapshot may run concurrently from any goroutine. When the
// ring wraps, the oldest record is evicted whole — never torn.
type Ring struct {
	rec    *Recorder
	slots  []slot
	mask   uint64
	head   atomic.Uint64 // ordinal of the next record; valid range [head-len, head)
	writer atomic.Uint64 // writer tag stamped into every record's meta word
}

// Record appends one event. It is the flight recorder's hot path: a global
// sequence claim, a coarse clock read, and seven atomic stores — no
// allocation, no locks, no time syscalls.
//
//lint:allocfree
func (r *Ring) Record(st Stage, session, seq uint64, n uint32, aux uint64) {
	g := r.rec.gseq.Add(1)
	ts := r.rec.now.Load()
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	s.ver.Add(1) // odd: payload unstable
	s.gseq.Store(g)
	s.ts.Store(ts)
	s.session.Store(session)
	s.seq.Store(seq)
	s.meta.Store(packMeta(st, uint32(r.writer.Load()), n))
	s.aux.Store(aux)
	s.ver.Add(1) // even: payload stable
	r.head.Store(h + 1)
}

// Writer returns the ring's writer tag.
func (r *Ring) Writer() uint32 { return uint32(r.writer.Load()) }

// Len returns how many records the ring currently retains.
func (r *Ring) Len() int {
	h := r.head.Load()
	if n := uint64(len(r.slots)); h > n {
		return int(n)
	}
	return int(h)
}

// Cap returns the ring's slot count.
func (r *Ring) Cap() int { return len(r.slots) }

// Snapshot appends every stable record to dst, oldest ordinal first, and
// returns the extended slice. A slot the writer overtakes mid-read is either
// re-read as the newer record it now holds or, if it stays unstable across a
// few attempts, skipped — a snapshot never contains a torn record.
func (r *Ring) Snapshot(dst []Event) []Event {
	head := r.head.Load()
	start := uint64(0)
	if n := uint64(len(r.slots)); head > n {
		start = head - n
	}
	for i := start; i < head; i++ {
		if ev, ok := readSlot(&r.slots[i&r.mask]); ok {
			dst = append(dst, ev)
		}
	}
	return dst
}

// readSlot copies one slot under its seqlock. ok is false when the slot was
// never written or the writer kept lapping the read.
func readSlot(s *slot) (Event, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		v := s.ver.Load()
		if v == 0 || v&1 != 0 {
			continue
		}
		var ev Event
		ev.GSeq = s.gseq.Load()
		ev.TS = s.ts.Load()
		ev.Session = s.session.Load()
		ev.Seq = s.seq.Load()
		ev.Stage, ev.Writer, ev.N = unpackMeta(s.meta.Load())
		ev.Aux = s.aux.Load()
		if s.ver.Load() != v {
			continue
		}
		if ev.Stage == StageInvalid || ev.Stage >= stageCount {
			return Event{}, false
		}
		return ev, true
	}
	return Event{}, false
}
