package tracelog

import (
	"sync"
	"testing"
)

// TestRingWraparoundNeverTears is the recorder's central safety property:
// while one writer laps the ring thousands of times, concurrent snapshots
// may miss evicted records but every record they do return must be exactly
// one the writer wrote — field-for-field. A torn read would pair one
// record's gseq with another's payload, which the per-slot seqlock must
// make impossible. Run under -race this also proves the all-atomic slot
// discipline.
func TestRingWraparoundNeverTears(t *testing.T) {
	rec := New(Options{SlotsPerRing: 32})
	ring := rec.Acquire(9)

	const writes = 50000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers snapshot continuously while the writer wraps the ring ~1500x.
	const readers = 4
	errs := make(chan string, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Event
			seen := map[uint64]bool{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = ring.Snapshot(buf[:0])
				clear(seen)
				for _, ev := range buf {
					if msg := checkEvent(ev); msg != "" {
						errs <- msg
						return
					}
					// Distinct slots hold distinct ordinals, so one
					// snapshot can never return the same gseq twice — a
					// duplicate would mean a slot's fields leaked into a
					// neighbor. (Order may jitter when the writer laps a
					// low slot mid-snapshot; identity may not.)
					if seen[ev.GSeq] {
						errs <- "duplicate gseq within one snapshot"
						return
					}
					seen[ev.GSeq] = true
				}
			}
		}()
	}

	// Single writer: encode every field as a deterministic function of the
	// write ordinal so readers can verify records without shared state.
	for i := uint64(1); i <= writes; i++ {
		rec.SetNow(i * 3)
		ring.Record(stageFor(i), i*7, i*11, uint32(i%4096), i*13)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Settled state: exactly the newest 32 records, in order, untorn.
	evs := ring.Snapshot(nil)
	if len(evs) != 32 {
		t.Fatalf("settled snapshot has %d records, want 32", len(evs))
	}
	for i, ev := range evs {
		if msg := checkEvent(ev); msg != "" {
			t.Fatalf("settled record %d: %s (%+v)", i, msg, ev)
		}
		wantOrdinal := uint64(writes - 32 + i + 1)
		if ev.GSeq != wantOrdinal {
			t.Fatalf("settled record %d gseq = %d, want %d", i, ev.GSeq, wantOrdinal)
		}
	}
}

// stageFor derives a valid non-zero stage from a write ordinal.
func stageFor(i uint64) Stage {
	return Stage(1 + i%(uint64(stageCount)-1))
}

// checkEvent verifies the cross-field invariant encoded by the writer: all
// fields must describe the same ordinal i = GSeq (the single writer claims
// gseq 1,2,3,... in order).
func checkEvent(ev Event) string {
	i := ev.GSeq
	if i == 0 {
		return "zero gseq"
	}
	if ev.Stage != stageFor(i) {
		return "stage does not match gseq: torn record"
	}
	if ev.Session != i*7 || ev.Seq != i*11 || ev.Aux != i*13 {
		return "payload does not match gseq: torn record"
	}
	if ev.N != uint32(i%4096) {
		return "count does not match gseq: torn record"
	}
	if ev.Writer != 9 {
		return "writer tag corrupted"
	}
	// TS lags the ordinal's SetNow at most by later overwrites, which only
	// move it forward; it can never exceed the final clock value.
	if ev.TS != i*3 {
		return "timestamp does not match gseq: torn record"
	}
	return ""
}
