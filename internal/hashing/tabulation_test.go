package hashing

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewTab64Deterministic(t *testing.T) {
	a := NewTab64(42)
	b := NewTab64(42)
	for x := uint64(0); x < 1000; x++ {
		if a.Hash(x) != b.Hash(x) {
			t.Fatalf("same seed, different hash at x=%d: %x vs %x", x, a.Hash(x), b.Hash(x))
		}
	}
}

func TestNewTab64SeedsIndependent(t *testing.T) {
	a := NewTab64(1)
	b := NewTab64(2)
	same := 0
	const n = 10000
	for x := uint64(0); x < n; x++ {
		if a.Hash(x) == b.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d inputs; expected ~0", same, n)
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping any single input bit should flip ~32 of the 64 output bits
	// on average. A weak bound (16..48) catches gross mixing failures.
	h := NewTab64(7)
	const trials = 2000
	for bit := 0; bit < 64; bit++ {
		total := 0
		for i := 0; i < trials; i++ {
			x := Mix64(uint64(i) + 1)
			d := h.Hash(x) ^ h.Hash(x^(1<<uint(bit)))
			total += bits.OnesCount64(d)
		}
		avg := float64(total) / trials
		if avg < 16 || avg > 48 {
			t.Errorf("input bit %d: avg output bits flipped = %.1f, want ~32", bit, avg)
		}
	}
}

func TestLevelGeometricDistribution(t *testing.T) {
	h := NewTab64(99)
	const n = 1 << 18
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		counts[h.Level(uint64(i), 64)]++
	}
	// Pr[level = l] = 2^-(l+1); check the first few levels within 5%.
	for l := 0; l < 6; l++ {
		want := float64(n) / math.Pow(2, float64(l+1))
		got := float64(counts[l])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("level %d: got %v items, want ~%v", l, got, want)
		}
	}
}

func TestLevelClamp(t *testing.T) {
	h := NewTab64(3)
	const maxLevel = 4
	for i := 0; i < 100000; i++ {
		l := h.Level(uint64(i), maxLevel)
		if l < 0 || l >= maxLevel {
			t.Fatalf("level %d out of range [0,%d)", l, maxLevel)
		}
	}
}

func TestLevelMaxLevelOne(t *testing.T) {
	h := NewTab64(5)
	for i := 0; i < 1000; i++ {
		if l := h.Level(uint64(i), 1); l != 0 {
			t.Fatalf("maxLevel=1 must always return level 0, got %d", l)
		}
	}
}

func TestBucketRange(t *testing.T) {
	h := NewTab64(11)
	err := quick.Check(func(x uint64, sRaw uint16) bool {
		s := int(sRaw)%1000 + 1
		b := h.Bucket(x, s)
		return b >= 0 && b < s
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBucketUniformity(t *testing.T) {
	h := NewTab64(13)
	const (
		s = 128
		n = 1 << 17
	)
	counts := make([]int, s)
	for i := 0; i < n; i++ {
		counts[h.Bucket(uint64(i), s)]++
	}
	// Chi-square test with a very loose threshold: mean n/s = 1024,
	// expected chi2 ~ s-1 = 127; reject only on gross non-uniformity.
	mean := float64(n) / s
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	if chi2 > 2*float64(s) {
		t.Fatalf("chi-square %.1f too large for %d buckets (mean %d)", chi2, s, int(mean))
	}
}

func TestPairwiseCollisionRate(t *testing.T) {
	// 3-wise independence implies the pairwise collision probability into
	// s buckets is exactly 1/s. Measure it empirically on adjacent keys.
	h := NewTab64(17)
	const (
		s = 64
		n = 1 << 16
	)
	collisions := 0
	rng := NewSplitMix64(29)
	for i := 0; i < n; i++ {
		x, y := rng.Next(), rng.Next()
		if x == y {
			continue
		}
		if h.Bucket(x, s) == h.Bucket(y, s) {
			collisions++
		}
	}
	want := float64(n) / s
	got := float64(collisions)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("pairwise collision count %v, want ~%v (1/s rate)", got, want)
	}
}

func TestFingerprintNonZero(t *testing.T) {
	h := NewTab64(23)
	err := quick.Check(func(x uint64) bool {
		fp := h.Fingerprint(x)
		return fp > 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	err := quick.Check(func(src, dst uint32) bool {
		key := PairKey(src, dst)
		s2, d2 := SplitPair(key)
		return s2 == src && d2 == dst && PairSrc(key) == src && PairDest(key) == dst
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairKeyInjective(t *testing.T) {
	// Distinct (src,dst) pairs map to distinct keys.
	seen := make(map[uint64]struct{})
	for src := uint32(0); src < 64; src++ {
		for dst := uint32(0); dst < 64; dst++ {
			key := PairKey(src, dst)
			if _, dup := seen[key]; dup {
				t.Fatalf("duplicate key %x for (%d,%d)", key, src, dst)
			}
			seen[key] = struct{}{}
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(123)
	b := NewSplitMix64(123)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestSplitMix64ZeroValueUsable(t *testing.T) {
	var s SplitMix64
	x := s.Next()
	y := s.Next()
	if x == y {
		t.Fatal("zero-value generator produced repeated values")
	}
}

func TestMix64Bijection(t *testing.T) {
	// Mix64 is a bijection, so no collisions on any sample.
	seen := make(map[uint64]struct{}, 100000)
	for i := uint64(0); i < 100000; i++ {
		v := Mix64(i)
		if _, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = struct{}{}
	}
}

func BenchmarkTab64Hash(b *testing.B) {
	h := NewTab64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkTab64Bucket(b *testing.B) {
	h := NewTab64(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= h.Bucket(uint64(i), 128)
	}
	_ = sink
}
