package hashing

import "math/bits"

// numByteTables is the number of lookup tables in a Tab64: one per input byte.
const numByteTables = 8

// Tab64 is a simple tabulation hash function over 64-bit keys: the key is
// split into 8 bytes and the hash is the XOR of one random table entry per
// byte. Simple tabulation is 3-wise independent and behaves like a fully
// random function for the hashing-based estimators in this repository
// (Patrascu & Thorup, "The Power of Simple Tabulation Hashing").
//
// A Tab64 is immutable after construction and safe for concurrent use.
type Tab64 struct {
	tables [numByteTables][256]uint64
}

// NewTab64 returns a tabulation hash function whose tables are filled
// deterministically from seed. Two Tab64 values built from the same seed
// compute identical hashes; distinct seeds yield independent functions.
func NewTab64(seed uint64) *Tab64 {
	t := &Tab64{}
	rng := NewSplitMix64(seed)
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = rng.Next()
		}
	}
	return t
}

// Hash returns the 64-bit hash of x.
//
//lint:inline
func (t *Tab64) Hash(x uint64) uint64 {
	return t.tables[0][byte(x)] ^
		t.tables[1][byte(x>>8)] ^
		t.tables[2][byte(x>>16)] ^
		t.tables[3][byte(x>>24)] ^
		t.tables[4][byte(x>>32)] ^
		t.tables[5][byte(x>>40)] ^
		t.tables[6][byte(x>>48)] ^
		t.tables[7][byte(x>>56)]
}

// Level maps x onto a first-level sketch bucket with geometrically decreasing
// probability: Pr[Level(x) = l] = 2^-(l+1) for l < maxLevel, with the
// residual probability mass (2^-maxLevel) absorbed by the last level. This is
// the paper's h(x) = LSB(f(x)) construction: the level is the position of the
// least-significant 1 bit of the randomized value.
//
// maxLevel must be positive; levels returned are in [0, maxLevel-1].
func (t *Tab64) Level(x uint64, maxLevel int) int {
	l := bits.TrailingZeros64(t.Hash(x))
	if l >= maxLevel {
		return maxLevel - 1
	}
	return l
}

// Bucket maps x uniformly onto [0, s) using the multiply-shift range
// reduction (Lemire's "fastrange"), which is unbiased for any s (not only
// powers of two) given a uniform 64-bit hash.
//
// s must be positive.
func (t *Tab64) Bucket(x uint64, s int) int {
	hi, _ := bits.Mul64(t.Hash(x), uint64(s))
	return int(hi)
}

// Fingerprint returns a nonzero 63-bit fingerprint of x, used by the count
// signatures' checksum counter. The result is guaranteed nonzero and fits in
// an int64 without overflow concerns for the counter arithmetic.
func (t *Tab64) Fingerprint(x uint64) int64 {
	fp := int64(t.Hash(x) >> 1) // clear the sign bit
	if fp == 0 {
		fp = 1
	}
	return fp
}
