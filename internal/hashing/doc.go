// Package hashing provides the randomized hash substrate for the
// Distinct-Count Sketch: seeded simple tabulation hash functions over the
// 64-bit source-destination pair domain, the Flajolet-Martin style geometric
// level map Pr[Level(x) = l] = 2^-(l+1), and unbiased bucket mapping for
// second-level hash tables of arbitrary size.
//
// Simple tabulation hashing is 3-wise independent, which is strictly stronger
// than the pairwise independence the paper's analysis assumes for the
// first-level randomizer f and the second-level hashes g_1..g_r, and it is
// fast: one table lookup per input byte and seven XORs.
package hashing
