package hashing

// Perm32 is a keyed bijection on 32-bit integers, implemented as a 4-round
// Feistel network over 16-bit halves. The workload generators use it to mint
// synthetic IP addresses that are pseudo-random yet collision-free by
// construction, so a stream with U generated pairs has exactly U distinct
// pairs and the ground-truth frequencies are known without bookkeeping.
type Perm32 struct {
	keys [4]uint64
}

// NewPerm32 returns a permutation derived from seed.
func NewPerm32(seed uint64) *Perm32 {
	rng := NewSplitMix64(seed)
	p := &Perm32{}
	for i := range p.keys {
		p.keys[i] = rng.Next()
	}
	return p
}

// round is the Feistel round function: any function of (half, key) works for
// bijectivity; splitmix's finalizer provides the mixing.
func round(half uint16, key uint64) uint16 {
	return uint16(Mix64(uint64(half) ^ key))
}

// Apply maps x through the permutation.
func (p *Perm32) Apply(x uint32) uint32 {
	l, r := uint16(x>>16), uint16(x)
	for _, k := range p.keys {
		l, r = r, l^round(r, k)
	}
	return uint32(l)<<16 | uint32(r)
}

// Invert is the inverse of Apply.
func (p *Perm32) Invert(y uint32) uint32 {
	l, r := uint16(y>>16), uint16(y)
	for i := len(p.keys) - 1; i >= 0; i-- {
		l, r = r^round(l, p.keys[i]), l
	}
	return uint32(l)<<16 | uint32(r)
}
