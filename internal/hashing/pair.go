package hashing

// PairKey packs a (source, destination) IPv4 address pair into the 64-bit
// pair-domain key used throughout the sketch: the source occupies the high 32
// bits and the destination the low 32 bits. This is the paper's
// "concatenating the two addresses" encoding of [m^2].
//
//lint:inline
func PairKey(src, dst uint32) uint64 {
	return uint64(src)<<32 | uint64(dst)
}

// SplitPair is the inverse of PairKey.
func SplitPair(key uint64) (src, dst uint32) {
	return uint32(key >> 32), uint32(key)
}

// PairDest extracts the destination address from a pair key.
//
//lint:inline
func PairDest(key uint64) uint32 {
	return uint32(key)
}

// PairSrc extracts the source address from a pair key.
func PairSrc(key uint64) uint32 {
	return uint32(key >> 32)
}
