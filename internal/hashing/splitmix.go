package hashing

// SplitMix64 is a tiny, fast, well-distributed PRNG used to derive the random
// tables of tabulation hash functions and to split one user seed into many
// independent sub-seeds. It is Sebastiano Vigna's splitmix64 generator, the
// standard seeder for the xoshiro family.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit pseudo-random value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a fixed (unseeded)
// bijective mixer, useful for decorrelating structured integer inputs before
// statistical tests.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
