package hashing

import (
	"testing"
	"testing/quick"
)

func TestPerm32RoundTrip(t *testing.T) {
	p := NewPerm32(42)
	err := quick.Check(func(x uint32) bool {
		return p.Invert(p.Apply(x)) == x
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerm32Injective(t *testing.T) {
	p := NewPerm32(7)
	seen := make(map[uint32]struct{}, 1<<17)
	for x := uint32(0); x < 1<<17; x++ {
		y := p.Apply(x)
		if _, dup := seen[y]; dup {
			t.Fatalf("collision at x=%d", x)
		}
		seen[y] = struct{}{}
	}
}

func TestPerm32Deterministic(t *testing.T) {
	a, b := NewPerm32(9), NewPerm32(9)
	for x := uint32(0); x < 1000; x++ {
		if a.Apply(x) != b.Apply(x) {
			t.Fatal("same seed must give same permutation")
		}
	}
}

func TestPerm32SeedsDiffer(t *testing.T) {
	a, b := NewPerm32(1), NewPerm32(2)
	same := 0
	for x := uint32(0); x < 10000; x++ {
		if a.Apply(x) == b.Apply(x) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("permutations from different seeds agree on %d/10000 points", same)
	}
}

func TestPerm32Scrambles(t *testing.T) {
	// Sequential inputs must not map to sequential outputs.
	p := NewPerm32(3)
	sequential := 0
	for x := uint32(0); x < 1000; x++ {
		if p.Apply(x+1) == p.Apply(x)+1 {
			sequential++
		}
	}
	if sequential > 2 {
		t.Fatalf("%d/1000 sequential outputs; permutation barely scrambles", sequential)
	}
}
