package stream

import (
	"testing"

	"dcsketch/internal/exact"
)

func TestSliceSource(t *testing.T) {
	ups := []Update{{1, 2, 1}, {3, 4, 1}, {1, 2, -1}}
	s := NewSliceSource(ups)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	var got []Update
	for {
		u, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, u)
	}
	if len(got) != 3 || got[0] != ups[0] || got[2] != ups[2] {
		t.Fatalf("collected %+v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source must keep returning !ok")
	}
	s.Reset()
	if s.Len() != 3 {
		t.Fatal("Reset must rewind")
	}
}

func TestDriveFansOut(t *testing.T) {
	ups := []Update{{1, 10, 1}, {2, 10, 1}, {1, 10, -1}}
	a, b := exact.New(), exact.New()
	n := Drive(NewSliceSource(ups), sinkOf(a), sinkOf(b))
	if n != 3 {
		t.Fatalf("Drive delivered %d, want 3", n)
	}
	if a.F(10) != 1 || b.F(10) != 1 {
		t.Fatalf("F = %d/%d, want 1/1", a.F(10), b.F(10))
	}
}

func sinkOf(tr *exact.Tracker) Sink {
	return SinkFunc(func(src, dst uint32, delta int64) { tr.Update(src, dst, delta) })
}

func TestCollect(t *testing.T) {
	ups := []Update{{1, 2, 1}, {3, 4, -1}}
	got := Collect(NewSliceSource(ups))
	if len(got) != 2 || got[0] != ups[0] || got[1] != ups[1] {
		t.Fatalf("Collect = %+v", got)
	}
}

func TestInterleavePreservesOrderAndContent(t *testing.T) {
	a := []Update{{1, 1, 1}, {1, 1, -1}, {2, 1, 1}}
	b := []Update{{9, 9, 1}, {8, 9, 1}}
	merged := Interleave(7, a, b)
	if len(merged) != 5 {
		t.Fatalf("merged length %d, want 5", len(merged))
	}
	// Per-input order must be preserved.
	var gotA, gotB []Update
	for _, u := range merged {
		if u.Dst == 1 {
			gotA = append(gotA, u)
		} else {
			gotB = append(gotB, u)
		}
	}
	for i := range a {
		if gotA[i] != a[i] {
			t.Fatalf("input-a order broken: %+v", gotA)
		}
	}
	for i := range b {
		if gotB[i] != b[i] {
			t.Fatalf("input-b order broken: %+v", gotB)
		}
	}
	if err := Validate(merged); err != nil {
		t.Fatalf("interleaved stream invalid: %v", err)
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	a := []Update{{1, 1, 1}, {2, 1, 1}}
	b := []Update{{3, 2, 1}, {4, 2, 1}}
	m1 := Interleave(5, a, b)
	m2 := Interleave(5, a, b)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("Interleave must be deterministic in seed")
		}
	}
}

func TestInterleaveEmptyInputs(t *testing.T) {
	if got := Interleave(1); len(got) != 0 {
		t.Fatalf("Interleave() = %+v", got)
	}
	if got := Interleave(1, nil, []Update{{1, 1, 1}}, nil); len(got) != 1 {
		t.Fatalf("Interleave with empties = %+v", got)
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	mk := func() []Update {
		out := make([]Update, 100)
		for i := range out {
			out[i] = Update{Src: uint32(i), Dst: 1, Delta: 1}
		}
		return out
	}
	a, b := mk(), mk()
	Shuffle(3, a)
	Shuffle(3, b)
	moved := 0
	seen := make(map[uint32]bool, len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle must be deterministic in seed")
		}
		if a[i].Src != uint32(i) {
			moved++
		}
		seen[a[i].Src] = true
	}
	if moved < 50 {
		t.Fatalf("only %d elements moved; not a real shuffle", moved)
	}
	if len(seen) != 100 {
		t.Fatal("Shuffle lost elements")
	}
}

func TestValidate(t *testing.T) {
	good := []Update{{1, 1, 1}, {1, 1, -1}, {1, 1, 1}}
	if err := Validate(good); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	bad := []Update{{1, 1, -1}}
	if err := Validate(bad); err == nil {
		t.Fatal("net-negative prefix accepted")
	}
}

func TestSYNFloodShape(t *testing.T) {
	f := SYNFlood{Victim: 443, Zombies: 500, SYNsPerZombie: 3, Seed: 1}
	ups, err := f.Updates()
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1500 {
		t.Fatalf("got %d updates, want 1500", len(ups))
	}
	tr := exact.New()
	for _, u := range ups {
		if u.Delta != 1 {
			t.Fatal("a SYN flood must contain no completions")
		}
		if u.Dst != 443 {
			t.Fatalf("stray destination %d", u.Dst)
		}
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	if got := tr.F(443); got != 500 {
		t.Fatalf("distinct-source frequency = %d, want 500 (spoofed sources distinct)", got)
	}
}

func TestSYNFloodValidation(t *testing.T) {
	if _, err := (SYNFlood{Victim: 1, Zombies: 0}).Updates(); err == nil {
		t.Fatal("Zombies=0 accepted")
	}
}

func TestFlashCrowdCompletes(t *testing.T) {
	c := FlashCrowd{Dest: 80, Clients: 1000, CompletionRate: 1.0, Seed: 2}
	ups, err := c.Updates()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ups); err != nil {
		t.Fatalf("crowd stream invalid: %v", err)
	}
	tr := exact.New()
	for _, u := range ups {
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	if got := tr.F(80); got != 0 {
		t.Fatalf("fully-completing crowd leaves frequency %d, want 0", got)
	}
	if len(ups) != 2000 {
		t.Fatalf("got %d updates, want 2000", len(ups))
	}
}

func TestFlashCrowdPartialCompletion(t *testing.T) {
	c := FlashCrowd{Dest: 80, Clients: 2000, CompletionRate: 0.9, Seed: 3}
	ups, err := c.Updates()
	if err != nil {
		t.Fatal(err)
	}
	tr := exact.New()
	for _, u := range ups {
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	left := tr.F(80)
	// ~10% of 2000 clients never complete.
	if left < 120 || left > 280 {
		t.Fatalf("residual frequency %d, want ~200", left)
	}
}

func TestFlashCrowdMidStreamFrequencyIsHigh(t *testing.T) {
	// While the crowd is arriving, the half-open population is nonzero —
	// the transient a detector must not confuse with an attack.
	c := FlashCrowd{Dest: 80, Clients: 1000, CompletionRate: 1.0, CompletionLag: 64, Seed: 4}
	ups, err := c.Updates()
	if err != nil {
		t.Fatal(err)
	}
	tr := exact.New()
	for _, u := range ups[:len(ups)/2] {
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	if tr.F(80) < 16 {
		t.Fatalf("mid-crowd half-open population %d; expected a visible transient", tr.F(80))
	}
}

func TestFlashCrowdValidation(t *testing.T) {
	if _, err := (FlashCrowd{Dest: 1, Clients: 0}).Updates(); err == nil {
		t.Fatal("Clients=0 accepted")
	}
	if _, err := (FlashCrowd{Dest: 1, Clients: 5, CompletionRate: 1.5}).Updates(); err == nil {
		t.Fatal("CompletionRate>1 accepted")
	}
}

func TestBackgroundMostlyCompletes(t *testing.T) {
	b := Background{Connections: 5000, Sources: 2000, Destinations: 100, Seed: 5}
	ups, err := b.Updates()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ups); err != nil {
		t.Fatalf("background stream invalid: %v", err)
	}
	tr := exact.New()
	for _, u := range ups {
		tr.Update(u.Src, u.Dst, int64(u.Delta))
	}
	var residual int64
	for _, e := range tr.TopK(100) {
		residual += e.Priority
	}
	// Default completion rate 0.95 leaves ~5% of 5000 half-open.
	if residual > 600 {
		t.Fatalf("residual half-open population %d, want < 600", residual)
	}
}

func TestBackgroundValidation(t *testing.T) {
	if _, err := (Background{Connections: 0, Sources: 1, Destinations: 1}).Updates(); err == nil {
		t.Fatal("Connections=0 accepted")
	}
	if _, err := (Background{Connections: 1, Sources: 0, Destinations: 1}).Updates(); err == nil {
		t.Fatal("Sources=0 accepted")
	}
	if _, err := (Background{Connections: 1, Sources: 1, Destinations: 1, CompletionRate: -0.5}).Updates(); err == nil {
		t.Fatal("negative CompletionRate accepted")
	}
}
