// Package stream defines the flow-update stream model of the paper's §2 —
// triples (source, dest, ±1) where +1 records a potentially-malicious
// connection (e.g. a TCP SYN creating a half-open connection) and -1 removes
// one (e.g. the client ACK completing the handshake) — together with
// composable sources, deterministic interleaving, and attack/crowd scenario
// generators used by the evaluation.
package stream

import (
	"fmt"

	"dcsketch/internal/hashing"
)

// Update is one flow update.
type Update struct {
	Src   uint32
	Dst   uint32
	Delta int8
}

// Key returns the packed 64-bit pair key of the update.
func (u Update) Key() uint64 { return hashing.PairKey(u.Src, u.Dst) }

// Sink consumes flow updates; both sketches, the exact tracker and the
// volume baselines satisfy it via small adapters.
type Sink interface {
	Update(src, dst uint32, delta int64)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(src, dst uint32, delta int64)

// Update implements Sink.
func (f SinkFunc) Update(src, dst uint32, delta int64) { f(src, dst, delta) }

// Source yields a finite stream of updates.
type Source interface {
	// Next returns the next update; ok is false once exhausted.
	Next() (u Update, ok bool)
}

// SliceSource replays a slice of updates.
type SliceSource struct {
	updates []Update
	pos     int
}

// NewSliceSource returns a source over updates. The slice is not copied; the
// caller must not mutate it while the source is in use.
func NewSliceSource(updates []Update) *SliceSource {
	return &SliceSource{updates: updates}
}

// Next implements Source.
func (s *SliceSource) Next() (Update, bool) {
	if s.pos >= len(s.updates) {
		return Update{}, false
	}
	u := s.updates[s.pos]
	s.pos++
	return u, true
}

// Len returns the number of remaining updates.
func (s *SliceSource) Len() int { return len(s.updates) - s.pos }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Drive feeds every update from src into the sinks and returns the number of
// updates delivered.
func Drive(src Source, sinks ...Sink) int {
	n := 0
	for {
		u, ok := src.Next()
		if !ok {
			return n
		}
		for _, s := range sinks {
			s.Update(u.Src, u.Dst, int64(u.Delta))
		}
		n++
	}
}

// Collect materializes a source into a slice.
func Collect(src Source) []Update {
	var out []Update
	for {
		u, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, u)
	}
}

// Interleave merges several update sequences into one, preserving each
// input's internal order (so a delete never precedes its insert) while
// mixing the sequences pseudo-randomly in proportion to their remaining
// lengths. This models several edge monitors feeding one DDoS MONITOR
// (Fig. 1). The result is deterministic in seed.
func Interleave(seed uint64, seqs ...[]Update) []Update {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	out := make([]Update, 0, total)
	pos := make([]int, len(seqs))
	remaining := total
	rng := hashing.NewSplitMix64(seed)
	for remaining > 0 {
		// Pick a sequence with probability proportional to its
		// remaining length, which yields a uniformly random merge.
		pick := int64(rng.Next() % uint64(remaining))
		for i, s := range seqs {
			left := int64(len(s) - pos[i])
			if pick < left {
				out = append(out, s[pos[i]])
				pos[i]++
				break
			}
			pick -= left
		}
		remaining--
	}
	return out
}

// Shuffle permutes updates in place (Fisher-Yates, deterministic in seed).
// Only safe for insert-only sequences: shuffling a sequence with deletes can
// reorder a delete before its insert.
func Shuffle(seed uint64, updates []Update) {
	rng := hashing.NewSplitMix64(seed)
	for i := len(updates) - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		updates[i], updates[j] = updates[j], updates[i]
	}
}

// Validate checks that a sequence is well-formed: every prefix keeps every
// pair's net count non-negative. It returns an error naming the first
// offending update.
func Validate(updates []Update) error {
	net := make(map[uint64]int64)
	for i, u := range updates {
		k := u.Key()
		net[k] += int64(u.Delta)
		if net[k] < 0 {
			return fmt.Errorf("stream: update %d drives pair (%d,%d) net-negative", i, u.Src, u.Dst)
		}
	}
	return nil
}
