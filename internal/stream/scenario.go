package stream

import (
	"fmt"
	"sort"

	"dcsketch/internal/hashing"
)

// This file provides the attack and traffic scenario generators behind the
// paper's motivating examples (§1): TCP-SYN floods from spoofed sources,
// flash crowds whose handshakes complete, and legitimate background traffic.
// Each generator returns an ordered update sequence; use Interleave to mix
// scenarios into a single monitored stream.

// SYNFlood describes a spoofed-source SYN-flooding attack on one victim.
type SYNFlood struct {
	// Victim is the attacked destination address.
	Victim uint32
	// Zombies is the number of distinct (spoofed) source addresses.
	Zombies int
	// SYNsPerZombie is how many SYNs each spoofed source sends (>= 1).
	// Repeats do not increase the victim's distinct-source frequency but
	// do increase stream volume, which is what volume-based detectors
	// see.
	SYNsPerZombie int
	// Seed drives the spoofed-address generator.
	Seed uint64
}

// Updates generates the attack stream: only inserts, because spoofed sources
// never complete the handshake — the signature property that distinguishes a
// flood from a crowd.
func (f SYNFlood) Updates() ([]Update, error) {
	if f.Zombies <= 0 {
		return nil, fmt.Errorf("stream: SYNFlood.Zombies = %d, must be positive", f.Zombies)
	}
	reps := f.SYNsPerZombie
	if reps < 1 {
		reps = 1
	}
	perm := hashing.NewPerm32(f.Seed)
	out := make([]Update, 0, f.Zombies*reps)
	for z := 0; z < f.Zombies; z++ {
		src := perm.Apply(uint32(z))
		for r := 0; r < reps; r++ {
			out = append(out, Update{Src: src, Dst: f.Victim, Delta: 1})
		}
	}
	Shuffle(f.Seed^0x5a5a, out)
	return out, nil
}

// FlashCrowd describes a surge of legitimate clients towards one
// destination: many distinct sources connect, and most complete the TCP
// handshake shortly after, producing a -1 update that removes them from the
// half-open population.
type FlashCrowd struct {
	// Dest is the destination experiencing the crowd.
	Dest uint32
	// Clients is the number of distinct legitimate sources.
	Clients int
	// CompletionRate is the fraction of clients whose handshake
	// completes (emitting the -1); 1.0 means every connection is
	// legitimate, 0 degenerates to an attack-shaped stream.
	CompletionRate float64
	// CompletionLag is the number of stream positions between a client's
	// SYN and its ACK (default 16).
	CompletionLag int
	// Seed drives address generation and completion choices.
	Seed uint64
}

// Updates generates the crowd stream in arrival order.
func (c FlashCrowd) Updates() ([]Update, error) {
	if c.Clients <= 0 {
		return nil, fmt.Errorf("stream: FlashCrowd.Clients = %d, must be positive", c.Clients)
	}
	if c.CompletionRate < 0 || c.CompletionRate > 1 {
		return nil, fmt.Errorf("stream: FlashCrowd.CompletionRate = %v, must be in [0,1]", c.CompletionRate)
	}
	lag := c.CompletionLag
	if lag <= 0 {
		lag = 16
	}
	perm := hashing.NewPerm32(c.Seed ^ 0xf1a5)
	rng := hashing.NewSplitMix64(c.Seed)
	type event struct {
		t int
		u Update
	}
	events := make([]event, 0, c.Clients*2)
	for i := 0; i < c.Clients; i++ {
		src := perm.Apply(uint32(i))
		events = append(events, event{t: 2 * i, u: Update{Src: src, Dst: c.Dest, Delta: 1}})
		if float64(rng.Next()>>11)/(1<<53) < c.CompletionRate {
			events = append(events, event{t: 2*i + lag, u: Update{Src: src, Dst: c.Dest, Delta: -1}})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].t < events[b].t })
	out := make([]Update, len(events))
	for i, e := range events {
		out[i] = e.u
	}
	return out, nil
}

// Background describes ordinary wide-area traffic: random source-destination
// pairs, almost all of which complete their handshakes.
type Background struct {
	// Connections is the number of connection attempts to generate.
	Connections int
	// Sources and Destinations bound the address pools.
	Sources, Destinations int
	// CompletionRate is the fraction of connections that complete
	// (default 0.95 when zero).
	CompletionRate float64
	// CompletionLag as in FlashCrowd (default 32).
	CompletionLag int
	// Seed drives all random choices.
	Seed uint64
}

// Updates generates the background stream in arrival order.
func (b Background) Updates() ([]Update, error) {
	if b.Connections <= 0 {
		return nil, fmt.Errorf("stream: Background.Connections = %d, must be positive", b.Connections)
	}
	if b.Sources <= 0 || b.Destinations <= 0 {
		return nil, fmt.Errorf("stream: Background needs positive Sources and Destinations")
	}
	rate := b.CompletionRate
	if rate == 0 {
		rate = 0.95
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("stream: Background.CompletionRate = %v, must be in [0,1]", rate)
	}
	lag := b.CompletionLag
	if lag <= 0 {
		lag = 32
	}
	srcPerm := hashing.NewPerm32(b.Seed ^ 0xbeef)
	dstPerm := hashing.NewPerm32(b.Seed ^ 0xcafe)
	rng := hashing.NewSplitMix64(b.Seed)

	type event struct {
		t int
		u Update
	}
	// Every -1 is scheduled strictly after its own +1, so all prefixes
	// keep every pair's net count non-negative by construction.
	events := make([]event, 0, b.Connections*2)
	for i := 0; i < b.Connections; i++ {
		src := srcPerm.Apply(uint32(rng.Next() % uint64(b.Sources)))
		dst := dstPerm.Apply(uint32(rng.Next() % uint64(b.Destinations)))
		events = append(events, event{t: 2 * i, u: Update{Src: src, Dst: dst, Delta: 1}})
		if float64(rng.Next()>>11)/(1<<53) < rate {
			events = append(events, event{t: 2*i + lag, u: Update{Src: src, Dst: dst, Delta: -1}})
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].t < events[b].t })
	out := make([]Update, len(events))
	for i, e := range events {
		out[i] = e.u
	}
	return out, nil
}
