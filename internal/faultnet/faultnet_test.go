package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipePair returns two ends of an in-process TCP connection.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// drain echoes nothing: it reads everything from c into the returned buffer
// until EOF/error, then closes done.
func drain(c net.Conn) (*bytes.Buffer, chan struct{}) {
	buf := &bytes.Buffer{}
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		tmp := make([]byte, 4096)
		for {
			n, err := c.Read(tmp)
			mu.Lock()
			buf.Write(tmp[:n])
			mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	return buf, done
}

func TestCleanPassThrough(t *testing.T) {
	cl, sv := pipePair(t)
	in := New(Config{Seed: 1}) // zero faults configured
	fc := in.WrapConn(cl)
	buf, done := drain(sv)
	msg := bytes.Repeat([]byte("abc123"), 1000)
	if n, err := fc.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	fc.Close()
	<-done
	if !bytes.Equal(buf.Bytes(), msg) {
		t.Fatalf("peer received %d bytes, want %d", buf.Len(), len(msg))
	}
	st := in.Stats()
	if st.Cuts != 0 || st.PartialWrites != 0 || st.BytesWritten != uint64(len(msg)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChunkedWritesPreserveBytes(t *testing.T) {
	cl, sv := pipePair(t)
	in := New(Config{Seed: 7, WriteChunk: 3})
	fc := in.WrapConn(cl)
	buf, done := drain(sv)
	msg := bytes.Repeat([]byte{0xA5, 0x5A, 0x01}, 500)
	if n, err := fc.Write(msg); n != len(msg) || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	fc.Close()
	<-done
	if !bytes.Equal(buf.Bytes(), msg) {
		t.Fatal("chunked write corrupted the stream")
	}
	if in.Stats().PartialWrites == 0 {
		t.Fatal("no partial writes counted")
	}
}

func TestShortReads(t *testing.T) {
	cl, sv := pipePair(t)
	in := New(Config{Seed: 3, ReadChunk: 2})
	fc := in.WrapConn(sv)
	msg := []byte("0123456789abcdef")
	go func() {
		cl.Write(msg)
		cl.Close()
	}()
	got, err := io.ReadAll(fc)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("ReadAll = (%q, %v)", got, err)
	}
	if in.Stats().ShortReads == 0 {
		t.Fatal("no short reads counted")
	}
}

func TestCutKillsConnectionMidStream(t *testing.T) {
	cl, sv := pipePair(t)
	in := New(Config{Seed: 11, CutAfter: 64})
	fc := in.WrapConn(cl)
	_, done := drain(sv)
	var wn int
	var werr error
	for i := 0; i < 100 && werr == nil; i++ {
		var n int
		n, werr = fc.Write(bytes.Repeat([]byte("x"), 16))
		wn += n
	}
	if !errors.Is(werr, ErrInjectedReset) {
		t.Fatalf("write error = %v, want ErrInjectedReset", werr)
	}
	st := in.Stats()
	if st.Cuts != 1 {
		t.Fatalf("cuts = %d, want 1", st.Cuts)
	}
	// The threshold is drawn from [32, 96): the transferred byte count must
	// respect it.
	if st.BytesWritten >= 96 || uint64(wn) != st.BytesWritten {
		t.Fatalf("bytes written %d (reported %d), want < 96", st.BytesWritten, wn)
	}
	// The peer observes the failure promptly.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not observe the cut")
	}
	// Subsequent writes fail: the connection is gone.
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Fatal("write after cut succeeded")
	}
}

func TestCutScheduleIsDeterministic(t *testing.T) {
	run := func() uint64 {
		cl, sv := pipePair(t)
		in := New(Config{Seed: 99, CutAfter: 128})
		fc := in.WrapConn(cl)
		_, _ = drain(sv)
		for i := 0; i < 200; i++ {
			if _, err := fc.Write([]byte("0123456789")); err != nil {
				break
			}
		}
		return in.Stats().BytesWritten
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed cut at different byte positions: %d vs %d", a, b)
	}
}

func TestMaxCutsBudget(t *testing.T) {
	in := New(Config{Seed: 5, CutAfter: 32, MaxCuts: 2})
	for i := 0; i < 4; i++ {
		cl, sv := pipePair(t)
		fc := in.WrapConn(cl)
		_, _ = drain(sv)
		for j := 0; j < 64; j++ {
			if _, err := fc.Write([]byte("01234567")); err != nil {
				break
			}
		}
		fc.Close()
	}
	if cuts := in.Stats().Cuts; cuts != 2 {
		t.Fatalf("cuts = %d, want exactly MaxCuts=2", cuts)
	}
}

func TestBlackholeWritesBlockUntilDeadline(t *testing.T) {
	cl, sv := pipePair(t)
	defer sv.Close()
	in := New(Config{Seed: 2, CutAfter: 32, BlackholeWrites: true})
	fc := in.WrapConn(cl)
	_, _ = drain(sv)
	if err := fc.SetWriteDeadline(time.Now().Add(150 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = fc.Write(bytes.Repeat([]byte("y"), 16))
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed write error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("write failed after %v, want it to block until the deadline", elapsed)
	}
	if in.Stats().Blackholes != 1 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestBlackholeUnblocksOnClose(t *testing.T) {
	cl, sv := pipePair(t)
	defer sv.Close()
	in := New(Config{Seed: 2, CutAfter: 16, BlackholeWrites: true})
	fc := in.WrapConn(cl)
	_, _ = drain(sv)
	errCh := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 100 && err == nil; i++ {
			_, err = fc.Write(bytes.Repeat([]byte("z"), 8))
		}
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("blackholed write returned nil after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed write did not unblock on Close")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 8, ReadChunk: 1})
	fln := in.Listen(ln)
	defer fln.Close()
	go func() {
		c, err := net.Dial("tcp", fln.Addr().String())
		if err != nil {
			return
		}
		c.Write([]byte("ping"))
		c.Close()
	}()
	c, err := fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := io.ReadAll(c)
	if err != nil || string(got) != "ping" {
		t.Fatalf("ReadAll = (%q, %v)", got, err)
	}
	if in.Stats().Conns != 1 || in.Stats().ShortReads == 0 {
		t.Fatalf("stats = %+v", in.Stats())
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	cl, sv := pipePair(t)
	in := New(Config{Seed: 4, Delay: 20 * time.Millisecond})
	fc := in.WrapConn(cl)
	_, _ = drain(sv)
	start := time.Now()
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("write completed in %v, want >= ~20ms of injected latency", elapsed)
	}
}
