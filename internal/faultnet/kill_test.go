package faultnet

import (
	"net"
	"testing"
	"time"
)

// TestKillAfterSeversProcess checks the restart primitive: once the
// injector-wide byte budget is spent, the wrapped listener and every live
// connection die at once, mid-stream, and Killed() reports it.
func TestKillAfterSeversProcess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 9, KillAfter: 4096})
	wrapped := in.Listen(ln)

	// A toy "process": accept connections and swallow their bytes.
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 512)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	// Two concurrent clients write until the kill severs them; both ends of
	// each stream are wrapped, so reads and writes all charge the budget.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := in.Dial(ln.Addr().String(), time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			chunk := make([]byte, 64)
			for {
				_ = c.SetWriteDeadline(time.Now().Add(2 * time.Second))
				if _, err := c.Write(chunk); err != nil {
					errs <- nil
					return
				}
			}
		}()
	}

	select {
	case <-in.Killed():
	case <-time.After(5 * time.Second):
		t.Fatal("kill never fired")
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("writer survived the kill")
		}
	}
	// The listener is dead: the next dial cannot complete a connection.
	if c, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("listener still accepting after kill")
	}
	st := in.Stats()
	if st.Kills != 1 {
		t.Fatalf("Kills = %d, want 1", st.Kills)
	}
	if total := st.BytesRead + st.BytesWritten; total < 4096/2 {
		t.Fatalf("kill fired after only %d bytes, below the minimum jittered budget", total)
	}
}

// TestKillAfterZeroNeverFires pins the opt-in default: with KillAfter unset
// traffic flows indefinitely and Killed never closes.
func TestKillAfterZeroNeverFires(t *testing.T) {
	client, server := pipePair(t)
	in := New(Config{Seed: 3})
	fc := in.WrapConn(client)
	_, done := drain(server)
	for i := 0; i < 64; i++ {
		if _, err := fc.Write(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-in.Killed():
		t.Fatal("kill fired with KillAfter unset")
	default:
	}
	fc.Close()
	<-done
	if st := in.Stats(); st.Kills != 0 || st.BytesWritten != 64*1024 {
		t.Fatalf("stats = %+v", st)
	}
}
