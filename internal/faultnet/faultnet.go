// Package faultnet is a deterministic fault-injection harness for the wire
// layer: a net.Conn/net.Listener wrapper that injects latency, partial
// writes, short reads, mid-frame connection resets, and write blackholes on
// a seed-driven schedule. It is the test substrate for the resilient
// exporter (internal/export) and the monitor daemon's frame handling
// (internal/server): a chaos test wraps one side's transport, runs real
// traffic, and asserts the system's end state — and because every fault is
// drawn from a SplitMix64 stream seeded by the caller, a failing schedule
// replays exactly.
//
// Faults are injected at the byte-transfer level, below the frame protocol,
// so cuts land mid-frame (the interesting case: the peer holds a partial
// header or payload) without faultnet knowing anything about frames.
//
// Determinism model: each wrapped connection derives its own generator from
// (Seed, connection index), so per-connection schedules do not depend on
// goroutine interleaving; which in-flight operation a cut kills follows
// from the byte positions the protocol writes, which is deterministic for a
// synchronous request/reply client.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"dcsketch/internal/hashing"
)

// ErrInjectedReset is wrapped by errors returned from operations killed by
// an injected mid-stream reset.
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Config parametrizes an Injector. The zero value injects nothing: every
// fault class is opt-in.
type Config struct {
	// Seed drives every random draw; the same seed and traffic replays the
	// same fault schedule.
	Seed uint64
	// CutAfter, when positive, resets each connection after a per-connection
	// threshold of transferred bytes (reads + writes) drawn uniformly from
	// [CutAfter/2, 3*CutAfter/2). The reset closes the underlying
	// connection (with SO_LINGER 0 on TCP, so the peer sees RST-like
	// failure mid-frame) and fails the in-flight operation.
	CutAfter int
	// MaxCuts bounds the total number of injected resets across the
	// injector; 0 means unlimited. Connections created after the budget is
	// spent, or whose threshold fires after it is spent, are left intact.
	MaxCuts int
	// KillAfter, when positive, simulates a whole-process crash: once the
	// injector-wide transferred-byte total (reads plus writes, summed over
	// every wrapped connection) crosses a threshold drawn uniformly from
	// [KillAfter/2, 3*KillAfter/2), every wrapped listener and every live
	// connection is severed at once, mid-frame — the transport-visible
	// signature of the wrapped process dying. The kill fires at most once
	// per injector and closes the Killed channel so the harness knows to
	// restart the "process"; a restarted incarnation gets a fresh injector
	// (and thus a fresh kill budget) of its own.
	KillAfter int
	// BlackholeWrites converts injected resets into write blackholes: once
	// a connection's threshold fires, its writes block — consuming nothing —
	// until the write deadline expires or the connection is closed,
	// modeling a peer that stops draining its receive window.
	BlackholeWrites bool
	// WriteChunk, when positive, splits every Write into underlying writes
	// of 1..WriteChunk bytes each (a slow-loris peer is WriteChunk=1 plus
	// Delay). io.Writer semantics are preserved: the call still transfers
	// the full buffer unless a fault fires.
	WriteChunk int
	// ReadChunk, when positive, truncates every Read to at most
	// 1..ReadChunk bytes (a legal short read; callers must loop).
	ReadChunk int
	// Delay sleeps before every underlying read/write; DelayJitter adds a
	// uniform extra in [0, DelayJitter).
	Delay       time.Duration
	DelayJitter time.Duration
}

// Stats counts injected faults and transferred traffic.
type Stats struct {
	// Conns counts wrapped connections.
	Conns uint64
	// Cuts counts injected resets; Blackholes counts thresholds that
	// blackholed instead (BlackholeWrites).
	Cuts, Blackholes uint64
	// Kills counts KillAfter crashes fired (0 or 1 per injector).
	Kills uint64
	// PartialWrites counts Write calls split into more than one underlying
	// write; ShortReads counts Read calls truncated below the caller's
	// buffer size.
	PartialWrites, ShortReads uint64
	// BytesRead and BytesWritten count bytes actually transferred.
	BytesRead, BytesWritten uint64
}

// Injector wraps connections and listeners with the configured fault
// schedule. Safe for concurrent use.
type Injector struct {
	cfg Config

	// killed is closed when the KillAfter crash fires.
	killed chan struct{}

	// mu guards the schedule and counter state below.
	mu sync.Mutex
	// stats accumulates fault counts. guarded by mu
	stats Stats
	// spent counts resets and blackholes drawn against MaxCuts. guarded by mu
	spent int
	// killBudget is the remaining injector-wide transferred-byte allowance
	// before the crash fires; negative disables (or: already fired). guarded by mu
	killBudget int64
	// conns tracks live wrapped connections so a kill can sever them all;
	// entries remove themselves on Close. guarded by mu
	conns map[*conn]struct{}
	// listeners tracks wrapped listeners for the same reason. guarded by mu
	listeners []net.Listener
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	killBudget := int64(-1)
	if cfg.KillAfter > 0 {
		// The kill point carries the same [d/2, 3d/2) jitter as CutAfter,
		// drawn from a stream decorrelated from the per-connection ones.
		span := uint64(cfg.KillAfter)
		killBudget = int64(span/2 + hashing.Mix64(cfg.Seed^0x6b696c6c706f696e)%span)
	}
	return &Injector{
		cfg:        cfg,
		killed:     make(chan struct{}),
		killBudget: killBudget,
		conns:      make(map[*conn]struct{}),
	}
}

// Killed returns a channel closed when the KillAfter crash has fired — the
// harness's cue to treat the wrapped process as dead and boot its next
// incarnation.
func (in *Injector) Killed() <-chan struct{} { return in.killed }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// reserveCut consumes one unit of the MaxCuts budget, reporting whether the
// fault may fire.
func (in *Injector) reserveCut() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxCuts > 0 && in.spent >= in.cfg.MaxCuts {
		return false
	}
	in.spent++
	if in.cfg.BlackholeWrites {
		in.stats.Blackholes++
	} else {
		in.stats.Cuts++
	}
	return true
}

// WrapConn wraps c with this injector's fault schedule.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	in.mu.Lock()
	idx := in.stats.Conns
	in.stats.Conns++
	in.mu.Unlock()
	// Decorrelate the per-connection stream from both the seed and the
	// connection index.
	rng := hashing.NewSplitMix64(hashing.Mix64(in.cfg.Seed ^ hashing.Mix64(idx+1)))
	budget := int64(-1)
	if in.cfg.CutAfter > 0 {
		span := uint64(in.cfg.CutAfter)
		budget = int64(span/2 + rng.Next()%span)
	}
	fc := &conn{
		Conn:   c,
		in:     in,
		rng:    rng,
		budget: budget,
		closed: make(chan struct{}),
	}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.mu.Unlock()
	return fc
}

// Dial connects to addr over TCP and wraps the connection.
func (in *Injector) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.WrapConn(c), nil
}

// Listen wraps ln so every accepted connection carries the fault schedule
// and ln itself is closed if the KillAfter crash fires.
func (in *Injector) Listen(ln net.Listener) net.Listener {
	in.mu.Lock()
	in.listeners = append(in.listeners, ln)
	in.mu.Unlock()
	return &listener{Listener: ln, in: in}
}

// chargeKillLocked charges n transferred bytes against the kill budget and
// reports whether this charge is the one that crossed it. Caller holds mu;
// only one caller can ever observe true (the budget goes negative with it).
//
//lint:locked mu
func (in *Injector) chargeKillLocked(n int) bool {
	if in.killBudget < 0 || n <= 0 {
		return false
	}
	if in.killBudget -= int64(n); in.killBudget > 0 {
		return false
	}
	in.killBudget = -1
	in.stats.Kills++
	return true
}

// fireKill severs every wrapped listener and live connection, then closes
// the Killed channel. Victims are collected under mu but cut outside it:
// cutting re-enters connection state, and the documented lock order
// (conn.mu before Injector.mu) forbids touching conn-side locks under mu.
func (in *Injector) fireKill() {
	in.mu.Lock()
	victims := make([]*conn, 0, len(in.conns))
	for c := range in.conns {
		victims = append(victims, c)
	}
	listeners := append([]net.Listener(nil), in.listeners...)
	in.mu.Unlock()
	for _, ln := range listeners {
		_ = ln.Close()
	}
	for _, c := range victims {
		c.cut()
	}
	close(in.killed)
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.WrapConn(c), nil
}

// conn is one fault-injected connection.
type conn struct {
	net.Conn
	in  *Injector
	rng *hashing.SplitMix64 // guarded by mu

	// mu serializes the schedule state so concurrent Read/Write draw from
	// one deterministic stream per connection. reserveCut is called with
	// it held, so conn.mu nests outside the injector's lock (never
	// reversed; see consumeBudget).
	//
	//lint:lockorder before(Injector.mu)
	mu sync.Mutex
	// budget is the remaining transferred-byte allowance before the cut
	// threshold fires; negative disables. guarded by mu
	budget int64
	// blackholed marks a connection whose writes now block. guarded by mu
	blackholed bool
	// wdeadline mirrors the write deadline for blackholed writes. guarded by mu
	wdeadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// Close closes the underlying connection, releases any blackholed writers,
// and removes the connection from the injector's kill registry.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.in.mu.Lock()
		delete(c.in.conns, c)
		c.in.mu.Unlock()
	})
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// delay sleeps the configured per-operation latency.
func (c *conn) delay() {
	d := c.in.cfg.Delay
	if j := c.in.cfg.DelayJitter; j > 0 {
		c.mu.Lock()
		d += time.Duration(c.rng.Next() % uint64(j))
		c.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// chunkSize draws the next transfer size for a request of n bytes, bounded
// by limit when limit is positive.
func (c *conn) chunkSize(n, limit int) int {
	if limit <= 0 || n <= 1 {
		return n
	}
	c.mu.Lock()
	k := 1 + int(c.rng.Next()%uint64(limit))
	c.mu.Unlock()
	if k > n {
		k = n
	}
	return k
}

// consume draws up to want bytes against the cut budget. It returns how
// many bytes may still transfer and whether the threshold fired (the fault
// fires only if the injector's MaxCuts budget admits it).
func (c *conn) consume(want int) (allowed int, fault bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < 0 {
		return want, false
	}
	if int64(want) < c.budget {
		c.budget -= int64(want)
		return want, false
	}
	allowed = int(c.budget)
	// Lock order: conn.mu before Injector.mu (never reversed).
	if !c.in.reserveCut() {
		c.budget = -1 // budget exhausted injector-wide: run clean from here
		return want, false
	}
	c.budget = 0
	return allowed, true
}

// cut force-closes the underlying connection so the peer observes a
// mid-stream failure.
func (c *conn) cut() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0) // RST, not FIN: a crash, not a clean shutdown
	}
	_ = c.Close()
}

// blackholeWait blocks until the write deadline passes or the connection is
// closed, returning the corresponding error.
func (c *conn) blackholeWait() error {
	c.mu.Lock()
	deadline := c.wdeadline
	c.mu.Unlock()
	var expire <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-expire:
		return os.ErrDeadlineExceeded
	}
}

func (c *conn) Write(p []byte) (int, error) {
	written := 0
	for written < len(p) {
		c.mu.Lock()
		holed := c.blackholed
		c.mu.Unlock()
		if holed {
			return written, c.blackholeWait()
		}
		c.delay()
		chunk := c.chunkSize(len(p)-written, c.in.cfg.WriteChunk)
		allowed, fault := c.consume(chunk)
		if fault && c.in.cfg.BlackholeWrites {
			c.mu.Lock()
			c.blackholed = true
			c.mu.Unlock()
			if written+allowed > 0 {
				// Let already-admitted bytes through; the next write (or
				// loop iteration) blocks.
				n, err := c.Conn.Write(p[written : written+allowed])
				c.noteWrite(n)
				written += n
				if err != nil {
					return written, err
				}
			}
			continue
		}
		if fault && allowed == 0 {
			c.cut()
			return written, fmt.Errorf("%w after %d bytes", ErrInjectedReset, written)
		}
		n, err := c.Conn.Write(p[written : written+allowed])
		c.noteWrite(n)
		written += n
		if err != nil {
			return written, err
		}
		if fault {
			c.cut()
			return written, fmt.Errorf("%w after %d bytes", ErrInjectedReset, written)
		}
	}
	if c.in.cfg.WriteChunk > 0 && len(p) > c.in.cfg.WriteChunk {
		c.in.mu.Lock()
		c.in.stats.PartialWrites++
		c.in.mu.Unlock()
	}
	return written, nil
}

func (c *conn) Read(p []byte) (int, error) {
	c.delay()
	chunk := c.chunkSize(len(p), c.in.cfg.ReadChunk)
	if chunk < len(p) {
		c.in.mu.Lock()
		c.in.stats.ShortReads++
		c.in.mu.Unlock()
	}
	allowed, fault := c.consume(chunk)
	if fault && c.in.cfg.BlackholeWrites {
		// Blackholes stall the write side only; the read proceeds.
		c.mu.Lock()
		c.blackholed = true
		c.mu.Unlock()
		allowed = chunk
		fault = false
	}
	if fault && allowed == 0 {
		c.cut()
		return 0, fmt.Errorf("read: %w", ErrInjectedReset)
	}
	n, err := c.Conn.Read(p[:allowed])
	c.in.mu.Lock()
	c.in.stats.BytesRead += uint64(n)
	kill := c.in.chargeKillLocked(n)
	c.in.mu.Unlock()
	if kill {
		c.in.fireKill()
	}
	if fault {
		c.cut()
		if err == nil {
			err = fmt.Errorf("read: %w", ErrInjectedReset)
		}
	}
	return n, err
}

func (c *conn) noteWrite(n int) {
	c.in.mu.Lock()
	c.in.stats.BytesWritten += uint64(n)
	kill := c.in.chargeKillLocked(n)
	c.in.mu.Unlock()
	if kill {
		c.in.fireKill()
	}
}
