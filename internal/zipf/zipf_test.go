package zipf

import (
	"math"
	"testing"

	"dcsketch/internal/hashing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(-5, 1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(10, -1); err == nil {
		t.Error("negative skew accepted")
	}
	if _, err := New(10, math.NaN()); err == nil {
		t.Error("NaN skew accepted")
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 1.5, 2, 2.5} {
		d, err := New(1000, z)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 1; i <= d.N(); i++ {
			sum += d.P(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("z=%v: probabilities sum to %v", z, sum)
		}
	}
}

func TestPMonotoneDecreasing(t *testing.T) {
	d, err := New(100, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 100; i++ {
		if d.P(i) > d.P(i-1)+1e-12 {
			t.Fatalf("P(%d)=%v > P(%d)=%v", i, d.P(i), i-1, d.P(i-1))
		}
	}
}

func TestPOutOfRange(t *testing.T) {
	d, err := New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.P(0) != 0 || d.P(11) != 0 || d.P(-1) != 0 {
		t.Fatal("out-of-range ranks must have zero mass")
	}
}

func TestUniformWhenZeroSkew(t *testing.T) {
	d, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if math.Abs(d.P(i)-0.25) > 1e-9 {
			t.Fatalf("z=0: P(%d) = %v, want 0.25", i, d.P(i))
		}
	}
}

func TestRankBoundaries(t *testing.T) {
	d, err := New(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Rank(0); got != 1 {
		t.Fatalf("Rank(0) = %d, want 1", got)
	}
	if got := d.Rank(0.9999999); got < 1 || got > 10 {
		t.Fatalf("Rank(~1) = %d out of range", got)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d, err := New(50, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(1)
	const n = 200000
	counts := make([]int, 51)
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	for rank := 1; rank <= 5; rank++ {
		want := d.P(rank) * n
		got := float64(counts[rank])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("rank %d: %v samples, want ~%v", rank, got, want)
		}
	}
}

func TestPartitionSumsExactly(t *testing.T) {
	for _, tc := range []struct {
		n     int
		z     float64
		total int64
	}{
		{10, 1, 100},
		{1000, 1.5, 12345},
		{7, 2.5, 3},
		{5, 0, 17},
		{100, 1, 0},
	} {
		d, err := New(tc.n, tc.z)
		if err != nil {
			t.Fatal(err)
		}
		shares := d.Partition(tc.total)
		var sum int64
		for _, s := range shares {
			if s < 0 {
				t.Fatalf("n=%d z=%v total=%d: negative share", tc.n, tc.z, tc.total)
			}
			sum += s
		}
		if sum != tc.total {
			t.Fatalf("n=%d z=%v: shares sum to %d, want %d", tc.n, tc.z, sum, tc.total)
		}
	}
}

func TestPartitionRoughlyMonotone(t *testing.T) {
	d, err := New(100, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	shares := d.Partition(100000)
	for i := 1; i < len(shares); i++ {
		if shares[i] > shares[i-1]+1 {
			t.Fatalf("share[%d]=%d exceeds share[%d]=%d", i, shares[i], i-1, shares[i-1])
		}
	}
	if shares[0] == 0 {
		t.Fatal("top rank received no mass")
	}
}

func TestExtremeSkewConcentratesMass(t *testing.T) {
	// The paper notes that at z=2.5 more than 95% of the mass sits in the
	// top-5 destinations.
	d, err := New(50000, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	top5 := 0.0
	for i := 1; i <= 5; i++ {
		top5 += d.P(i)
	}
	if top5 < 0.95 {
		t.Fatalf("z=2.5 top-5 mass = %v, want > 0.95", top5)
	}
}
