// Package zipf provides deterministic Zipfian distributions over ranks
// 1..N, the workload model of the paper's experimental study (§6.1): "a
// synthetic data generator based on Zipfian frequency distributions [37]
// (with various levels of skew)".
//
// Rank i carries probability mass proportional to 1/i^z. The package offers
// both a sampler (draw ranks with the right marginal distribution) and an
// exact partitioner (split a fixed total across ranks in Zipf proportions),
// which is what the update-stream generator uses to hit an exact number of
// distinct source-destination pairs U.
package zipf

import (
	"fmt"
	"math"
	"sort"

	"dcsketch/internal/hashing"
)

// Dist is a Zipfian distribution over ranks 1..N with skew z.
type Dist struct {
	n   int
	z   float64
	cdf []float64 // cdf[i] = Pr[rank <= i+1]
}

// New builds the distribution. n must be positive; z must be non-negative
// (z = 0 degenerates to uniform).
func New(n int, z float64) (*Dist, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: n = %d, must be positive", n)
	}
	if z < 0 || math.IsNaN(z) || math.IsInf(z, 0) {
		return nil, fmt.Errorf("zipf: invalid skew %v", z)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -z)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Dist{n: n, z: z, cdf: cdf}, nil
}

// N returns the number of ranks.
func (d *Dist) N() int { return d.n }

// Skew returns the skew parameter z.
func (d *Dist) Skew() float64 { return d.z }

// P returns the probability mass of rank i (1-based).
func (d *Dist) P(rank int) float64 {
	if rank < 1 || rank > d.n {
		return 0
	}
	if rank == 1 {
		return d.cdf[0]
	}
	return d.cdf[rank-1] - d.cdf[rank-2]
}

// Rank maps a uniform value u in [0,1) to a rank in 1..N by inverse CDF.
func (d *Dist) Rank(u float64) int {
	return sort.SearchFloat64s(d.cdf, u) + 1
}

// Sample draws a rank using the given PRNG.
func (d *Dist) Sample(rng *hashing.SplitMix64) int {
	u := float64(rng.Next()>>11) / (1 << 53)
	return d.Rank(u)
}

// Partition splits total into N non-negative integer shares proportional to
// the Zipf masses, with the shares summing exactly to total (largest-
// remainder rounding). Share i corresponds to rank i+1. This is how the
// generator assigns exactly U distinct pairs across d destinations.
func (d *Dist) Partition(total int64) []int64 {
	shares := make([]int64, d.n)
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, d.n)
	var assigned int64
	for i := 0; i < d.n; i++ {
		exact := d.P(i+1) * float64(total)
		fl := math.Floor(exact)
		shares[i] = int64(fl)
		assigned += shares[i]
		rems[i] = rem{idx: i, frac: exact - fl}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := int64(0); i < total-assigned; i++ {
		shares[rems[int(i)%d.n].idx]++
	}
	return shares
}
