package wire

import (
	"bufio"
	"bytes"
	"testing"
)

func FuzzDecodeUpdates(f *testing.F) {
	f.Add(AppendUpdates(nil, []Update{{1, 2, 1}, {3, 4, -1}}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ups, err := DecodeUpdates(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to an equivalent decode.
		again, err := DecodeUpdates(AppendUpdates(nil, ups))
		if err != nil || len(again) != len(ups) {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range ups {
			if ups[i] != again[i] {
				t.Fatalf("update %d changed: %+v vs %+v", i, ups[i], again[i])
			}
		}
	})
}

func FuzzDecodeTopKReply(f *testing.F) {
	f.Add(AppendTopKReply(nil, []TopKEntry{{1, 10}}))
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeTopKReply(data)
		if err != nil {
			return
		}
		again, err := DecodeTopKReply(AppendTopKReply(nil, entries))
		if err != nil || len(again) != len(entries) {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgAck, nil)
	_ = WriteFrame(&buf, MsgUpdates, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < len(data)+2; i++ {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("frame of %d bytes accepted (type %d)", len(payload), typ)
			}
		}
	})
}
