package wire

import (
	"bufio"
	"bytes"
	"testing"
)

func FuzzDecodeUpdates(f *testing.F) {
	f.Add(AppendUpdates(nil, []Update{{1, 2, 1}, {3, 4, -1}}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ups, err := DecodeUpdates(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode to an equivalent decode.
		again, err := DecodeUpdates(AppendUpdates(nil, ups))
		if err != nil || len(again) != len(ups) {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range ups {
			if ups[i] != again[i] {
				t.Fatalf("update %d changed: %+v vs %+v", i, ups[i], again[i])
			}
		}
	})
}

func FuzzDecodeTopKReply(f *testing.F) {
	f.Add(AppendTopKReply(nil, []TopKEntry{{1, 10}}))
	f.Add([]byte{9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeTopKReply(data)
		if err != nil {
			return
		}
		again, err := DecodeTopKReply(AppendTopKReply(nil, entries))
		if err != nil || len(again) != len(entries) {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgAck, nil)
	_ = WriteFrame(&buf, MsgUpdates, []byte("payload"))
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < len(data)+2; i++ {
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("frame of %d bytes accepted (type %d)", len(payload), typ)
			}
		}
	})
}

func FuzzDecodeHello(f *testing.F) {
	f.Add(AppendHello(nil, 1))
	f.Add(AppendHello(nil, ^uint64(0)))
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := DecodeHello(data)
		if err != nil {
			return
		}
		if id == 0 {
			t.Fatal("zero session ID decoded without error")
		}
		again, err := DecodeHello(AppendHello(nil, id))
		if err != nil || again != id {
			t.Fatalf("re-decode: (%d, %v), want %d", again, err, id)
		}
	})
}

// FuzzDecodeUpdatesInto differentially checks the zero-copy decoder against
// DecodeUpdates on arbitrary payloads: identical error/no-error outcome and
// identical records, even when the destination arrives dirty (stale records
// from a previous frame past its length, as the pooled server scratch does).
func FuzzDecodeUpdatesInto(f *testing.F) {
	f.Add(AppendUpdates(nil, []Update{{1, 2, 1}, {3, 4, -1}}))
	f.Add(AppendUpdates(nil, []Update{{1, 2, 1}, {3, 4, -1}})[:5]) // truncated mid-record
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // oversized count
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := DecodeUpdates(data)
		dirty := make([]Update, 0, 8)
		dirty = append(dirty, Update{9, 9, 9}, Update{8, 8, 8})
		got, gotErr := DecodeUpdatesInto(data, dirty[:0])
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: DecodeUpdates=%v DecodeUpdatesInto=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("length mismatch: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("update %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	})
}

// FuzzDecodeSeqUpdatesInto is FuzzDecodeUpdatesInto for the sequenced form.
func FuzzDecodeSeqUpdatesInto(f *testing.F) {
	f.Add(AppendSeqUpdates(nil, 1, []Update{{1, 2, 1}, {3, 4, -1}}))
	f.Add(AppendSeqUpdates(nil, 7, []Update{{1, 2, 1}})[:4])                        // truncated mid-record
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // oversized count
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		wantSeq, want, wantErr := DecodeSeqUpdates(data)
		dirty := make([]Update, 0, 8)
		dirty = append(dirty, Update{9, 9, 9})
		gotSeq, got, gotErr := DecodeSeqUpdatesInto(data, dirty[:0])
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: DecodeSeqUpdates=%v DecodeSeqUpdatesInto=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if gotSeq != wantSeq || len(got) != len(want) {
			t.Fatalf("(%d, %d records) vs (%d, %d records)", gotSeq, len(got), wantSeq, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("update %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	})
}

func FuzzDecodeSeqUpdates(f *testing.F) {
	f.Add(AppendSeqUpdates(nil, 1, []Update{{1, 2, 1}, {3, 4, -1}}))
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, ups, err := DecodeSeqUpdates(data)
		if err != nil {
			return
		}
		if seq == 0 {
			t.Fatal("zero sequence decoded without error")
		}
		seq2, again, err := DecodeSeqUpdates(AppendSeqUpdates(nil, seq, ups))
		if err != nil || seq2 != seq || len(again) != len(ups) {
			t.Fatalf("re-decode failed: (%d, %d updates, %v)", seq2, len(again), err)
		}
	})
}
