// Package wire defines the framed TCP protocol spoken between edge
// exporters and the DDoS monitor daemon (cmd/ddosmond), realizing the
// paper's deployment architecture (Fig. 1): network elements export flow
// updates to a central DDoS MONITOR, and per-edge sketches can be shipped
// upward for collector-side merging.
//
// Every message is one frame:
//
//	u32 little-endian payload length | u8 type | payload
//
// Payload encodings are varint-based and delta-friendly:
//
//	MsgUpdates:    count, then per update: src u32, dst u32 (fixed LE),
//	               delta zigzag varint
//	MsgTopKQuery:  k uvarint
//	MsgTopKReply:  count, then per entry: dest u32 LE, frequency uvarint
//	MsgSketch:     an encoded sketch (dcs wire format) for merging
//	MsgAck:        empty
//	MsgError:      UTF-8 message
//	MsgHello:      version uvarint (currently 1), session ID u64 LE
//	MsgHelloAck:   last-acked sequence uvarint
//	MsgSeqUpdates: sequence uvarint, then the MsgUpdates encoding
//	MsgSeqAck:     acked sequence uvarint
//
// MsgHello/MsgSeqUpdates are the replay handshake spoken by resilient
// exporters (internal/export): an exporter announces a nonzero session ID,
// the server echoes the highest sequence it has applied for that session,
// and every subsequent batch carries a strictly increasing sequence so a
// batch retried after a lost ack is acked but not re-applied. Sequence-less
// MsgUpdates remains valid and unchanged for old clients.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Frame types.
const (
	MsgUpdates MsgType = iota + 1
	MsgTopKQuery
	MsgTopKReply
	MsgSketch //lint:msgok payload is a dcs sketch in its own MarshalBinary format, not a wire codec
	MsgAck    //lint:msgok payload is empty by definition; the frame header is the whole message
	MsgError  //lint:msgok payload is raw UTF-8 text with no structure to encode or decode
	MsgHello
	MsgHelloAck
	MsgSeqUpdates
	MsgSeqAck
)

// MsgTypeCount is one past the highest defined MsgType, sized for indexing
// per-type counter arrays (index 0 is unused; unknown types are counted
// separately by their consumers).
const MsgTypeCount = int(MsgSeqAck) + 1

// String returns the lowercase frame-type name used in telemetry labels.
func (t MsgType) String() string {
	switch t {
	case MsgUpdates:
		return "updates"
	case MsgTopKQuery:
		return "topk_query"
	case MsgTopKReply:
		return "topk_reply"
	case MsgSketch:
		return "sketch"
	case MsgAck:
		return "ack"
	case MsgError:
		return "error"
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello_ack"
	case MsgSeqUpdates:
		return "seq_updates"
	case MsgSeqAck:
		return "seq_ack"
	}
	return "unknown"
}

// MaxFrameSize bounds a frame payload; larger frames are rejected before
// allocation (a malicious peer must not make the monitor allocate
// gigabytes).
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge is returned for frames exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// ErrMalformed is wrapped by all payload decoding errors.
var ErrMalformed = errors.New("wire: malformed payload")

// Update mirrors the flow-update triple.
type Update struct {
	Src, Dst uint32
	Delta    int64
}

// TopKEntry is one entry of a top-k reply.
type TopKEntry struct {
	Dest uint32
	F    int64
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var header [5]byte
	binary.LittleEndian.PutUint32(header[:4], uint32(len(payload)))
	header[4] = byte(t)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r. io.EOF is returned verbatim at a clean
// frame boundary.
func ReadFrame(r *bufio.Reader) (MsgType, []byte, error) {
	var header [5]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(header[:4])
	if n > MaxFrameSize {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read payload: %w", err)
	}
	return MsgType(header[4]), payload, nil
}

// ReadFrameInto is ReadFrame reading the payload into buf, growing it only
// when the frame exceeds its capacity. It returns the payload as a prefix of
// the (possibly grown) buffer, which it also returns for reuse: the zero-copy
// ingest loop passes the same pooled buffer back in on every frame, so steady
// state reads allocate nothing. The returned payload is only valid until the
// next call with the same buffer.
func ReadFrameInto(r *bufio.Reader, buf []byte) (t MsgType, payload, newBuf []byte, err error) {
	// Peek+Discard instead of io.ReadFull into a local array: the header
	// bytes are read in place from the bufio buffer, so nothing escapes —
	// this keeps the steady-state read path at zero allocations per frame.
	header, err := r.Peek(5)
	if err != nil {
		if errors.Is(err, io.EOF) {
			if len(header) == 0 {
				return 0, nil, buf, io.EOF
			}
			// Match io.ReadFull's contract for a truncated header.
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(header[:4])
	t = MsgType(header[4])
	if _, err := r.Discard(5); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: read header: %w", err)
	}
	if n > MaxFrameSize {
		return 0, nil, buf, ErrFrameTooLarge
	}
	if uint64(cap(buf)) < uint64(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("wire: read payload: %w", err)
	}
	return t, payload, buf, nil
}

// AppendFrame encodes one frame (header plus payload) onto buf and reports
// whether the payload fit the frame-size bound. Writing the appended bytes
// with a single Write is the allocation-free counterpart of WriteFrame,
// whose stack header escapes into the io.Writer interface call; reply paths
// that reuse buf across frames pay no per-frame allocation at all.
func AppendFrame(buf []byte, t MsgType, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, byte(t))
	return append(buf, payload...), nil
}

// AppendUpdates encodes a batch of updates onto buf.
func AppendUpdates(buf []byte, updates []Update) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	for _, u := range updates {
		buf = binary.LittleEndian.AppendUint32(buf, u.Src)
		buf = binary.LittleEndian.AppendUint32(buf, u.Dst)
		buf = binary.AppendVarint(buf, u.Delta)
	}
	return buf
}

// DecodeUpdates decodes a MsgUpdates payload into a freshly allocated slice.
func DecodeUpdates(payload []byte) ([]Update, error) {
	return DecodeUpdatesInto(payload, nil)
}

// DecodeUpdatesInto decodes a MsgUpdates payload by appending onto dst
// (which may be nil or a truncated-to-zero pooled buffer) and returns the
// extended slice. When dst's capacity covers the batch, decoding performs no
// allocation — this is the zero-copy ingest path: the server hands the same
// pooled scratch back in for every frame. On error dst's contents are
// unspecified and the returned slice must not be used.
func DecodeUpdatesInto(payload []byte, dst []Update) ([]Update, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("%w: truncated count", ErrMalformed)
	}
	payload = payload[n:]
	// Each update needs at least 9 bytes; reject counts the payload
	// cannot possibly hold before allocating.
	if count > uint64(len(payload)/9+1) {
		return dst, fmt.Errorf("%w: count %d exceeds payload", ErrMalformed, count)
	}
	if free := uint64(cap(dst) - len(dst)); free < count {
		grown := make([]Update, len(dst), uint64(len(dst))+count)
		copy(grown, dst)
		dst = grown
	}
	for i := uint64(0); i < count; i++ {
		if len(payload) < 8 {
			return dst, fmt.Errorf("%w: truncated update %d", ErrMalformed, i)
		}
		u := Update{
			Src: binary.LittleEndian.Uint32(payload),
			Dst: binary.LittleEndian.Uint32(payload[4:]),
		}
		payload = payload[8:]
		delta, dn := binary.Varint(payload)
		if dn <= 0 {
			return dst, fmt.Errorf("%w: truncated delta %d", ErrMalformed, i)
		}
		payload = payload[dn:]
		u.Delta = delta
		dst = append(dst, u)
	}
	if len(payload) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(payload))
	}
	return dst, nil
}

// AppendTopKQuery encodes a top-k query payload.
func AppendTopKQuery(buf []byte, k int) []byte {
	return binary.AppendUvarint(buf, uint64(k))
}

// DecodeTopKQuery decodes a MsgTopKQuery payload.
func DecodeTopKQuery(payload []byte) (int, error) {
	k, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, fmt.Errorf("%w: bad top-k query", ErrMalformed)
	}
	if k > 1<<20 {
		return 0, fmt.Errorf("%w: implausible k %d", ErrMalformed, k)
	}
	return int(k), nil
}

// AppendTopKReply encodes a top-k reply payload.
func AppendTopKReply(buf []byte, entries []TopKEntry) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, e.Dest)
		buf = binary.AppendUvarint(buf, uint64(e.F))
	}
	return buf
}

// DecodeTopKReply decodes a MsgTopKReply payload.
func DecodeTopKReply(payload []byte) ([]TopKEntry, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: truncated count", ErrMalformed)
	}
	payload = payload[n:]
	if count > uint64(len(payload)/5+1) {
		return nil, fmt.Errorf("%w: count %d exceeds payload", ErrMalformed, count)
	}
	out := make([]TopKEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrMalformed, i)
		}
		dest := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		f, fn := binary.Uvarint(payload)
		if fn <= 0 {
			return nil, fmt.Errorf("%w: truncated frequency %d", ErrMalformed, i)
		}
		payload = payload[fn:]
		out = append(out, TopKEntry{Dest: dest, F: int64(f)})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(payload))
	}
	return out, nil
}

// HelloVersion is the current replay-handshake protocol version.
const HelloVersion = 1

// AppendHello encodes a MsgHello payload announcing a replay session.
// Session IDs must be nonzero (zero means "no session" server-side).
func AppendHello(buf []byte, sessionID uint64) []byte {
	buf = binary.AppendUvarint(buf, HelloVersion)
	return binary.LittleEndian.AppendUint64(buf, sessionID)
}

// DecodeHello decodes a MsgHello payload into its session ID.
func DecodeHello(payload []byte) (uint64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated hello version", ErrMalformed)
	}
	if v != HelloVersion {
		return 0, fmt.Errorf("%w: unsupported hello version %d", ErrMalformed, v)
	}
	payload = payload[n:]
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: hello session ID must be 8 bytes, got %d", ErrMalformed, len(payload))
	}
	id := binary.LittleEndian.Uint64(payload)
	if id == 0 {
		return 0, fmt.Errorf("%w: zero hello session ID", ErrMalformed)
	}
	return id, nil
}

// AppendHelloAck encodes a MsgHelloAck payload: the highest sequence the
// server has applied (and will never re-apply) for the announced session;
// zero when the session is new.
func AppendHelloAck(buf []byte, lastAcked uint64) []byte {
	return binary.AppendUvarint(buf, lastAcked)
}

// DecodeHelloAck decodes a MsgHelloAck payload.
func DecodeHelloAck(payload []byte) (uint64, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, fmt.Errorf("%w: bad hello ack", ErrMalformed)
	}
	return seq, nil
}

// AppendSeqUpdates encodes a MsgSeqUpdates payload: a batch sequence number
// (strictly increasing per session, starting at 1) followed by the
// MsgUpdates encoding.
func AppendSeqUpdates(buf []byte, seq uint64, updates []Update) []byte {
	buf = binary.AppendUvarint(buf, seq)
	return AppendUpdates(buf, updates)
}

// DecodeSeqUpdates decodes a MsgSeqUpdates payload into a freshly allocated
// slice.
func DecodeSeqUpdates(payload []byte) (uint64, []Update, error) {
	return DecodeSeqUpdatesInto(payload, nil)
}

// DecodeSeqUpdatesInto is DecodeSeqUpdates appending the decoded updates
// onto dst, with the same reuse contract as DecodeUpdatesInto. On error the
// returned slice's contents are unspecified.
func DecodeSeqUpdatesInto(payload []byte, dst []Update) (uint64, []Update, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, dst, fmt.Errorf("%w: truncated sequence", ErrMalformed)
	}
	if seq == 0 {
		return 0, dst, fmt.Errorf("%w: zero batch sequence", ErrMalformed)
	}
	updates, err := DecodeUpdatesInto(payload[n:], dst)
	if err != nil {
		return 0, updates, err
	}
	return seq, updates, nil
}

// AppendSeqAck encodes a MsgSeqAck payload carrying the acked sequence.
func AppendSeqAck(buf []byte, seq uint64) []byte {
	return binary.AppendUvarint(buf, seq)
}

// DecodeSeqAck decodes a MsgSeqAck payload.
func DecodeSeqAck(payload []byte) (uint64, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, fmt.Errorf("%w: bad sequence ack", ErrMalformed)
	}
	return seq, nil
}
