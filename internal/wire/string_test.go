package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// declaredMsgTypes parses wire.go and returns the names of every constant
// declared with type MsgType, in declaration order. Enumerating the source
// rather than hand-listing the constants means a newly added frame type is
// covered by TestMsgTypeStringExhaustive without anyone editing this test.
func declaredMsgTypes(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "wire.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse wire.go: %v", err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		// A MsgType const block: the first spec names the type and the
		// rest inherit it via iota. Blocks with other types (MsgTypeCount,
		// MaxFrameSize) have no MsgType-typed spec and are skipped.
		typed := false
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			if id, ok := vs.Type.(*ast.Ident); ok {
				typed = id.Name == "MsgType"
			} else if len(vs.Values) > 0 {
				typed = false // explicit value of another type ends inheritance
			}
			if !typed {
				continue
			}
			for _, name := range vs.Names {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

// TestMsgTypeStringExhaustive checks the three-way contract between the
// declared MsgType constants, MsgTypeCount, and String(): every declared
// constant (values 1..MsgTypeCount-1, contiguous) has a distinct,
// non-"unknown" label, and everything outside that range falls back to
// "unknown". msgexhaustive enforces the String arms statically; this test
// ground-truths the labels at runtime.
func TestMsgTypeStringExhaustive(t *testing.T) {
	names := declaredMsgTypes(t)
	if len(names) == 0 {
		t.Fatal("no MsgType constants found in wire.go")
	}
	if got, want := len(names), MsgTypeCount-1; got != want {
		t.Fatalf("declared %d MsgType constants, but MsgTypeCount-1 = %d; the iota block and the count drifted", got, want)
	}
	seen := map[string]MsgType{}
	for i := range names {
		v := MsgType(i + 1) // iota+1: declaration order is value order
		s := v.String()
		if s == "unknown" {
			t.Errorf("%s (MsgType %d) has no String label; telemetry would report it as unknown", names[i], v)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("MsgType %d and %d share the String label %q", prev, v, s)
		}
		seen[s] = v
	}
	for _, v := range []MsgType{0, MsgType(MsgTypeCount), MsgType(MsgTypeCount) + 1, 255} {
		if got := v.String(); got != "unknown" {
			t.Errorf("MsgType(%d).String() = %q, want \"unknown\"", v, got)
		}
	}
}
