package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, MsgUpdates, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgAck, nil); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	typ, got, err := ReadFrame(r)
	if err != nil || typ != MsgUpdates || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: (%v,%q,%v)", typ, got, err)
	}
	typ, got, err = ReadFrame(r)
	if err != nil || typ != MsgAck || len(got) != 0 {
		t.Fatalf("frame 2: (%v,%q,%v)", typ, got, err)
	}
	if _, _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgSketch, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, 4, 7, len(data) - 1} {
		if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data[:cut]))); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestFrameSizeBound(t *testing.T) {
	// A header claiming a gigantic payload must be rejected without
	// allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, byte(MsgUpdates)}
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge))); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, MsgSketch, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write err = %v", err)
	}
}

func TestUpdatesRoundTrip(t *testing.T) {
	err := quick.Check(func(srcs, dsts []uint32, deltas []int8) bool {
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		if len(deltas) < n {
			n = len(deltas)
		}
		in := make([]Update, n)
		for i := range in {
			in[i] = Update{Src: srcs[i], Dst: dsts[i], Delta: int64(deltas[i])}
		}
		out, err := DecodeUpdates(AppendUpdates(nil, in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeUpdatesRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty-nonzero-count": {5},
		"huge count":          {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"truncated update":    append([]byte{1}, 1, 2, 3),
		"trailing bytes":      append(AppendUpdates(nil, []Update{{1, 2, 1}}), 0xee),
	}
	for name, payload := range cases {
		if _, err := DecodeUpdates(payload); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTopKQueryRoundTrip(t *testing.T) {
	for _, k := range []int{0, 1, 10, 100000} {
		got, err := DecodeTopKQuery(AppendTopKQuery(nil, k))
		if err != nil || got != k {
			t.Fatalf("k=%d: (%d,%v)", k, got, err)
		}
	}
	if _, err := DecodeTopKQuery(nil); err == nil {
		t.Error("empty query accepted")
	}
	if _, err := DecodeTopKQuery(append(AppendTopKQuery(nil, 1), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeTopKQuery(AppendTopKQuery(nil, 1<<30)); err == nil {
		t.Error("implausible k accepted")
	}
}

func TestTopKReplyRoundTrip(t *testing.T) {
	in := []TopKEntry{{Dest: 0xdeadbeef, F: 12345}, {Dest: 0, F: 0}, {Dest: 7, F: 1 << 40}}
	out, err := DecodeTopKReply(AppendTopKReply(nil, in))
	if err != nil || len(out) != len(in) {
		t.Fatalf("(%v, %v)", out, err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, in[i], out[i])
		}
	}
	if _, err := DecodeTopKReply([]byte{9}); err == nil {
		t.Error("truncated reply accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 42, 1 << 63, ^uint64(0)} {
		got, err := DecodeHello(AppendHello(nil, id))
		if err != nil || got != id {
			t.Fatalf("id=%d: (%d,%v)", id, got, err)
		}
	}
	cases := map[string][]byte{
		"empty":          nil,
		"zero session":   AppendHello(nil, 0),
		"bad version":    append([]byte{2}, AppendHello(nil, 7)[1:]...),
		"short session":  {1, 1, 2, 3},
		"trailing bytes": append(AppendHello(nil, 7), 0xee),
		"version only":   {1},
	}
	for name, payload := range cases {
		if _, err := DecodeHello(payload); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 999, 1 << 50} {
		got, err := DecodeHelloAck(AppendHelloAck(nil, seq))
		if err != nil || got != seq {
			t.Fatalf("seq=%d: (%d,%v)", seq, got, err)
		}
	}
	if _, err := DecodeHelloAck(nil); err == nil {
		t.Error("empty hello ack accepted")
	}
	if _, err := DecodeHelloAck(append(AppendHelloAck(nil, 1), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSeqUpdatesRoundTrip(t *testing.T) {
	in := []Update{{Src: 1, Dst: 2, Delta: 1}, {Src: 3, Dst: 4, Delta: -1}}
	for _, seq := range []uint64{1, 128, 1 << 40} {
		gotSeq, out, err := DecodeSeqUpdates(AppendSeqUpdates(nil, seq, in))
		if err != nil || gotSeq != seq || len(out) != len(in) {
			t.Fatalf("seq=%d: (%d,%v,%v)", seq, gotSeq, out, err)
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("update %d: %+v vs %+v", i, in[i], out[i])
			}
		}
	}
	if _, _, err := DecodeSeqUpdates(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, _, err := DecodeSeqUpdates(AppendSeqUpdates(nil, 0, in)); err == nil {
		t.Error("zero sequence accepted")
	}
	if _, _, err := DecodeSeqUpdates(append(AppendSeqUpdates(nil, 5, in), 0xee)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSeqAckRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 77, 1 << 60} {
		got, err := DecodeSeqAck(AppendSeqAck(nil, seq))
		if err != nil || got != seq {
			t.Fatalf("seq=%d: (%d,%v)", seq, got, err)
		}
	}
	if _, err := DecodeSeqAck(nil); err == nil {
		t.Error("empty seq ack accepted")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	// Every defined type must have a distinct non-"unknown" telemetry label;
	// one past the last must not.
	seen := map[string]bool{}
	for typ := MsgUpdates; int(typ) < MsgTypeCount; typ++ {
		s := typ.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("type %d label %q (unknown or duplicate)", typ, s)
		}
		seen[s] = true
	}
	if MsgType(MsgTypeCount).String() != "unknown" {
		t.Fatalf("type %d should be unknown", MsgTypeCount)
	}
}

func TestEmptyBatches(t *testing.T) {
	out, err := DecodeUpdates(AppendUpdates(nil, nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: (%v,%v)", out, err)
	}
	entries, err := DecodeTopKReply(AppendTopKReply(nil, nil))
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty reply: (%v,%v)", entries, err)
	}
}

// TestReadFrameIntoMatchesReadFrame replays random byte streams — valid
// frame sequences, truncations, and garbage — through both readers and
// requires identical frame sequences and error outcomes. The Into reader
// reuses one arena across the whole stream, the way the server's ingest
// loop does.
func TestReadFrameIntoMatchesReadFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		var stream []byte
		for i := rng.Intn(5); i > 0; i-- {
			payload := make([]byte, rng.Intn(300))
			for j := range payload {
				payload[j] = byte(rng.Intn(256))
			}
			var err error
			stream, err = AppendFrame(stream, MsgType(1+rng.Intn(MsgTypeCount-1)), payload)
			if err != nil {
				t.Fatal(err)
			}
		}
		switch trial % 3 {
		case 1: // truncate
			if len(stream) > 0 {
				stream = stream[:rng.Intn(len(stream))]
			}
		case 2: // append garbage
			for i := rng.Intn(8); i > 0; i-- {
				stream = append(stream, byte(rng.Intn(256)))
			}
		}

		ref := bufio.NewReader(bytes.NewReader(stream))
		into := bufio.NewReader(bytes.NewReader(stream))
		var arena []byte
		for {
			wantTyp, wantPayload, wantErr := ReadFrame(ref)
			var gotTyp MsgType
			var gotPayload []byte
			var gotErr error
			gotTyp, gotPayload, arena, gotErr = ReadFrameInto(into, arena)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d: errors diverge: %v vs %v", trial, wantErr, gotErr)
			}
			if wantErr != nil {
				if errors.Is(wantErr, io.EOF) != errors.Is(gotErr, io.EOF) {
					t.Fatalf("trial %d: EOF-ness diverges: %v vs %v", trial, wantErr, gotErr)
				}
				break
			}
			if gotTyp != wantTyp || !bytes.Equal(gotPayload, wantPayload) {
				t.Fatalf("trial %d: frame diverges: (%v, %d bytes) vs (%v, %d bytes)",
					trial, gotTyp, len(gotPayload), wantTyp, len(wantPayload))
			}
		}
	}
}

// TestAppendFrameMatchesWriteFrame checks the two framers emit identical
// bytes and agree on the size bound.
func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	check := func(typ byte, payload []byte) bool {
		var buf bytes.Buffer
		wErr := WriteFrame(&buf, MsgType(typ), payload)
		appended, aErr := AppendFrame(nil, MsgType(typ), payload)
		if (wErr == nil) != (aErr == nil) {
			return false
		}
		if wErr != nil {
			return true
		}
		return bytes.Equal(buf.Bytes(), appended)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := AppendFrame(nil, MsgSketch, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized append err = %v", err)
	}
	// Appending onto an existing prefix must leave it intact.
	out, err := AppendFrame([]byte("prefix"), MsgAck, []byte{1, 2})
	if err != nil || !bytes.HasPrefix(out, []byte("prefix")) {
		t.Fatalf("prefix clobbered: %q (%v)", out, err)
	}
}

// TestDecodeUpdatesIntoReusesCapacity pins the zero-allocation contract the
// server's pooled scratch relies on: decoding into a slice with sufficient
// capacity must not allocate and must return the same backing array.
func TestDecodeUpdatesIntoReusesCapacity(t *testing.T) {
	batch := make([]Update, 100)
	for i := range batch {
		batch[i] = Update{Src: uint32(i), Dst: uint32(i * 7), Delta: int64(i%5 - 2)}
	}
	payload := AppendUpdates(nil, batch)
	scratch := make([]Update, 0, len(batch))
	allocs := testing.AllocsPerRun(100, func() {
		got, err := DecodeUpdatesInto(payload, scratch[:0])
		if err != nil || len(got) != len(batch) {
			panic("bad decode")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeUpdatesInto allocates %.1f times with warm scratch", allocs)
	}
	got, err := DecodeUpdatesInto(payload, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("warm decode moved to a new backing array")
	}
}
