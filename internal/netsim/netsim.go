// Package netsim simulates a small ISP network for end-to-end evaluation of
// the monitoring architecture (paper Fig. 1 and §2's "deployment inside the
// network" remark): a topology of routers joined by links, flows routed over
// shortest paths, and per-router monitors that observe exactly the flow
// updates transiting them. It answers deployment questions the analytical
// experiments cannot: which routers see which slice of a distributed attack,
// and how collector-side sketch merging recovers the global view.
//
// The simulation is event-free and deterministic: callers inject flow
// updates at ingress routers; the simulator forwards each update along the
// precomputed route towards its destination's egress router, delivering it
// to every on-path monitor.
package netsim

import (
	"fmt"
	"sort"

	"dcsketch/internal/dcs"
	"dcsketch/internal/stream"
	"dcsketch/internal/tdcs"
)

// RouterID names a router in the topology.
type RouterID int

// Topology is an undirected graph of routers. Build it with AddLink, then
// hand it to New; the simulator precomputes all-pairs shortest-path routing
// (BFS per router — topologies here are tens of routers).
type Topology struct {
	adj map[RouterID][]RouterID
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{adj: make(map[RouterID][]RouterID)}
}

// AddLink joins routers a and b bidirectionally. Adding a link twice is a
// no-op.
func (t *Topology) AddLink(a, b RouterID) {
	if a == b {
		return
	}
	for _, n := range t.adj[a] {
		if n == b {
			return
		}
	}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

// Routers returns the router IDs in ascending order.
func (t *Topology) Routers() []RouterID {
	out := make([]RouterID, 0, len(t.adj))
	for r := range t.adj {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Linear returns a chain topology 0-1-2-...-(n-1), the simplest backbone.
func Linear(n int) *Topology {
	t := NewTopology()
	for i := 0; i < n-1; i++ {
		t.AddLink(RouterID(i), RouterID(i+1))
	}
	return t
}

// Star returns a hub-and-spoke topology with router 0 as the hub and
// spokes 1..n.
func Star(n int) *Topology {
	t := NewTopology()
	for i := 1; i <= n; i++ {
		t.AddLink(0, RouterID(i))
	}
	return t
}

// Network is the simulated ISP: a topology with one tracking-sketch monitor
// per router and address-to-router attachment maps.
type Network struct {
	topo     *Topology
	monitors map[RouterID]*tdcs.Sketch
	// nextHop[a][b] is the next router from a towards b.
	nextHop map[RouterID]map[RouterID]RouterID
	// attach maps destination prefixes (the /24 of an address) to their
	// egress router.
	attach map[uint32]RouterID

	delivered uint64
}

// New builds a network over topo with one monitor per router, all sharing
// sketchCfg (and therefore mergeable at a collector).
func New(topo *Topology, sketchCfg dcs.Config) (*Network, error) {
	routers := topo.Routers()
	if len(routers) == 0 {
		return nil, fmt.Errorf("netsim: empty topology")
	}
	n := &Network{
		topo:     topo,
		monitors: make(map[RouterID]*tdcs.Sketch, len(routers)),
		nextHop:  make(map[RouterID]map[RouterID]RouterID, len(routers)),
		attach:   make(map[uint32]RouterID),
	}
	for _, r := range routers {
		sk, err := tdcs.New(sketchCfg)
		if err != nil {
			return nil, fmt.Errorf("netsim: monitor %d: %w", r, err)
		}
		n.monitors[r] = sk
	}
	// All-pairs next-hop via BFS from every router.
	for _, src := range routers {
		n.nextHop[src] = bfsNextHops(topo, src)
	}
	// Verify connectivity: every router must reach every other.
	for _, a := range routers {
		for _, b := range routers {
			if a == b {
				continue
			}
			if _, ok := n.nextHop[a][b]; !ok {
				return nil, fmt.Errorf("netsim: topology is disconnected (%d cannot reach %d)", a, b)
			}
		}
	}
	return n, nil
}

// bfsNextHops computes, for every destination router, the first hop on a
// shortest path from src.
func bfsNextHops(topo *Topology, src RouterID) map[RouterID]RouterID {
	next := make(map[RouterID]RouterID)
	parent := map[RouterID]RouterID{src: src}
	queue := []RouterID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range topo.adj[cur] {
			if _, seen := parent[nb]; seen {
				continue
			}
			parent[nb] = cur
			queue = append(queue, nb)
		}
	}
	for dst := range parent {
		if dst == src {
			continue
		}
		// Walk back from dst to the router adjacent to src.
		hop := dst
		for parent[hop] != src {
			hop = parent[hop]
		}
		next[dst] = hop
	}
	return next
}

// AttachPrefix declares that destination addresses in the /24 of addr egress
// at router r.
func (n *Network) AttachPrefix(addr uint32, r RouterID) error {
	if _, ok := n.monitors[r]; !ok {
		return fmt.Errorf("netsim: unknown router %d", r)
	}
	n.attach[addr>>8] = r
	return nil
}

// egressFor returns the egress router for a destination, defaulting to the
// lowest-numbered router for unattached prefixes.
func (n *Network) egressFor(dst uint32) RouterID {
	if r, ok := n.attach[dst>>8]; ok {
		return r
	}
	return n.topo.Routers()[0]
}

// Inject delivers one flow update at ingress router `ingress` and forwards
// it along the shortest path to the destination's egress router; every
// monitor on the path (ingress and egress included) observes it.
func (n *Network) Inject(ingress RouterID, u stream.Update) error {
	if _, ok := n.monitors[ingress]; !ok {
		return fmt.Errorf("netsim: unknown ingress router %d", ingress)
	}
	cur := ingress
	egress := n.egressFor(u.Dst)
	for {
		n.monitors[cur].Update(u.Src, u.Dst, int64(u.Delta))
		n.delivered++
		if cur == egress {
			return nil
		}
		cur = n.nextHop[cur][egress]
	}
}

// InjectStream injects a whole update sequence at one ingress.
func (n *Network) InjectStream(ingress RouterID, ups []stream.Update) error {
	for _, u := range ups {
		if err := n.Inject(ingress, u); err != nil {
			return err
		}
	}
	return nil
}

// Monitor returns router r's tracking sketch (nil for unknown routers).
func (n *Network) Monitor(r RouterID) *tdcs.Sketch { return n.monitors[r] }

// Delivered returns the total number of (update, router) observations.
func (n *Network) Delivered() uint64 { return n.delivered }

// CollectorTopK merges all router sketches into a fresh collector sketch
// and returns the network-wide top-k. Transit duplication (one flow seen by
// several routers) inflates the merged pair *counts* but not the distinct
// pair *identities*, so distinct-source frequencies are unaffected — the
// metric's set semantics is exactly why the paper's approach tolerates
// multi-point observation.
func (n *Network) CollectorTopK(k int) ([]dcs.Estimate, error) {
	routers := n.topo.Routers()
	col, err := tdcs.New(n.monitors[routers[0]].Config())
	if err != nil {
		return nil, fmt.Errorf("netsim: collector: %w", err)
	}
	for _, r := range routers {
		if err := col.Merge(n.monitors[r]); err != nil { //lint:seedok col is built from a router monitor's Config, and NewNetwork gives every router the same config
			return nil, fmt.Errorf("netsim: merge router %d: %w", r, err)
		}
	}
	return col.TopK(k), nil
}
