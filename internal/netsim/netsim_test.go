package netsim

import (
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/stream"
)

func TestTopologyBasics(t *testing.T) {
	topo := NewTopology()
	topo.AddLink(0, 1)
	topo.AddLink(1, 2)
	topo.AddLink(0, 1) // duplicate: no-op
	topo.AddLink(3, 3) // self-loop: no-op
	routers := topo.Routers()
	if len(routers) != 3 {
		t.Fatalf("Routers = %v", routers)
	}
	if len(topo.adj[0]) != 1 || len(topo.adj[1]) != 2 {
		t.Fatalf("adjacency corrupted: %v", topo.adj)
	}
}

func TestNewRejectsBadTopologies(t *testing.T) {
	if _, err := New(NewTopology(), dcs.Config{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	disconnected := NewTopology()
	disconnected.AddLink(0, 1)
	disconnected.AddLink(2, 3)
	if _, err := New(disconnected, dcs.Config{}); err == nil {
		t.Fatal("disconnected topology accepted")
	}
	if _, err := New(Linear(2), dcs.Config{Buckets: 1}); err == nil {
		t.Fatal("invalid sketch config accepted")
	}
}

func TestRoutingDeliversAlongPath(t *testing.T) {
	// Chain 0-1-2-3; destination attached at 3, injected at 0: every
	// router on the path must observe the update.
	net, err := New(Linear(4), dcs.Config{Buckets: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const dst = 0x0a010100 + 5
	if err := net.AttachPrefix(dst, 3); err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(0, stream.Update{Src: 7, Dst: dst, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != 4 {
		t.Fatalf("Delivered = %d, want 4 (all chain routers)", net.Delivered())
	}
	for r := RouterID(0); r < 4; r++ {
		top := net.Monitor(r).TopK(1)
		if len(top) != 1 || top[0].Dest != dst {
			t.Fatalf("router %d missed the transit flow: %+v", r, top)
		}
	}
}

func TestRoutingSkipsOffPathRouters(t *testing.T) {
	// Star with hub 0 and spokes 1..4: traffic from spoke 1 to a prefix
	// at spoke 2 transits only 1, 0, 2.
	net, err := New(Star(4), dcs.Config{Buckets: 128, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const dst = 0x0a020200
	if err := net.AttachPrefix(dst, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(1, stream.Update{Src: 9, Dst: dst, Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if net.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3 (spoke-hub-spoke)", net.Delivered())
	}
	for _, r := range []RouterID{3, 4} {
		if got := net.Monitor(r).TopK(1); len(got) != 0 {
			t.Fatalf("off-path router %d observed traffic: %+v", r, got)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	net, err := New(Linear(2), dcs.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Inject(99, stream.Update{Src: 1, Dst: 2, Delta: 1}); err == nil {
		t.Fatal("unknown ingress accepted")
	}
	if err := net.AttachPrefix(1, 99); err == nil {
		t.Fatal("attach to unknown router accepted")
	}
}

func TestDistributedAttackVisibleAtCollector(t *testing.T) {
	// A distributed attack enters at every spoke of a star; each spoke
	// monitor sees a slice; the hub and the collector see everything.
	const spokes = 4
	net, err := New(Star(spokes), dcs.Config{Buckets: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const victim = 0x0a630000 + 7
	if err := net.AttachPrefix(victim, 1); err != nil { // victim behind spoke 1
		t.Fatal(err)
	}

	const zombiesPerSpoke = 100
	for s := 1; s <= spokes; s++ {
		for z := 0; z < zombiesPerSpoke; z++ {
			src := uint32(s)<<16 | uint32(z) | 0xc0000000
			if err := net.Inject(RouterID(s), stream.Update{Src: src, Dst: victim, Delta: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Spoke 3 (not the victim's) only saw its own ingress slice.
	top3 := net.Monitor(3).TopK(1)
	if len(top3) != 1 || top3[0].F > zombiesPerSpoke*3/2 {
		t.Fatalf("spoke 3 view = %+v, want ~%d", top3, zombiesPerSpoke)
	}
	// The hub transits everything.
	topHub := net.Monitor(0).TopK(1)
	if len(topHub) != 1 || topHub[0].Dest != victim {
		t.Fatalf("hub view = %+v", topHub)
	}
	// Collector merge recovers the global count despite transit
	// duplication (set semantics of distinct pairs).
	total, err := net.CollectorTopK(1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(spokes * zombiesPerSpoke)
	if len(total) != 1 || total[0].Dest != victim {
		t.Fatalf("collector view = %+v", total)
	}
	if total[0].F < want*8/10 || total[0].F > want*12/10 {
		t.Fatalf("collector estimate %d, want ~%d", total[0].F, want)
	}
}

func TestTransitDuplicationDoesNotInflateFrequency(t *testing.T) {
	// One flow crossing 5 routers is observed 5 times; after merging,
	// its pair count is 5 but the distinct-source frequency stays 1.
	net, err := New(Linear(5), dcs.Config{Buckets: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const dst = 0x0a000100
	if err := net.AttachPrefix(dst, 4); err != nil {
		t.Fatal(err)
	}
	if err := net.InjectStream(0, []stream.Update{{Src: 1, Dst: dst, Delta: 1}}); err != nil {
		t.Fatal(err)
	}
	top, err := net.CollectorTopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].F != 1 {
		t.Fatalf("collector frequency = %+v, want exactly 1 distinct source", top)
	}
}

func TestDeletesPropagate(t *testing.T) {
	net, err := New(Linear(3), dcs.Config{Buckets: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const dst = 0x0a000200
	if err := net.AttachPrefix(dst, 2); err != nil {
		t.Fatal(err)
	}
	ups := []stream.Update{
		{Src: 1, Dst: dst, Delta: 1},
		{Src: 2, Dst: dst, Delta: 1},
		{Src: 1, Dst: dst, Delta: -1},
	}
	if err := net.InjectStream(0, ups); err != nil {
		t.Fatal(err)
	}
	top, err := net.CollectorTopK(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].F != 1 {
		t.Fatalf("collector after delete = %+v, want frequency 1", top)
	}
}
