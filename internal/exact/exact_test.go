package exact

import (
	"testing"

	"dcsketch/internal/hashing"
)

func TestFrequencyBasics(t *testing.T) {
	tr := New()
	tr.Update(1, 100, 1)
	tr.Update(2, 100, 1)
	tr.Update(3, 100, 1)
	tr.Update(1, 200, 1)
	if got := tr.F(100); got != 3 {
		t.Fatalf("F(100) = %d, want 3", got)
	}
	if got := tr.F(200); got != 1 {
		t.Fatalf("F(200) = %d, want 1", got)
	}
	if got := tr.F(999); got != 0 {
		t.Fatalf("F(999) = %d, want 0", got)
	}
}

func TestDeleteRemovesFromFrequency(t *testing.T) {
	tr := New()
	tr.Update(1, 100, 1)
	tr.Update(2, 100, 1)
	tr.Update(1, 100, -1) // source 1's connection legitimized
	if got := tr.F(100); got != 1 {
		t.Fatalf("F after delete = %d, want 1", got)
	}
	tr.Update(2, 100, -1)
	if got := tr.F(100); got != 0 {
		t.Fatalf("F after all deletes = %d, want 0", got)
	}
	if tr.Destinations() != 0 {
		t.Fatalf("Destinations = %d, want 0", tr.Destinations())
	}
}

func TestMultipleOccurrencesCountOnce(t *testing.T) {
	// A source that sends 5 SYNs to the same destination counts once in
	// the distinct-source frequency, and needs 5 deletes to clear.
	tr := New()
	for i := 0; i < 5; i++ {
		tr.Update(1, 100, 1)
	}
	if got := tr.F(100); got != 1 {
		t.Fatalf("F with repeated pair = %d, want 1", got)
	}
	tr.Update(1, 100, -1)
	if got := tr.F(100); got != 1 {
		t.Fatalf("F after partial delete = %d, want 1 (net still positive)", got)
	}
	for i := 0; i < 4; i++ {
		tr.Update(1, 100, -1)
	}
	if got := tr.F(100); got != 0 {
		t.Fatalf("F after full delete = %d, want 0", got)
	}
}

func TestNetNegativeThenRecover(t *testing.T) {
	// Out-of-order streams can drive a pair net-negative; frequency must
	// only count pairs with positive net, and recover once positive again.
	tr := New()
	tr.Update(1, 100, -1)
	if got := tr.F(100); got != 0 {
		t.Fatalf("F with net-negative pair = %d, want 0", got)
	}
	tr.Update(1, 100, 1) // net 0
	if got := tr.F(100); got != 0 {
		t.Fatalf("F with net-zero pair = %d, want 0", got)
	}
	tr.Update(1, 100, 1) // net +1
	if got := tr.F(100); got != 1 {
		t.Fatalf("F with net-positive pair = %d, want 1", got)
	}
}

func TestTopKOrdering(t *testing.T) {
	tr := New()
	// dest 10 gets 3 sources, dest 20 gets 2, dest 30 gets 1.
	for src := uint32(1); src <= 3; src++ {
		tr.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 2; src++ {
		tr.Update(src, 20, 1)
	}
	tr.Update(1, 30, 1)

	top := tr.TopK(2)
	if len(top) != 2 || top[0].Key != 10 || top[0].Priority != 3 ||
		top[1].Key != 20 || top[1].Priority != 2 {
		t.Fatalf("TopK(2) = %+v", top)
	}
}

func TestThreshold(t *testing.T) {
	tr := New()
	for src := uint32(1); src <= 5; src++ {
		tr.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 2; src++ {
		tr.Update(src, 20, 1)
	}
	got := tr.Threshold(3)
	if len(got) != 1 || got[0].Key != 10 || got[0].Priority != 5 {
		t.Fatalf("Threshold(3) = %+v", got)
	}
	if got := tr.Threshold(1); len(got) != 2 {
		t.Fatalf("Threshold(1) returned %d entries, want 2", len(got))
	}
	if got := tr.Threshold(100); len(got) != 0 {
		t.Fatalf("Threshold(100) returned %d entries, want 0", len(got))
	}
}

func TestDistinctPairs(t *testing.T) {
	tr := New()
	tr.Update(1, 10, 1)
	tr.Update(2, 10, 1)
	tr.Update(1, 20, 1)
	if got := tr.DistinctPairs(); got != 3 {
		t.Fatalf("DistinctPairs = %d, want 3", got)
	}
	tr.Update(1, 10, -1)
	if got := tr.DistinctPairs(); got != 2 {
		t.Fatalf("DistinctPairs after delete = %d, want 2", got)
	}
}

func TestSizeAccounting(t *testing.T) {
	tr := New()
	if tr.PaperSizeBytes() != 0 {
		t.Fatal("empty tracker must have zero paper size")
	}
	for i := uint32(0); i < 100; i++ {
		tr.Update(i, 1, 1)
	}
	if got := tr.PaperSizeBytes(); got != 1200 {
		t.Fatalf("PaperSizeBytes = %d, want 1200", got)
	}
	if tr.SizeBytes() <= tr.PaperSizeBytes() {
		t.Fatal("Go-level size must exceed the paper's idealized accounting")
	}
}

func TestRandomizedAgainstNaiveModel(t *testing.T) {
	// Compare against a direct map-of-maps model under a random
	// insert/delete workload.
	tr := New()
	model := make(map[uint32]map[uint32]int64)
	rng := hashing.NewSplitMix64(77)

	modelF := func(dest uint32) int64 {
		var f int64
		for _, c := range model[dest] {
			if c > 0 {
				f++
			}
		}
		return f
	}

	for step := 0; step < 30000; step++ {
		src := uint32(rng.Next() % 40)
		dst := uint32(rng.Next() % 8)
		delta := int64(1)
		if rng.Next()%3 == 0 {
			delta = -1
		}
		tr.Update(src, dst, delta)
		if model[dst] == nil {
			model[dst] = make(map[uint32]int64)
		}
		model[dst][src] += delta
	}
	for dst := uint32(0); dst < 8; dst++ {
		if got, want := tr.F(dst), modelF(dst); got != want {
			t.Fatalf("dest %d: F = %d, model = %d", dst, got, want)
		}
	}
}

func BenchmarkUpdate(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Update(uint32(i%100000), uint32(i%1000), 1)
	}
}
