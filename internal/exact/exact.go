// Package exact implements the brute-force distinct-source frequency tracker
// used as ground truth for the sketch's accuracy metrics and as the "naive
// scheme" in the paper's space comparison (§6.1): per-destination hash sets
// of sources with net occurrence counts.
package exact

import (
	"sort"

	"dcsketch/internal/hashing"
	"dcsketch/internal/iheap"
)

// Tracker maintains exact distinct-source frequencies f_v over a stream of
// flow updates with insertions and deletions. Space is Θ(U), which is what
// the sketch is designed to avoid; Tracker exists for evaluation.
type Tracker struct {
	// pairs holds the net occurrence count of every (src,dst) pair seen.
	pairs map[uint64]int64
	// freqs maintains f_v per destination for O(k log k) top-k queries.
	freqs *iheap.Heap
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{
		pairs: make(map[uint64]int64),
		freqs: iheap.New(1024),
	}
}

// Update processes one flow update. A pair contributes 1 to its
// destination's distinct-source frequency exactly while its net count is
// positive.
func (t *Tracker) Update(src, dst uint32, delta int64) {
	t.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a pre-packed pair key.
func (t *Tracker) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	old := t.pairs[key]
	now := old + delta
	if now == 0 {
		delete(t.pairs, key)
	} else {
		t.pairs[key] = now
	}
	dest := hashing.PairDest(key)
	switch {
	case old <= 0 && now > 0:
		t.freqs.Adjust(dest, 1)
	case old > 0 && now <= 0:
		t.freqs.Adjust(dest, -1)
	}
}

// F returns the exact distinct-source frequency of dest.
func (t *Tracker) F(dest uint32) int64 {
	f, _ := t.freqs.Get(dest)
	return f
}

// TopK returns the k destinations with the largest frequencies in
// descending order (ties broken by ascending address).
func (t *Tracker) TopK(k int) []iheap.Entry {
	return t.freqs.TopK(k)
}

// Threshold returns every destination with frequency >= tau, sorted by
// descending frequency then ascending address.
func (t *Tracker) Threshold(tau int64) []iheap.Entry {
	var out []iheap.Entry
	for _, e := range t.freqs.Snapshot() {
		if e.Priority >= tau {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// DistinctPairs returns U, the number of pairs with positive net count.
func (t *Tracker) DistinctPairs() int64 {
	var u int64
	for _, c := range t.pairs {
		if c > 0 {
			u++
		}
	}
	return u
}

// Destinations returns the number of destinations with positive frequency.
func (t *Tracker) Destinations() int { return t.freqs.Len() }

// SizeBytes approximates the tracker's memory footprint for the paper's
// space comparison: 8-byte key + 8-byte count per stored pair, plus 12 bytes
// per destination frequency entry (the paper's arithmetic charges 12 bytes
// per pair: two 4-byte addresses and a 4-byte count).
func (t *Tracker) SizeBytes() int {
	return len(t.pairs)*16 + t.freqs.Len()*12
}

// PaperSizeBytes is the §6.1 "brute force" accounting: 4 bytes for each of
// source, destination and count per stored pair.
func (t *Tracker) PaperSizeBytes() int { return len(t.pairs) * 12 }
