package tcpflow

import (
	"bytes"
	"testing"

	"dcsketch/internal/exact"
	"dcsketch/internal/stream"
	"dcsketch/internal/trace"
)

// collector records the emitted flow updates and mirrors them into an exact
// tracker for frequency assertions.
type collector struct {
	updates []stream.Update
	tracker *exact.Tracker
}

func newCollector() *collector {
	return &collector{tracker: exact.New()}
}

func (c *collector) Update(src, dst uint32, delta int64) {
	c.updates = append(c.updates, stream.Update{Src: src, Dst: dst, Delta: int8(delta)})
	c.tracker.Update(src, dst, delta)
}

func syn(t uint64, src, dst uint32, sport, dport uint16) trace.Record {
	return trace.Record{Time: t, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagSYN}
}

func synAck(t uint64, src, dst uint32, sport, dport uint16) trace.Record {
	return trace.Record{Time: t, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagSYN | trace.FlagACK}
}

func ack(t uint64, src, dst uint32, sport, dport uint16) trace.Record {
	return trace.Record{Time: t, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagACK}
}

func rst(t uint64, src, dst uint32, sport, dport uint16) trace.Record {
	return trace.Record{Time: t, Src: src, Dst: dst, SrcPort: sport, DstPort: dport, Flags: trace.FlagRST}
}

func TestHandshakeCancelsOut(t *testing.T) {
	c := New()
	col := newCollector()
	// Full three-way handshake: SYN, SYN-ACK, ACK.
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(synAck(1, 20, 10, 80, 1000), col)
	c.Process(ack(2, 10, 20, 1000, 80), col)

	if got := col.tracker.F(20); got != 0 {
		t.Fatalf("completed handshake leaves F = %d, want 0", got)
	}
	if len(col.updates) != 2 || col.updates[0].Delta != 1 || col.updates[1].Delta != -1 {
		t.Fatalf("updates = %+v, want [+1, -1]", col.updates)
	}
	st := c.Stats()
	if st.Opened != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.HalfOpen() != 0 {
		t.Fatalf("half-open table not empty: %d", c.HalfOpen())
	}
}

func TestUnansweredSYNStaysHalfOpen(t *testing.T) {
	c := New()
	col := newCollector()
	for i := uint32(0); i < 100; i++ {
		c.Process(syn(uint64(i), 1000+i, 20, uint16(2000+i), 80), col)
	}
	if got := col.tracker.F(20); got != 100 {
		t.Fatalf("F = %d, want 100 (spoofed SYNs never complete)", got)
	}
}

func TestDuplicateSYNIsRetransmission(t *testing.T) {
	c := New()
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(syn(5, 10, 20, 1000, 80), col) // retransmit, same 4-tuple
	if got := col.tracker.F(20); got != 1 {
		t.Fatalf("F = %d, want 1", got)
	}
	if len(col.updates) != 1 {
		t.Fatalf("retransmission emitted an update: %+v", col.updates)
	}
}

func TestConcurrentConnectionsSameHosts(t *testing.T) {
	// Two connections between the same hosts on different ports are
	// tracked independently; completing one leaves the other half-open.
	c := New()
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(syn(1, 10, 20, 1001, 80), col)
	c.Process(ack(2, 10, 20, 1000, 80), col)
	// Net +1 for the (10,20) pair: one connection still half-open.
	if got := col.tracker.F(20); got != 1 {
		t.Fatalf("F = %d, want 1", got)
	}
	if c.HalfOpen() != 1 {
		t.Fatalf("HalfOpen = %d, want 1", c.HalfOpen())
	}
}

func TestRSTFromServerClearsHalfOpen(t *testing.T) {
	c := New()
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(rst(1, 20, 10, 80, 1000), col) // server rejects
	if got := col.tracker.F(20); got != 0 {
		t.Fatalf("F after server RST = %d, want 0", got)
	}
	if c.Stats().Reset != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestRSTFromClientClearsHalfOpen(t *testing.T) {
	c := New()
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(rst(1, 10, 20, 1000, 80), col)
	if got := col.tracker.F(20); got != 0 {
		t.Fatalf("F after client RST = %d, want 0", got)
	}
}

func TestStrayPacketsEmitNothing(t *testing.T) {
	c := New()
	col := newCollector()
	c.Process(ack(0, 10, 20, 1000, 80), col)    // ACK with no SYN
	c.Process(rst(1, 10, 20, 1000, 80), col)    // RST with no state
	c.Process(synAck(2, 20, 10, 80, 1000), col) // unsolicited SYN-ACK
	c.Process(trace.Record{Time: 3, Src: 1, Dst: 2, Flags: trace.FlagFIN}, col)
	if len(col.updates) != 0 {
		t.Fatalf("stray packets emitted %+v", col.updates)
	}
	if got := c.Stats().Ignored; got != 4 {
		t.Fatalf("Ignored = %d, want 4", got)
	}
}

func TestNoSpuriousNegative(t *testing.T) {
	// Double ACK: only the first matches tracked state.
	c := New()
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(ack(1, 10, 20, 1000, 80), col)
	c.Process(ack(2, 10, 20, 1000, 80), col)
	if got := col.tracker.F(20); got != 0 {
		t.Fatalf("F = %d, want 0", got)
	}
	if err := stream.Validate(col.updates); err != nil {
		t.Fatalf("emitted stream invalid: %v", err)
	}
}

func TestTimeoutEvictionKeepsSignal(t *testing.T) {
	// Evicting stale monitor state must NOT emit -1: the victim still
	// holds the half-open connection, so the frequency stays.
	c := New()
	c.Timeout = 1000
	col := newCollector()
	c.Process(syn(0, 10, 20, 1000, 80), col)
	c.Process(syn(5000, 11, 20, 1001, 80), col) // triggers eviction of the first
	if c.HalfOpen() != 1 {
		t.Fatalf("HalfOpen = %d, want 1 after eviction", c.HalfOpen())
	}
	if got := col.tracker.F(20); got != 2 {
		t.Fatalf("F = %d, want 2 (eviction must not erase the attack signal)", got)
	}
	if c.Stats().Evicted != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// A late ACK for the evicted connection finds no state: ignored.
	c.Process(ack(6000, 10, 20, 1000, 80), col)
	if got := col.tracker.F(20); got != 2 {
		t.Fatalf("late ACK changed F to %d", got)
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New()
	c.MaxStates = 10
	c.Timeout = -1 // disable time-based eviction
	col := newCollector()
	for i := uint32(0); i < 25; i++ {
		c.Process(syn(uint64(i), 100+i, 20, uint16(3000+i), 80), col)
	}
	if c.HalfOpen() != 10 {
		t.Fatalf("HalfOpen = %d, want capped at 10", c.HalfOpen())
	}
	if got := col.tracker.F(20); got != 25 {
		t.Fatalf("F = %d, want 25", got)
	}
	if c.Stats().Evicted != 15 {
		t.Fatalf("Evicted = %d, want 15", c.Stats().Evicted)
	}
}

func TestConvertFromTraceReader(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewBinaryWriter(&buf)
	recs := []trace.Record{
		syn(0, 10, 20, 1000, 80),
		synAck(1, 20, 10, 80, 1000),
		ack(2, 10, 20, 1000, 80),
		syn(3, 66, 20, 4000, 80), // never completed
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	c := New()
	col := newCollector()
	n, err := Convert(trace.NewBinaryReader(&buf), c, col)
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if n != 4 {
		t.Fatalf("processed %d records, want 4", n)
	}
	if got := col.tracker.F(20); got != 1 {
		t.Fatalf("F = %d, want 1", got)
	}
}

func TestConvertPropagatesReaderErrors(t *testing.T) {
	bad := bytes.NewReader([]byte("XXXX\x01\x00\x00\x00"))
	_, err := Convert(trace.NewBinaryReader(bad), New(), newCollector())
	if err == nil {
		t.Fatal("corrupt trace accepted")
	}
}

func TestOutOfOrderTimestampsSafe(t *testing.T) {
	c := New()
	c.Timeout = 1000
	col := newCollector()
	c.Process(syn(5000, 10, 20, 1000, 80), col)
	c.Process(syn(100, 11, 20, 1001, 80), col) // time goes backwards
	c.Process(ack(200, 10, 20, 1000, 80), col)
	if err := stream.Validate(col.updates); err != nil {
		t.Fatalf("out-of-order input produced invalid stream: %v", err)
	}
}
