// Package tcpflow converts raw packet observations (trace.Record) into the
// flow-update stream the DDoS monitor consumes, implementing the TCP
// SYN-flood semantics of the paper's §1-§2:
//
//   - a client SYN creates a half-open connection at the server: emit
//     (src, dst, +1);
//   - the client ACK completing the three-way handshake legitimizes it:
//     emit (src, dst, -1);
//   - an RST tearing down a half-open connection also removes it: emit
//     (src, dst, -1) — the victim no longer holds state for it.
//
// Spoofed-source SYN floods therefore accumulate +1s that are never matched,
// while flash crowds and ordinary traffic cancel out, which is exactly the
// signal the Distinct-Count Sketch tracks.
//
// The converter keeps per-connection state keyed by the full 4-tuple, so
// several concurrent connections between the same hosts are handled
// correctly, and bounds its memory with an eviction policy: half-open state
// older than Timeout is dropped *without* emitting a -1 (the connection is
// still half-open at the victim — dropping monitor state must not erase the
// attack signal), and the state table never exceeds MaxStates entries.
package tcpflow

import (
	"container/list"
	"errors"
	"io"

	"dcsketch/internal/stream"
	"dcsketch/internal/trace"
)

// Default converter parameters.
const (
	// DefaultTimeout is the half-open state eviction horizon in trace
	// time units (microseconds): 30 seconds, a typical SYN-backlog
	// retention.
	DefaultTimeout = 30_000_000
	// DefaultMaxStates bounds the number of tracked half-open
	// connections.
	DefaultMaxStates = 1 << 20
)

// connKey identifies a connection by its 4-tuple, oriented client->server.
type connKey struct {
	src, dst     uint32
	sport, dport uint16
}

// connState is the tracked state of one half-open connection.
type connState struct {
	key  connKey
	born uint64 // trace time of the SYN
}

// Converter turns packet records into flow updates.
type Converter struct {
	// Timeout is the half-open eviction horizon in trace time units;
	// zero selects DefaultTimeout, negative disables eviction.
	Timeout int64
	// MaxStates bounds the tracked state table; zero selects
	// DefaultMaxStates.
	MaxStates int

	// halfOpen maps 4-tuples to their LRU list element; the list is
	// ordered by SYN time (oldest at front) for O(1) eviction.
	halfOpen map[connKey]*list.Element
	order    *list.List

	// stats
	opened, completed, reset, evicted, ignored uint64
}

// New returns a converter with default parameters.
func New() *Converter {
	return &Converter{
		halfOpen: make(map[connKey]*list.Element),
		order:    list.New(),
	}
}

// Stats reports converter counters: half-open connections created, completed
// by ACK, torn down by RST/FIN, evicted by timeout/capacity, and packets
// that produced no update.
type Stats struct {
	Opened    uint64
	Completed uint64
	Reset     uint64
	Evicted   uint64
	Ignored   uint64
}

// Stats returns a snapshot of the converter counters.
func (c *Converter) Stats() Stats {
	return Stats{
		Opened:    c.opened,
		Completed: c.completed,
		Reset:     c.reset,
		Evicted:   c.evicted,
		Ignored:   c.ignored,
	}
}

// HalfOpen returns the number of currently tracked half-open connections.
func (c *Converter) HalfOpen() int { return len(c.halfOpen) }

func (c *Converter) timeout() int64 {
	if c.Timeout == 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

func (c *Converter) maxStates() int {
	if c.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return c.MaxStates
}

// Process consumes one packet record and feeds the resulting flow updates
// (zero or one) into sink. Records must arrive in non-decreasing Time order
// for eviction to be meaningful; out-of-order records are still handled
// safely (no spurious -1 is ever emitted).
func (c *Converter) Process(r trace.Record, sink stream.Sink) {
	c.evict(r.Time)
	switch {
	case r.Flags&trace.FlagSYN != 0 && r.Flags&trace.FlagACK == 0:
		// Client SYN (not SYN-ACK): open half-open state unless this
		// is a retransmission of one we already track.
		key := connKey{r.Src, r.Dst, r.SrcPort, r.DstPort}
		if _, dup := c.halfOpen[key]; dup {
			c.ignored++
			return
		}
		if len(c.halfOpen) >= c.maxStates() {
			c.evictOldest()
		}
		c.halfOpen[key] = c.order.PushBack(&connState{key: key, born: r.Time})
		c.opened++
		sink.Update(r.Src, r.Dst, 1)

	case r.Flags&trace.FlagACK != 0 && r.Flags&trace.FlagSYN == 0:
		// Client ACK (or data) completing the handshake: only counts
		// if we track the half-open state in the same direction.
		key := connKey{r.Src, r.Dst, r.SrcPort, r.DstPort}
		if elem, ok := c.halfOpen[key]; ok {
			c.drop(elem)
			c.completed++
			sink.Update(r.Src, r.Dst, -1)
			return
		}
		c.ignored++

	case r.Flags&trace.FlagRST != 0:
		// RST from either endpoint tears the connection down; the
		// server frees its backlog entry, so the half-open count
		// decreases. Normalize to the client->server orientation.
		if elem, ok := c.halfOpen[connKey{r.Src, r.Dst, r.SrcPort, r.DstPort}]; ok {
			st, stOK := elem.Value.(*connState)
			c.drop(elem)
			c.reset++
			if stOK {
				sink.Update(st.key.src, st.key.dst, -1)
			}
			return
		}
		if elem, ok := c.halfOpen[connKey{r.Dst, r.Src, r.DstPort, r.SrcPort}]; ok {
			st, stOK := elem.Value.(*connState)
			c.drop(elem)
			c.reset++
			if stOK {
				sink.Update(st.key.src, st.key.dst, -1)
			}
			return
		}
		c.ignored++

	default:
		// SYN-ACK from the server, FIN teardown of established
		// connections, bare data packets: no effect on the half-open
		// population.
		c.ignored++
	}
}

// drop removes a tracked state.
func (c *Converter) drop(elem *list.Element) {
	st, ok := elem.Value.(*connState)
	if !ok {
		return
	}
	delete(c.halfOpen, st.key)
	c.order.Remove(elem)
}

// evict drops states whose SYN is older than the timeout horizon. No update
// is emitted: the victim still holds the half-open connection.
func (c *Converter) evict(now uint64) {
	to := c.timeout()
	if to < 0 {
		return
	}
	horizon := uint64(to)
	for {
		front := c.order.Front()
		if front == nil {
			return
		}
		st, ok := front.Value.(*connState)
		if !ok || now < st.born || now-st.born <= horizon {
			return
		}
		c.drop(front)
		c.evicted++
	}
}

// evictOldest drops the single oldest state to make room.
func (c *Converter) evictOldest() {
	if front := c.order.Front(); front != nil {
		c.drop(front)
		c.evicted++
	}
}

// Convert drains a trace reader through the converter into sink and returns
// the number of records processed.
func Convert(r trace.Reader, c *Converter, sink stream.Sink) (int, error) {
	n := 0
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		c.Process(rec, sink)
		n++
	}
}
