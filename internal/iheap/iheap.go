// Package iheap implements the indexed max-heap backing the Tracking
// Distinct-Count Sketch's per-level topDestHeap structures (paper §5).
//
// The heap maps 32-bit destination addresses to int64 priorities (sample
// occurrence frequencies f^s_v) and supports the operations the tracking
// algorithm needs in O(log n): adjust a destination's frequency by ±1
// (creating the entry on first increment, removing it when the frequency
// returns to zero), read the maximum, and extract the top-k destinations
// *without mutating the heap*, so continuous tracking queries never disturb
// the incrementally maintained state.
package iheap

// Entry is one (destination, priority) pair held by a Heap.
type Entry struct {
	Key      uint32
	Priority int64
}

// Heap is an indexed binary max-heap. The zero value is not usable; call New.
type Heap struct {
	entries []Entry
	// pos maps a key to its index in entries, enabling O(log n)
	// adjust-key operations.
	pos map[uint32]int
	// cand is the scratch candidate queue of AppendTopK, reused across
	// queries so a top-k traversal does not allocate.
	cand []int32 //lint:scratch
}

// New returns an empty heap with capacity preallocated for hint entries.
func New(hint int) *Heap {
	return &Heap{
		entries: make([]Entry, 0, hint),
		pos:     make(map[uint32]int, hint),
	}
}

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.entries) }

// Get returns the priority of key and whether it is present.
func (h *Heap) Get(key uint32) (int64, bool) {
	i, ok := h.pos[key]
	if !ok {
		return 0, false
	}
	return h.entries[i].Priority, true
}

// Max returns the entry with the largest priority. ok is false when the heap
// is empty.
func (h *Heap) Max() (Entry, bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[0], true
}

// Adjust changes key's priority by delta, inserting the key if absent and
// removing it if its priority drops to zero or below. It returns the key's
// resulting priority (zero if removed).
//
//lint:allocfree
func (h *Heap) Adjust(key uint32, delta int64) int64 {
	i, ok := h.pos[key]
	if !ok {
		if delta <= 0 {
			return 0
		}
		h.entries = append(h.entries, Entry{Key: key, Priority: delta}) //lint:allocok entry growth is amortized toward the heap's high-water mark
		i = len(h.entries) - 1
		h.pos[key] = i //lint:allocok position-index growth is amortized with the entries
		h.siftUp(i)
		return delta
	}
	p := h.entries[i].Priority + delta
	if p <= 0 {
		h.removeAt(i)
		return 0
	}
	h.entries[i].Priority = p
	if delta > 0 {
		h.siftUp(i)
	} else {
		h.siftDown(i)
	}
	return p
}

// Remove deletes key from the heap if present and reports whether it was.
func (h *Heap) Remove(key uint32) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

// TopK returns up to k entries with the largest priorities in descending
// priority order without modifying the heap. It runs in O(k log k) by
// traversing the heap array with a small candidate priority queue, so a
// tracking query costs O(k log k) independent of the heap size.
//
// Ties are broken by smaller key first, making the output deterministic.
func (h *Heap) TopK(k int) []Entry {
	if k <= 0 || len(h.entries) == 0 {
		return nil
	}
	return h.AppendTopK(nil, k)
}

// AppendTopK appends up to k entries with the largest priorities to dst in
// descending priority order (ties by smaller key) without modifying the
// heap, and returns the extended slice. The candidate queue it traverses
// with is heap-owned scratch, so a query whose dst has capacity performs no
// allocation.
//
//lint:allocfree
func (h *Heap) AppendTopK(dst []Entry, k int) []Entry {
	if k <= 0 || len(h.entries) == 0 {
		return dst
	}
	if k > len(h.entries) {
		k = len(h.entries)
	}
	// cand is a manual min-index max-priority heap over entry indices,
	// avoiding container/heap's interface boxing on the hot query path.
	cand := h.cand[:0]
	cand = append(cand, 0) //lint:allocok scratch queue grows to a high-water mark of k+1
	for taken := 0; taken < k && len(cand) > 0; taken++ {
		i := int(cand[0])
		last := len(cand) - 1
		cand[0] = cand[last]
		cand = cand[:last]
		h.candSiftDown(cand)
		dst = append(dst, h.entries[i]) //lint:allocok grows only when the caller's dst lacks capacity
		if l := 2*i + 1; l < len(h.entries) {
			cand = h.candPush(cand, int32(l))
		}
		if r := 2*i + 2; r < len(h.entries) {
			cand = h.candPush(cand, int32(r))
		}
	}
	h.cand = cand
	return dst
}

// candPush pushes entry index i onto the candidate heap and restores order.
//
//lint:allocfree
func (h *Heap) candPush(cand []int32, i int32) []int32 {
	cand = append(cand, i) //lint:allocok scratch queue grows to a high-water mark of k+1
	c := len(cand) - 1
	for c > 0 {
		parent := (c - 1) / 2
		if !h.less(h.entries[cand[c]], h.entries[cand[parent]]) {
			break
		}
		cand[c], cand[parent] = cand[parent], cand[c]
		c = parent
	}
	return cand
}

// candSiftDown restores candidate-heap order from the root after a pop.
//
//lint:allocfree
func (h *Heap) candSiftDown(cand []int32) {
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < len(cand) && h.less(h.entries[cand[l]], h.entries[cand[best]]) {
			best = l
		}
		if r := 2*i + 2; r < len(cand) && h.less(h.entries[cand[r]], h.entries[cand[best]]) {
			best = r
		}
		if best == i {
			return
		}
		cand[i], cand[best] = cand[best], cand[i]
		i = best
	}
}

// Snapshot returns a copy of all entries in unspecified order.
func (h *Heap) Snapshot() []Entry {
	out := make([]Entry, len(h.entries))
	copy(out, h.entries)
	return out
}

func (h *Heap) removeAt(i int) {
	last := len(h.entries) - 1
	delete(h.pos, h.entries[i].Key)
	if i != last {
		h.entries[i] = h.entries[last]
		h.pos[h.entries[i].Key] = i //lint:allocok overwrite of an existing key; no bucket growth
	}
	h.entries = h.entries[:last]
	if i < len(h.entries) {
		h.siftDown(i)
		h.siftUp(i)
	}
}

// less orders entries by descending priority, then ascending key, giving the
// heap a deterministic total order.
//
//lint:inline
func (h *Heap) less(a, b Entry) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Key < b.Key
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.entries[i], h.entries[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.entries)
	for {
		best := i
		if l := 2*i + 1; l < n && h.less(h.entries[l], h.entries[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && h.less(h.entries[r], h.entries[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

//lint:inline
func (h *Heap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].Key] = i //lint:allocok overwrite of an existing key; no bucket growth
	h.pos[h.entries[j].Key] = j //lint:allocok overwrite of an existing key; no bucket growth
}
