package iheap

import (
	"sort"
	"testing"
	"testing/quick"

	"dcsketch/internal/hashing"
)

// checkInvariants verifies the heap property and the position index.
func checkInvariants(t *testing.T, h *Heap) {
	t.Helper()
	for i := 1; i < len(h.entries); i++ {
		parent := (i - 1) / 2
		if h.less(h.entries[i], h.entries[parent]) {
			t.Fatalf("heap property violated at %d: %+v above %+v",
				i, h.entries[parent], h.entries[i])
		}
	}
	if len(h.pos) != len(h.entries) {
		t.Fatalf("index size %d != entries %d", len(h.pos), len(h.entries))
	}
	for key, i := range h.pos {
		if h.entries[i].Key != key {
			t.Fatalf("index mismatch: pos[%d]=%d holds key %d", key, i, h.entries[i].Key)
		}
	}
}

func TestAdjustInsertAndRead(t *testing.T) {
	h := New(8)
	if got := h.Adjust(7, 3); got != 3 {
		t.Fatalf("Adjust new key = %d, want 3", got)
	}
	if p, ok := h.Get(7); !ok || p != 3 {
		t.Fatalf("Get = (%d,%v), want (3,true)", p, ok)
	}
	if m, ok := h.Max(); !ok || m.Key != 7 || m.Priority != 3 {
		t.Fatalf("Max = (%+v,%v)", m, ok)
	}
	checkInvariants(t, h)
}

func TestAdjustNonPositiveOnMissingKeyIsNoop(t *testing.T) {
	h := New(0)
	if got := h.Adjust(1, 0); got != 0 {
		t.Fatalf("Adjust(+0) on missing key = %d", got)
	}
	if got := h.Adjust(1, -5); got != 0 {
		t.Fatalf("Adjust(-5) on missing key = %d", got)
	}
	if h.Len() != 0 {
		t.Fatal("heap must remain empty")
	}
}

func TestAdjustToZeroRemoves(t *testing.T) {
	h := New(0)
	h.Adjust(1, 2)
	h.Adjust(2, 5)
	if got := h.Adjust(1, -2); got != 0 {
		t.Fatalf("Adjust to zero = %d, want 0", got)
	}
	if _, ok := h.Get(1); ok {
		t.Fatal("key 1 must be removed")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
	checkInvariants(t, h)
}

func TestMaxEmpty(t *testing.T) {
	h := New(0)
	if _, ok := h.Max(); ok {
		t.Fatal("Max on empty heap must report !ok")
	}
}

func TestRemove(t *testing.T) {
	h := New(0)
	for i := uint32(0); i < 20; i++ {
		h.Adjust(i, int64(i)+1)
	}
	if !h.Remove(10) {
		t.Fatal("Remove existing key must return true")
	}
	if h.Remove(10) {
		t.Fatal("Remove missing key must return false")
	}
	if h.Len() != 19 {
		t.Fatalf("Len = %d, want 19", h.Len())
	}
	checkInvariants(t, h)
}

func TestTopKOrderAndNonDestructive(t *testing.T) {
	h := New(0)
	prios := []int64{5, 1, 9, 7, 3, 9, 2, 8, 6, 4}
	for i, p := range prios {
		h.Adjust(uint32(i), p)
	}
	before := h.Len()
	top := h.TopK(4)
	if h.Len() != before {
		t.Fatal("TopK must not modify the heap")
	}
	want := []Entry{{2, 9}, {5, 9}, {7, 8}, {3, 7}}
	if len(top) != len(want) {
		t.Fatalf("TopK len = %d, want %d", len(top), len(want))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK[%d] = %+v, want %+v", i, top[i], want[i])
		}
	}
	checkInvariants(t, h)
}

func TestTopKEdgeCases(t *testing.T) {
	h := New(0)
	if got := h.TopK(3); got != nil {
		t.Fatalf("TopK on empty heap = %v, want nil", got)
	}
	h.Adjust(1, 1)
	if got := h.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
	if got := h.TopK(10); len(got) != 1 {
		t.Fatalf("TopK(10) on 1-entry heap returned %d entries", len(got))
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	h := New(0)
	h.Adjust(1, 5)
	snap := h.Snapshot()
	snap[0].Priority = 999
	if p, _ := h.Get(1); p != 5 {
		t.Fatal("mutating a snapshot must not affect the heap")
	}
}

// TestAgainstReferenceModel drives the heap with a random operation sequence
// and cross-checks every observable against a plain map.
func TestAgainstReferenceModel(t *testing.T) {
	h := New(0)
	model := make(map[uint32]int64)
	rng := hashing.NewSplitMix64(1234)

	for step := 0; step < 20000; step++ {
		key := uint32(rng.Next() % 50)
		switch rng.Next() % 10 {
		case 0: // remove
			delete(model, key)
			h.Remove(key)
		case 1, 2, 3: // decrement
			got := h.Adjust(key, -1)
			if model[key]-1 <= 0 {
				delete(model, key)
			} else {
				model[key]--
			}
			if got != model[key] {
				t.Fatalf("step %d: Adjust(-1) = %d, model = %d", step, got, model[key])
			}
		default: // increment
			got := h.Adjust(key, 1)
			model[key]++
			if got != model[key] {
				t.Fatalf("step %d: Adjust(+1) = %d, model = %d", step, got, model[key])
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model = %d", step, h.Len(), len(model))
		}
	}
	checkInvariants(t, h)

	// Final top-k must match the model's sorted order.
	type kv struct {
		k uint32
		p int64
	}
	var all []kv
	for k, p := range model {
		all = append(all, kv{k, p})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].k < all[j].k
	})
	k := 10
	if k > len(all) {
		k = len(all)
	}
	top := h.TopK(k)
	for i := 0; i < k; i++ {
		if top[i].Key != all[i].k || top[i].Priority != all[i].p {
			t.Fatalf("TopK[%d] = %+v, want {%d %d}", i, top[i], all[i].k, all[i].p)
		}
	}
}

func TestQuickTopKSorted(t *testing.T) {
	// Property: TopK output is non-increasing in priority.
	err := quick.Check(func(prios []uint8, k uint8) bool {
		h := New(len(prios))
		for i, p := range prios {
			if p > 0 {
				h.Adjust(uint32(i), int64(p))
			}
		}
		top := h.TopK(int(k%16) + 1)
		for i := 1; i < len(top); i++ {
			if top[i].Priority > top[i-1].Priority {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdjust(b *testing.B) {
	h := New(1024)
	for i := 0; i < b.N; i++ {
		h.Adjust(uint32(i%1024), 1)
	}
}

func BenchmarkTopK10(b *testing.B) {
	h := New(4096)
	rng := hashing.NewSplitMix64(1)
	for i := 0; i < 4096; i++ {
		h.Adjust(uint32(i), int64(rng.Next()%1000)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.TopK(10)
	}
}
