package tdcs

import (
	"math/rand"
	"reflect"
	"testing"

	"dcsketch/internal/dcs"
)

// batchStream builds n updates with inserts and matched deletes, as the
// half-open state machine produces.
func batchStream(rng *rand.Rand, n int) []dcs.KeyDelta {
	stream := make([]dcs.KeyDelta, 0, n)
	live := make([]uint64, 0, n)
	for len(stream) < n {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			stream = append(stream, dcs.KeyDelta{Key: live[i], Delta: -1})
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		key := rng.Uint64()
		stream = append(stream, dcs.KeyDelta{Key: key, Delta: 1})
		live = append(live, key)
	}
	return stream
}

// TestUpdateBatchEquivalence checks the tracking batch path against the
// scalar path: after every chunk the incremental tracking state must answer
// queries identically, not just at the end of the stream.
func TestUpdateBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	stream := batchStream(rng, 4000)

	cfg := dcs.Config{Seed: 19}
	scalar, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(stream); {
		n := 1 + rng.Intn(500)
		if off+n > len(stream) {
			n = len(stream) - off
		}
		chunk := stream[off : off+n]
		for _, u := range chunk {
			scalar.UpdateKey(u.Key, u.Delta)
		}
		batched.UpdateBatch(chunk)
		off += n

		if got, want := batched.TopK(10), scalar.TopK(10); !reflect.DeepEqual(got, want) {
			t.Fatalf("at offset %d: batched TopK %v != scalar %v", off, got, want)
		}
		if got, want := batched.EstimateDistinctPairs(), scalar.EstimateDistinctPairs(); got != want {
			t.Fatalf("at offset %d: batched distinct %d != scalar %d", off, got, want)
		}
	}

	if got, want := batched.Threshold(2), scalar.Threshold(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("final Threshold: batched %v != scalar %v", got, want)
	}
	if got, want := batched.Updates(), scalar.Updates(); got != want {
		t.Fatalf("updates %d != %d", got, want)
	}
}

// TestFromBaseMatchesIncremental checks the fold-promotion path: adopting a
// basic sketch via FromBase must answer exactly like a tracking sketch that
// consumed the same stream update by update.
func TestFromBaseMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	stream := batchStream(rng, 3000)

	cfg := dcs.Config{Seed: 31}
	incr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stream {
		incr.UpdateKey(u.Key, u.Delta)
	}
	base.UpdateBatch(stream)

	adopted := FromBase(base)
	if got, want := adopted.TopK(10), incr.TopK(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("FromBase TopK %v != incremental %v", got, want)
	}
	if got, want := adopted.Threshold(2), incr.Threshold(2); !reflect.DeepEqual(got, want) {
		t.Fatalf("FromBase Threshold %v != incremental %v", got, want)
	}
}
