// Package tdcs implements the Tracking Distinct-Count Sketch (paper §5):
// a basic Distinct-Count Sketch augmented with incrementally maintained
// distinct-sample state so that top-k queries run in guaranteed logarithmic
// time instead of rescanning the whole counter array.
//
// Per first-level bucket b the tracking state holds (Fig. 5):
//
//   - singletons(b): the current set of verified singleton pairs in bucket
//     b's second-level tables, each with the number of tables in which it
//     appears as a singleton;
//   - numSingletons(b) = |singletons(b)|;
//   - topDestHeap(b): a max-heap over destinations keyed by their occurrence
//     frequency f^s_v in the distinct sample collected from levels >= b.
//
// Procedure UpdateTracking (Fig. 6) is realized as a before/after diff of the
// affected second-level buckets, which uniformly covers every transition the
// paper enumerates (empty->singleton, singleton->collision, and the symmetric
// delete transitions) as well as the fingerprint-verified edge cases.
// Procedure TrackTopk (Fig. 7) reads the cumulative singleton counters to
// pick the sample level and answers from that level's heap in O(k·log k)
// without mutating it.
package tdcs

import (
	"fmt"
	"sort"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
	"dcsketch/internal/iheap"
)

// Sketch is a Tracking Distinct-Count Sketch. Like the basic sketch it is
// not safe for concurrent mutation.
type Sketch struct {
	base *dcs.Sketch

	// singles[b] maps each verified singleton pair in level b to the
	// number of second-level tables (1..r) where it is currently a
	// singleton. Its key set is the level's contribution to the distinct
	// sample; numSingletons(b) = len(singles[b]).
	singles []map[uint64]uint8

	// heaps[b] is topDestHeap(b): destination -> f^s_v over the sample
	// from levels >= b.
	heaps []*iheap.Heap

	// scratch buffers reused across updates to keep the hot path
	// allocation-free. bucketIdx caches the key's second-level bucket per
	// table so the hash locations are computed once per update and shared
	// between the before/after diffs and the counter write.
	beforeKeys []uint64 //lint:scratch
	beforeOK   []bool   //lint:scratch
	bucketIdx  []int    //lint:scratch

	// topScratch holds the heap entries of the last TopK answer, and
	// estScratch the converted estimates handed back to the caller; both are
	// reused across queries.
	topScratch []iheap.Entry  //lint:scratch
	estScratch []dcs.Estimate //lint:scratch

	// queries counts tracked queries (TopK, Threshold,
	// EstimateDistinctPairs); rebuilds counts tracking-state
	// reconstructions. Plain single-writer words under the same contract
	// as dcs.QueryStats.
	queries  uint64
	rebuilds uint64
}

// New builds an empty tracking sketch. The Config semantics are identical to
// the basic sketch's.
func New(cfg dcs.Config) (*Sketch, error) {
	base, err := dcs.New(cfg)
	if err != nil {
		return nil, err
	}
	return fromBase(base), nil
}

// FromBase adopts an existing basic sketch and builds the tracking state
// from its counters. The returned sketch owns base; the caller must not
// mutate it directly afterwards. This is how a fold over basic shard
// sketches is promoted to a queryable tracking sketch with one Rebuild
// instead of one per merge.
func FromBase(base *dcs.Sketch) *Sketch {
	t := fromBase(base)
	t.Rebuild()
	return t
}

func fromBase(base *dcs.Sketch) *Sketch {
	cfg := base.Config()
	t := &Sketch{
		base:       base,
		singles:    make([]map[uint64]uint8, cfg.Levels),
		heaps:      make([]*iheap.Heap, cfg.Levels),
		beforeKeys: make([]uint64, cfg.Tables),
		beforeOK:   make([]bool, cfg.Tables),
		bucketIdx:  make([]int, cfg.Tables),
	}
	for i := range t.singles {
		t.singles[i] = make(map[uint64]uint8)
		t.heaps[i] = iheap.New(16)
	}
	return t
}

// Config returns the sketch's effective configuration.
func (t *Sketch) Config() dcs.Config { return t.base.Config() }

// Updates returns the number of stream updates processed.
func (t *Sketch) Updates() uint64 { return t.base.Updates() }

// Base exposes the underlying basic sketch (shared counter array). Callers
// must not mutate it directly; doing so desynchronizes the tracking state.
func (t *Sketch) Base() *dcs.Sketch { return t.base }

// SizeBytes returns the approximate memory footprint: the counter array plus
// the tracking structures. The paper observes the tracking overhead is a
// small constant factor (~2x) over the basic sketch.
func (t *Sketch) SizeBytes() int {
	n := t.base.SizeBytes()
	for b := range t.singles {
		// ~24 bytes per map entry (key+count+bucket overhead) and 16
		// bytes per heap entry plus the position index.
		n += len(t.singles[b])*24 + t.heaps[b].Len()*28
	}
	return n
}

// Update processes one flow update for the (src, dst) pair (procedure
// UpdateTracking, Fig. 6).
func (t *Sketch) Update(src, dst uint32, delta int64) {
	t.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a pre-packed 64-bit pair key.
//
//lint:allocfree
//lint:inline
func (t *Sketch) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	t.update1(key, delta)
}

// UpdateBatch applies a batch of flow updates (the bulk form of UpdateKey),
// maintaining the tracking state per element. Zero deltas are skipped; the
// batch slice may be reused by the caller afterwards.
//
//lint:allocfree
func (t *Sketch) UpdateBatch(batch []dcs.KeyDelta) {
	for _, u := range batch {
		if u.Delta == 0 {
			continue
		}
		t.update1(u.Key, u.Delta)
	}
}

// update1 is the per-key tracking update (procedure UpdateTracking, Fig. 6):
// decode the affected buckets before and after the counter update and diff
// the verified-singleton occupancy. Only the r buckets key maps to can
// change, and any occupant of those buckets lives at the same first-level
// level (DecodeBucket enforces it). Hash locations are resolved once via
// Locate and shared with the counter write.
//
//lint:allocfree
func (t *Sketch) update1(key uint64, delta int64) {
	level := t.base.Locate(key, t.bucketIdx)
	for j, b := range t.bucketIdx {
		t.beforeKeys[j], _, t.beforeOK[j] = t.base.DecodeBucket(level, j, b)
	}
	t.base.UpdateLocated(key, delta, level, t.bucketIdx)
	for j, b := range t.bucketIdx {
		afterKey, _, afterOK := t.base.DecodeBucket(level, j, b)
		beforeKey, beforeOK := t.beforeKeys[j], t.beforeOK[j]
		if beforeOK == afterOK && beforeKey == afterKey {
			continue
		}
		if beforeOK {
			t.decrSingleton(level, beforeKey)
		}
		if afterOK {
			t.incrSingleton(level, afterKey)
		}
	}
	if debugAssertions {
		t.assertKeyTracking(level, key, "UpdateKey")
	}
}

// incrSingleton records that key gained a singleton occurrence in one
// second-level table of the given level; on its first occurrence the key
// joins the distinct sample and its destination's frequency is bumped in
// every heap at levels <= level (Fig. 6, steps 15-23).
func (t *Sketch) incrSingleton(level int, key uint64) {
	c := t.singles[level][key]
	t.singles[level][key] = c + 1 //lint:allocok singleton-set growth is amortized across the stream
	if c != 0 {
		return
	}
	dest := hashing.PairDest(key)
	for l := level; l >= 0; l-- {
		t.heaps[l].Adjust(dest, 1)
	}
}

// decrSingleton is the inverse of incrSingleton (Fig. 6, steps 4-13).
func (t *Sketch) decrSingleton(level int, key uint64) {
	c, ok := t.singles[level][key]
	if !ok {
		// Cannot happen for well-formed tracking state; tolerate it
		// rather than corrupting heap frequencies.
		return
	}
	if c > 1 {
		t.singles[level][key] = c - 1 //lint:allocok overwrite of an existing key; no bucket growth
		return
	}
	delete(t.singles[level], key)
	dest := hashing.PairDest(key)
	for l := level; l >= 0; l-- {
		t.heaps[l].Adjust(dest, -1)
	}
}

// NumSingletons returns numSingletons(level), the size of the distinct
// sample contributed by one first-level bucket.
func (t *Sketch) NumSingletons(level int) int { return len(t.singles[level]) }

// sampleLevel implements the level-selection loop of TrackTopk (Fig. 7,
// steps 1-7): descend from the topmost level accumulating numSingletons
// until the target sample size is reached.
func (t *Sketch) sampleLevel() int {
	target := t.base.Config().SampleTarget
	size := 0
	for b := len(t.singles) - 1; b >= 0; b-- {
		size += len(t.singles[b])
		if size >= target {
			return b
		}
	}
	return 0
}

// TopK returns the approximate top-k destinations by distinct-source
// frequency (procedure TrackTopk, Fig. 7) in O(log m + k·log k) time,
// without mutating the tracking state.
//
// The returned slice is owned by the sketch and only valid until the next
// query; callers that retain it must copy (the public API layer does, via
// convertEstimates).
func (t *Sketch) TopK(k int) []dcs.Estimate {
	if k <= 0 {
		return nil
	}
	t.queries++
	b := t.sampleLevel()
	scale := int64(1) << uint(b)
	t.topScratch = t.heaps[b].AppendTopK(t.topScratch[:0], k)
	out := t.estScratch[:0]
	for _, e := range t.topScratch {
		out = append(out, dcs.Estimate{Dest: e.Key, F: e.Priority * scale})
	}
	t.estScratch = out
	return out //lint:scratchok documented zero-copy view, valid until the next query
}

// Threshold returns every destination whose estimated frequency is at least
// tau, sorted by descending frequency then ascending address (§2 fn. 3).
func (t *Sketch) Threshold(tau int64) []dcs.Estimate {
	t.queries++
	b := t.sampleLevel()
	scale := int64(1) << uint(b)
	var out []dcs.Estimate
	for _, e := range t.heaps[b].Snapshot() {
		if f := e.Priority * scale; f >= tau {
			out = append(out, dcs.Estimate{Dest: e.Key, F: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F > out[j].F
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}

// EstimateDistinctPairs estimates U from the tracked sample: 2^b times the
// sample size at the chosen level.
func (t *Sketch) EstimateDistinctPairs() int64 {
	t.queries++
	b := t.sampleLevel()
	var size int64
	for l := b; l < len(t.singles); l++ {
		size += int64(len(t.singles[l]))
	}
	return size << uint(b)
}

// SampleKeys returns the pair keys in the tracked distinct sample from
// levels >= the chosen sample level, in unspecified order.
func (t *Sketch) SampleKeys() []uint64 {
	b := t.sampleLevel()
	var out []uint64
	for l := b; l < len(t.singles); l++ {
		for key := range t.singles[l] {
			out = append(out, key)
		}
	}
	return out
}

// SampleLevel returns the first-level bucket TrackTopk would answer from
// right now — the live counterpart of dcs.QueryStats.SampleLevel.
func (t *Sketch) SampleLevel() int { return t.sampleLevel() }

// SampleSize returns the size of the tracked distinct sample at the current
// sample level (the singletons at levels >= SampleLevel).
func (t *Sketch) SampleSize() int {
	n := 0
	for l := t.sampleLevel(); l < len(t.singles); l++ {
		n += len(t.singles[l])
	}
	return n
}

// Rebuilds returns the number of tracking-state reconstructions (Merge,
// FromBase adoption, deserialization).
func (t *Sketch) Rebuilds() uint64 { return t.rebuilds }

// QueryStats returns the underlying sketch's decode-outcome counters with
// the tracking layer's own query count folded in and the sample shape
// replaced by the live tracking-state view (TrackTopk answers from the
// incrementally maintained sample, not from a sampling pass).
func (t *Sketch) QueryStats() dcs.QueryStats {
	qs := t.base.QueryStats()
	qs.Queries += t.queries
	qs.SampleLevel = t.sampleLevel()
	qs.SampleSize = t.SampleSize()
	return qs
}

// Merge adds other's stream into t (both counter arrays and tracking state).
// The tracking structures are not linear, so they are rebuilt from the merged
// counters; merging is therefore O(sketch size), which is the intended
// deployment model (rare merges at a collector, cheap updates at the edge).
func (t *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return dcs.ErrIncompatible
	}
	if err := t.base.Merge(other.base); err != nil {
		return err
	}
	t.Rebuild()
	return nil
}

// Rebuild reconstructs the tracking state (singleton sets and heaps) from
// the counter array. It is used after Merge and deserialization.
func (t *Sketch) Rebuild() {
	t.rebuilds++
	cfg := t.base.Config()
	for b := range t.singles {
		clear(t.singles[b])
		t.heaps[b] = iheap.New(16)
	}
	for level := 0; level < cfg.Levels; level++ {
		for j := 0; j < cfg.Tables; j++ {
			for bkt := 0; bkt < cfg.Buckets; bkt++ {
				if key, _, ok := t.base.DecodeBucket(level, j, bkt); ok {
					t.incrSingleton(level, key)
				}
			}
		}
	}
	if debugAssertions {
		t.assertTracking("Rebuild")
	}
}

// Reset clears the sketch to its freshly-constructed state.
func (t *Sketch) Reset() {
	t.base.Reset()
	for b := range t.singles {
		clear(t.singles[b])
		t.heaps[b] = iheap.New(16)
	}
}

// MarshalBinary encodes the sketch. Only the (linear) counter array is
// serialized; the tracking state is rebuilt on decode.
func (t *Sketch) MarshalBinary() ([]byte, error) {
	return t.base.MarshalBinary()
}

// UnmarshalBinary decodes a tracking sketch from either a tracking or a
// basic sketch encoding and rebuilds the tracking state.
func UnmarshalBinary(data []byte) (*Sketch, error) {
	base, err := dcs.UnmarshalBinary(data)
	if err != nil {
		return nil, fmt.Errorf("tdcs: %w", err)
	}
	t := fromBase(base)
	t.Rebuild()
	return t, nil
}
