package tdcs

import (
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
)

func mustNew(t testing.TB, cfg dcs.Config) *Sketch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

// driveRandom feeds n random updates (with ~1/4 deletes of previously
// inserted pairs) into each of the given update functions.
func driveRandom(seed uint64, n int, domain uint64, apply ...func(key uint64, delta int64)) {
	rng := hashing.NewSplitMix64(seed)
	var live []uint64
	for i := 0; i < n; i++ {
		if len(live) > 0 && rng.Next()%4 == 0 {
			idx := int(rng.Next() % uint64(len(live)))
			key := live[idx]
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			for _, fn := range apply {
				fn(key, -1)
			}
			continue
		}
		key := hashing.Mix64(rng.Next() % domain)
		live = append(live, key)
		for _, fn := range apply {
			fn(key, 1)
		}
	}
}

// TestEquivalenceWithBasicSketch is the strongest invariant in the package:
// under any insert/delete stream, TrackTopk on a tracking sketch returns
// exactly what BaseTopk returns on a basic sketch with the same seed,
// because the incrementally-maintained sample equals the recomputed one.
func TestEquivalenceWithBasicSketch(t *testing.T) {
	cfg := dcs.Config{Buckets: 64, Seed: 5}
	tr := mustNew(t, cfg)
	base, err := dcs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(step int) {
		a := tr.TopK(10)
		b := base.TopK(10)
		if len(a) != len(b) {
			t.Fatalf("step %d: lengths differ: tracking=%v basic=%v", step, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: entry %d differs: tracking=%+v basic=%+v", step, i, a[i], b[i])
			}
		}
	}

	rng := hashing.NewSplitMix64(7)
	var live []uint64
	for step := 0; step < 8000; step++ {
		if len(live) > 0 && rng.Next()%3 == 0 {
			idx := int(rng.Next() % uint64(len(live)))
			key := live[idx]
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
			tr.UpdateKey(key, -1)
			base.UpdateKey(key, -1)
		} else {
			// Confine keys to a small domain so repeats and true
			// collisions are exercised.
			key := hashing.Mix64(rng.Next() % 3000)
			live = append(live, key)
			tr.UpdateKey(key, 1)
			base.UpdateKey(key, 1)
		}
		if step%500 == 0 {
			check(step)
		}
	}
	check(8000)
}

// TestIncrementalMatchesRebuild verifies that the incrementally maintained
// tracking state is identical to a from-scratch reconstruction.
func TestIncrementalMatchesRebuild(t *testing.T) {
	cfg := dcs.Config{Buckets: 64, Seed: 11}
	tr := mustNew(t, cfg)
	driveRandom(13, 10000, 5000, tr.UpdateKey)

	// Snapshot incremental state.
	singles := make([]map[uint64]uint8, len(tr.singles))
	for b := range tr.singles {
		singles[b] = make(map[uint64]uint8, len(tr.singles[b]))
		for k, v := range tr.singles[b] {
			singles[b][k] = v
		}
	}
	heapSnap := make([]map[uint32]int64, len(tr.heaps))
	for b := range tr.heaps {
		heapSnap[b] = make(map[uint32]int64)
		for _, e := range tr.heaps[b].Snapshot() {
			heapSnap[b][e.Key] = e.Priority
		}
	}

	tr.Rebuild()

	for b := range tr.singles {
		if len(tr.singles[b]) != len(singles[b]) {
			t.Fatalf("level %d: singleton count %d after rebuild, %d incremental",
				b, len(tr.singles[b]), len(singles[b]))
		}
		for k, v := range tr.singles[b] {
			if singles[b][k] != v {
				t.Fatalf("level %d key %x: table count %d after rebuild, %d incremental",
					b, k, v, singles[b][k])
			}
		}
		rebuilt := make(map[uint32]int64)
		for _, e := range tr.heaps[b].Snapshot() {
			rebuilt[e.Key] = e.Priority
		}
		if len(rebuilt) != len(heapSnap[b]) {
			t.Fatalf("level %d: heap size %d after rebuild, %d incremental",
				b, len(rebuilt), len(heapSnap[b]))
		}
		for k, v := range rebuilt {
			if heapSnap[b][k] != v {
				t.Fatalf("level %d dest %d: heap freq %d after rebuild, %d incremental",
					b, k, v, heapSnap[b][k])
			}
		}
	}
}

func TestSmallStreamExactRecovery(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 256, Seed: 1})
	for src := uint32(1); src <= 5; src++ {
		tr.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 3; src++ {
		tr.Update(src, 20, 1)
	}
	top := tr.TopK(2)
	want := []dcs.Estimate{{Dest: 10, F: 5}, {Dest: 20, F: 3}}
	if len(top) != 2 || top[0] != want[0] || top[1] != want[1] {
		t.Fatalf("TopK = %+v, want %+v", top, want)
	}
}

func TestDeletionMovesTopK(t *testing.T) {
	// dest 10 leads; deleting its flows must promote dest 20 — the flash
	// crowd vs SYN flood discrimination in miniature.
	tr := mustNew(t, dcs.Config{Buckets: 256, Seed: 3})
	for src := uint32(1); src <= 6; src++ {
		tr.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 4; src++ {
		tr.Update(src, 20, 1)
	}
	if top := tr.TopK(1); len(top) != 1 || top[0].Dest != 10 {
		t.Fatalf("before deletes TopK = %+v", top)
	}
	for src := uint32(1); src <= 6; src++ {
		tr.Update(src, 10, -1)
	}
	top := tr.TopK(1)
	if len(top) != 1 || top[0].Dest != 20 || top[0].F != 4 {
		t.Fatalf("after deletes TopK = %+v, want [{20 4}]", top)
	}
}

func TestTopKDoesNotMutateState(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 64, Seed: 17})
	driveRandom(19, 3000, 2000, tr.UpdateKey)
	a := tr.TopK(10)
	for i := 0; i < 50; i++ {
		tr.TopK(10)
	}
	b := tr.TopK(10)
	if len(a) != len(b) {
		t.Fatal("repeated TopK changed the answer length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeated TopK changed entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestThreshold(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 256, Seed: 23})
	for src := uint32(1); src <= 9; src++ {
		tr.Update(src, 10, 1)
	}
	for src := uint32(1); src <= 2; src++ {
		tr.Update(src, 20, 1)
	}
	got := tr.Threshold(5)
	if len(got) != 1 || got[0].Dest != 10 || got[0].F != 9 {
		t.Fatalf("Threshold(5) = %+v", got)
	}
}

func TestMergeRebuildsTracking(t *testing.T) {
	cfg := dcs.Config{Buckets: 128, Seed: 29}
	a := mustNew(t, cfg)
	b := mustNew(t, cfg)
	both := mustNew(t, cfg)

	rng := hashing.NewSplitMix64(31)
	for i := 0; i < 2000; i++ {
		key := hashing.Mix64(rng.Next() % 1500)
		if i%2 == 0 {
			a.UpdateKey(key, 1)
		} else {
			b.UpdateKey(key, 1)
		}
		both.UpdateKey(key, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	ta, tb := a.TopK(10), both.TopK(10)
	if len(ta) != len(tb) {
		t.Fatalf("merged TopK length %d, want %d", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("merged TopK[%d] = %+v, want %+v", i, ta[i], tb[i])
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := mustNew(t, dcs.Config{Seed: 1})
	b := mustNew(t, dcs.Config{Seed: 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging different seeds must fail")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("merging nil must fail")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 64, Seed: 37})
	driveRandom(41, 5000, 3000, tr.UpdateKey)

	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	a, b := tr.TopK(10), got.TopK(10)
	if len(a) != len(b) {
		t.Fatalf("TopK lengths differ after round trip: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d] differs after round trip: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReset(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 64, Seed: 43})
	driveRandom(47, 1000, 500, tr.UpdateKey)
	tr.Reset()
	if tr.Updates() != 0 {
		t.Fatal("Reset must clear the update counter")
	}
	if got := tr.TopK(5); len(got) != 0 {
		t.Fatalf("TopK after Reset = %+v", got)
	}
	for b := range tr.singles {
		if len(tr.singles[b]) != 0 || tr.heaps[b].Len() != 0 {
			t.Fatalf("level %d retains tracking state after Reset", b)
		}
	}
}

func TestTopKZeroAndEmpty(t *testing.T) {
	tr := mustNew(t, dcs.Config{})
	if got := tr.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v", got)
	}
	if got := tr.TopK(5); len(got) != 0 {
		t.Fatalf("TopK on empty sketch = %v", got)
	}
}

func TestSampleKeysConsistent(t *testing.T) {
	tr := mustNew(t, dcs.Config{Buckets: 64, Seed: 53})
	driveRandom(59, 4000, 2500, tr.UpdateKey)
	keys := tr.SampleKeys()
	seen := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate key %x in sample", k)
		}
		seen[k] = struct{}{}
	}
	if int64(len(keys)) > tr.EstimateDistinctPairs() {
		t.Fatal("sample larger than the distinct-pair estimate implies a scaling bug")
	}
}

func TestUpdatesCounter(t *testing.T) {
	tr := mustNew(t, dcs.Config{})
	tr.Update(1, 2, 1)
	tr.Update(1, 2, -1)
	tr.Update(1, 2, 0)
	if got := tr.Updates(); got != 2 {
		t.Fatalf("Updates = %d, want 2", got)
	}
}
