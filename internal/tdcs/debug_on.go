//go:build dcsdebug

// Runtime invariant assertions for the tracking state, enabled by
// `go test -tags dcsdebug`. The tracking structures (singleton sets and
// per-level heaps) are a derived view of the counter array; these checks
// recompute that view directly from the counters and panic on any
// divergence. Updates get a cheap affected-key check; Merge and Rebuild get
// the full O(sketch size) verification, matching their own cost.
package tdcs

import (
	"fmt"

	"dcsketch/internal/hashing"
)

// debugAssertions enables the runtime invariant checks in this build.
const debugAssertions = true

// countOccurrences recounts in how many second-level tables key is the
// verified singleton of its bucket at the given level.
func (t *Sketch) countOccurrences(level int, key uint64) uint8 {
	cfg := t.base.Config()
	var n uint8
	for j := 0; j < cfg.Tables; j++ {
		if k, _, ok := t.base.DecodeBucket(level, j, t.base.BucketOf(j, key)); ok && k == key {
			n++
		}
	}
	return n
}

// assertKeyTracking panics when key's tracked singleton multiplicity at
// level disagrees with a direct recount of its buckets.
func (t *Sketch) assertKeyTracking(level int, key uint64, op string) {
	want := t.countOccurrences(level, key)
	got := t.singles[level][key]
	if got != want {
		panic(fmt.Sprintf("dcsdebug: %s left key %#x tracked as %d-table singleton at level %d, counters say %d",
			op, key, got, level, want))
	}
}

// assertTracking recomputes the whole tracking state from the counter array
// and panics on the first divergence in a singleton set or heap frequency.
func (t *Sketch) assertTracking(op string) {
	cfg := t.base.Config()
	freq := map[uint32]int64{}
	for level := cfg.Levels - 1; level >= 0; level-- {
		occ := map[uint64]uint8{}
		for j := 0; j < cfg.Tables; j++ {
			for b := 0; b < cfg.Buckets; b++ {
				if key, _, ok := t.base.DecodeBucket(level, j, b); ok {
					occ[key]++
				}
			}
		}
		if len(occ) != len(t.singles[level]) {
			panic(fmt.Sprintf("dcsdebug: %s left %d tracked singletons at level %d, counters say %d",
				op, len(t.singles[level]), level, len(occ)))
		}
		for key, want := range occ {
			if got := t.singles[level][key]; got != want {
				panic(fmt.Sprintf("dcsdebug: %s left key %#x tracked as %d-table singleton at level %d, counters say %d",
					op, key, got, level, want))
			}
		}
		// heaps[level] must count the sample destinations from levels
		// >= level; fold this level's keys in and compare.
		for key := range occ {
			freq[hashing.PairDest(key)]++
		}
		if t.heaps[level].Len() != len(freq) {
			panic(fmt.Sprintf("dcsdebug: %s left heap at level %d with %d destinations, sample says %d",
				op, level, t.heaps[level].Len(), len(freq)))
		}
		for dest, want := range freq {
			if got, _ := t.heaps[level].Get(dest); got != want {
				panic(fmt.Sprintf("dcsdebug: %s left dest %d with heap frequency %d at level %d, sample says %d",
					op, dest, got, level, want))
			}
		}
	}
}
