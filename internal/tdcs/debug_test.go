//go:build dcsdebug

package tdcs

import (
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/hashing"
)

// TestDebugTrackingVerified drives updates, deletes, a serialization round
// trip, and a merge with the per-operation tracking assertions armed; any
// divergence between tracking state and counters panics.
func TestDebugTrackingVerified(t *testing.T) {
	cfg := dcs.Config{Seed: 21, Buckets: 32, Tables: 3}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(22)
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = rng.Next()
		a.UpdateKey(keys[i], 1)
		if i%2 == 0 {
			b.UpdateKey(keys[i], 1)
		}
	}
	for _, k := range keys[:150] {
		a.UpdateKey(k, -1)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBinary(blob); err != nil { // Rebuild asserts
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil { // Rebuild asserts
		t.Fatal(err)
	}
}

// TestDebugCatchesCorruptedTracking corrupts the singleton bookkeeping
// behind the counters' back and checks the full verification notices.
func TestDebugCatchesCorruptedTracking(t *testing.T) {
	s, err := New(dcs.Config{Seed: 23, Buckets: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		s.UpdateKey(i*2654435761, 1)
	}
	// Invent a tracked singleton that no counter supports.
	phantom := uint64(0xdead)
	s.singles[s.base.LevelOf(phantom)][phantom] = 1
	defer func() {
		if recover() == nil {
			t.Fatal("assertTracking accepted corrupted tracking state")
		}
	}()
	s.assertTracking("test")
}
