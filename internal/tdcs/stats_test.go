package tdcs

import (
	"testing"

	"dcsketch/internal/dcs"
)

// TestQueryStatsTracking checks the tracking layer's health accessors:
// query and rebuild counters, and the live sample shape.
func TestQueryStatsTracking(t *testing.T) {
	s, err := New(dcs.Config{Levels: 8, Tables: 2, Buckets: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		s.UpdateKey(k*0x9e3779b97f4a7c15, 1)
	}
	if got := s.QueryStats().Queries; got != 0 {
		t.Fatalf("Queries before any query = %d", got)
	}
	s.TopK(5)
	s.Threshold(1)
	s.EstimateDistinctPairs()
	qs := s.QueryStats()
	if qs.Queries != 3 {
		t.Fatalf("Queries = %d, want 3", qs.Queries)
	}
	if qs.SampleLevel != s.SampleLevel() || qs.SampleSize != s.SampleSize() {
		t.Fatalf("QueryStats sample shape (%d,%d) != accessors (%d,%d)",
			qs.SampleLevel, qs.SampleSize, s.SampleLevel(), s.SampleSize())
	}
	if qs.SampleSize == 0 {
		t.Fatal("tracked sample empty after 200 inserts")
	}
	// The tracking updates decode affected buckets, so the base decode
	// counters must have been ticking during ingestion.
	if qs.DecodeSingletons == 0 {
		t.Fatal("no singleton decodes recorded during tracking updates")
	}

	if s.Rebuilds() != 0 {
		t.Fatalf("Rebuilds = %d before any rebuild", s.Rebuilds())
	}
	s.Rebuild()
	if s.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", s.Rebuilds())
	}
	base, err := dcs.New(s.Config())
	if err != nil {
		t.Fatal(err)
	}
	if got := FromBase(base).Rebuilds(); got != 1 {
		t.Fatalf("FromBase Rebuilds = %d, want 1", got)
	}
}
