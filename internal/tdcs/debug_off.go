//go:build !dcsdebug

package tdcs

// debugAssertions is false in ordinary builds, compiling the assertion call
// sites out entirely; build with -tags dcsdebug to swap in the checking
// implementations (debug_on.go).
const debugAssertions = false

func (t *Sketch) assertKeyTracking(level int, key uint64, op string) {}

func (t *Sketch) assertTracking(op string) {}
