package export

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/faultnet"
	"dcsketch/internal/hashing"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// startServer boots a monitor daemon with a pinned sketch seed so two
// servers fed identical traffic hold byte-identical state.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Monitor.Sketch.Seed == 0 {
		cfg.Monitor = monitor.Config{Sketch: dcs.Config{Seed: 1}}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, addr.String()
}

// genBatches produces a deterministic traffic trace: batches of batchSize
// updates with rng-drawn flows concentrated on a few destinations.
func genBatches(seed uint64, batches, batchSize int) [][]wire.Update {
	rng := hashing.NewSplitMix64(seed)
	out := make([][]wire.Update, batches)
	for i := range out {
		b := make([]wire.Update, batchSize)
		for j := range b {
			b[j] = wire.Update{
				Src:   uint32(rng.Next()),
				Dst:   uint32(rng.Next() % 16), // heavy-hitter-friendly key space
				Delta: int64(1 + rng.Next()%3),
			}
		}
		out[i] = b
	}
	return out
}

func TestExporterDeliversAndDrains(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	e, err := New(Config{Addr: addr, SessionID: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	traffic := genBatches(1, 10, 20)
	for _, b := range traffic {
		if err := e.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BatchesAcked != 10 || st.UpdatesAcked != 200 || st.Retransmits != 0 || st.Reconnects != 0 || st.BatchesDropped != 0 {
		t.Fatalf("exporter stats = %+v", st)
	}
	if st.SendAttempts != st.BatchesAcked {
		t.Fatalf("fault-free run: attempts %d != acked %d", st.SendAttempts, st.BatchesAcked)
	}
	if ss := srv.Stats(); ss.Batches != 10 || ss.Updates != 200 || ss.Hellos != 1 || ss.DuplicateBatches != 0 {
		t.Fatalf("server stats = %+v", ss)
	}
}

func TestSpoolShedsOldestWhenUnreachable(t *testing.T) {
	unreachable := func(addr string, timeout time.Duration) (net.Conn, error) {
		return nil, errors.New("no route")
	}
	e, err := New(Config{
		Addr:         "example.invalid:1",
		Dial:         unreachable,
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		SpoolBatches: 4,
		SessionID:    2,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 10; i++ {
		if err := e.Export(genBatches(uint64(i+1), 1, 5)[0]); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.BatchesDropped != 6 || st.UpdatesDropped != 30 {
		t.Fatalf("shedding stats = %+v, want 6 batches / 30 updates dropped", st)
	}
	if st.SpoolDepth != 4 {
		t.Fatalf("spool depth = %d, want the 4 freshest batches", st.SpoolDepth)
	}
	if err := e.Drain(10 * time.Millisecond); err == nil {
		t.Fatal("Drain succeeded with an unreachable server")
	}
	if st := e.Stats(); st.DialFailures == 0 {
		t.Fatal("no dial failures recorded against an unreachable server")
	}
}

func TestExportAfterClose(t *testing.T) {
	e, err := New(Config{Addr: "example.invalid:1", SessionID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Export(genBatches(1, 1, 1)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Export after Close = %v, want ErrClosed", err)
	}
	if err := e.Drain(time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestRegisterTelemetry(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	_ = srv
	e, err := New(Config{Addr: addr, SessionID: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := telemetry.NewRegistry()
	e.RegisterTelemetry(reg)

	if err := e.Export(genBatches(4, 1, 10)[0]); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Value
	}
	if got["dcsketch_export_batches_acked_total"] != 1 || got["dcsketch_export_updates_enqueued_total"] != 10 {
		t.Fatalf("telemetry snapshot = %v", got)
	}
	if _, ok := got["dcsketch_export_spool_depth"]; !ok {
		t.Fatalf("spool depth gauge missing from %v", got)
	}
}

// TestChaosExactlyOnceUnderCuts is the acceptance e2e: a seeded faultnet
// schedule kills the exporter's connection mid-batch several times, and the
// monitor's final top-k must be byte-identical to a fault-free run over the
// same traffic, with the exporter's ledger accounting exactly for the
// injected faults.
func TestChaosExactlyOnceUnderCuts(t *testing.T) {
	const (
		batches   = 200
		batchSize = 50
		maxCuts   = 5
		topK      = 32
	)
	traffic := genBatches(99, batches, batchSize)

	run := func(t *testing.T, dial func(string, time.Duration) (net.Conn, error)) (*server.Server, Stats) {
		srv, addr := startServer(t, server.Config{})
		e, err := New(Config{
			Addr:           addr,
			Dial:           dial,
			AttemptTimeout: 2 * time.Second,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     20 * time.Millisecond,
			SpoolBatches:   batches, // no shedding: this test is about delivery, not loss
			SessionID:      7,
			Seed:           7,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range traffic {
			if err := e.Export(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return srv, st
	}

	refSrv, refStats := run(t, nil)
	if refStats.Reconnects != 0 || refStats.Retransmits != 0 {
		t.Fatalf("reference run was not fault-free: %+v", refStats)
	}
	want := refSrv.TopK(topK)

	inj := faultnet.New(faultnet.Config{Seed: 42, CutAfter: 4096, MaxCuts: maxCuts})
	chaosSrv, st := run(t, inj.Dial)

	cuts := inj.Stats().Cuts
	if cuts != maxCuts {
		t.Fatalf("injected cuts = %d, want the full budget of %d", cuts, maxCuts)
	}

	// Exactly-once: every batch delivered despite the cuts, applied exactly
	// once, and the top-k is byte-identical to the fault-free run.
	got := chaosSrv.TopK(topK)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chaos top-%d diverged from fault-free run:\n got %+v\nwant %+v", topK, got, want)
	}
	if st.BatchesDropped != 0 || st.UpdatesDropped != 0 {
		t.Fatalf("chaos run shed batches: %+v", st)
	}
	if st.BatchesAcked != batches || st.UpdatesAcked != batches*batchSize {
		t.Fatalf("acked ledger = %+v, want all %d batches", st, batches)
	}

	// The ledger accounts exactly for the injected faults: every cut tore
	// down one live connection, and every send attempt is either a batch's
	// first try or a counted retransmit.
	if st.Reconnects != uint64(cuts) {
		t.Fatalf("reconnects = %d, cuts = %d", st.Reconnects, cuts)
	}
	if st.SendAttempts != st.BatchesAcked+st.Retransmits {
		t.Fatalf("attempts %d != acked %d + retransmits %d", st.SendAttempts, st.BatchesAcked, st.Retransmits)
	}
	if st.Hellos != uint64(cuts)+1 {
		t.Fatalf("hellos = %d, want one per (re)connect = %d", st.Hellos, cuts+1)
	}

	// Server side: applied + suppressed-duplicate partitions the sequenced
	// stream, and the applied half matches the fault-free totals exactly.
	ss := chaosSrv.Stats()
	if ss.Batches != batches || ss.Updates != batches*batchSize {
		t.Fatalf("server applied %d batches / %d updates, want %d / %d", ss.Batches, ss.Updates, batches, batches*batchSize)
	}
	if ss.Batches+ss.DuplicateBatches != ss.SeqBatches {
		t.Fatalf("applied %d + duplicates %d != sequenced %d", ss.Batches, ss.DuplicateBatches, ss.SeqBatches)
	}
}

// TestChaosReplayAfterReconnectPrunesSpool pins the hello-echo path: if the
// ack for an applied batch is lost to a cut, the reconnect handshake must
// prune it rather than resend it.
func TestChaosReplayAfterReconnectPrunesSpool(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	// A tight cut budget placed so the first cut lands around the first
	// batches' round trips.
	inj := faultnet.New(faultnet.Config{Seed: 3, CutAfter: 900, MaxCuts: 2})
	e, err := New(Config{
		Addr:           addr,
		Dial:           inj.Dial,
		AttemptTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		SpoolBatches:   64,
		SessionID:      11,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for _, b := range genBatches(5, 20, 30) {
		if err := e.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BatchesAcked != 20 || st.BatchesDropped != 0 {
		t.Fatalf("exporter stats = %+v", st)
	}
	ss := srv.Stats()
	if ss.Updates != 600 || ss.Batches != 20 {
		t.Fatalf("server applied %d updates in %d batches, want exactly-once 600/20", ss.Updates, ss.Batches)
	}
}

// TestChaosTraceReconstructsRetransmit is the flight-recorder acceptance e2e:
// after a seeded faultnet run kills connections mid-batch, the recorders alone
// — the exporter's ring plus the server's /debug/trace endpoint — must tell a
// killed batch's full story: enqueued, sent, connection cut, reconnect
// handshake, retransmitted, and applied exactly once with every replay
// suppressed by dedup.
func TestChaosTraceReconstructsRetransmit(t *testing.T) {
	const (
		batches   = 80
		batchSize = 50
		session   = 21
	)
	srv, addr := startServer(t, server.Config{})
	ts := httptest.NewServer(tracelog.TraceHandler(srv.Tracer()))
	defer ts.Close()

	inj := faultnet.New(faultnet.Config{Seed: 17, CutAfter: 4096, MaxCuts: 3})
	e, err := New(Config{
		Addr:           addr,
		Dial:           inj.Dial,
		AttemptTimeout: 2 * time.Second,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		SpoolBatches:   batches,
		SessionID:      session,
		Seed:           21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, b := range genBatches(13, batches, batchSize) {
		if err := e.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// The schedule is byte-deterministic, so a retransmit always happens;
	// losing it would silently retire this acceptance test.
	if inj.Stats().Cuts == 0 || st.Retransmits == 0 {
		t.Fatalf("seeded schedule produced no retransmit to reconstruct (cuts=%d, stats=%+v)", inj.Stats().Cuts, st)
	}

	// Exporter side: find a batch the cut killed mid-flight — two or more
	// send attempts for one seq — purely from the recorded events.
	expEvents := e.Tracer().Events(nil)
	sends := map[uint64]int{}
	for _, ev := range expEvents {
		if ev.Stage == tracelog.StageExportSend {
			sends[ev.Seq]++
		}
	}
	var victim uint64
	for seq, n := range sends {
		if n > 1 {
			victim = seq
		}
	}
	if victim == 0 {
		t.Fatalf("ledger counts %d retransmits but no seq has two send events", st.Retransmits)
	}

	// The exporter's timeline for the victim must read in causal order:
	// first send, then the connection cut, then the reconnect handshake,
	// then the resend. GSeq is the recorder-global total order.
	var firstSend, lastSend, cut, hello uint64
	for _, ev := range expEvents {
		switch {
		case ev.Stage == tracelog.StageExportSend && ev.Seq == victim:
			if firstSend == 0 {
				firstSend = ev.GSeq
			}
			lastSend = ev.GSeq
		case ev.Stage == tracelog.StageExportCut && ev.GSeq > firstSend && (cut == 0 || ev.GSeq < cut) && firstSend != 0:
			cut = ev.GSeq
		case ev.Stage == tracelog.StageExportHello && ev.GSeq > firstSend && (hello == 0 || ev.GSeq < hello) && firstSend != 0:
			hello = ev.GSeq
		}
	}
	if !(firstSend < cut && cut < hello && hello <= lastSend) {
		t.Fatalf("victim %d timeline out of order: send=%d cut=%d hello=%d resend=%d",
			victim, firstSend, cut, hello, lastSend)
	}

	// Server side, through the HTTP debug surface the incident responder
	// would actually use: /debug/trace must show the victim applied exactly
	// once, with any replay recorded as a suppressed duplicate.
	resp, err := http.Get(fmt.Sprintf("%s?session=%d&seq=%d", ts.URL, session, victim))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d (err %v): %s", resp.StatusCode, err, body)
	}
	var dump tracelog.Dump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("trace dump: %v\n%s", err, body)
	}
	var applies, acks int
	for _, ev := range dump.Events {
		switch tracelog.StageFromString(ev.Stage) {
		case tracelog.StageServerApply:
			applies++
		case tracelog.StageServerAck:
			acks++
		}
	}
	if applies != 1 {
		t.Fatalf("victim %d applied %d times in server trace, want exactly once:\n%s", victim, applies, body)
	}
	if acks == 0 {
		t.Fatalf("victim %d has no server ack in trace:\n%s", victim, body)
	}

	// Exactly-once over the whole run, proven from the recorder rather than
	// the counters: every batch of the session has exactly one server-apply
	// event (per-connection rings retain the full run at this scale).
	applyCount := map[uint64]int{}
	for _, ev := range srv.Tracer().Events(nil) {
		if ev.Stage == tracelog.StageServerApply && ev.Session == session {
			applyCount[ev.Seq]++
		}
	}
	for seq := uint64(1); seq <= batches; seq++ {
		if applyCount[seq] != 1 {
			t.Fatalf("seq %d has %d apply events, want exactly 1", seq, applyCount[seq])
		}
	}
}
