package export

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dcsketch/internal/server"
)

// flappingDial fails every attempt until recover is flipped, then dials the
// real address — an outage with a controllable end.
func flappingDial(addr *atomic.Value, recovered *atomic.Bool) func(string, time.Duration) (net.Conn, error) {
	return func(_ string, timeout time.Duration) (net.Conn, error) {
		if !recovered.Load() {
			return nil, errors.New("outage")
		}
		return net.DialTimeout("tcp", addr.Load().(string), timeout)
	}
}

// TestSpoolAccountingExactUnderSustainedOutage is the regression test for
// the drop-oldest wrap edge: a sustained outage keeps the spool pinned at
// its bound while hundreds of batches wrap through it, and the ledger must
// balance exactly at every point — during the outage,
// dropped + spooled == enqueued; after recovery and a full drain,
// dropped + acked == enqueued, batch- and update-exact, with no batch
// double-counted at the wrap boundary.
func TestSpoolAccountingExactUnderSustainedOutage(t *testing.T) {
	_, realAddr := startServer(t, server.Config{})
	var addr atomic.Value
	addr.Store(realAddr)
	var recovered atomic.Bool

	const (
		spoolBound = 8
		batches    = 500
		perBatch   = 5
	)
	e, err := New(Config{
		Addr:         "example.invalid:1",
		Dial:         flappingDial(&addr, &recovered),
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		SpoolBatches: spoolBound,
		SessionID:    21,
		Seed:         21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	traffic := genBatches(21, batches, perBatch)
	for i, b := range traffic {
		if err := e.Export(b); err != nil {
			t.Fatal(err)
		}
		// The balance must hold mid-outage at every wrap, not just at
		// the end; check at a few depths including the first wraps.
		if i < 3*spoolBound || i%97 == 0 {
			st := e.Stats()
			if st.BatchesDropped+uint64(st.SpoolDepth) != st.BatchesEnqueued {
				t.Fatalf("after %d exports: dropped %d + spooled %d != enqueued %d",
					i+1, st.BatchesDropped, st.SpoolDepth, st.BatchesEnqueued)
			}
		}
	}
	st := e.Stats()
	if st.BatchesEnqueued != batches || st.UpdatesEnqueued != batches*perBatch {
		t.Fatalf("enqueue ledger = %+v", st)
	}
	if st.BatchesDropped+uint64(st.SpoolDepth) != batches {
		t.Fatalf("outage balance: dropped %d + spooled %d != enqueued %d",
			st.BatchesDropped, st.SpoolDepth, batches)
	}
	if st.UpdatesDropped != st.BatchesDropped*perBatch {
		t.Fatalf("update ledger off: %d dropped updates for %d dropped batches",
			st.UpdatesDropped, st.BatchesDropped)
	}
	if st.BatchesAcked != 0 {
		t.Fatalf("acked %d batches during a total outage", st.BatchesAcked)
	}

	// Outage ends; the surviving spool tail must drain completely.
	recovered.Store(true)
	if err := e.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.BatchesDropped+st.BatchesAcked != batches {
		t.Fatalf("drained balance: dropped %d + acked %d != enqueued %d",
			st.BatchesDropped, st.BatchesAcked, batches)
	}
	if st.UpdatesDropped+st.UpdatesAcked != batches*perBatch {
		t.Fatalf("drained update balance: dropped %d + acked %d != enqueued %d",
			st.UpdatesDropped, st.UpdatesAcked, batches*perBatch)
	}
	if st.SendAttempts != st.BatchesAcked+st.Retransmits {
		t.Fatalf("attempt ledger: attempts %d != acked %d + retransmits %d",
			st.SendAttempts, st.BatchesAcked, st.Retransmits)
	}
	if st.BatchesAcked < spoolBound {
		t.Fatalf("acked only %d batches, expected at least the %d spooled at recovery",
			st.BatchesAcked, spoolBound)
	}
}

// TestSpoolSnapshotRestoreResumesSession checks the crash path: an exporter
// dies mid-outage with unacked batches spooled, a new exporter restores the
// snapshot, and the server ends up applying exactly the batches the snapshot
// held — same session, no gap reuse, ledger balanced.
func TestSpoolSnapshotRestoreResumesSession(t *testing.T) {
	srv, realAddr := startServer(t, server.Config{})
	unreachable := func(string, time.Duration) (net.Conn, error) {
		return nil, errors.New("outage")
	}

	e, err := New(Config{
		Addr:        "example.invalid:1",
		Dial:        unreachable,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		SessionID:   22,
		Seed:        22,
	})
	if err != nil {
		t.Fatal(err)
	}
	traffic := genBatches(22, 6, 10)
	for _, b := range traffic {
		if err := e.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	spool := e.SnapshotSpool()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if spool.SessionID != 22 || spool.NextSeq != 7 || len(spool.Batches) != 6 {
		t.Fatalf("snapshot = session %d nextSeq %d %d batches", spool.SessionID, spool.NextSeq, len(spool.Batches))
	}

	// "Restart": a fresh exporter seeded from the snapshot, network healthy.
	e2, err := New(Config{Addr: realAddr, Seed: 22, Restore: spool})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.SessionID() != 22 {
		t.Fatalf("restored session id = %d, want 22", e2.SessionID())
	}
	// New traffic after the restore continues the sequence space.
	extra := genBatches(23, 2, 10)
	for _, b := range extra {
		if err := e2.Export(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e2.Stats()
	if st.BatchesEnqueued != 8 || st.BatchesAcked != 8 || st.BatchesDropped != 0 {
		t.Fatalf("restored ledger = %+v", st)
	}
	if st.UpdatesAcked != 80 {
		t.Fatalf("restored updates acked = %d, want 80", st.UpdatesAcked)
	}
	ss := srv.Stats()
	if ss.Batches != 8 || ss.Updates != 80 || ss.DuplicateBatches != 0 {
		t.Fatalf("server stats = %+v", ss)
	}

	// A conflicting explicit session id is a configuration error.
	if _, err := New(Config{Addr: realAddr, SessionID: 99, Restore: spool}); err == nil {
		t.Fatal("restore with conflicting SessionID did not fail")
	}
}
