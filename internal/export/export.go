// Package export is the fault-tolerant edge exporter: the resilient
// counterpart to server.Client for streaming flow updates into the monitor
// daemon over an unreliable network. Where Client fails its caller on the
// first transport error, an Exporter absorbs faults: updates are enqueued
// into a bounded in-memory spool and a background loop ships them with
// automatic reconnection, jittered exponential backoff, and per-attempt
// timeouts.
//
// Delivery is exactly-once as long as the spool and the server's session
// table hold: every batch carries a session-scoped sequence number, the
// loop retransmits until the server acknowledges (at-least-once), and the
// server's per-session dedup table acks-without-applying anything at or
// below its replay horizon (idempotent replay). On reconnect the MsgHello
// handshake echoes that horizon, so batches whose ack was lost in a crash
// are pruned instead of resent.
//
// The spool bounds memory, not loss: when it fills, the oldest unacked
// batch is shed (drop-oldest — the freshest traffic is the most relevant
// to detection) and the drop is counted. A shed batch's sequence number is
// skipped forever; the server accepts sequence gaps for exactly this
// reason.
package export

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dcsketch/internal/hashing"
	"dcsketch/internal/snapshot"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// ErrClosed is returned by Export and Drain after Close.
var ErrClosed = errors.New("export: exporter closed")

// errRejected marks an in-band MsgError reply to a sequenced batch: the
// server understood the frame and refused it, so retrying the same bytes
// cannot succeed and the batch is dropped instead.
var errRejected = errors.New("export: batch rejected by server")

// Config parametrizes an Exporter. Only Addr is required.
type Config struct {
	// Addr is the monitor daemon's address.
	Addr string
	// Dial overrides the transport (the seam for fault injection and custom
	// networks); nil means TCP DialTimeout.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// AttemptTimeout bounds each round trip — handshake or batch — on a live
	// connection (default 10s). It is also how long Close may need to wrest
	// the loop off a dead peer.
	AttemptTimeout time.Duration
	// BaseBackoff and MaxBackoff bound the jittered exponential backoff
	// between failed attempts (defaults 50ms and 5s). The actual sleep is
	// uniform in [d/2, 3d/2) for the current step d, decorrelating a fleet
	// of exporters reconnecting after a shared outage.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// SpoolBatches bounds the in-memory spool (default 1024 batches); at
	// the bound the oldest unacked batch is shed.
	SpoolBatches int
	// SessionID identifies this exporter's replay session to the server; 0
	// (the reserved no-session value) draws a random one. Reusing an ID
	// across restarts resumes the session's replay horizon.
	SessionID uint64
	// Seed drives backoff jitter; 0 derives it from the session ID, so runs
	// with a pinned SessionID are fully deterministic.
	Seed uint64
	// Trace receives the exporter's flight-recorder events
	// (enqueue/shed/send/ack/prune/dial/cut, keyed by this session's
	// sequence numbers). Nil allocates a private recorder, readable via
	// Tracer; pass the daemon-wide recorder to merge the edge half of a
	// batch's story into /debug/trace.
	Trace *tracelog.Recorder
	// Restore seeds the exporter from a crash-safe spool snapshot captured
	// by SnapshotSpool: the replay session, its next sequence number, and
	// every still-unacked batch resume exactly where the dead process
	// stopped, so batches acked downstream by a relay before it crashed are
	// retransmitted upstream after restart instead of lost. The snapshot's
	// SessionID wins (it must, or the server's replay horizon would not
	// apply); setting a different non-zero SessionID alongside it is a
	// configuration error. Restored batches are counted as enqueued so the
	// ledger invariant (acked + dropped == enqueued when drained) holds for
	// the restarted process.
	Restore *snapshot.SpoolState
}

// Stats counts the exporter's delivery ledger. The invariant the chaos
// tests pin: SendAttempts == BatchesAcked + Retransmits whenever every
// enqueued batch has been acked (each batch's first attempt is not a
// retransmit, every later one is).
type Stats struct {
	// BatchesEnqueued and UpdatesEnqueued count Export calls admitted to
	// the spool.
	BatchesEnqueued, UpdatesEnqueued uint64
	// BatchesAcked and UpdatesAcked count batches confirmed applied by the
	// server (by MsgSeqAck, or pruned as already-applied by a MsgHello
	// echo).
	BatchesAcked, UpdatesAcked uint64
	// BatchesDropped and UpdatesDropped count spool sheds (drop-oldest
	// overflow) and server-rejected batches.
	BatchesDropped, UpdatesDropped uint64
	// SendAttempts counts MsgSeqUpdates round trips started; Retransmits
	// counts those that re-sent a batch already attempted at least once.
	SendAttempts, Retransmits uint64
	// Reconnects counts live connections torn down after a transport
	// failure; DialFailures counts connection attempts (dial or handshake)
	// that never yielded a usable session.
	Reconnects, DialFailures uint64
	// Hellos counts completed replay handshakes.
	Hellos uint64
	// SpoolDepth is the current spool occupancy; Connected reports whether
	// the loop holds a live connection.
	SpoolDepth int
	Connected  bool
}

// batch is one spooled, pre-encoded MsgSeqUpdates payload.
type batch struct {
	seq     uint64
	payload []byte
	n       int // update count, for the ledger
	// attempts counts sends started for this batch; mutated only by
	// Exporter.head under the exporter's mutex.
	attempts int
}

// Exporter is a fault-tolerant, spooling client for the monitor daemon.
// Safe for concurrent use.
type Exporter struct {
	cfg       Config
	sessionID uint64
	done      chan struct{}
	wg        sync.WaitGroup
	rec       *tracelog.Recorder

	// mu guards the spool and ledger below; cond (on mu) wakes the loop
	// when work arrives and Drain waiters when the spool empties.
	mu   sync.Mutex
	cond *sync.Cond
	// spool holds unacked batches oldest-first. guarded by mu
	spool []*batch
	// nextSeq is the next sequence number to assign (sequences start at 1;
	// shed batches leave gaps). guarded by mu
	nextSeq uint64
	// closed marks Close having begun. guarded by mu
	closed bool
	// conn is the loop's live connection, tracked so Close can unblock a
	// stuck round trip. guarded by mu
	conn net.Conn
	// rng drives backoff jitter. guarded by mu
	rng *hashing.SplitMix64
	// stats is the delivery ledger (SpoolDepth/Connected derived). guarded by mu
	stats Stats
	// ring is the exporter's flight-recorder ring; the pointer is
	// immutable after New. The ring's single-writer contract holds
	// because every Record call sits in a mu-protected critical section.
	ring *tracelog.Ring
}

// New starts an exporter for cfg; the background loop runs until Close.
func New(cfg Config) (*Exporter, error) {
	if cfg.Addr == "" {
		return nil, errors.New("export: Addr required")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.SpoolBatches <= 0 {
		cfg.SpoolBatches = 1024
	}
	id := cfg.SessionID
	if cfg.Restore != nil {
		if id != 0 && id != cfg.Restore.SessionID {
			return nil, fmt.Errorf("export: SessionID %d conflicts with restored session %d", id, cfg.Restore.SessionID)
		}
		if id = cfg.Restore.SessionID; id == 0 {
			return nil, errors.New("export: restored spool has no session id")
		}
	}
	for id == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("export: session id: %w", err)
		}
		id = binary.LittleEndian.Uint64(b[:])
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = hashing.Mix64(id)
	}
	rec := cfg.Trace
	if rec == nil {
		rec = tracelog.New(tracelog.Options{})
	}
	e := &Exporter{
		cfg:       cfg,
		sessionID: id,
		done:      make(chan struct{}),
		nextSeq:   1,
		rng:       hashing.NewSplitMix64(seed),
		rec:       rec,
	}
	e.ring = rec.Acquire(0)
	e.cond = sync.NewCond(&e.mu)
	if cfg.Restore != nil {
		if err := e.restoreSpool(cfg.Restore); err != nil {
			return nil, err
		}
	}
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// SessionID reports the replay session this exporter announces.
func (e *Exporter) SessionID() uint64 { return e.sessionID }

// Tracer returns the flight recorder holding this exporter's events — the
// one passed as Config.Trace, or the private recorder drawn when none was.
func (e *Exporter) Tracer() *tracelog.Recorder { return e.rec }

// Export enqueues one batch of updates for delivery. It never blocks on the
// network: if the spool is full, the oldest unacked batch is shed to make
// room (counted in BatchesDropped). Empty batches are a no-op.
func (e *Exporter) Export(updates []wire.Update) error {
	if len(updates) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	seq := e.nextSeq
	e.nextSeq++
	b := &batch{
		seq:     seq,
		payload: wire.AppendSeqUpdates(nil, seq, updates),
		n:       len(updates),
	}
	for len(e.spool) >= e.cfg.SpoolBatches {
		oldest := e.spool[0]
		e.spool = e.spool[1:]
		e.stats.BatchesDropped++
		e.stats.UpdatesDropped += uint64(oldest.n)
		e.ring.Record(tracelog.StageExportShed, e.sessionID, oldest.seq,
			uint32(oldest.n), uint64(len(e.spool)))
	}
	e.spool = append(e.spool, b)
	e.stats.BatchesEnqueued++
	e.stats.UpdatesEnqueued += uint64(len(updates))
	e.ring.Record(tracelog.StageExportEnqueue, e.sessionID, seq,
		uint32(b.n), uint64(len(e.spool)))
	e.cond.Broadcast()
	return nil
}

// Drain blocks until every spooled batch has been acked or shed, the
// timeout elapses, or the exporter closes. It reports whether the spool
// emptied.
func (e *Exporter) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		empty, closed := len(e.spool) == 0, e.closed
		e.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if empty {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("export: drain timed out with %d batches spooled", e.Stats().SpoolDepth)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops the loop and closes any live connection. Spooled batches not
// yet acked are abandoned (Drain first for a clean flush). Safe to call
// once; Export and Drain fail with ErrClosed afterwards.
func (e *Exporter) Close() error {
	if e.beginClose() {
		close(e.done)
	}
	e.wg.Wait()
	return nil
}

// beginClose marks the exporter closed and severs any live connection,
// reporting whether this call was the one that closed it.
func (e *Exporter) beginClose() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.closed = true
	if e.conn != nil {
		_ = e.conn.Close() // unblock a round trip stuck on a dead peer
		e.conn = nil
	}
	e.cond.Broadcast()
	return true
}

// Stats returns a snapshot of the delivery ledger.
func (e *Exporter) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.SpoolDepth = len(e.spool)
	st.Connected = e.conn != nil
	return st
}

// run is the delivery loop: wait for work, keep a session alive, ship the
// spool head, repeat.
func (e *Exporter) run() {
	defer e.wg.Done()
	var conn net.Conn
	var r *bufio.Reader
	var backoff time.Duration
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		if !e.waitWork() {
			return
		}
		if conn == nil {
			c, cr, err := e.connect()
			if err != nil {
				e.noteDialFailure()
				if !e.sleepBackoff(&backoff) {
					return
				}
				continue
			}
			conn, r = c, cr
			backoff = 0
			continue // re-check: the hello echo may have emptied the spool
		}
		b := e.head()
		if b == nil {
			continue
		}
		err := e.sendOne(conn, r, b)
		switch {
		case err == nil:
			backoff = 0
			e.ackUpTo(b.seq)
		case errors.Is(err, errRejected):
			// The stream is intact (in-band error); drop the poisonous
			// batch and keep the connection.
			e.dropHead(b.seq)
		default:
			e.teardown(conn)
			conn, r = nil, nil
			if !e.sleepBackoff(&backoff) {
				return
			}
		}
	}
}

// waitWork blocks until the spool is non-empty or the exporter closes,
// reporting whether the loop should keep running.
func (e *Exporter) waitWork() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.spool) == 0 && !e.closed {
		e.cond.Wait()
	}
	return !e.closed
}

// connect dials and runs the MsgHello handshake, then prunes every spooled
// batch at or below the echoed replay horizon (already applied; the ack
// was lost). On success the connection is registered so Close can unblock
// the loop.
func (e *Exporter) connect() (net.Conn, *bufio.Reader, error) {
	conn, err := e.cfg.Dial(e.cfg.Addr, e.cfg.DialTimeout)
	if err != nil {
		return nil, nil, err
	}
	r := bufio.NewReader(conn)
	if err := conn.SetDeadline(time.Now().Add(e.cfg.AttemptTimeout)); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHello(nil, e.sessionID)); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	typ, payload, err := wire.ReadFrame(r)
	if err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	if typ != wire.MsgHelloAck {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("export: hello reply type %v", typ)
	}
	lastAcked, err := wire.DecodeHelloAck(payload)
	if err != nil {
		_ = conn.Close()
		return nil, nil, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		_ = conn.Close()
		return nil, nil, ErrClosed
	}
	e.conn = conn
	e.stats.Hellos++
	e.ring.Record(tracelog.StageExportDial, e.sessionID, 0, 0, 1)
	e.ring.Record(tracelog.StageExportHello, e.sessionID, 0, 0, lastAcked)
	for len(e.spool) > 0 && e.spool[0].seq <= lastAcked {
		b := e.spool[0]
		e.spool = e.spool[1:]
		e.stats.BatchesAcked++
		e.stats.UpdatesAcked += uint64(b.n)
		e.ring.Record(tracelog.StageExportPrune, e.sessionID, b.seq,
			uint32(b.n), lastAcked)
	}
	if len(e.spool) == 0 {
		e.cond.Broadcast()
	}
	return conn, r, nil
}

// head returns the oldest spooled batch (nil if the spool emptied) and
// records the send attempt in the ledger.
func (e *Exporter) head() *batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.spool) == 0 {
		return nil
	}
	b := e.spool[0]
	e.stats.SendAttempts++
	if b.attempts > 0 {
		e.stats.Retransmits++
	}
	b.attempts++
	e.ring.Record(tracelog.StageExportSend, e.sessionID, b.seq,
		uint32(b.n), uint64(b.attempts))
	return b
}

// sendOne ships one pre-encoded batch and awaits its MsgSeqAck.
func (e *Exporter) sendOne(conn net.Conn, r *bufio.Reader, b *batch) error {
	if err := conn.SetDeadline(time.Now().Add(e.cfg.AttemptTimeout)); err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, wire.MsgSeqUpdates, b.payload); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(r)
	if err != nil {
		return err
	}
	switch typ {
	case wire.MsgSeqAck:
		acked, err := wire.DecodeSeqAck(payload)
		if err != nil {
			return err
		}
		if acked != b.seq {
			return fmt.Errorf("export: ack for seq %d, sent %d", acked, b.seq)
		}
		return nil
	case wire.MsgError:
		return fmt.Errorf("%w: %s", errRejected, payload)
	default:
		return fmt.Errorf("export: unexpected reply type %v", typ)
	}
}

// ackUpTo removes the acked batch (and, defensively, anything older) from
// the spool and credits the ledger.
func (e *Exporter) ackUpTo(seq uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.spool) > 0 && e.spool[0].seq <= seq {
		b := e.spool[0]
		e.spool = e.spool[1:]
		e.stats.BatchesAcked++
		e.stats.UpdatesAcked += uint64(b.n)
		e.ring.Record(tracelog.StageExportAck, e.sessionID, b.seq,
			uint32(b.n), seq)
	}
	if len(e.spool) == 0 {
		e.cond.Broadcast()
	}
}

// dropHead sheds the head batch if it is still seq (a server-rejected
// batch that retrying cannot fix).
func (e *Exporter) dropHead(seq uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.spool) > 0 && e.spool[0].seq == seq {
		b := e.spool[0]
		e.spool = e.spool[1:]
		e.stats.BatchesDropped++
		e.stats.UpdatesDropped += uint64(b.n)
		e.ring.Record(tracelog.StageExportDrop, e.sessionID, b.seq,
			uint32(b.n), uint64(b.attempts))
	}
	if len(e.spool) == 0 {
		e.cond.Broadcast()
	}
}

// teardown closes a failed connection and notes the reconnect.
func (e *Exporter) teardown(conn net.Conn) {
	_ = conn.Close()
	e.mu.Lock()
	e.conn = nil
	e.stats.Reconnects++
	e.ring.Record(tracelog.StageExportCut, e.sessionID, 0, 0, e.stats.Reconnects)
	e.mu.Unlock()
}

// noteDialFailure counts a connection attempt that never yielded a session.
func (e *Exporter) noteDialFailure() {
	e.mu.Lock()
	e.stats.DialFailures++
	e.ring.Record(tracelog.StageExportDial, e.sessionID, 0, 0, 0)
	e.mu.Unlock()
}

// sleepBackoff sleeps the next jittered exponential step (uniform in
// [d/2, 3d/2)), advancing *d toward MaxBackoff. It reports false if the
// exporter closed while sleeping.
func (e *Exporter) sleepBackoff(d *time.Duration) bool {
	if *d == 0 {
		*d = e.cfg.BaseBackoff
	} else if *d *= 2; *d > e.cfg.MaxBackoff {
		*d = e.cfg.MaxBackoff
	}
	e.mu.Lock()
	jittered := *d/2 + time.Duration(e.rng.Next()%uint64(*d))
	e.mu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-e.done:
		return false
	case <-t.C:
		return true
	}
}

// RegisterTelemetry registers the exporter's scrape-time probes on reg
// under dcsketch_export_*: the delivery ledger, reconnect/backoff
// activity, and spool occupancy.
func (e *Exporter) RegisterTelemetry(reg *telemetry.Registry) {
	reg.CounterFunc("dcsketch_export_batches_enqueued_total",
		"Batches admitted to the spool.",
		func() uint64 { return e.Stats().BatchesEnqueued })
	reg.CounterFunc("dcsketch_export_updates_enqueued_total",
		"Flow updates admitted to the spool.",
		func() uint64 { return e.Stats().UpdatesEnqueued })
	reg.CounterFunc("dcsketch_export_batches_acked_total",
		"Batches confirmed applied by the server.",
		func() uint64 { return e.Stats().BatchesAcked })
	reg.CounterFunc("dcsketch_export_updates_acked_total",
		"Flow updates confirmed applied by the server.",
		func() uint64 { return e.Stats().UpdatesAcked })
	reg.CounterFunc("dcsketch_export_batches_dropped_total",
		"Batches shed by spool overflow or rejected by the server.",
		func() uint64 { return e.Stats().BatchesDropped })
	reg.CounterFunc("dcsketch_export_updates_dropped_total",
		"Flow updates lost to shed or rejected batches.",
		func() uint64 { return e.Stats().UpdatesDropped })
	reg.CounterFunc("dcsketch_export_send_attempts_total",
		"Sequenced-batch round trips started.",
		func() uint64 { return e.Stats().SendAttempts })
	reg.CounterFunc("dcsketch_export_retransmits_total",
		"Batch sends beyond each batch's first attempt.",
		func() uint64 { return e.Stats().Retransmits })
	reg.CounterFunc("dcsketch_export_reconnects_total",
		"Live connections torn down after a transport failure.",
		func() uint64 { return e.Stats().Reconnects })
	reg.CounterFunc("dcsketch_export_dial_failures_total",
		"Connection attempts that never yielded a session.",
		func() uint64 { return e.Stats().DialFailures })
	reg.CounterFunc("dcsketch_export_hellos_total",
		"Replay handshakes completed.",
		func() uint64 { return e.Stats().Hellos })
	reg.GaugeFunc("dcsketch_export_spool_depth",
		"Unacked batches currently spooled.",
		func() int64 { return int64(e.Stats().SpoolDepth) })
	reg.GaugeFunc("dcsketch_export_connected",
		"1 while the delivery loop holds a live connection.",
		func() int64 {
			if e.Stats().Connected {
				return 1
			}
			return 0
		})
}
