// Crash-safe spool capture and restore: a relay (or any embedder) snapshots
// the unacked upstream spool atomically with the replay horizons that
// promise it, and a restarted process resumes the same session with the
// same next sequence number and the same spooled payloads — so every batch
// the dead process acked downstream is still retransmitted upstream. See
// DESIGN.md §14 for the recovery model.
package export

import (
	"fmt"

	"dcsketch/internal/snapshot"
	"dcsketch/internal/tracelog"
)

// SnapshotSpool captures the exporter's replay session, next sequence
// number, and every still-unacked batch (payload bytes copied — the caller
// owns the result outright). Safe on a live exporter: the capture holds the
// exporter mutex, so it is atomic with respect to Export, acks, and sheds.
func (e *Exporter) SnapshotSpool() *snapshot.SpoolState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := &snapshot.SpoolState{SessionID: e.sessionID, NextSeq: e.nextSeq}
	if len(e.spool) > 0 {
		st.Batches = make([]snapshot.SpoolBatch, 0, len(e.spool))
		for _, b := range e.spool {
			st.Batches = append(st.Batches, snapshot.SpoolBatch{
				Seq:     b.seq,
				Updates: uint32(b.n),
				Payload: append([]byte(nil), b.payload...),
			})
		}
	}
	return st
}

// restoreSpool seeds a not-yet-running exporter from a captured spool. It
// runs from New before the delivery loop starts, so the mutex is
// uncontended and held purely for the guarded-field discipline; validation
// is strict because the snapshot file's checksum guards bit rot, not logic
// errors in whoever assembled the state.
func (e *Exporter) restoreSpool(st *snapshot.SpoolState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := st.NextSeq
	if next == 0 {
		next = 1
	}
	var lastSeq uint64
	for _, sb := range st.Batches {
		if sb.Seq <= lastSeq {
			return fmt.Errorf("export: restored spool seq %d out of order", sb.Seq)
		}
		if sb.Seq >= next {
			return fmt.Errorf("export: restored spool seq %d >= next seq %d", sb.Seq, next)
		}
		lastSeq = sb.Seq
		b := &batch{
			seq:     sb.Seq,
			payload: append([]byte(nil), sb.Payload...),
			n:       int(sb.Updates),
		}
		e.spool = append(e.spool, b)
		// Count restored batches as enqueued: the restarted process's
		// ledger then keeps the drained-spool invariant
		// (acked + dropped == enqueued) without special cases.
		e.stats.BatchesEnqueued++
		e.stats.UpdatesEnqueued += uint64(b.n)
		e.ring.Record(tracelog.StageExportEnqueue, e.sessionID, b.seq,
			uint32(b.n), uint64(len(e.spool)))
	}
	e.nextSeq = next
	return nil
}
