package dsample

import (
	"math"
	"testing"

	"dcsketch/internal/hashing"
)

func mustNew(t *testing.T, capacity int, seed uint64) *Sampler {
	t.Helper()
	s, err := New(capacity, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("capacity=0 accepted")
	}
}

func TestSmallStreamExact(t *testing.T) {
	s := mustNew(t, 1024, 1)
	for src := uint32(1); src <= 10; src++ {
		s.Update(src, 7, 1)
	}
	for src := uint32(1); src <= 3; src++ {
		s.Update(src, 9, 1)
	}
	top := s.TopK(2)
	if len(top) != 2 || top[0] != (Estimate{7, 10}) || top[1] != (Estimate{9, 3}) {
		t.Fatalf("TopK = %+v", top)
	}
	if s.Level() != 0 {
		t.Fatalf("level rose on a small stream: %d", s.Level())
	}
}

func TestCapacityBoundAndScaling(t *testing.T) {
	s := mustNew(t, 256, 2)
	rng := hashing.NewSplitMix64(3)
	const u = 20000
	for i := 0; i < u; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	if s.Kept() > 256 {
		t.Fatalf("kept %d pairs, capacity 256", s.Kept())
	}
	if s.Level() == 0 {
		t.Fatal("level never rose under overflow")
	}
	got := float64(s.EstimateDistinctPairs())
	if math.Abs(got-u)/u > 0.35 {
		t.Fatalf("EstimateDistinctPairs = %v, want ~%d", got, u)
	}
}

func TestTopKAccuracyInsertOnly(t *testing.T) {
	// On insert-only streams Gibbons' sampler is a fine estimator; it
	// must find the dominant destination.
	s := mustNew(t, 512, 4)
	rng := hashing.NewSplitMix64(5)
	for i := uint32(0); i < 5000; i++ {
		s.Update(100000+i, 42, 1) // hot dest: 5000 distinct sources
	}
	for i := 0; i < 15000; i++ {
		s.UpdateKey(rng.Next(), 1) // scattered background
	}
	top := s.TopK(1)
	if len(top) != 1 || top[0].Dest != 42 {
		t.Fatalf("TopK = %+v, want dest 42", top)
	}
	if math.Abs(float64(top[0].F)-5000)/5000 > 0.4 {
		t.Fatalf("estimate %d, want ~5000", top[0].F)
	}
}

func TestDeleteWorksWhileStored(t *testing.T) {
	// Deletions of pairs still stored cancel correctly.
	s := mustNew(t, 1024, 6)
	for src := uint32(1); src <= 20; src++ {
		s.Update(src, 7, 1)
	}
	for src := uint32(1); src <= 20; src++ {
		s.Update(src, 7, -1)
	}
	if got := s.TopK(1); len(got) != 0 {
		t.Fatalf("TopK after full cancellation = %+v", got)
	}
	if s.DroppedDeletes() != 0 {
		t.Fatalf("DroppedDeletes = %d on a fully-stored workload", s.DroppedDeletes())
	}
}

// TestMonotoneThresholdStarvesSample demonstrates the structural weakness
// the paper contrasts with (§4): after a flash crowd forces the threshold
// up and then completes, the threshold cannot come back down, so the sample
// of the small remaining (attack) population is starved — even though the
// capacity could hold all of it. The Distinct-Count Sketch's query-time
// level choice does not have this problem.
func TestMonotoneThresholdStarvesSample(t *testing.T) {
	const capacity = 128
	s := mustNew(t, capacity, 7)
	const crowd = 16000
	for i := uint32(0); i < crowd; i++ {
		s.Update(1000+i, 80, 1)
	}
	levelAtPeak := s.Level()
	if levelAtPeak < 5 {
		t.Fatalf("threshold only reached %d under a %d-pair overload", levelAtPeak, crowd)
	}
	for i := uint32(0); i < crowd; i++ {
		s.Update(1000+i, 80, -1)
	}
	if s.DroppedDeletes() == 0 {
		t.Fatal("expected dropped deletions below the raised threshold")
	}

	// A 400-pair attack arrives. All 400 would fit in the capacity, but
	// the stuck threshold admits only ~400/2^level of them.
	const attack = 400
	for i := uint32(0); i < attack; i++ {
		s.Update(50000+i, 443, 1)
	}
	if s.Level() < levelAtPeak {
		t.Fatal("threshold must be monotone")
	}
	if s.Kept() > attack/8 {
		t.Fatalf("kept %d pairs; expected starvation well below the %d live pairs", s.Kept(), attack)
	}
}

func TestLevelMembershipInvariant(t *testing.T) {
	s := mustNew(t, 64, 8)
	rng := hashing.NewSplitMix64(9)
	for i := 0; i < 5000; i++ {
		s.UpdateKey(rng.Next(), 1)
	}
	for key := range s.kept {
		if s.hash.Level(key, s.levels) < s.level {
			t.Fatalf("stored key %x below threshold level %d", key, s.level)
		}
	}
}

func TestTopKZero(t *testing.T) {
	s := mustNew(t, 16, 10)
	if got := s.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %+v", got)
	}
}

func TestZeroDeltaNoop(t *testing.T) {
	s := mustNew(t, 16, 11)
	s.Update(1, 2, 0)
	if s.Kept() != 0 {
		t.Fatal("zero delta stored a pair")
	}
}
