// Package dsample implements Gibbons' distinct sampling ("Distinct Sampling
// for Highly-Accurate Answers to Distinct Values Queries and Event Reports",
// VLDB 2001) — the prior-art synopsis the paper contrasts with (§1, §4,
// references [18, 19]).
//
// Gibbons' sampler keeps the *identities* of pairs whose hash level is >= a
// current threshold, halving the kept set (raising the threshold) whenever
// it overflows the space budget. On insert-only streams it yields the same
// kind of distinct sample as the Distinct-Count Sketch and supports the same
// top-k estimation.
//
// Its structural weakness under update streams — the reason the paper calls
// its own synopsis "completely delete-resistant" in contrast (§4) — is that
// the sampling threshold is *monotone*: information discarded at a threshold
// raise is gone, so when deletions later shrink the live population (a flash
// crowd completing), the threshold cannot come back down and the sample
// starves. A query after the crowd departs must estimate the remaining
// (attack) population from the few survivors of an unnecessarily coarse
// sampling rate, while the Distinct-Count Sketch — whose level choice is
// made at *query* time over counters that retain every level — simply reads
// the now-sparse lower levels exactly. The repository's comparison
// experiment quantifies this (sample starvation and the resulting error).
package dsample

import (
	"fmt"
	"sort"

	"dcsketch/internal/hashing"
)

// Estimate mirrors the sketch estimate shape: a destination and its
// estimated distinct-source frequency.
type Estimate struct {
	Dest uint32
	F    int64
}

// Sampler is a Gibbons-style distinct sampler over pair keys.
type Sampler struct {
	capacity int
	hash     *hashing.Tab64
	levels   int

	// level is the current sampling threshold: pairs with
	// hash level >= level are kept, an event of probability 2^-level.
	level int
	// kept maps stored pair keys to their net counts (net counts let the
	// sampler at least cancel deletions of pairs it still stores).
	kept map[uint64]int64

	// droppedDeletes counts deletions that could not be applied — the
	// structural failure mode under update streams.
	droppedDeletes uint64
}

// New builds a sampler storing at most capacity distinct pairs.
func New(capacity int, seed uint64) (*Sampler, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("dsample: capacity = %d, must be >= 1", capacity)
	}
	return &Sampler{
		capacity: capacity,
		hash:     hashing.NewTab64(seed),
		levels:   64,
		kept:     make(map[uint64]int64, capacity),
	}, nil
}

// Update processes a flow update.
func (s *Sampler) Update(src, dst uint32, delta int64) {
	s.UpdateKey(hashing.PairKey(src, dst), delta)
}

// UpdateKey is Update on a packed pair key.
func (s *Sampler) UpdateKey(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	if s.hash.Level(key, s.levels) < s.level {
		if delta < 0 {
			// The pair was (or would have been) below the sampling
			// threshold: nothing stored to cancel. If the pair was
			// inserted *before* the threshold rose, its insertion
			// has already been discarded and this delete is lost —
			// Gibbons' structure cannot tell the two cases apart.
			s.droppedDeletes += uint64(-delta)
		}
		return
	}
	c := s.kept[key] + delta
	switch {
	case c > 0:
		s.kept[key] = c
	case c == 0:
		delete(s.kept, key)
	default:
		// Net-negative stored count: the matching insert predates the
		// sampler's knowledge (e.g. it was evicted by a threshold
		// raise). Drop the residual rather than keeping a phantom.
		delete(s.kept, key)
		s.droppedDeletes += uint64(-c)
	}
	for len(s.kept) > s.capacity {
		s.raiseLevel()
	}
}

// raiseLevel halves the kept set by raising the sampling threshold.
func (s *Sampler) raiseLevel() {
	s.level++
	for key := range s.kept {
		if s.hash.Level(key, s.levels) < s.level {
			delete(s.kept, key)
		}
	}
}

// Level returns the current sampling threshold.
func (s *Sampler) Level() int { return s.level }

// Kept returns the number of stored pairs.
func (s *Sampler) Kept() int { return len(s.kept) }

// DroppedDeletes reports how many deletions could not be applied.
func (s *Sampler) DroppedDeletes() uint64 { return s.droppedDeletes }

// TopK estimates the top-k destinations by distinct-source frequency from
// the sample, scaling per-destination sample counts by 2^level.
func (s *Sampler) TopK(k int) []Estimate {
	if k <= 0 {
		return nil
	}
	freq := make(map[uint32]int64)
	for key := range s.kept {
		freq[hashing.PairDest(key)]++
	}
	scale := int64(1) << uint(s.level)
	ests := make([]Estimate, 0, len(freq))
	for dest, f := range freq {
		ests = append(ests, Estimate{Dest: dest, F: f * scale})
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].F != ests[j].F {
			return ests[i].F > ests[j].F
		}
		return ests[i].Dest < ests[j].Dest
	})
	if k < len(ests) {
		ests = ests[:k]
	}
	return ests
}

// EstimateDistinctPairs estimates U as 2^level · |kept|.
func (s *Sampler) EstimateDistinctPairs() int64 {
	return int64(len(s.kept)) << uint(s.level)
}

// SizeBytes approximates the sampler's footprint (16 bytes per stored pair
// plus map overhead ~8 bytes).
func (s *Sampler) SizeBytes() int { return len(s.kept) * 24 }
