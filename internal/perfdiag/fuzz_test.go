package perfdiag

import (
	"strings"
	"testing"
)

// FuzzParseCompilerDiag feeds arbitrary build output through Parse and checks
// the structural invariants every returned diagnostic must satisfy: a .go
// file, positive line, non-negative column, a known kind, a name exactly for
// inlining decisions, and a non-empty message. Seeds cover each real line
// format including multi-line nested -m -m escape flows.
func FuzzParseCompilerDiag(f *testing.F) {
	f.Add(sampleOutput)
	f.Add("internal/vec/vec.go:37:6: can inline buildMaskedAddendsGeneric\n")
	f.Add("x.go:1:2: cannot inline f: function too complex: cost 376 exceeds budget 80\n")
	f.Add("x.go:9:4: Found IsInBounds\nx.go:9:4: Found IsSliceInBounds\n")
	f.Add("x.go:3:7: v escapes to heap:\nx.go:3:7:   flow: {heap} = v:\n\tfrom v (spill)\n")
	f.Add("x.go:5:2: moved to heap: fp\n# dcsketch/internal/dcs\n")
	f.Add("x.go:5:2: inlining call to slices.SortFunc[go.shape.struct { A int }]\n")
	f.Add("x.go:1:1: can inline f with cost 7 as: func() { x.go:2:2: Found IsInBounds }\n")
	f.Add(":::\nx.go:: broken\nx.go:-1:-1: Found IsInBounds\n\x00\xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		diags := Parse(strings.NewReader(input))
		for i, d := range diags {
			if !strings.HasSuffix(d.File, ".go") || strings.ContainsAny(d.File, " \t") {
				t.Errorf("diag %d: impossible file %q", i, d.File)
			}
			if d.Line <= 0 || d.Col <= 0 {
				t.Errorf("diag %d: non-positive position %d:%d", i, d.Line, d.Col)
			}
			if d.Kind.String() == "unknown" {
				t.Errorf("diag %d: unclassified kind %d leaked out", i, d.Kind)
			}
			hasName := d.Name != ""
			wantName := d.Kind == KindCanInline || d.Kind == KindCannotInline || d.Kind == KindInlineCall
			if wantName != hasName {
				// Inline decisions for anonymous subjects can parse to an
				// empty name only if the compiler printed one, which it
				// never does; treat both directions as invariant breaks.
				t.Errorf("diag %d: kind %v with name %q", i, d.Kind, d.Name)
			}
			if d.Msg == "" {
				t.Errorf("diag %d: empty message", i)
			}
		}
		// Parsing must be deterministic.
		again := Parse(strings.NewReader(input))
		if len(again) != len(diags) {
			t.Errorf("Parse not deterministic: %d then %d diags", len(diags), len(again))
		}
	})
}
