// Package perfdiag parses the gc compiler's performance-relevant diagnostic
// output: the escape-analysis and inlining decisions printed by
// -gcflags='-m -m' and the residual bounds-check sites printed by
// -gcflags='-d=ssa/check_bce/debug=1'. It is the text layer under
// cmd/perfcheck (and its cmd/escapecheck alias), which turns these
// diagnostics into CI-enforced contracts on the //lint:allocfree,
// //lint:bce and //lint:inline annotated hot paths.
//
// The input is the combined stdout+stderr of a `go build` run: "# package"
// section headers, one "file.go:line:col: message" diagnostic per line, and
// (at -m -m) indented escape-flow explanations under their escape line. The
// parser is deliberately tolerant — unknown message shapes are skipped, not
// errors — because the exact diagnostic vocabulary shifts between compiler
// releases and a perf gate must fail on contract violations, never on
// incidental new compiler chatter.
package perfdiag

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Kind classifies one compiler diagnostic.
type Kind int

const (
	// KindEscape is a heap-escape decision: "x escapes to heap" or
	// "moved to heap: x".
	KindEscape Kind = iota
	// KindCanInline is a positive inlining decision at a function
	// declaration: "can inline F" (with "-m -m", "can inline F with cost
	// N as: ...").
	KindCanInline
	// KindCannotInline is a negative inlining decision at a function
	// declaration: "cannot inline F: reason".
	KindCannotInline
	// KindInlineCall is an inlined call site: "inlining call to F".
	KindInlineCall
	// KindBoundsCheck is a residual bounds check the SSA pass could not
	// eliminate: "Found IsInBounds" or "Found IsSliceInBounds".
	KindBoundsCheck
)

// String names the kind for diagnostics and test failures.
func (k Kind) String() string {
	switch k {
	case KindEscape:
		return "escape"
	case KindCanInline:
		return "can-inline"
	case KindCannotInline:
		return "cannot-inline"
	case KindInlineCall:
		return "inline-call"
	case KindBoundsCheck:
		return "bounds-check"
	}
	return "unknown"
}

// Diag is one classified compiler diagnostic at a source position. File is
// reproduced as the compiler printed it — package-relative or absolute
// depending on how the build was invoked — so consumers match it by path
// suffix against their own absolute spans.
type Diag struct {
	File string
	Line int
	Col  int
	Kind Kind
	// Name is the subject function of an inlining decision ("(*Sketch).
	// applySig", "slices.SortFunc[...]"); empty for escapes and bounds
	// checks.
	Name string
	// Msg is the full diagnostic message after the position prefix.
	Msg string
}

// diagLine matches one compiler diagnostic: file.go:line:col: message. The
// compiler always emits a column for the diagnostics we classify.
var diagLine = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.*)$`)

// Parse extracts the classified diagnostics from compiler output. Section
// headers ("# package"), indented escape-flow explanations, "does not
// escape" notes, "leaking param" summaries and any other unrecognized lines
// are skipped. A nil slice means no relevant diagnostics.
func Parse(r io.Reader) []Diag {
	var out []Diag
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") ||
			strings.HasPrefix(line, " ") || strings.HasPrefix(line, "\t") {
			continue
		}
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		kind, name, ok := classify(m[4])
		if !ok {
			continue
		}
		if name == "" && (kind == KindCanInline || kind == KindCannotInline || kind == KindInlineCall) {
			// An inline decision needs a subject; the compiler never prints
			// a bare prefix, so a nameless one is corrupt input, not a diag.
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		if ln < 1 || col < 1 {
			// The compiler emits 1-based positions; a zero means the line
			// is not a real diagnostic.
			continue
		}
		out = append(out, Diag{File: m[1], Line: ln, Col: col, Kind: kind, Name: name, Msg: m[4]})
	}
	return out
}

// classify maps a diagnostic message to its kind (and subject function for
// inlining decisions). ok is false for messages perfcheck has no use for.
func classify(msg string) (kind Kind, name string, ok bool) {
	switch {
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		return KindBoundsCheck, "", true
	case strings.HasPrefix(msg, "can inline "):
		return KindCanInline, inlineSubject(strings.TrimPrefix(msg, "can inline ")), true
	case strings.HasPrefix(msg, "cannot inline "):
		rest := strings.TrimPrefix(msg, "cannot inline ")
		if i := strings.Index(rest, ": "); i >= 0 {
			rest = rest[:i]
		}
		return KindCannotInline, rest, true
	case strings.HasPrefix(msg, "inlining call to "):
		return KindInlineCall, strings.TrimPrefix(msg, "inlining call to "), true
	case strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap"):
		// "x does not escape" contains neither phrase, so plain
		// non-escape notes never land here.
		return KindEscape, "", true
	}
	return 0, "", false
}

// inlineSubject strips the "-m -m" cost/body suffix from a positive inlining
// decision: "F with cost 57 as: func(...) { ... }" -> "F". Generic
// instantiations keep their full bracketed shape (which may itself contain
// spaces), so only the documented suffix is trimmed, not the first token.
func inlineSubject(rest string) string {
	if i := strings.Index(rest, " with cost "); i >= 0 {
		return rest[:i]
	}
	return rest
}
