package perfdiag

import (
	"strings"
	"testing"
)

// sampleOutput exercises every line shape the parser must handle: section
// headers, -m -m nested escape flows (indented), single- and double-m inline
// decisions, inlined call sites, BCE findings (including stdlib positions
// from inlined generic bodies), and non-diagnostic chatter.
const sampleOutput = `# dcsketch/internal/dcs
internal/dcs/dcs.go:287:6: can inline (*Sketch).UpdateKey
internal/dcs/dcs.go:290:7: can inline (*Sketch).bucketSig with cost 24 as: method(*Sketch) func(int, int, int) []int64 { i := ((level * s.cfg.Tables + table) * s.cfg.Buckets + bucket) * s.width; return s.counters[i:i + s.width] }
internal/dcs/dcs.go:442:6: cannot inline (*Sketch).applySig: function too complex: cost 137 exceeds budget 80
internal/dcs/dcs.go:321:2: s does not escape
internal/dcs/dcs.go:330:12: key escapes to heap:
internal/dcs/dcs.go:330:12:   flow: {heap} = key:
internal/dcs/dcs.go:330:12:     from key (spill) at internal/dcs/dcs.go:330:12
	escapes because of loop depth
internal/dcs/dcs.go:335:9: moved to heap: fp
internal/dcs/dcs.go:400:2: leaking param: buckets
internal/dcs/dcs.go:291:2: inlining call to vec.BuildMaskedAddends
internal/dcs/dcs.go:443:43: Found IsSliceInBounds
internal/dcs/dcs.go:457:13: Found IsInBounds
/usr/local/go/src/slices/zsortanyfunc.go:12:33: Found IsInBounds
internal/dcs/dcs.go:609:6: can inline (*Sketch).EstimateDistinctPairs with cost 11 as: method(*Sketch) func() int64 { return estimateDistinct(s.counters, s.cfg, s.layout) }
internal/dcs/serial.go:81:17: inlining call to slices.SortFunc[go.shape.[]dcsketch/internal/dcs.Estimate,go.shape.struct { Dest uint32; F int64 }]
not a diagnostic at all
internal/dcs/dcs.go:12:1: some future compiler note
`

func TestParseClassifiesEveryShape(t *testing.T) {
	got := Parse(strings.NewReader(sampleOutput))
	want := []Diag{
		{File: "internal/dcs/dcs.go", Line: 287, Col: 6, Kind: KindCanInline, Name: "(*Sketch).UpdateKey", Msg: "can inline (*Sketch).UpdateKey"},
		{File: "internal/dcs/dcs.go", Line: 290, Col: 7, Kind: KindCanInline, Name: "(*Sketch).bucketSig"},
		{File: "internal/dcs/dcs.go", Line: 442, Col: 6, Kind: KindCannotInline, Name: "(*Sketch).applySig", Msg: "cannot inline (*Sketch).applySig: function too complex: cost 137 exceeds budget 80"},
		{File: "internal/dcs/dcs.go", Line: 330, Col: 12, Kind: KindEscape, Msg: "key escapes to heap:"},
		{File: "internal/dcs/dcs.go", Line: 335, Col: 9, Kind: KindEscape, Msg: "moved to heap: fp"},
		{File: "internal/dcs/dcs.go", Line: 291, Col: 2, Kind: KindInlineCall, Name: "vec.BuildMaskedAddends"},
		{File: "internal/dcs/dcs.go", Line: 443, Col: 43, Kind: KindBoundsCheck, Msg: "Found IsSliceInBounds"},
		{File: "internal/dcs/dcs.go", Line: 457, Col: 13, Kind: KindBoundsCheck, Msg: "Found IsInBounds"},
		{File: "/usr/local/go/src/slices/zsortanyfunc.go", Line: 12, Col: 33, Kind: KindBoundsCheck, Msg: "Found IsInBounds"},
		{File: "internal/dcs/dcs.go", Line: 609, Col: 6, Kind: KindCanInline, Name: "(*Sketch).EstimateDistinctPairs"},
		{File: "internal/dcs/serial.go", Line: 81, Col: 17, Kind: KindInlineCall,
			Name: "slices.SortFunc[go.shape.[]dcsketch/internal/dcs.Estimate,go.shape.struct { Dest uint32; F int64 }]"},
	}
	if len(got) != len(want) {
		t.Fatalf("Parse returned %d diags, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].File != want[i].File || got[i].Line != want[i].Line ||
			got[i].Col != want[i].Col || got[i].Kind != want[i].Kind || got[i].Name != want[i].Name {
			t.Errorf("Parse[%d] = %+v, want %+v", i, got[i], want[i])
		}
		if want[i].Msg != "" && got[i].Msg != want[i].Msg {
			t.Errorf("Parse[%d].Msg = %q, want %q", i, got[i].Msg, want[i].Msg)
		}
	}
}

func TestParseSkipsIndentedFlowAndHeaders(t *testing.T) {
	in := "# pkg\n  internal/x.go:1:1: Found IsInBounds\n\tinternal/x.go:2:1: moved to heap: v\n"
	if got := Parse(strings.NewReader(in)); got != nil {
		t.Errorf("indented lines must be skipped, got %+v", got)
	}
}

func TestParseDoesNotEscapeIsNotAnEscape(t *testing.T) {
	in := "x.go:3:7: buckets does not escape\nx.go:4:2: leaking param: b\n"
	if got := Parse(strings.NewReader(in)); got != nil {
		t.Errorf("non-escape notes must be skipped, got %+v", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindEscape:       "escape",
		KindCanInline:    "can-inline",
		KindCannotInline: "cannot-inline",
		KindInlineCall:   "inline-call",
		KindBoundsCheck:  "bounds-check",
		Kind(99):         "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestInlineSubject(t *testing.T) {
	tests := []struct{ in, want string }{
		{"f", "f"},
		{"(*Sketch).applySig", "(*Sketch).applySig"},
		{"f with cost 57 as: func(a int) int { return a }", "f"},
		{"g[go.shape.struct { A int; B int }] with cost 3 as: func() {}", "g[go.shape.struct { A int; B int }]"},
	}
	for _, tt := range tests {
		if got := inlineSubject(tt.in); got != tt.want {
			t.Errorf("inlineSubject(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
