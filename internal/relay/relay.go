// Package relay is the regional tier of the collector fabric: a process
// that accepts edge exporters' sequenced update batches exactly like the
// global monitor daemon, folds them into a regional sketch for local
// queries, and re-exports every accepted batch upward through its own
// replay session — edge → regional → global fan-in with exactly-once
// application at every hop, riding on sketch linearity (regional and
// global folds of the same traffic merge to identical counters).
//
// The hop-by-hop exactly-once argument: the server's Forward tap runs
// under the server mutex, atomically with the dedup check and the replay-
// horizon advance, so a batch is spooled upstream before its downstream
// ack is written — "acked downstream implies spooled upstream". Upstream,
// the exporter's session sequence numbers and the global server's dedup
// table de-duplicate retransmissions exactly as they do for edges. A
// crash between ack and upstream delivery is covered by the crash-safe
// snapshot: SnapshotState captures the session horizons and the upstream
// spool under one admission gate, so a restored relay retransmits
// precisely the batches it had acked but not yet delivered.
package relay

import (
	"errors"
	"fmt"
	"net"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/export"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/snapshot"
	"dcsketch/internal/telemetry"
	"dcsketch/internal/tracelog"
)

// Config parametrizes a Relay. Upstream is required.
type Config struct {
	// Upstream is the global collector's address.
	Upstream string
	// UpstreamDial overrides the upstream transport (the fault-injection
	// seam); nil means TCP.
	UpstreamDial func(addr string, timeout time.Duration) (net.Conn, error)
	// Monitor configures the regional detection state. The sketch config
	// (dimensions and seed) must match the fleet's: regional and global
	// sketches merge only when built identically.
	Monitor monitor.Config
	// IngestShards, MaxConns and MaxSessions mirror server.Config.
	IngestShards int
	MaxConns     int
	MaxSessions  int
	// SpoolBatches bounds the upstream spool (export.Config.SpoolBatches).
	SpoolBatches int
	// SessionID identifies the relay's upstream replay session; 0 draws a
	// random one. Pin it (or restore a snapshot) so a restarted relay
	// resumes its replay horizon at the global tier.
	SessionID uint64
	// Seed drives upstream backoff jitter (export.Config.Seed).
	Seed uint64
	// ShedOnFull enables deterministic whole-batch shedding on the ingest
	// shard queues (server.Config.ShedOnFull).
	ShedOnFull bool
	// Trace receives flight-recorder events from both halves — the server
	// side of each downstream session and the exporter side of the upstream
	// one — so a batch's full story through this hop reads from one
	// recorder. Nil allocates a private recorder.
	Trace *tracelog.Recorder
	// Restore seeds the relay from a crash-safe snapshot captured by
	// SnapshotState: sketch, profiles, and downstream replay horizons into
	// the server; upstream session and unacked spool into the exporter.
	Restore *snapshot.State
}

// Relay glues a downstream server to an upstream exporter.
type Relay struct {
	srv *server.Server
	exp *export.Exporter
}

// New builds a relay. The upstream delivery loop starts immediately;
// downstream listening starts with Listen/Serve.
func New(cfg Config) (*Relay, error) {
	if cfg.Upstream == "" {
		return nil, errors.New("relay: Upstream required")
	}
	ecfg := export.Config{
		Addr:         cfg.Upstream,
		Dial:         cfg.UpstreamDial,
		SpoolBatches: cfg.SpoolBatches,
		SessionID:    cfg.SessionID,
		Seed:         cfg.Seed,
		Trace:        cfg.Trace,
	}
	if cfg.Restore != nil {
		ecfg.Restore = cfg.Restore.Spool
	}
	exp, err := export.New(ecfg)
	if err != nil {
		return nil, fmt.Errorf("relay: upstream exporter: %w", err)
	}
	srv, err := server.New(server.Config{
		Monitor:      cfg.Monitor,
		IngestShards: cfg.IngestShards,
		MaxConns:     cfg.MaxConns,
		MaxSessions:  cfg.MaxSessions,
		ShedOnFull:   cfg.ShedOnFull,
		Trace:        cfg.Trace,
		// The upstream tap. Export never blocks on the network (it spools,
		// shedding its own oldest batch past the bound), so holding the
		// server mutex across it costs one encode. Its only error is
		// ErrClosed during shutdown, which aborts the batch unacked — the
		// edge retransmits to the next incarnation.
		Forward: exp.Export,
	})
	if err != nil {
		exp.Close()
		return nil, fmt.Errorf("relay: server: %w", err)
	}
	if cfg.Restore != nil {
		if err := srv.RestoreState(cfg.Restore); err != nil {
			exp.Close()
			return nil, fmt.Errorf("relay: restore: %w", err)
		}
	}
	return &Relay{srv: srv, exp: exp}, nil
}

// Listen binds addr and starts accepting downstream connections.
func (r *Relay) Listen(addr string) (net.Addr, error) { return r.srv.Listen(addr) }

// Serve accepts downstream connections on ln (see server.Serve).
func (r *Relay) Serve(ln net.Listener) error { return r.srv.Serve(ln) }

// SessionID reports the upstream replay session.
func (r *Relay) SessionID() uint64 { return r.exp.SessionID() }

// Tracer returns the relay's flight recorder.
func (r *Relay) Tracer() *tracelog.Recorder { return r.srv.Tracer() }

// TopK folds the regional sketch (see server.TopK).
func (r *Relay) TopK(k int) []dcs.Estimate { return r.srv.TopK(k) }

// SnapshotState captures the relay's full recovery state: the server
// sections plus the upstream spool, all inside the server's snapshot
// admission gate, so the horizons the file promises downstream and the
// spool it owes upstream can never disagree.
func (r *Relay) SnapshotState() (*snapshot.State, error) {
	return r.srv.SnapshotStateWith(func(st *snapshot.State) error {
		st.Spool = r.exp.SnapshotSpool()
		return nil
	})
}

// Stats bundles both halves' ledgers.
type Stats struct {
	Server server.Stats
	Export export.Stats
}

// Stats snapshots both ledgers (not atomically with each other).
func (r *Relay) Stats() Stats {
	return Stats{Server: r.srv.Stats(), Export: r.exp.Stats()}
}

// RegisterTelemetry registers both halves' probes on reg.
func (r *Relay) RegisterTelemetry(reg *telemetry.Registry) {
	r.srv.RegisterTelemetry(reg)
	r.exp.RegisterTelemetry(reg)
}

// Drain blocks until the upstream spool empties (see export.Drain).
func (r *Relay) Drain(timeout time.Duration) error { return r.exp.Drain(timeout) }

// Shutdown stops the relay in dependency order: stop accepting and drain
// downstream handlers first (no new Forward calls after this), then give
// the upstream spool drainBudget to empty, then stop the exporter. With a
// zero budget the spool is abandoned to the snapshot (capture it first).
func (r *Relay) Shutdown(drainBudget time.Duration) {
	r.srv.Shutdown()
	if drainBudget > 0 {
		_ = r.exp.Drain(drainBudget)
	}
	_ = r.exp.Close()
}
