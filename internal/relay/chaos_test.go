package relay

import (
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcsketch/internal/dcs"
	"dcsketch/internal/export"
	"dcsketch/internal/faultnet"
	"dcsketch/internal/hashing"
	"dcsketch/internal/monitor"
	"dcsketch/internal/server"
	"dcsketch/internal/snapshot"
	"dcsketch/internal/tracelog"
	"dcsketch/internal/wire"
)

// sketchCfg is the fleet-wide sketch configuration: every tier (and the
// single-box reference) must share it for folds to merge exactly.
func sketchCfg() monitor.Config {
	return monitor.Config{Sketch: dcs.Config{Tables: 3, Buckets: 128, Seed: 9}}
}

// edgeBatches produces a deterministic per-edge traffic trace concentrated
// on a few destinations.
func edgeBatches(seed uint64, batches, batchSize int) [][]wire.Update {
	rng := hashing.NewSplitMix64(seed)
	out := make([][]wire.Update, batches)
	for i := range out {
		b := make([]wire.Update, batchSize)
		for j := range b {
			b[j] = wire.Update{
				Src:   uint32(rng.Next()),
				Dst:   uint32(rng.Next() % 16),
				Delta: int64(1 + rng.Next()%3),
			}
		}
		out[i] = b
	}
	return out
}

// dialVia returns an exporter Dial that reads its target from addr at call
// time, so a restarted tier's new port is picked up on the next redial.
func dialVia(addr *atomic.Value) func(string, time.Duration) (net.Conn, error) {
	return func(_ string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr.Load().(string), timeout)
	}
}

// TestChaosRestartFabricExactlyOnce is the headline proof for the crash-safe
// collector fabric: two edge exporters stream into a regional relay that
// re-exports into a global collector, while seeded faultnet cuts sever
// connections mid-frame and BOTH tiers take a hard restart (transport
// killed mid-frame, state recovered only through the snapshot file). The
// assertions: the global top-k is byte-identical to a single-box run of the
// same traffic, and the flight recorders prove every (session, seq) was
// applied exactly once at each tier.
func TestChaosRestartFabricExactlyOnce(t *testing.T) {
	const (
		edges    = 2
		batches  = 250
		perBatch = 16
	)
	dir := t.TempDir()
	relayRec := tracelog.New(tracelog.Options{SlotsPerRing: 8192, MaxRings: 256})
	globalRec := tracelog.New(tracelog.Options{SlotsPerRing: 8192, MaxRings: 256})

	var globalAddr, relayAddr atomic.Value

	// --- global collector, incarnation 1 (kill point armed) ---
	globalInj := faultnet.New(faultnet.Config{Seed: 31, CutAfter: 15000, MaxCuts: 4, KillAfter: 60000})
	var globalSrv atomic.Pointer[server.Server]
	bootGlobal := func(inj *faultnet.Injector, restore *snapshot.State) {
		srv, err := server.New(server.Config{Monitor: sketchCfg(), Trace: globalRec})
		if err != nil {
			t.Fatal(err)
		}
		if restore != nil {
			if err := srv.RestoreState(restore); err != nil {
				t.Fatal(err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(inj.Listen(ln)); err != nil {
			t.Fatal(err)
		}
		globalAddr.Store(ln.Addr().String())
		globalSrv.Store(srv)
		t.Cleanup(srv.Shutdown)
	}
	bootGlobal(globalInj, nil)

	// --- regional relay, incarnation 1 (kill point armed) ---
	relayInj := faultnet.New(faultnet.Config{Seed: 47, CutAfter: 9000, MaxCuts: 6, KillAfter: 30000})
	var rly atomic.Pointer[Relay]
	bootRelay := func(inj *faultnet.Injector, cfg Config) {
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Serve(inj.Listen(ln)); err != nil {
			t.Fatal(err)
		}
		relayAddr.Store(ln.Addr().String())
		rly.Store(r)
		t.Cleanup(func() { r.Shutdown(0) })
	}
	relayCfg := Config{
		Upstream:     "global",
		UpstreamDial: dialVia(&globalAddr),
		Monitor:      sketchCfg(),
		IngestShards: 2,
		SpoolBatches: 4096,
		SessionID:    7,
		Seed:         7,
		Trace:        relayRec,
	}
	bootRelay(relayInj, relayCfg)

	// --- restart watchers: a kill is a hard restart through the snapshot ---
	var restarts sync.WaitGroup
	restarts.Add(2)
	go func() {
		defer restarts.Done()
		select {
		case <-relayInj.Killed():
		case <-time.After(60 * time.Second):
			t.Error("relay kill never fired")
			return
		}
		old := rly.Load()
		old.Shutdown(0) // the transport is already severed; drain nothing
		st, err := old.SnapshotState()
		if err != nil {
			t.Error(err)
			return
		}
		path := filepath.Join(dir, "relay.snapshot")
		if err := snapshot.WriteFile(path, st); err != nil {
			t.Error(err)
			return
		}
		restored, err := snapshot.ReadFile(path)
		if err != nil {
			t.Error(err)
			return
		}
		cfg := relayCfg
		cfg.SessionID = 0 // the restored spool carries the session
		cfg.Restore = restored
		bootRelay(faultnet.New(faultnet.Config{Seed: 48, CutAfter: 20000, MaxCuts: 2}), cfg)
	}()
	go func() {
		defer restarts.Done()
		select {
		case <-globalInj.Killed():
		case <-time.After(60 * time.Second):
			t.Error("global kill never fired")
			return
		}
		old := globalSrv.Load()
		old.Shutdown()
		st, err := old.SnapshotState()
		if err != nil {
			t.Error(err)
			return
		}
		path := filepath.Join(dir, "global.snapshot")
		if err := snapshot.WriteFile(path, st); err != nil {
			t.Error(err)
			return
		}
		restored, err := snapshot.ReadFile(path)
		if err != nil {
			t.Error(err)
			return
		}
		bootGlobal(faultnet.New(faultnet.Config{Seed: 32, CutAfter: 30000, MaxCuts: 2}), restored)
	}()

	// --- single-box reference: same traffic, no faults, one server ---
	refSrv, err := server.New(server.Config{Monitor: sketchCfg()})
	if err != nil {
		t.Fatal(err)
	}
	refAddr, err := refSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(refSrv.Shutdown)
	refExp, err := export.New(export.Config{Addr: refAddr.String(), SessionID: 55, Seed: 55, SpoolBatches: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { refExp.Close() })

	// --- edge exporters stream through the chaos ---
	var feeders sync.WaitGroup
	edgeExps := make([]*export.Exporter, edges)
	for i := 0; i < edges; i++ {
		e, err := export.New(export.Config{
			Addr:        "relay",
			Dial:        dialVia(&relayAddr),
			DialTimeout: time.Second,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			SessionID:   uint64(101 + i),
			Seed:        uint64(101 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		edgeExps[i] = e
		t.Cleanup(func() { e.Close() })
		feeders.Add(1)
		go func(i int, e *export.Exporter) {
			defer feeders.Done()
			for _, b := range edgeBatches(uint64(1000+i), batches, perBatch) {
				if err := e.Export(b); err != nil {
					t.Error(err)
					return
				}
				if err := refExp.Export(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, e)
	}
	feeders.Wait()

	// Both tiers must take their hard restart before the drain phase.
	restarts.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain edge→relay, then relay→global, then the reference.
	for _, e := range edgeExps {
		if err := e.Drain(90 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := rly.Load().Drain(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := refExp.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// --- proof 1: global top-k byte-identical to the single-box run ---
	got := globalSrv.Load().TopK(10)
	want := refSrv.TopK(10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("global top-k diverged from single-box run:\n got  %v\n want %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("empty top-k: no traffic made it through")
	}

	// --- proof 2: exactly-once application per (session, seq) per tier ---
	// Edge sessions at the relay tier: every batch either sheds at the edge
	// (spool is big enough that none do) or applies exactly once.
	relayApplied := applyCounts(relayRec)
	for i := 0; i < edges; i++ {
		sess := uint64(101 + i)
		for seq := uint64(1); seq <= batches; seq++ {
			if n := relayApplied[[2]uint64{sess, seq}]; n != 1 {
				t.Fatalf("relay applied (session %d, seq %d) %d times", sess, seq, n)
			}
		}
	}
	// The relay's own session at the global tier: one upstream batch per
	// unique edge batch, in one contiguous sequence range.
	globalApplied := applyCounts(globalRec)
	for seq := uint64(1); seq <= edges*batches; seq++ {
		if n := globalApplied[[2]uint64{7, seq}]; n != 1 {
			t.Fatalf("global applied (session 7, seq %d) %d times", seq, n)
		}
	}
	if len(globalApplied) != edges*batches {
		t.Fatalf("global applied %d distinct batches, want %d", len(globalApplied), edges*batches)
	}

	// Sanity on the chaos itself: both kills and at least one cut fired.
	if relayInj.Stats().Kills != 1 || globalInj.Stats().Kills != 1 {
		t.Fatalf("kills = %d/%d, want 1/1", relayInj.Stats().Kills, globalInj.Stats().Kills)
	}
	if relayInj.Stats().Cuts+globalInj.Stats().Cuts == 0 {
		t.Fatal("no cuts fired; chaos schedule too lax")
	}
}

// applyCounts tallies StageServerApply events per (session, seq).
func applyCounts(rec *tracelog.Recorder) map[[2]uint64]int {
	counts := make(map[[2]uint64]int)
	for _, ev := range rec.Events(nil) {
		if ev.Stage == tracelog.StageServerApply && ev.Session != 0 {
			counts[[2]uint64{ev.Session, ev.Seq}]++
		}
	}
	return counts
}
