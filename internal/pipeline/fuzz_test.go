package pipeline

import (
	"encoding/binary"
	"testing"

	"dcsketch/internal/dcs"
	"dcsketch/internal/tdcs"
)

// FuzzShardRouting checks the pipeline's core algebraic claim: routing a
// stream across shard sketches by pair hash and folding the shards answers
// exactly like one sketch that consumed the whole stream. The sketch is a
// linear transform, so any divergence means the router split a pair across
// shards, a fold lost updates, or a worker applied them out of order.
func FuzzShardRouting(f *testing.F) {
	f.Add(uint8(3), []byte{1, 0, 0, 2, 0, 0, 2, 0, 1, 3, 1, 0})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(7), []byte{0xff, 0xff, 1, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, shards uint8, data []byte) {
		workers := int(shards)%8 + 1
		cfg := dcs.Config{Seed: 99, Buckets: 16, Tables: 2, Levels: 16}
		p, err := New(cfg, workers, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		single, err := tdcs.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Each 3-byte record is one update: two bytes select a pair key
		// from a small space (forcing bucket collisions and
		// singleton/collision transitions) and one byte the ±1 delta.
		for len(data) >= 3 {
			key := uint64(binary.LittleEndian.Uint16(data))
			delta := int64(1)
			if data[2]&1 == 1 {
				delta = -1
			}
			p.UpdateKey(key, delta)
			single.UpdateKey(key, delta)
			data = data[3:]
		}
		p.Close() // drain every shard queue before folding

		if got, want := p.Updates(), single.Updates(); got != want {
			t.Fatalf("pipeline consumed %d updates, single sketch %d", got, want)
		}
		got, err := p.Threshold(1)
		if err != nil {
			t.Fatal(err)
		}
		want := single.Threshold(1)
		if len(got) != len(want) {
			t.Fatalf("Threshold(1): pipeline %v, single %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Threshold(1)[%d]: pipeline %+v, single %+v", i, got[i], want[i])
			}
		}
	})
}
